#include "partition/partition.hpp"

#include <algorithm>

#include "partition/sharded_partition.hpp"

namespace rcc {

std::vector<EdgeList> random_partition(const EdgeList& edges, std::size_t k,
                                       Rng& rng, ThreadPool* pool) {
  const ShardedPartition<Edge> sharded = shard_random(edges, k, rng, pool);
  std::vector<EdgeList> parts;
  parts.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto s = sharded.shard(i);
    parts.emplace_back(edges.num_vertices(),
                       std::vector<Edge>(s.begin(), s.end()));
  }
  return parts;
}

std::vector<WeightedEdgeList> random_partition_weighted(
    const WeightedEdgeList& edges, std::size_t k, Rng& rng, ThreadPool* pool) {
  const ShardedPartition<WeightedEdge> sharded =
      shard_random(edges, k, rng, pool);
  std::vector<WeightedEdgeList> parts(k);
  for (std::size_t i = 0; i < k; ++i) {
    parts[i].num_vertices = edges.num_vertices;
    const auto s = sharded.shard(i);
    parts[i].edges.assign(s.begin(), s.end());
  }
  return parts;
}

std::vector<EdgeList> sorted_chunk_partition(const EdgeList& edges,
                                             std::size_t k) {
  RCC_CHECK(k >= 1);
  EdgeList sorted = edges;
  sorted.sort();
  std::vector<EdgeList> parts(k, EdgeList(edges.num_vertices()));
  const std::size_t m = sorted.num_edges();
  for (std::size_t i = 0; i < m; ++i) {
    parts[std::min(k - 1, i * k / std::max<std::size_t>(m, 1))].add(sorted[i]);
  }
  return parts;
}

std::vector<EdgeList> by_vertex_partition(const EdgeList& edges, std::size_t k) {
  RCC_CHECK(k >= 1);
  std::vector<EdgeList> parts(k, EdgeList(edges.num_vertices()));
  for (const Edge& e : edges) {
    parts[e.u % k].add(e);
  }
  return parts;
}

std::vector<EdgeList> random_vertex_partition(const EdgeList& edges,
                                              std::size_t k, Rng& rng) {
  RCC_CHECK(k >= 1);
  const VertexId n = edges.num_vertices();
  std::vector<std::uint32_t> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = static_cast<std::uint32_t>(rng.next_below(k));
  }
  std::vector<EdgeList> parts(k, EdgeList(n));
  for (const Edge& e : edges) {
    parts[owner[e.u]].add(e);
    if (owner[e.v] != owner[e.u]) parts[owner[e.v]].add(e);
  }
  return parts;
}

PartitionStats partition_stats(const std::vector<EdgeList>& parts) {
  PartitionStats s;
  RCC_CHECK(!parts.empty());
  s.min_edges = parts.front().num_edges();
  std::size_t total = 0;
  for (const auto& p : parts) {
    s.min_edges = std::min(s.min_edges, p.num_edges());
    s.max_edges = std::max(s.max_edges, p.num_edges());
    total += p.num_edges();
  }
  s.mean_edges = static_cast<double>(total) / static_cast<double>(parts.size());
  return s;
}

}  // namespace rcc
