// The random k-partitioning model of the paper, plus adversarial
// partitioners used as contrast.
//
// Random k-partitioning (Section 1): every edge is assigned independently
// and uniformly at random to one of k machines. All of the paper's positive
// results are *conditioned on this partitioning*; the adversarial
// partitioners below realize the regime in which [10] proved that only
// Theta(n^{1/3}) approximations are possible with O~(n)-size summaries,
// which the EXP1/EXP2 experiments use as a foil.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/weighted.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rcc {

class MachineScratch;

/// Everything a machine is allowed to know about the global setup: the
/// vertex universe, the machine count, its own index, and (if the instance
/// is bipartite) the bipartition boundary. Machines never see n_edges(G) or
/// anything else about other machines' inputs.
struct PartitionContext {
  VertexId num_vertices = 0;
  std::size_t k = 1;
  std::size_t machine_index = 0;
  VertexId left_size = 0;  // 0 = not known to be bipartite
  /// Round-persistent scratch for this machine (util/workspace.hpp), or
  /// null when the caller runs without a workspace. Purely an execution
  /// resource: it carries no information about the instance, so the
  /// "machines only know their piece" contract is untouched.
  MachineScratch* scratch = nullptr;
};

/// Assigns each edge independently and uniformly to one of k machines.
///
/// Implemented on the sharded partitioner (sharded_partition.hpp): one
/// forked RNG stream per fixed-size edge batch rather than one serialized
/// stream, so the assignment passes run on `pool` when provided — and the
/// result is identical for any thread count. Returns owning per-machine
/// lists for callers that need them; the protocol engine itself consumes
/// the arena shards directly and never materializes these copies.
std::vector<EdgeList> random_partition(const EdgeList& edges, std::size_t k,
                                       Rng& rng, ThreadPool* pool = nullptr);

/// Weighted variant (the Crouch-Stubbs experiments partition weighted edges).
std::vector<WeightedEdgeList> random_partition_weighted(
    const WeightedEdgeList& edges, std::size_t k, Rng& rng,
    ThreadPool* pool = nullptr);

/// Adversarial: contiguous chunks of the lexicographically sorted edge list,
/// so each machine sees a vertex-local cluster of edges.
std::vector<EdgeList> sorted_chunk_partition(const EdgeList& edges, std::size_t k);

/// Adversarial: edge (u, v) goes to machine u % k, correlating all edges of
/// a left vertex onto one machine.
std::vector<EdgeList> by_vertex_partition(const EdgeList& edges, std::size_t k);

/// The *vertex-partition* simultaneous model of [10] (Section 1.3): each
/// vertex is assigned uniformly at random to a machine, and every machine
/// receives all edges incident on its vertices — so an edge whose endpoints
/// live on different machines appears on both. In this model [10] prove
/// that beating O(sqrt(k))-approximation takes more than O~(n) words per
/// machine; the library includes it for model completeness and contrast.
std::vector<EdgeList> random_vertex_partition(const EdgeList& edges,
                                              std::size_t k, Rng& rng);

/// Sanity statistics of a partition (used by tests and EXP10).
struct PartitionStats {
  std::size_t min_edges = 0;
  std::size_t max_edges = 0;
  double mean_edges = 0.0;
};
PartitionStats partition_stats(const std::vector<EdgeList>& parts);

}  // namespace rcc
