// Single-pass sharded random k-partitioner: the partition phase of the
// protocol engine.
//
// The legacy `random_partition` materialized k per-machine EdgeList copies
// (k reserves, one normalizing push_back per edge) before any machine could
// start working. The sharded partitioner instead produces ONE flat edge
// arena plus a (k+1)-entry offset index; machine i's piece is the
// zero-copy slice arena[offsets[i], offsets[i+1]).
//
// Pipeline (templated over unweighted/weighted edges):
//
//   1. counting pass  — edges are cut into fixed-size batches; each batch
//      draws destinations from its own forked RNG stream and tallies a
//      per-(batch, machine) histogram,
//   2. offset index   — machine totals prefix-sum into the arena offsets;
//      per-batch write cursors fall out of the same scan,
//   3. scatter pass   — each batch copies its edges into the arena at the
//      precomputed cursors.
//
// Both edge passes parallelize over batches on the thread pool, and because
// batch boundaries and RNG forks are fixed by the edge count alone, the
// arena layout is byte-identical for any thread count (and equal to the
// sequential run). Within a machine, edges keep their global input order —
// the scatter is stable — so downstream algorithms see the same piece a
// sequential stable partitioner would hand them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/weighted.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace rcc {

/// Edges per partition batch. One batch of Edge payloads (128 KiB) stays
/// cache-resident while it is counted and scattered; batch boundaries are a
/// pure function of the edge count, which is what makes the layout
/// independent of thread scheduling.
inline constexpr std::size_t kPartitionBatchEdges = std::size_t{1} << 14;

template <typename EdgeT>
class ShardedPartition {
 public:
  ShardedPartition() = default;

  /// Partitions `edges` into k shards of one flat arena. Draws k-sided dice
  /// from one forked RNG stream per batch; `pool` may be null for
  /// sequential execution (same result either way).
  ShardedPartition(std::span<const EdgeT> edges, VertexId num_vertices,
                   std::size_t k, Rng& rng, ThreadPool* pool = nullptr) {
    repartition(edges, num_vertices, k, rng, pool);
  }

  /// (Re)partitions into this object, reusing the arena (grow-only) and —
  /// when `scratch` is given — the counting/scatter buffers of a
  /// round-persistent workspace. Byte-identical results to constructing a
  /// fresh ShardedPartition with the same inputs; the multi-round executor
  /// calls this once per round so steady-state rounds allocate nothing here.
  void repartition(std::span<const EdgeT> edges, VertexId num_vertices,
                   std::size_t k, Rng& rng, ThreadPool* pool = nullptr,
                   PartitionScratch* scratch = nullptr) {
    num_vertices_ = num_vertices;
    RCC_CHECK(k >= 1);
    const std::size_t m = edges.size();
    const std::size_t num_batches =
        (m + kPartitionBatchEdges - 1) / kPartitionBatchEdges;

    PartitionScratch local;
    PartitionScratch& s = scratch != nullptr ? *scratch : local;
    WorkspaceStats* stats = s.stats;

    // Fork the per-batch streams up front (serial: forking is two draws).
    std::vector<Rng>& batch_rngs =
        workspace_detail::reserved(s.batch_rngs, num_batches, stats);
    batch_rngs.clear();
    for (std::size_t b = 0; b < num_batches; ++b) {
      batch_rngs.push_back(rng.fork());
    }

    // Pass 1: draw destinations, tally per-(batch, machine) counts.
    // Destinations are memoized (one byte when k fits) so the scatter pass
    // does not redraw. For k <= 256 each 64-bit draw yields four k-sided
    // dice via 16-bit-lane Lemire rejection — still exactly uniform, and
    // the dominant cost of the legacy per-edge next_below drops ~4x.
    const bool narrow = k <= 256;
    std::vector<std::size_t>& counts =
        workspace_detail::sized(s.counts, num_batches * k, stats);
    if (!narrow) {
      // The narrow counting pass overwrites every (batch, machine) row in
      // full; the wide pass increments and needs a zeroed histogram.
      std::fill(counts.begin(), counts.end(), std::size_t{0});
    }
    std::vector<std::uint8_t>& dest8 =
        workspace_detail::sized(s.dest8, narrow ? m : 0, stats);
    std::vector<std::uint32_t>& dest32 =
        workspace_detail::sized(s.dest32, narrow ? 0 : m, stats);
    const auto count_batch = [&](std::size_t b) {
      Rng& brng = batch_rngs[b];
      const std::size_t begin = b * kPartitionBatchEdges;
      const std::size_t end = std::min(begin + kPartitionBatchEdges, m);
      std::size_t* batch_counts = counts.data() + b * k;
      if (narrow) {
        // Lemire on 16-bit lanes: x uniform in [0, 2^16) maps to
        // (x*k) >> 16, rejecting lanes with (x*k mod 2^16) < 2^16 mod k so
        // every destination gets exactly floor(2^16 / k) accepted values.
        // Tallies go to a stack-local array: adjacent batches' rows of the
        // shared counts array can share a cache line when k is small, and
        // per-edge increments there would false-share across pool threads.
        const auto kk = static_cast<std::uint32_t>(k);
        const std::uint32_t reject_below = 65536u % kk;
        std::array<std::size_t, 256> local_counts{};
        std::uint64_t bits = 0;
        int lanes_left = 0;
        if (reject_below == 0) {
          // Power-of-two k: no lane can be rejected, so every u64 maps to
          // exactly four consecutive edges. The quad unroll keeps the four
          // independent mul/shift/store chains off the loop-carried edge
          // index, which the general pump below cannot avoid. Refills still
          // happen every fourth lane in order, so destinations — and the
          // arena layout — stay byte-identical to the rejection loop.
          std::size_t i = begin;
          for (; i + 4 <= end; i += 4) {
            const std::uint64_t q = brng.next_u64();
            const auto d0 = static_cast<std::uint8_t>(
                (static_cast<std::uint32_t>(q & 0xFFFFu) * kk) >> 16);
            const auto d1 = static_cast<std::uint8_t>(
                (static_cast<std::uint32_t>((q >> 16) & 0xFFFFu) * kk) >> 16);
            const auto d2 = static_cast<std::uint8_t>(
                (static_cast<std::uint32_t>((q >> 32) & 0xFFFFu) * kk) >> 16);
            const auto d3 = static_cast<std::uint8_t>(
                (static_cast<std::uint32_t>(q >> 48) * kk) >> 16);
            dest8[i] = d0;
            dest8[i + 1] = d1;
            dest8[i + 2] = d2;
            dest8[i + 3] = d3;
            ++local_counts[d0];
            ++local_counts[d1];
            ++local_counts[d2];
            ++local_counts[d3];
          }
          if (i < end) {
            std::uint64_t q = brng.next_u64();
            for (; i < end; ++i, q >>= 16) {
              const auto d = static_cast<std::uint8_t>(
                  (static_cast<std::uint32_t>(q & 0xFFFFu) * kk) >> 16);
              dest8[i] = d;
              ++local_counts[d];
            }
          }
        } else {
          // Branchless lane pump: every inner iteration consumes exactly
          // one lane; an accepted lane advances the edge index and bumps
          // its tally, a rejected one re-writes the same dest slot
          // (overwritten by the next lane) and advances nothing. Lane
          // consumption and refill order are identical to the per-edge
          // rejection loop this replaces, so destinations stay
          // byte-identical.
          std::size_t i = begin;
          while (i < end) {
            if (lanes_left == 0) {
              bits = brng.next_u64();
              lanes_left = 4;
            }
            do {
              const auto lane = static_cast<std::uint32_t>(bits & 0xFFFFu);
              bits >>= 16;
              --lanes_left;
              const std::uint32_t prod = lane * kk;
              const std::uint32_t d = prod >> 16;
              const std::size_t ok =
                  static_cast<std::size_t>((prod & 0xFFFFu) >= reject_below);
              dest8[i] = static_cast<std::uint8_t>(d);
              local_counts[d] += ok;
              i += ok;
            } while (lanes_left != 0 && i < end);
          }
        }
        for (std::size_t j = 0; j < k; ++j) batch_counts[j] = local_counts[j];
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          const auto d = static_cast<std::uint32_t>(brng.next_below(k));
          dest32[i] = d;
          ++batch_counts[d];
        }
      }
    };
    run_batches(num_batches, pool, count_batch);

    // Offset index: machine totals -> arena offsets; the same scan yields
    // each batch's write cursor for each machine.
    offsets_.assign(k + 1, 0);
    for (std::size_t b = 0; b < num_batches; ++b) {
      for (std::size_t j = 0; j < k; ++j) offsets_[j + 1] += counts[b * k + j];
    }
    for (std::size_t j = 0; j < k; ++j) offsets_[j + 1] += offsets_[j];
    std::vector<std::size_t>& cursors =
        workspace_detail::sized(s.cursors, num_batches * k, stats);
    {
      std::vector<std::size_t>& running =
          workspace_detail::sized(s.running, k, stats);
      std::copy(offsets_.begin(), offsets_.end() - 1, running.begin());
      for (std::size_t b = 0; b < num_batches; ++b) {
        for (std::size_t j = 0; j < k; ++j) {
          cursors[b * k + j] = running[j];
          running[j] += counts[b * k + j];
        }
      }
    }

    // Pass 2: scatter raw edge payloads into the arena (no per-edge
    // normalization, bounds checks, or capacity growth — the source edges
    // already honor the EdgeList invariants). The arena is uninitialized
    // byte storage (EdgeT is an implicit-lifetime aggregate): every slot is
    // written exactly once by the scatter, so a zeroing resize would be a
    // wasted full pass over the buffer. Grow-only across repartition calls,
    // and — with a workspace scratch — owned by the workspace, so arenas
    // survive the partition object and whole RUNS stop allocating here.
    num_edges_ = m;
    std::unique_ptr<std::byte[]>& storage =
        scratch != nullptr ? s.arena : arena_storage_;
    std::size_t& capacity = scratch != nullptr ? s.arena_capacity_bytes
                                               : arena_capacity_bytes_;
    if (capacity < m * sizeof(EdgeT)) {
      if (stats != nullptr) {
        stats->note_growth(m * sizeof(EdgeT) - capacity);
      }
      storage.reset(new std::byte[m * sizeof(EdgeT)]);
      capacity = m * sizeof(EdgeT);
    }
    arena_ = reinterpret_cast<EdgeT*>(storage.get());
    EdgeT* arena = arena_;
    const auto scatter_batch = [&](std::size_t b) {
      std::size_t* cur = cursors.data() + b * k;
      const std::size_t begin = b * kPartitionBatchEdges;
      const std::size_t end = std::min(begin + kPartitionBatchEdges, m);
      if (narrow) {
        // Cursors advance on a stack-local copy for the same false-sharing
        // reason as the counting pass (each batch's row is logically
        // private, but adjacent rows can share cache lines).
        std::array<std::size_t, 256> local_cur;
        for (std::size_t j = 0; j < k; ++j) local_cur[j] = cur[j];
        for (std::size_t i = begin; i < end; ++i) {
          arena[local_cur[dest8[i]]++] = edges[i];
        }
      } else {
        for (std::size_t i = begin; i < end; ++i) arena[cur[dest32[i]]++] = edges[i];
      }
    };
    run_batches(num_batches, pool, scatter_batch);
  }

  std::size_t num_machines() const { return offsets_.size() - 1; }
  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Machine i's piece: a view into the shared arena, never a copy.
  std::span<const EdgeT> shard(std::size_t i) const {
    return {arena_ + offsets_[i], arena_ + offsets_[i + 1]};
  }

  /// The whole partitioned edge set as one contiguous view (the shards
  /// concatenated in machine order). The multi-round MPC executor hands this
  /// to its round-combiner so survivors can be filtered without re-collecting
  /// the pieces.
  std::span<const EdgeT> arena() const { return {arena_, num_edges_}; }

  std::size_t shard_size(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  const std::vector<std::size_t>& offsets() const { return offsets_; }

 private:
  template <typename Fn>
  static void run_batches(std::size_t num_batches, ThreadPool* pool,
                          const Fn& fn) {
    if (pool != nullptr && num_batches > 1) {
      parallel_for(*pool, num_batches, fn);
    } else {
      for (std::size_t b = 0; b < num_batches; ++b) fn(b);
    }
  }

  VertexId num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  /// The scattered edges: either owned storage (below) or a view into the
  /// caller's PartitionScratch arena, which must then outlive this object.
  EdgeT* arena_ = nullptr;
  std::unique_ptr<std::byte[]> arena_storage_;
  std::size_t arena_capacity_bytes_ = 0;
  std::vector<std::size_t> offsets_{0};  // size k+1 ({0} = empty partition)
};

/// Maps an edge payload to its non-owning view type (what coreset builders
/// and the protocol engine's machine phase consume).
template <typename EdgeT>
struct EdgeViewOf;
template <>
struct EdgeViewOf<Edge> {
  using type = EdgeSpan;
};
template <>
struct EdgeViewOf<WeightedEdge> {
  using type = WeightedEdgeSpan;
};

/// Convenience builders for the two edge flavors.
inline ShardedPartition<Edge> shard_random(const EdgeList& edges, std::size_t k,
                                           Rng& rng,
                                           ThreadPool* pool = nullptr) {
  return ShardedPartition<Edge>(
      std::span<const Edge>(edges.edges().data(), edges.num_edges()),
      edges.num_vertices(), k, rng, pool);
}

inline ShardedPartition<WeightedEdge> shard_random(
    const WeightedEdgeList& edges, std::size_t k, Rng& rng,
    ThreadPool* pool = nullptr) {
  return ShardedPartition<WeightedEdge>(
      std::span<const WeightedEdge>(edges.edges.data(), edges.edges.size()),
      edges.num_vertices, k, rng, pool);
}

/// Machine i's piece of an unweighted partition as an EdgeSpan (the view
/// type the coreset interfaces take).
inline EdgeSpan shard_span(const ShardedPartition<Edge>& parts, std::size_t i) {
  const auto s = parts.shard(i);
  return EdgeSpan(s.data(), s.size(), parts.num_vertices());
}

}  // namespace rcc
