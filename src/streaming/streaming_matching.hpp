// Semi-streaming matching: the single-machine counterpart of the coresets.
//
// Section 1 places the O~(n) coreset size at the graph-streaming "sweet
// spot", and the weighted extension comes from Crouch-Stubbs's streaming
// technique [22]. This module provides the streaming algorithms themselves:
//
//  * StreamingMaximalMatching — one pass, O(n) words, 2-approximation.
//  * StreamingWeightedMatching — Crouch-Stubbs: one pass, O(n log W) words;
//    a greedy maximal matching per geometric weight class, merged
//    heaviest-class-first at query time. This is exactly the machinery the
//    paper's weighted coreset reuses per machine.
//
// Both consume edges one at a time (any order); the random-arrival analyses
// the paper cites [38, 44] can be exercised by feeding shuffled streams.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "matching/weighted.hpp"
#include "util/types.hpp"

namespace rcc {

/// One-pass greedy maximal matching over an edge stream.
class StreamingMaximalMatching {
 public:
  explicit StreamingMaximalMatching(VertexId num_vertices)
      : matching_(num_vertices) {}

  /// Processes one stream element; returns true if the edge was taken.
  bool offer(VertexId u, VertexId v) {
    if (matching_.is_matched(u) || matching_.is_matched(v) || u == v) {
      return false;
    }
    matching_.match(u, v);
    return true;
  }

  const Matching& matching() const { return matching_; }

  /// Words of state: one mate entry per matched vertex.
  std::size_t state_words() const { return 2 * matching_.size(); }

 private:
  Matching matching_;
};

/// One-pass Crouch-Stubbs weighted matching: maintains a greedy maximal
/// matching inside every geometric weight class.
class StreamingWeightedMatching {
 public:
  /// `class_base` > 1 controls the geometric bucketing (2.0 = octaves).
  StreamingWeightedMatching(VertexId num_vertices, double class_base = 2.0);

  /// Processes one weighted stream element.
  void offer(VertexId u, VertexId v, double weight);

  /// Merges the class matchings heaviest-first into one matching.
  Matching finalize() const;

  /// Total edges retained across all classes (the space bound O(n log W)).
  std::size_t state_edges() const;

  std::size_t num_classes() const { return classes_.size(); }

 private:
  struct ClassState {
    Matching matching;
    std::vector<WeightedEdge> edges;  // the matched edges with weights
  };

  int class_of(double weight) const;

  VertexId num_vertices_;
  double class_base_;
  double wmin_seen_ = 0.0;
  // classes_[j] holds the matching for weight class floor+j; grows lazily.
  std::vector<ClassState> classes_;
};

}  // namespace rcc
