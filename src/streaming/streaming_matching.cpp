#include "streaming/streaming_matching.hpp"

#include <cmath>

namespace rcc {

StreamingWeightedMatching::StreamingWeightedMatching(VertexId num_vertices,
                                                     double class_base)
    : num_vertices_(num_vertices), class_base_(class_base) {
  RCC_CHECK(class_base > 1.0);
}

int StreamingWeightedMatching::class_of(double weight) const {
  RCC_DCHECK(weight > 0.0 && wmin_seen_ > 0.0);
  return static_cast<int>(
      std::floor(std::log(weight / wmin_seen_) / std::log(class_base_)));
}

void StreamingWeightedMatching::offer(VertexId u, VertexId v, double weight) {
  RCC_CHECK(u != v && u < num_vertices_ && v < num_vertices_);
  if (weight <= 0.0) return;
  // First positive weight anchors the class grid. A true streaming setting
  // would re-anchor on smaller weights; for simplicity we clamp lighter
  // edges into class 0 (costing at most one extra class of rounding).
  if (wmin_seen_ == 0.0) wmin_seen_ = weight;
  const int cls = std::max(0, class_of(std::max(weight, wmin_seen_)));
  if (static_cast<std::size_t>(cls) >= classes_.size()) {
    classes_.resize(static_cast<std::size_t>(cls) + 1);
  }
  auto& state = classes_[static_cast<std::size_t>(cls)];
  if (state.matching.num_vertices() == 0) {
    state.matching = Matching(num_vertices_);
  }
  if (!state.matching.is_matched(u) && !state.matching.is_matched(v)) {
    state.matching.match(u, v);
    state.edges.push_back(WeightedEdge{u, v, weight});
  }
}

Matching StreamingWeightedMatching::finalize() const {
  Matching merged(num_vertices_);
  // Heaviest class first (classes_ is lightest-first).
  for (auto it = classes_.rbegin(); it != classes_.rend(); ++it) {
    for (const WeightedEdge& we : it->edges) {
      if (!merged.is_matched(we.u) && !merged.is_matched(we.v)) {
        merged.match(we.u, we.v);
      }
    }
  }
  return merged;
}

std::size_t StreamingWeightedMatching::state_edges() const {
  std::size_t total = 0;
  for (const auto& c : classes_) total += c.edges.size();
  return total;
}

}  // namespace rcc
