// Measurement probes that turn the lower-bound proofs' operative quantities
// into numbers the benches can print.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "lower_bounds/hard_instances.hpp"
#include "matching/matching.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// Number of planted (E_hidden) edges appearing in a matching/edge set —
/// the quantity X_i of the Theorem 3 proof, summed over machines.
std::size_t hidden_edges_in(const EdgeList& edges, const DMatchingInstance& inst);
std::size_t hidden_edges_in(const Matching& m, const DMatchingInstance& inst);

/// Per-machine census for Lemma 4.1 / the indistinguishability argument:
/// size of the machine's induced matching (both endpoints degree one in the
/// piece) and how many of its edges are planted.
struct InducedMatchingCensus {
  std::size_t induced_size = 0;
  std::size_t planted_inside = 0;  // planted edges within the induced matching
  std::size_t planted_total = 0;   // planted edges in the whole piece
};
InducedMatchingCensus induced_matching_census(const EdgeList& piece,
                                              const DMatchingInstance& inst);

/// For D_VC: L1_i / R1_i sizes of Lemma 4.2 on one piece.
struct DegreeOneCensus {
  std::size_t left_degree_one = 0;   // |L1_i|
  std::size_t right_neighbors = 0;   // |R1_i|
  bool piece_contains_e_star = false;
};
DegreeOneCensus degree_one_census(const EdgeList& piece, const DVcInstance& inst);

/// True if the cover touches e* (the event the Theorem 4 adversary denies).
bool covers_e_star(const VertexCover& cover, const DVcInstance& inst);

}  // namespace rcc
