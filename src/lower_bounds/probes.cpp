#include "lower_bounds/probes.hpp"

#include "graph/properties.hpp"

namespace rcc {

std::size_t hidden_edges_in(const EdgeList& edges, const DMatchingInstance& inst) {
  std::size_t count = 0;
  for (const Edge& e : edges) {
    if (inst.is_hidden_edge(e)) ++count;
  }
  return count;
}

std::size_t hidden_edges_in(const Matching& m, const DMatchingInstance& inst) {
  return hidden_edges_in(m.to_edge_list(), inst);
}

InducedMatchingCensus induced_matching_census(const EdgeList& piece,
                                              const DMatchingInstance& inst) {
  InducedMatchingCensus census;
  const EdgeList induced = induced_matching(piece);
  census.induced_size = induced.num_edges();
  census.planted_inside = hidden_edges_in(induced, inst);
  census.planted_total = hidden_edges_in(piece, inst);
  return census;
}

DegreeOneCensus degree_one_census(const EdgeList& piece, const DVcInstance& inst) {
  DegreeOneCensus census;
  const auto deg = piece.degrees();
  std::vector<bool> right_seen(piece.num_vertices(), false);
  for (VertexId v = 0; v < inst.n; ++v) {
    if (deg[v] == 1) ++census.left_degree_one;
  }
  for (const Edge& e : piece) {
    if (deg[e.u] == 1 && !right_seen[e.v]) {
      right_seen[e.v] = true;
      ++census.right_neighbors;
    }
    if (e == inst.e_star) census.piece_contains_e_star = true;
  }
  return census;
}

bool covers_e_star(const VertexCover& cover, const DVcInstance& inst) {
  return cover.contains(inst.e_star.u) || cover.contains(inst.e_star.v);
}

}  // namespace rcc
