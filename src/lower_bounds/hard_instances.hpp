// The paper's hard input distributions, with ground-truth labels retained
// so experiments can measure exactly the quantities the lower-bound proofs
// reason about.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace rcc {

/// Distribution D_Matching (Sections 4.1 / 5.1).
///
/// Bipartite G(L, R, E), |L| = |R| = n:
///   1. A subset of L and B subset of R, each of size n/alpha, uniform.
///   2. E_AB: every pair in A x B independently w.p. k*alpha/n.
///   3. E_hidden: a uniform perfect matching between L\A and R\B.
///   4. E = E_AB u E_hidden.
/// MM(G) >= n - n/alpha, but any matching larger than 2n/alpha must use
/// E_hidden edges, which are locally indistinguishable from E_AB edges
/// inside each machine's degree-1 "induced matching".
struct DMatchingInstance {
  VertexId n = 0;         // vertices per side; universe is [0, 2n)
  double alpha = 0.0;
  std::size_t k = 0;
  EdgeList edges;         // the full graph
  EdgeList hidden;        // E_hidden (the planted near-perfect matching)
  std::vector<bool> in_A;  // indicator over [0, 2n): members of A
  std::vector<bool> in_B;  // indicator over [0, 2n): members of B

  VertexId left_size() const { return n; }
  std::size_t planted_matching_size() const { return hidden.num_edges(); }
  bool is_hidden_edge(const Edge& e) const;
};

DMatchingInstance make_d_matching(VertexId n, double alpha, std::size_t k,
                                  Rng& rng);

/// Distribution D_VC (Sections 4.2 / 5.3).
///
/// Bipartite G(L, R, E), |L| = |R| = n:
///   1. A subset of L of size n/alpha, uniform.
///   2. E_A: every pair in A x R independently w.p. k/2n.
///   3. v* uniform in L \ A; e* = (v*, uniform vertex of R).
///   4. E = E_A u {e*}.
/// VC(G) <= n/alpha + 1 (take A and v*). Note: the paper's distribution box
/// says v* in A, but the surrounding proofs ("pick A and v*", Section 1.2's
/// "e* between L\L1 and R") require v* outside A; we implement v* in L \ A.
struct DVcInstance {
  VertexId n = 0;
  double alpha = 0.0;
  std::size_t k = 0;
  EdgeList edges;
  std::vector<bool> in_A;  // indicator over [0, 2n)
  VertexId v_star = kInvalidVertex;
  Edge e_star;

  VertexId left_size() const { return n; }
  std::size_t opt_upper_bound() const;  // |A| + 1
};

DVcInstance make_d_vc(VertexId n, double alpha, std::size_t k, Rng& rng);

}  // namespace rcc
