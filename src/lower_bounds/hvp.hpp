// The Hidden Vertex Problem (HVP) — the two-player game behind Theorem 6.
//
// Section 1.2 / Problem 2: Alice and Bob hold sets S, T over a universe U,
// each of size m, with the promise |S \ T| = 1. Alice sends one message;
// Bob must output a set C containing the hidden element of S \ T, keeping
// |C| = o(|U|). The paper proves (via a disjointness reduction, Lemma 5.7)
// that any protocol succeeding with probability 2/3 needs Omega(m) bits.
//
// This module makes the game executable: an instance sampler and the
// natural budget-b protocol (Alice sends b uniformly chosen elements of S;
// Bob outputs the sent elements outside T, topped up with a fallback guess
// from U \ T). Its success probability is b/m + (1 - b/m) * fallback/(|U|-m),
// so constant success at sublinear output forces b = Omega(m) — the
// Theorem 6 frontier, measured by bench EXP17.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

struct HvpInstance {
  std::uint64_t universe = 0;      // |U|
  std::vector<std::uint32_t> s;    // Alice's set, size m
  std::vector<std::uint32_t> t;    // Bob's set, size m
  std::uint32_t hidden = 0;        // the unique element of S \ T
};

/// Samples an instance: T uniform of size m; S = (m-1 uniform elements of T)
/// plus one uniform element of U \ T. Requires m >= 1 and universe > m.
HvpInstance make_hvp(std::uint64_t universe, std::size_t m, Rng& rng);

struct HvpOutcome {
  bool success = false;        // hidden element in Bob's output
  std::size_t output_size = 0; // |C|
  std::size_t message_words = 0;
};

/// Runs the budget-b protocol: Alice sends min(b, m) uniform elements of S;
/// Bob outputs {sent} \ T plus, if that is empty, `fallback` uniform
/// elements of U \ T.
HvpOutcome run_budgeted_hvp(const HvpInstance& inst, std::size_t budget,
                            std::size_t fallback, Rng& rng);

}  // namespace rcc
