#include "lower_bounds/matching_recovery.hpp"

namespace rcc {

MatchingRecoveryInstance make_matching_recovery(VertexId t, VertexId p,
                                                Rng& rng) {
  RCC_CHECK(p >= 1 && t >= p);
  MatchingRecoveryInstance inst;
  inst.t = t;
  inst.p = p;
  inst.c = t / p;
  inst.alice_mate.resize(t);
  // A uniform bijection inside every block; the leftover tail [c*p, t) is
  // matched among itself (footnote 7 of the paper).
  auto fill_range = [&](VertexId begin, VertexId end) {
    std::vector<VertexId> rights;
    rights.reserve(end - begin);
    for (VertexId v = begin; v < end; ++v) rights.push_back(v);
    rng.shuffle(rights);
    for (VertexId v = begin; v < end; ++v) {
      inst.alice_mate[v] = rights[v - begin];
    }
  };
  for (std::size_t b = 0; b < inst.c; ++b) {
    fill_range(static_cast<VertexId>(b * p), static_cast<VertexId>((b + 1) * p));
  }
  if (inst.c * p < t) {
    fill_range(static_cast<VertexId>(inst.c * p), t);
  }
  inst.bob_block = static_cast<std::size_t>(rng.next_below(inst.c));
  return inst;
}

MatchingRecoveryOutcome run_budgeted_matching_recovery(
    const MatchingRecoveryInstance& inst, std::size_t budget_edges, Rng& rng) {
  MatchingRecoveryOutcome outcome;
  const std::size_t sent = std::min<std::size_t>(budget_edges, inst.t);
  outcome.message_words = 2 * sent;
  for (auto idx : rng.sample_distinct(inst.t, sent)) {
    const auto left = static_cast<VertexId>(idx);
    if (inst.block_of_left(left) == inst.bob_block &&
        left < inst.c * inst.p) {
      ++outcome.recovered_edges;
    }
  }
  return outcome;
}

}  // namespace rcc
