#include "lower_bounds/hvp.hpp"

#include <unordered_set>

namespace rcc {

HvpInstance make_hvp(std::uint64_t universe, std::size_t m, Rng& rng) {
  RCC_CHECK(m >= 1);
  RCC_CHECK(universe > m);
  HvpInstance inst;
  inst.universe = universe;

  inst.t.reserve(m);
  for (auto x : rng.sample_distinct(universe, m)) {
    inst.t.push_back(static_cast<std::uint32_t>(x));
  }
  std::unordered_set<std::uint32_t> in_t(inst.t.begin(), inst.t.end());

  // S: m-1 uniform elements of T plus one hidden element outside T.
  std::vector<std::uint32_t> shuffled_t = inst.t;
  rng.shuffle(shuffled_t);
  inst.s.assign(shuffled_t.begin(), shuffled_t.begin() + (m - 1));
  for (;;) {
    const auto cand = static_cast<std::uint32_t>(rng.next_below(universe));
    if (!in_t.count(cand)) {
      inst.hidden = cand;
      break;
    }
  }
  inst.s.push_back(inst.hidden);
  rng.shuffle(inst.s);  // Alice cannot tell which element is hidden
  return inst;
}

HvpOutcome run_budgeted_hvp(const HvpInstance& inst, std::size_t budget,
                            std::size_t fallback, Rng& rng) {
  HvpOutcome outcome;
  const std::size_t m = inst.s.size();
  const std::size_t sent_count = std::min(budget, m);
  outcome.message_words = sent_count;

  // Alice: uniform subset of S (she has no way to prioritize the hidden
  // element — that is the whole point of the distribution).
  std::vector<std::uint32_t> sent;
  sent.reserve(sent_count);
  for (auto idx : rng.sample_distinct(m, sent_count)) {
    sent.push_back(inst.s[idx]);
  }

  // Bob: anything he received that is outside T must be the hidden element.
  std::unordered_set<std::uint32_t> in_t(inst.t.begin(), inst.t.end());
  std::vector<std::uint32_t> c;
  for (auto x : sent) {
    if (!in_t.count(x)) c.push_back(x);
  }
  if (c.empty() && fallback > 0) {
    // Fallback guess: `fallback` *distinct* uniform elements of U \ T.
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < fallback) {
      const auto cand = static_cast<std::uint32_t>(rng.next_below(inst.universe));
      if (!in_t.count(cand) && chosen.insert(cand).second) {
        c.push_back(cand);
      }
    }
  }
  outcome.output_size = c.size();
  for (auto x : c) {
    if (x == inst.hidden) {
      outcome.success = true;
      break;
    }
  }
  return outcome;
}

}  // namespace rcc
