// The MatchingRecovery game — the two-player core of Theorem 5 (Problem 1,
// Section 5.1/5.2).
//
// Alice holds a perfect matching M_Alice of a bipartite graph H with t
// vertices per side; the vertices are partitioned into c = floor(t/p)
// blocks (P_1,Q_1)...(P_c,Q_c) of size p, matched block-to-block (the
// reformulated distribution D_MR of Section 5.2, with the block structure
// public). Bob owns one block (P, Q) and must output the M_Alice edges
// between P and Q.
//
// Lemma 5.1: a protocol with s words of communication recovers only
// O(s) * (alpha/k) edges in expectation — because Alice cannot tell which
// block Bob owns, her s words describe at most O(s) matching edges, and
// each lands in Bob's block w.p. 1/c = Theta(alpha/k). The budgeted
// protocol below plays exactly that strategy, making the bound measurable
// (bench EXP19).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

struct MatchingRecoveryInstance {
  VertexId t = 0;  // vertices per side of H
  VertexId p = 0;  // block size
  std::size_t c = 0;  // number of blocks
  /// alice_mate[i] = right-side partner of left vertex i (all in [0, t)).
  std::vector<VertexId> alice_mate;
  /// Bob's block index in [0, c): his P = lefts of that block.
  std::size_t bob_block = 0;

  std::size_t block_of_left(VertexId left) const { return left / p; }
};

/// Samples D_MR: a uniform bijection inside every block (left range
/// [i*p, (i+1)*p) to the same right range), leftovers matched among
/// themselves; Bob's block uniform.
MatchingRecoveryInstance make_matching_recovery(VertexId t, VertexId p, Rng& rng);

struct MatchingRecoveryOutcome {
  std::size_t recovered_edges = 0;  // M_Alice edges inside Bob's block output
  std::size_t message_words = 0;    // 2 words per sent edge
};

/// Budgeted protocol: Alice sends `budget_edges` uniformly chosen edges of
/// her matching (she has no information about Bob's block); Bob keeps the
/// ones inside his block.
MatchingRecoveryOutcome run_budgeted_matching_recovery(
    const MatchingRecoveryInstance& inst, std::size_t budget_edges, Rng& rng);

}  // namespace rcc
