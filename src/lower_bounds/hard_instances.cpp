#include "lower_bounds/hard_instances.hpp"

#include <algorithm>
#include <unordered_set>

namespace rcc {

bool DMatchingInstance::is_hidden_edge(const Edge& e) const {
  // Hidden edges join L\A to R\B; E_AB edges join A to B, so the indicator
  // test is exact (the two sides are disjoint).
  return !in_A[e.u] && !in_B[e.v];
}

DMatchingInstance make_d_matching(VertexId n, double alpha, std::size_t k,
                                  Rng& rng) {
  RCC_CHECK(alpha >= 1.0);
  DMatchingInstance inst;
  inst.n = n;
  inst.alpha = alpha;
  inst.k = k;
  const VertexId universe = 2 * n;
  const auto set_size = static_cast<VertexId>(
      std::max<double>(1.0, static_cast<double>(n) / alpha));

  inst.in_A.assign(universe, false);
  inst.in_B.assign(universe, false);
  std::vector<VertexId> a_members, b_members;
  a_members.reserve(set_size);
  b_members.reserve(set_size);
  for (auto idx : rng.sample_distinct(n, set_size)) {
    const auto v = static_cast<VertexId>(idx);
    inst.in_A[v] = true;
    a_members.push_back(v);
  }
  for (auto idx : rng.sample_distinct(n, set_size)) {
    const auto v = static_cast<VertexId>(n + idx);
    inst.in_B[v] = true;
    b_members.push_back(v);
  }

  inst.edges = EdgeList(universe);
  inst.hidden = EdgeList(universe);

  // E_AB: Bernoulli(k*alpha/n) over the |A| x |B| grid via geometric skips.
  const double p = std::min(1.0, static_cast<double>(k) * alpha /
                                     static_cast<double>(n));
  const std::uint64_t grid =
      static_cast<std::uint64_t>(set_size) * static_cast<std::uint64_t>(set_size);
  std::uint64_t pos = rng.geometric_skip(p);
  while (pos < grid) {
    const auto ai = static_cast<std::size_t>(pos / set_size);
    const auto bi = static_cast<std::size_t>(pos % set_size);
    inst.edges.add(a_members[ai], b_members[bi]);
    pos += 1 + rng.geometric_skip(p);
  }

  // E_hidden: a uniform perfect matching between L\A and R\B.
  std::vector<VertexId> l_rest, r_rest;
  l_rest.reserve(n - set_size);
  r_rest.reserve(n - set_size);
  for (VertexId v = 0; v < n; ++v) {
    if (!inst.in_A[v]) l_rest.push_back(v);
  }
  for (VertexId v = n; v < universe; ++v) {
    if (!inst.in_B[v]) r_rest.push_back(v);
  }
  rng.shuffle(r_rest);
  for (std::size_t i = 0; i < l_rest.size(); ++i) {
    inst.hidden.add(l_rest[i], r_rest[i]);
    inst.edges.add(l_rest[i], r_rest[i]);
  }
  return inst;
}

std::size_t DVcInstance::opt_upper_bound() const {
  std::size_t a_size = 0;
  for (bool b : in_A) a_size += b ? 1 : 0;
  return a_size + 1;
}

DVcInstance make_d_vc(VertexId n, double alpha, std::size_t k, Rng& rng) {
  RCC_CHECK(alpha >= 1.0);
  DVcInstance inst;
  inst.n = n;
  inst.alpha = alpha;
  inst.k = k;
  const VertexId universe = 2 * n;
  const auto set_size = static_cast<VertexId>(
      std::max<double>(1.0, static_cast<double>(n) / alpha));

  inst.in_A.assign(universe, false);
  std::vector<VertexId> a_members;
  a_members.reserve(set_size);
  for (auto idx : rng.sample_distinct(n, set_size)) {
    const auto v = static_cast<VertexId>(idx);
    inst.in_A[v] = true;
    a_members.push_back(v);
  }

  inst.edges = EdgeList(universe);
  const double p =
      std::min(1.0, static_cast<double>(k) / (2.0 * static_cast<double>(n)));
  const std::uint64_t grid =
      static_cast<std::uint64_t>(set_size) * static_cast<std::uint64_t>(n);
  std::uint64_t pos = rng.geometric_skip(p);
  while (pos < grid) {
    const auto ai = static_cast<std::size_t>(pos / n);
    const auto r = static_cast<VertexId>(n + pos % n);
    inst.edges.add(a_members[ai], r);
    pos += 1 + rng.geometric_skip(p);
  }

  // v* uniform over L \ A; e* to a uniform right vertex. Avoid duplicating
  // an existing edge is unnecessary (v* has no other edges).
  for (;;) {
    const auto cand = static_cast<VertexId>(rng.next_below(n));
    if (!inst.in_A[cand]) {
      inst.v_star = cand;
      break;
    }
  }
  const auto r_star = static_cast<VertexId>(n + rng.next_below(n));
  inst.e_star = make_edge(inst.v_star, r_star);
  inst.edges.add(inst.e_star);
  return inst;
}

}  // namespace rcc
