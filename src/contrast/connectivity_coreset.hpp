// Contrast system: problems that admit *deterministic* composable coresets.
//
// The paper's introduction situates matching/vertex cover against problems
// where composable coresets were already known — "connectivity, cut
// sparsifiers, and spanners" — which work under ANY partitioning of the
// edges, not just a random one. This module implements the canonical
// example (spanning forests for connectivity) plus a greedy spanner, so
// the experiments can demonstrate the contrast: the connectivity coreset
// is exact under adversarial partitions where matching guarantees need the
// random-partition assumption.
#pragma once

#include "coreset/coreset.hpp"
#include "graph/edge_list.hpp"

namespace rcc {

/// A spanning forest of the graph (arbitrary one), <= n-1 edges.
EdgeList spanning_forest(EdgeSpan edges);

/// The classic composability fact, executable: a spanning forest of the
/// union of per-piece spanning forests spans the union. This coreset works
/// for ANY partition of the edges.
class SpanningForestCoreset final : public MatchingCoreset {
  // Reuses the MatchingCoreset interface shape (piece -> subgraph summary);
  // the composition target is connectivity, not matching.
 public:
  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "spanning-forest"; }
};

/// Greedy (2t-1)-spanner of an unweighted graph: scan edges, keep (u, v)
/// unless the current spanner already connects u to v within 2t-1 hops.
/// For t = 2 the output has O(n^{3/2}) edges on any graph.
EdgeList greedy_spanner(const EdgeList& edges, int t);

/// Exact hop distance between two vertices by BFS (kInvalidVertex-sized
/// sentinel = unreachable). Used to validate spanner stretch in tests.
std::uint64_t bfs_distance(const EdgeList& edges, VertexId from, VertexId to);

}  // namespace rcc
