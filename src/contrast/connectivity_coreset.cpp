#include "contrast/connectivity_coreset.hpp"

#include <limits>
#include <queue>

#include "graph/graph.hpp"
#include "util/dsu.hpp"

namespace rcc {

EdgeList spanning_forest(EdgeSpan edges) {
  Dsu dsu(edges.num_vertices());
  EdgeList forest(edges.num_vertices());
  for (const Edge& e : edges) {
    if (dsu.unite(e.u, e.v)) forest.add(e);
  }
  return forest;
}

EdgeList SpanningForestCoreset::build(EdgeSpan piece,
                                      const PartitionContext& /*ctx*/,
                                      Rng& /*rng*/) const {
  return spanning_forest(piece);
}

EdgeList greedy_spanner(const EdgeList& edges, int t) {
  RCC_CHECK(t >= 1);
  const std::uint64_t limit = 2 * static_cast<std::uint64_t>(t) - 1;
  const VertexId n = edges.num_vertices();
  // Incremental adjacency of the spanner under construction.
  std::vector<std::vector<VertexId>> adj(n);
  EdgeList spanner(n);
  std::vector<std::uint64_t> dist(n, std::numeric_limits<std::uint64_t>::max());
  std::vector<VertexId> touched;
  std::vector<VertexId> queue;
  for (const Edge& e : edges) {
    // Bounded BFS from e.u up to `limit` hops looking for e.v.
    bool within = false;
    queue.clear();
    touched.clear();
    dist[e.u] = 0;
    touched.push_back(e.u);
    queue.push_back(e.u);
    for (std::size_t head = 0; head < queue.size() && !within; ++head) {
      const VertexId v = queue[head];
      if (dist[v] == limit) continue;
      for (VertexId w : adj[v]) {
        if (dist[w] != std::numeric_limits<std::uint64_t>::max()) continue;
        dist[w] = dist[v] + 1;
        touched.push_back(w);
        if (w == e.v) {
          within = true;
          break;
        }
        queue.push_back(w);
      }
    }
    for (VertexId v : touched) {
      dist[v] = std::numeric_limits<std::uint64_t>::max();
    }
    if (!within) {
      spanner.add(e);
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
  }
  return spanner;
}

std::uint64_t bfs_distance(const EdgeList& edges, VertexId from, VertexId to) {
  const Graph g(edges);
  std::vector<std::uint64_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint64_t>::max());
  std::vector<VertexId> queue;
  dist[from] = 0;
  queue.push_back(from);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    if (v == to) return dist[v];
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == std::numeric_limits<std::uint64_t>::max()) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist[to];
}

}  // namespace rcc
