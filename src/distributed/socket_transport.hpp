// Loopback socket transport for the cross-process machine phase.
//
// The first execution path where the paper's k machines are genuinely
// separate processes: the coordinator binds one listening socket on
// 127.0.0.1, forks k workers, and every worker builds its summary on its
// (copy-on-write inherited) piece, frames it per summary_wire.hpp, connects
// to the coordinator's port, streams the frame, and exits. This is the
// degenerate single-listener form of the leader/pivot port scheme of the
// multi-party exemplars: one well-known leader port, and the sender's role
// (machine id) rides in the frame header instead of being implied by which
// port it dialed — one coordinator needs no per-role ports.
//
// The coordinator side is poll()-driven and fully bounded: FrameCollector
// accepts connections lazily, reassembles length-prefixed frames as bytes
// arrive, and hands back completed frames in ARRIVAL order — the engine's
// canonical reorder buffer (util/completion.hpp) sits on top, exactly as it
// does over the in-process completion queue, which is what makes the socket
// path seed-for-seed identical to the barrier and in-process streaming
// paths. Every wait carries a deadline: a worker that dies before (or
// while) sending its frame surfaces as a transport_fail diagnostic naming
// the missing machine id within timeout_ms, never a hang.
//
// Fault-injection knobs (fault_kill_machine / fault_partial_frame_machine)
// exist so tests can pin the failure paths; production runs leave them -1.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "distributed/summary_wire.hpp"

namespace rcc {

/// Knobs of the loopback socket transport.
struct SocketTransportOptions {
  /// Coordinator listening port; 0 asks the kernel for an ephemeral port
  /// (the default — concurrent test runs never collide).
  std::uint16_t leader_port = 0;

  /// Deadline for every coordinator wait (connect backlog, frame bytes) and
  /// for worker-side connects. A worker silent for this long is declared
  /// dead and the run aborts with its machine id.
  int timeout_ms = 10000;

  /// Fault injection: this machine's worker exits before connecting (the
  /// "killed mid-round" test); -1 disables.
  int fault_kill_machine = -1;

  /// Fault injection: this machine's worker sends its header plus half the
  /// payload, then dies (the torn-frame test); -1 disables.
  int fault_partial_frame_machine = -1;
};

/// Prints "socket transport: <formatted message>" to stderr and aborts.
/// Transport failures (timeouts, torn frames, dead workers) are protocol
/// violations, same philosophy as wire_fail.
[[noreturn]] void transport_fail(const char* fmt, ...);

/// RAII listening socket bound to 127.0.0.1. Created BEFORE forking workers
/// so a worker's connect can never race the bind.
class LoopbackListener {
 public:
  /// port 0 = ephemeral (read the realized port back via port()).
  explicit LoopbackListener(std::uint16_t port);
  ~LoopbackListener();

  LoopbackListener(const LoopbackListener&) = delete;
  LoopbackListener& operator=(const LoopbackListener&) = delete;

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Worker side: connects to the coordinator's loopback port, retrying
/// briefly (the listener pre-exists the fork, so one attempt normally
/// suffices); transport_fail after timeout_ms.
int connect_to_leader(std::uint16_t port, int timeout_ms);

/// Writes the whole buffer to a blocking socket; transport_fail on error.
void send_all(int fd, const void* data, std::size_t size);

/// Fault-injection exits for worker bodies, used by the engine when the
/// corresponding SocketTransportOptions knob names the worker's machine.
/// Dies without ever connecting (the "worker killed mid-round" scenario —
/// the coordinator's deadline must surface the machine id).
[[noreturn]] void worker_exit_silently();
/// Sends the header plus half the payload of a complete frame, then dies
/// (the torn-frame scenario — the coordinator must reject the EOF).
[[noreturn]] void send_partial_frame_and_die(int fd, const std::uint8_t* frame,
                                             std::size_t size);

/// One fully reassembled summary frame.
struct ReadyFrame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Coordinator side: accepts up to `expected` connections on the listener
/// and reassembles their frames. next_ready() blocks (bounded by
/// timeout_ms) until SOME machine's frame is complete and returns it —
/// completion order, like CompletionQueue::pop. Duplicate machine ids,
/// out-of-range ids, torn frames, and deadline overruns all transport_fail
/// with the offending/missing machine ids.
class FrameCollector {
 public:
  FrameCollector(const LoopbackListener& listener, std::size_t expected,
                 int timeout_ms);
  ~FrameCollector();

  FrameCollector(const FrameCollector&) = delete;
  FrameCollector& operator=(const FrameCollector&) = delete;

  /// Next completed frame, in arrival order. Must be called exactly
  /// `expected` times.
  ReadyFrame next_ready();

  /// Total framed bytes received so far (headers + payloads): the measured
  /// on-the-wire cost of the machine phase.
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t frames_delivered() const { return delivered_; }

 private:
  struct Connection {
    int fd = -1;
    bool header_parsed = false;
    FrameHeader header{};
    std::vector<std::uint8_t> buffer;  // raw bytes until the frame completes
  };

  void pump(int deadline_ms_remaining);
  [[noreturn]] void fail_missing() const;

  int listener_fd_;
  std::size_t expected_;
  int timeout_ms_;
  std::vector<Connection> connections_;
  std::vector<char> seen_machine_;    // frame COMPLETED (timeout diagnostic)
  std::vector<char> claimed_machine_; // header parsed claiming this id
  std::deque<ReadyFrame> ready_;
  std::size_t delivered_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t wire_bytes_ = 0;
};

namespace transport_detail {
using WorkerFn = void (*)(void* ctx, std::size_t machine);
/// fork(); the child runs fn(ctx, machine) then _exit(0).
pid_t fork_worker(std::size_t machine, WorkerFn fn, void* ctx);
}  // namespace transport_detail

/// Forks one worker per machine; worker i runs body(i) and _exit(0)s (no
/// atexit handlers, no static destructors — the child shares the parent's
/// address space copy-on-write and must not tear it down). Returns the k
/// child pids for reap_workers.
template <typename Body>
std::vector<pid_t> spawn_workers(std::size_t k, const Body& body) {
  std::vector<pid_t> pids;
  pids.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    pids.push_back(transport_detail::fork_worker(
        i,
        [](void* ctx, std::size_t m) { (*static_cast<const Body*>(ctx))(m); },
        const_cast<void*>(static_cast<const void*>(&body))));
  }
  return pids;
}

/// Reaps every worker. Workers that exited nonzero or died on a signal are
/// reported (stderr) but do not abort the run when `require_clean` is false
/// — by the time the collector has all k frames the round's data is safe,
/// and a worker that died AFTER sending already made the round fail through
/// the collector if its frame was short.
void reap_workers(const std::vector<pid_t>& pids, bool require_clean = true);

}  // namespace rcc
