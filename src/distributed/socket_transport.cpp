#include "distributed/socket_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rcc {

void transport_fail(const char* fmt, ...) {
  std::fputs("socket transport: ", stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

namespace {

std::int64_t monotonic_ms() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

LoopbackListener::LoopbackListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) transport_fail("socket(): %s", strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    transport_fail("bind(127.0.0.1:%u): %s", static_cast<unsigned>(port),
                   strerror(errno));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    transport_fail("getsockname(): %s", strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  // Backlog covers every worker connecting at once.
  if (::listen(fd_, SOMAXCONN) != 0) {
    transport_fail("listen(): %s", strerror(errno));
  }
}

LoopbackListener::~LoopbackListener() {
  if (fd_ >= 0) ::close(fd_);
}

int connect_to_leader(std::uint16_t port, int timeout_ms) {
  const std::int64_t deadline = monotonic_ms() + timeout_ms;
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) transport_fail("worker socket(): %s", strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // The listener exists before any worker is forked, so a refusal means
    // the coordinator died — but tolerate transient refusals up to the
    // deadline for robustness against kernel accept-queue pressure.
    if (monotonic_ms() >= deadline) {
      transport_fail("worker could not connect to 127.0.0.1:%u within %d ms: "
                     "%s",
                     static_cast<unsigned>(port), timeout_ms, strerror(err));
    }
    const timespec backoff{0, 1000000};  // 1 ms
    ::nanosleep(&backoff, nullptr);
  }
}

void send_all(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead coordinator surfaces as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      transport_fail("send(): %s after %zu of %zu bytes", strerror(errno),
                     sent, size);
    }
    sent += static_cast<std::size_t>(n);
  }
}

void worker_exit_silently() { ::_exit(3); }

void send_partial_frame_and_die(int fd, const std::uint8_t* frame,
                                std::size_t size) {
  // Half the payload, all of the header: the coordinator learns WHICH
  // machine tore its frame before the connection dies.
  const std::size_t payload = size - kFrameHeaderBytes;
  send_all(fd, frame, kFrameHeaderBytes + payload / 2);
  ::_exit(3);
}

FrameCollector::FrameCollector(const LoopbackListener& listener,
                               std::size_t expected, int timeout_ms)
    : listener_fd_(listener.fd()),
      expected_(expected),
      timeout_ms_(timeout_ms),
      seen_machine_(expected, 0),
      claimed_machine_(expected, 0) {}

FrameCollector::~FrameCollector() {
  for (const Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
}

void FrameCollector::fail_missing() const {
  std::string missing;
  for (std::size_t i = 0; i < expected_; ++i) {
    if (seen_machine_[i] == 0) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(i);
    }
  }
  transport_fail("timed out after %d ms waiting for machine frames; "
                 "missing machine ids: [%s]",
                 timeout_ms_, missing.c_str());
}

void FrameCollector::pump(int deadline_ms_remaining) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{listener_fd_, POLLIN, 0});
  // Only the connections that existed when fds was built have a pollfd
  // entry; a connection accepted below is read on the NEXT pump.
  const std::size_t polled_connections = connections_.size();
  for (const Connection& conn : connections_) {
    if (conn.fd >= 0) fds.push_back(pollfd{conn.fd, POLLIN, 0});
  }
  const int n = ::poll(fds.data(), fds.size(), deadline_ms_remaining);
  if (n < 0) {
    if (errno == EINTR) return;
    transport_fail("poll(): %s", strerror(errno));
  }
  if (n == 0) return;  // deadline handled by the caller

  // New connections: accept every pending worker.
  if ((fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept(listener_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        // A peer that aborted while queued in the backlog is not a
        // coordinator failure: the deadline path names the missing machine.
        if (errno == ECONNABORTED || errno == EPROTO) break;
        transport_fail("accept(): %s", strerror(errno));
      }
      Connection conn;
      conn.fd = fd;
      connections_.push_back(std::move(conn));
      break;  // blocking listener: one accept per POLLIN wake
    }
  }

  // Readable connections: pull bytes, reassemble frames. Bounded to the
  // connections that were polled — never the one just accepted.
  std::size_t fd_index = 1;
  for (std::size_t ci = 0; ci < polled_connections; ++ci) {
    Connection& conn = connections_[ci];
    if (conn.fd < 0) continue;
    const pollfd& pfd = fds[fd_index++];
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      transport_fail("recv(): %s", strerror(errno));
    }
    if (got == 0) {
      // Orderly shutdown. Legal only on a frame boundary (the worker sends
      // exactly one frame, then closes).
      const bool mid_header =
          !conn.header_parsed && !conn.buffer.empty();
      const bool mid_payload =
          conn.header_parsed &&
          conn.buffer.size() <
              kFrameHeaderBytes + conn.header.payload_bytes;
      if (mid_header) {
        transport_fail("a worker closed its connection mid-header "
                       "(%zu of %zu header bytes)",
                       conn.buffer.size(), kFrameHeaderBytes);
      }
      if (mid_payload) {
        transport_fail("machine %u closed its connection mid-frame "
                       "(%zu of %llu payload bytes)",
                       conn.header.machine,
                       conn.buffer.size() - kFrameHeaderBytes,
                       static_cast<unsigned long long>(
                           conn.header.payload_bytes));
      }
      ::close(conn.fd);
      conn.fd = -1;
      continue;
    }
    wire_bytes_ += static_cast<std::uint64_t>(got);
    conn.buffer.insert(conn.buffer.end(), chunk, chunk + got);

    if (!conn.header_parsed && conn.buffer.size() >= kFrameHeaderBytes) {
      // decode_frame_header validates magic/version/reserved/shape/cap and
      // aborts with a wire diagnostic on violation.
      conn.header = decode_frame_header(conn.buffer.data());
      conn.header_parsed = true;
      if (conn.header.machine >= expected_) {
        transport_fail("frame names machine %u but only %zu machines exist",
                       conn.header.machine, expected_);
      }
      // Claimed at HEADER-parse time, not completion: two concurrent
      // connections claiming one id must fail on the second header, or the
      // genuinely missing machine could absorb twice under arrival order.
      if (claimed_machine_[conn.header.machine] != 0) {
        transport_fail("duplicate frame for machine %u", conn.header.machine);
      }
      claimed_machine_[conn.header.machine] = 1;
    }
    if (conn.header_parsed &&
        conn.buffer.size() >= kFrameHeaderBytes + conn.header.payload_bytes) {
      if (conn.buffer.size() > kFrameHeaderBytes + conn.header.payload_bytes) {
        transport_fail("machine %u sent %zu bytes beyond its declared frame",
                       conn.header.machine,
                       conn.buffer.size() -
                           (kFrameHeaderBytes +
                            static_cast<std::size_t>(
                                conn.header.payload_bytes)));
      }
      seen_machine_[conn.header.machine] = 1;
      ReadyFrame frame;
      frame.header = conn.header;
      conn.buffer.erase(conn.buffer.begin(),
                        conn.buffer.begin() + kFrameHeaderBytes);
      frame.payload = std::move(conn.buffer);
      ready_.push_back(std::move(frame));
      ++completed_;
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
}

ReadyFrame FrameCollector::next_ready() {
  RCC_CHECK(delivered_ < expected_);
  const std::int64_t deadline = monotonic_ms() + timeout_ms_;
  while (ready_.empty()) {
    const std::int64_t remaining = deadline - monotonic_ms();
    if (remaining <= 0) fail_missing();
    pump(static_cast<int>(remaining));
  }
  ReadyFrame frame = std::move(ready_.front());
  ready_.pop_front();
  ++delivered_;
  return frame;
}

namespace transport_detail {

pid_t fork_worker(std::size_t machine, WorkerFn fn, void* ctx) {
  // glibc's pthread_atfork handlers leave malloc consistent in the child
  // even when parent pool threads are mid-allocation; the child must still
  // _exit (not exit) so it never runs the parent's atexit handlers or
  // static destructors against the shared copy-on-write state.
  const pid_t pid = ::fork();
  if (pid < 0) transport_fail("fork(): %s", strerror(errno));
  if (pid == 0) {
    fn(ctx, machine);
    ::_exit(0);
  }
  return pid;
}

}  // namespace transport_detail

void reap_workers(const std::vector<pid_t>& pids, bool require_clean) {
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pids[i], &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      transport_fail("waitpid(machine %zu): %s", i, strerror(errno));
    }
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!clean) {
      if (WIFEXITED(status)) {
        std::fprintf(stderr,
                     "socket transport: machine %zu worker exited with "
                     "status %d\n",
                     i, WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        std::fprintf(stderr,
                     "socket transport: machine %zu worker died on signal "
                     "%d\n",
                     i, WTERMSIG(status));
      }
      if (require_clean) {
        transport_fail("machine %zu worker did not exit cleanly", i);
      }
    }
  }
}

}  // namespace rcc
