#include "distributed/weighted_vc_protocol.hpp"

#include <cmath>

#include "coreset/vc_coreset.hpp"
#include "partition/partition.hpp"

namespace rcc {

WeightedVcProtocolResult weighted_vc_protocol(const EdgeList& graph,
                                              const VertexWeights& weights,
                                              std::size_t k, Rng& rng,
                                              ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  RCC_CHECK(weights.size() == n);

  // 1. Weight classes: class(v) = floor(log2(w_v / w_min)).
  double wmin = 0.0;
  for (double w : weights) {
    RCC_CHECK(w >= 0.0);
    if (w > 0.0 && (wmin == 0.0 || w < wmin)) wmin = w;
  }
  if (wmin == 0.0) wmin = 1.0;  // all-zero weights: a single class
  std::vector<int> vclass(n, 0);
  int num_classes = 1;
  for (VertexId v = 0; v < n; ++v) {
    if (weights[v] > 0.0) {
      vclass[v] = static_cast<int>(std::floor(std::log2(weights[v] / wmin)));
      num_classes = std::max(num_classes, vclass[v] + 1);
    }
  }
  auto edge_class = [&](const Edge& e) {
    return std::min(vclass[e.u], vclass[e.v]);
  };

  // 2-3. Partition once; per machine, build one peeling summary per class.
  const auto pieces = random_partition(graph, k, rng);
  const PeelingVcCoreset coreset;

  WeightedVcProtocolResult result;
  result.weight_classes = static_cast<std::size_t>(num_classes);
  result.comm.per_machine.resize(k);
  std::vector<std::vector<VcCoresetOutput>> summaries(k);
  std::vector<Rng> machine_rngs;
  machine_rngs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) machine_rngs.push_back(rng.fork());

  auto machine_work = [&](std::size_t i) {
    summaries[i].reserve(static_cast<std::size_t>(num_classes));
    for (int c = 0; c < num_classes; ++c) {
      const EdgeList class_piece = pieces[i].filter(
          [&](const Edge& e) { return edge_class(e) == c; });
      PartitionContext ctx{n, k, i, 0};
      summaries[i].push_back(coreset.build(class_piece, ctx, machine_rngs[i]));
    }
  };
  if (pool != nullptr) {
    parallel_for(*pool, k, machine_work);
  } else {
    for (std::size_t i = 0; i < k; ++i) machine_work(i);
  }

  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& s : summaries[i]) {
      result.comm.per_machine[i].edges += s.residual_edges.num_edges();
      result.comm.per_machine[i].vertices += s.fixed_vertices.size();
    }
  }

  // 4. Coordinator: fixed union, then weighted local-ratio on the residual.
  VertexCover cover(n);
  EdgeList residual_union(n);
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& s : summaries[i]) {
      for (VertexId v : s.fixed_vertices) cover.insert(v);
      residual_union.append(s.residual_edges);
    }
  }
  residual_union = residual_union.filter(
      [&](const Edge& e) { return !cover.contains(e.u) && !cover.contains(e.v); });
  const WeightedVcResult residual_cover =
      local_ratio_weighted_vc(residual_union, weights);
  cover.merge(residual_cover.cover);

  result.cover = std::move(cover);
  result.cover_cost = cover_weight(result.cover, weights);
  return result;
}

}  // namespace rcc
