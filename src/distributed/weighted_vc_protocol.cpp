#include "distributed/weighted_vc_protocol.hpp"

#include <cmath>
#include <utility>

#include "coreset/vc_coreset.hpp"

namespace rcc {

namespace {

/// Weight-class geometry plus the machine phase shared by the barrier and
/// streaming drivers: class(v) = floor(log2(w_v / w_min)), every machine
/// builds one peeling summary per class of its shard.
struct WeightedVcPhases {
  const VertexWeights& weights;
  VertexId n;
  std::vector<int> vclass;
  int num_classes = 1;
  PeelingVcCoreset coreset;

  WeightedVcPhases(EdgeSource graph, const VertexWeights& weights)
      : weights(weights), n(graph.num_vertices()), vclass(n, 0) {
    RCC_CHECK(weights.size() == n);
    double wmin = 0.0;
    for (double w : weights) {
      RCC_CHECK(w >= 0.0);
      if (w > 0.0 && (wmin == 0.0 || w < wmin)) wmin = w;
    }
    if (wmin == 0.0) wmin = 1.0;  // all-zero weights: a single class
    for (VertexId v = 0; v < n; ++v) {
      if (weights[v] > 0.0) {
        vclass[v] = static_cast<int>(std::floor(std::log2(weights[v] / wmin)));
        num_classes = std::max(num_classes, vclass[v] + 1);
      }
    }
  }

  int edge_class(const Edge& e) const {
    return std::min(vclass[e.u], vclass[e.v]);
  }

  // Machine phase: split the shard by the class of the cheaper endpoint and
  // build one peeling summary per class; all class summaries travel in one
  // message (the protocol stays simultaneous).
  auto build() const {
    return [this](EdgeSpan piece, const PartitionContext& ctx,
                  Rng& machine_rng) {
      std::vector<VcCoresetOutput> class_summaries;
      class_summaries.reserve(static_cast<std::size_t>(num_classes));
      for (int c = 0; c < num_classes; ++c) {
        const EdgeList class_piece =
            piece.filter([&](const Edge& e) { return edge_class(e) == c; });
        class_summaries.push_back(coreset.build(class_piece, ctx, machine_rng));
      }
      return class_summaries;
    };
  }

  static MessageSize account(const std::vector<VcCoresetOutput>& summaries) {
    MessageSize msg;
    for (const VcCoresetOutput& s : summaries) {
      msg.edges += s.residual_edges.num_edges();
      msg.vertices += s.fixed_vertices.size();
    }
    return msg;
  }
};

/// StreamingFold of the weighted VC coordinator: absorb unions the fixed
/// vertices and concatenates the residual edges of each machine's class
/// summaries as they land; finish drops residual edges the complete fixed
/// union covers and closes with the weighted local-ratio 2-approximation.
struct WeightedVcStreamFold {
  const WeightedVcPhases& phases;
  VertexCover cover;
  EdgeList residual_union;

  explicit WeightedVcStreamFold(const WeightedVcPhases& phases)
      : phases(phases), cover(phases.n), residual_union(phases.n) {}

  void absorb(std::vector<VcCoresetOutput>& machine_summaries,
              std::size_t /*machine*/) {
    for (const VcCoresetOutput& s : machine_summaries) {
      for (VertexId v : s.fixed_vertices) cover.insert(v);
      residual_union.append(s.residual_edges);
    }
  }
  VertexCover finish(std::vector<std::vector<VcCoresetOutput>>& /*summaries*/,
                     Rng& /*rng*/) {
    const EdgeList open = residual_union.filter([&](const Edge& e) {
      return !cover.contains(e.u) && !cover.contains(e.v);
    });
    const WeightedVcResult residual_cover =
        local_ratio_weighted_vc(open, phases.weights);
    cover.merge(residual_cover.cover);
    return std::move(cover);
  }
};

WeightedVcProtocolResult to_weighted_vc_result(
    ProtocolResult<VertexCover, std::vector<VcCoresetOutput>>&& engine_result,
    const WeightedVcPhases& phases) {
  WeightedVcProtocolResult result;
  static_cast<ProtocolResult<VertexCover, std::vector<VcCoresetOutput>>&>(
      result) = std::move(engine_result);
  result.cover_cost = cover_weight(result.solution, phases.weights);
  result.weight_classes = static_cast<std::size_t>(phases.num_classes);
  return result;
}

}  // namespace

WeightedVcProtocolResult weighted_vc_protocol(EdgeSource graph,
                                              const VertexWeights& weights,
                                              std::size_t k, Rng& rng,
                                              ThreadPool* pool) {
  const WeightedVcPhases phases(graph, weights);

  // Coordinator: fixed union, then weighted local-ratio on the residual —
  // the barrier shape of WeightedVcStreamFold's absorb + finish.
  const auto combine =
      [&](std::vector<std::vector<VcCoresetOutput>>& summaries,
          Rng& coordinator_rng) {
        WeightedVcStreamFold fold(phases);
        for (std::size_t i = 0; i < summaries.size(); ++i) {
          fold.absorb(summaries[i], i);
        }
        return fold.finish(summaries, coordinator_rng);
      };

  return to_weighted_vc_result(
      run_protocol(graph, k, /*left_size=*/0, rng, pool, phases.build(),
                   &WeightedVcPhases::account, combine),
      phases);
}

WeightedVcProtocolResult weighted_vc_protocol_streaming(
    EdgeSource graph, const VertexWeights& weights, std::size_t k,
    Rng& rng, ThreadPool* pool, const StreamingOptions& streaming) {
  const WeightedVcPhases phases(graph, weights);
  WeightedVcStreamFold fold(phases);
  auto engine_result = run_protocol_streaming<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, /*left_size=*/0, rng, pool, phases.build(),
      &WeightedVcPhases::account, fold, streaming);
  return to_weighted_vc_result(std::move(engine_result), phases);
}

}  // namespace rcc
