#include "distributed/weighted_vc_protocol.hpp"

#include <cmath>

#include "coreset/vc_coreset.hpp"

namespace rcc {

WeightedVcProtocolResult weighted_vc_protocol(const EdgeList& graph,
                                              const VertexWeights& weights,
                                              std::size_t k, Rng& rng,
                                              ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  RCC_CHECK(weights.size() == n);

  // 1. Weight classes: class(v) = floor(log2(w_v / w_min)).
  double wmin = 0.0;
  for (double w : weights) {
    RCC_CHECK(w >= 0.0);
    if (w > 0.0 && (wmin == 0.0 || w < wmin)) wmin = w;
  }
  if (wmin == 0.0) wmin = 1.0;  // all-zero weights: a single class
  std::vector<int> vclass(n, 0);
  int num_classes = 1;
  for (VertexId v = 0; v < n; ++v) {
    if (weights[v] > 0.0) {
      vclass[v] = static_cast<int>(std::floor(std::log2(weights[v] / wmin)));
      num_classes = std::max(num_classes, vclass[v] + 1);
    }
  }
  auto edge_class = [&](const Edge& e) {
    return std::min(vclass[e.u], vclass[e.v]);
  };

  // 2-3. Engine machine phase: every machine splits its shard by the class
  // of the cheaper endpoint and builds one peeling summary per class; all
  // class summaries travel in one message (the protocol stays simultaneous).
  const PeelingVcCoreset coreset;
  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    std::vector<VcCoresetOutput> class_summaries;
    class_summaries.reserve(static_cast<std::size_t>(num_classes));
    for (int c = 0; c < num_classes; ++c) {
      const EdgeList class_piece =
          piece.filter([&](const Edge& e) { return edge_class(e) == c; });
      class_summaries.push_back(coreset.build(class_piece, ctx, machine_rng));
    }
    return class_summaries;
  };
  const auto account = [](const std::vector<VcCoresetOutput>& class_summaries) {
    MessageSize msg;
    for (const VcCoresetOutput& s : class_summaries) {
      msg.edges += s.residual_edges.num_edges();
      msg.vertices += s.fixed_vertices.size();
    }
    return msg;
  };

  // 4. Coordinator: fixed union, then weighted local-ratio on the residual.
  const auto combine =
      [&](std::vector<std::vector<VcCoresetOutput>>& summaries,
          Rng& /*coordinator_rng*/) {
        VertexCover cover(n);
        EdgeList residual_union(n);
        for (const auto& machine_summaries : summaries) {
          for (const VcCoresetOutput& s : machine_summaries) {
            for (VertexId v : s.fixed_vertices) cover.insert(v);
            residual_union.append(s.residual_edges);
          }
        }
        residual_union = residual_union.filter([&](const Edge& e) {
          return !cover.contains(e.u) && !cover.contains(e.v);
        });
        const WeightedVcResult residual_cover =
            local_ratio_weighted_vc(residual_union, weights);
        cover.merge(residual_cover.cover);
        return cover;
      };

  auto engine_result = run_protocol(graph, k, /*left_size=*/0, rng, pool,
                                    build, account, combine);

  WeightedVcProtocolResult result;
  result.cover = std::move(engine_result.solution);
  result.cover_cost = cover_weight(result.cover, weights);
  result.comm = std::move(engine_result.comm);
  result.timing = engine_result.timing;
  result.weight_classes = static_cast<std::size_t>(num_classes);
  return result;
}

}  // namespace rcc
