// Communication-cost accounting for the coordinator model (Section 2).
//
// Costs are measured in *words* of ceil(log2 n) bits — the unit in which
// the paper states its Theta(nk) upper bounds and Omega(nk/alpha^2),
// Omega(nk/alpha) lower bounds. An edge costs two words (two vertex ids); a
// fixed-solution vertex costs one.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace rcc {

/// Bits per vertex id for an n-vertex universe.
inline std::uint64_t word_bits(VertexId n) {
  return static_cast<std::uint64_t>(
      std::ceil(std::log2(std::max<double>(n, 2.0))));
}

/// One machine's message: so-many edges plus so-many bare vertex ids.
struct MessageSize {
  std::uint64_t edges = 0;
  std::uint64_t vertices = 0;

  std::uint64_t words() const { return 2 * edges + vertices; }
  std::uint64_t bits(VertexId n) const { return words() * word_bits(n); }
};

/// Aggregated communication ledger of one protocol run.
struct CommStats {
  std::vector<MessageSize> per_machine;

  std::uint64_t total_words() const {
    std::uint64_t t = 0;
    for (const auto& m : per_machine) t += m.words();
    return t;
  }

  std::uint64_t max_machine_words() const {
    std::uint64_t mx = 0;
    for (const auto& m : per_machine) mx = std::max(mx, m.words());
    return mx;
  }

  std::uint64_t total_bits(VertexId n) const {
    return total_words() * word_bits(n);
  }

  double total_megabytes(VertexId n) const {
    return static_cast<double>(total_bits(n)) / 8.0 / 1024.0 / 1024.0;
  }
};

}  // namespace rcc
