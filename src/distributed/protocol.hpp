// Legacy-shaped entry points for the simultaneous coordinator model.
//
// These are thin wrappers over the unified ProtocolEngine
// (protocol_engine.hpp): one run = sharded random partition into a flat
// edge arena -> every machine builds its summary from its zero-copy shard
// (thread pool; one task per machine; independent forked RNG streams) ->
// the coordinator combines the summaries with no further interaction.
#pragma once

#include <vector>

#include "coreset/compose.hpp"
#include "coreset/coreset.hpp"
#include "distributed/message.hpp"
#include "distributed/protocol_engine.hpp"
#include "matching/matching.hpp"
#include "util/thread_pool.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// One canonical result type per protocol: the engine's ProtocolResult used
/// directly (`solution` is the matching / cover; `summaries` are retained
/// for probes such as hidden-edge counts). These were standalone wrapper
/// structs before the engine result grew to carry everything they did.
using MatchingProtocolResult = ProtocolResult<Matching, EdgeList>;
using VcProtocolResult = ProtocolResult<VertexCover, VcCoresetOutput>;

/// Runs the simultaneous matching protocol: coreset per machine, then the
/// coordinator solves the union. `left_size` > 0 declares the instance
/// bipartite (known to all parties, as in the paper's hard distributions).
/// `pool` may be null for sequential execution. `graph` is an EdgeSource —
/// implicit from an EdgeList or an mmap-backed MappedGraph, same protocol
/// seed-for-seed either way (this holds for every entry point below).
MatchingProtocolResult run_matching_protocol(EdgeSource graph,
                                             std::size_t k,
                                             const MatchingCoreset& coreset,
                                             ComposeSolver solver,
                                             VertexId left_size, Rng& rng,
                                             ThreadPool* pool = nullptr);

/// Same engine over a pre-made partition (lets experiments contrast random
/// vs adversarial partitionings on identical edges).
MatchingProtocolResult run_matching_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const MatchingCoreset& coreset,
    ComposeSolver solver, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr);

/// Runs the simultaneous vertex cover protocol.
VcProtocolResult run_vc_protocol(EdgeSource graph, std::size_t k,
                                 const VertexCoverCoreset& coreset, Rng& rng,
                                 ThreadPool* pool = nullptr);

VcProtocolResult run_vc_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const VertexCoverCoreset& coreset,
    VertexId num_vertices, Rng& rng, ThreadPool* pool = nullptr);

/// Streaming variants of the two protocols above: the coordinator absorbs
/// each machine's summary as it lands (union building, fixed-vertex
/// accumulation) instead of waiting for the slowest machine, and only the
/// final solve runs after the last summary. In StreamingOrder::kCanonical
/// the result is seed-for-seed identical to the barrier entry points; in
/// kArrival the absorb order follows completion, so only the protocol's
/// invariants (validity / feasibility) are guaranteed, not the exact
/// solution.
MatchingProtocolResult run_matching_protocol_streaming(
    EdgeSource graph, std::size_t k, const MatchingCoreset& coreset,
    ComposeSolver solver, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr, const StreamingOptions& streaming = {});

VcProtocolResult run_vc_protocol_streaming(
    EdgeSource graph, std::size_t k, const VertexCoverCoreset& coreset,
    Rng& rng, ThreadPool* pool = nullptr,
    const StreamingOptions& streaming = {});

}  // namespace rcc
