#include "distributed/summary_wire.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "distributed/protocols.hpp"

namespace rcc {

void wire_fail(const char* fmt, ...) {
  std::fputs("summary wire: ", stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

void WireReader::take(void* out, std::size_t size, const char* what) {
  if (size > size_ - cursor_) {
    wire_fail("truncated payload: %s needs %zu bytes at offset %zu, %zu left",
              what, size, cursor_, remaining());
  }
  std::memcpy(out, data_ + cursor_, size);
  cursor_ += size;
}

void encode_frame_header(const FrameHeader& header, std::uint8_t* out) {
  std::uint8_t* p = out;
  const auto put32 = [&p](std::uint32_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  const auto put16 = [&p](std::uint16_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  put32(kWireMagic);
  put16(kWireVersion);
  put16(static_cast<std::uint16_t>(header.shape));
  put32(header.machine);
  put32(0);  // reserved
  std::uint64_t payload = header.payload_bytes;
  std::memcpy(p, &payload, sizeof payload);
}

FrameHeader decode_frame_header(const std::uint8_t* bytes) {
  WireReader reader(bytes, kFrameHeaderBytes);
  const std::uint32_t magic = reader.u32();
  if (magic != kWireMagic) {
    wire_fail("bad frame magic 0x%08x (expected 0x%08x)", magic, kWireMagic);
  }
  const std::uint32_t version_and_shape = reader.u32();
  const std::uint16_t version =
      static_cast<std::uint16_t>(version_and_shape & 0xffffu);
  const std::uint16_t shape =
      static_cast<std::uint16_t>(version_and_shape >> 16);
  if (version != kWireVersion) {
    wire_fail("frame version %u does not match this build's version %u",
              static_cast<unsigned>(version),
              static_cast<unsigned>(kWireVersion));
  }
  if (shape < static_cast<std::uint16_t>(SummaryShape::kEdgeList) ||
      shape > static_cast<std::uint16_t>(SummaryShape::kGroupedVc)) {
    wire_fail("unknown summary shape tag %u", static_cast<unsigned>(shape));
  }
  const std::uint32_t machine = reader.u32();
  const std::uint32_t reserved = reader.u32();
  if (reserved != 0) {
    wire_fail("reserved header word is 0x%08x, must be 0", reserved);
  }
  const std::uint64_t payload_bytes = reader.u64();
  if (payload_bytes > kMaxFramePayloadBytes) {
    wire_fail("payload length %llu exceeds the %llu-byte frame cap",
              static_cast<unsigned long long>(payload_bytes),
              static_cast<unsigned long long>(kMaxFramePayloadBytes));
  }
  return FrameHeader{static_cast<SummaryShape>(shape), machine, payload_bytes};
}

void SummaryCodec<EdgeList>::encode(const EdgeList& list, WireWriter& writer) {
  writer.u32(list.num_vertices());
  writer.u64(list.num_edges());
  for (const Edge& e : list) {
    writer.u32(e.u);
    writer.u32(e.v);
  }
}

EdgeList SummaryCodec<EdgeList>::decode(WireReader& reader) {
  const VertexId n = reader.u32();
  const std::uint64_t m = reader.u64();
  // Cheap sanity gate before reserving: each edge needs 8 payload bytes.
  if (m > reader.remaining() / 8) {
    wire_fail("edge list claims %llu edges but only %zu payload bytes remain",
              static_cast<unsigned long long>(m), reader.remaining());
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = reader.u32();
    const VertexId v = reader.u32();
    if (u >= n || v >= n) {
      wire_fail("edge %llu = (%u, %u) leaves the %u-vertex universe",
                static_cast<unsigned long long>(i), u, v, n);
    }
    if (u == v) {
      wire_fail("edge %llu is a self-loop at vertex %u",
                static_cast<unsigned long long>(i), u);
    }
    edges.push_back(Edge{u, v});
  }
  return EdgeList(n, std::move(edges));
}

void SummaryCodec<VcCoresetOutput>::encode(const VcCoresetOutput& coreset,
                                           WireWriter& writer) {
  SummaryCodec<EdgeList>::encode(coreset.residual_edges, writer);
  writer.u64(coreset.fixed_vertices.size());
  for (const VertexId v : coreset.fixed_vertices) writer.u32(v);
}

VcCoresetOutput SummaryCodec<VcCoresetOutput>::decode(WireReader& reader) {
  VcCoresetOutput coreset;
  coreset.residual_edges = SummaryCodec<EdgeList>::decode(reader);
  const VertexId n = coreset.residual_edges.num_vertices();
  const std::uint64_t fixed = reader.u64();
  if (fixed > reader.remaining() / 4) {
    wire_fail(
        "vc coreset claims %llu fixed vertices but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(fixed), reader.remaining());
  }
  coreset.fixed_vertices.reserve(static_cast<std::size_t>(fixed));
  for (std::uint64_t i = 0; i < fixed; ++i) {
    const VertexId v = reader.u32();
    if (v >= n) {
      wire_fail("fixed vertex %llu = %u leaves the %u-vertex universe",
                static_cast<unsigned long long>(i), v, n);
    }
    coreset.fixed_vertices.push_back(v);
  }
  return coreset;
}

void SummaryCodec<WeightedCoresetOutput>::encode(
    const WeightedCoresetOutput& coreset, WireWriter& writer) {
  writer.u32(coreset.edges.num_vertices);
  writer.u64(coreset.edges.edges.size());
  for (const WeightedEdge& e : coreset.edges.edges) {
    writer.u32(e.u);
    writer.u32(e.v);
    writer.f64(e.weight);
  }
}

WeightedCoresetOutput SummaryCodec<WeightedCoresetOutput>::decode(
    WireReader& reader) {
  WeightedCoresetOutput coreset;
  const VertexId n = reader.u32();
  const std::uint64_t m = reader.u64();
  if (m > reader.remaining() / 16) {
    wire_fail(
        "weighted edge list claims %llu edges but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(m), reader.remaining());
  }
  coreset.edges.num_vertices = n;
  coreset.edges.edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = reader.u32();
    const VertexId v = reader.u32();
    const double w = reader.f64();
    if (u >= n || v >= n || u == v) {
      wire_fail("weighted edge %llu = (%u, %u) is invalid for a %u-vertex "
                "universe",
                static_cast<unsigned long long>(i), u, v, n);
    }
    if (!(w >= 0.0)) {
      wire_fail("weighted edge %llu carries a negative or NaN weight",
                static_cast<unsigned long long>(i));
    }
    coreset.edges.edges.push_back(WeightedEdge{u, v, w});
  }
  return coreset;
}

void SummaryCodec<std::vector<AugmentingPath>>::encode(
    const std::vector<AugmentingPath>& paths, WireWriter& writer) {
  writer.u64(paths.size());
  for (const AugmentingPath& path : paths) {
    writer.u32(static_cast<std::uint32_t>(path.vertices.size()));
    for (const VertexId v : path.vertices) writer.u32(v);
  }
}

std::vector<AugmentingPath> SummaryCodec<std::vector<AugmentingPath>>::decode(
    WireReader& reader) {
  const std::uint64_t count = reader.u64();
  // Each path needs at least its 4-byte length prefix.
  if (count > reader.remaining() / 4) {
    wire_fail("path batch claims %llu paths but only %zu payload bytes remain",
              static_cast<unsigned long long>(count), reader.remaining());
  }
  std::vector<AugmentingPath> paths;
  paths.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t length = reader.u32();
    if (length > reader.remaining() / 4) {
      wire_fail(
          "path %llu claims %u vertices but only %zu payload bytes remain",
          static_cast<unsigned long long>(i), length, reader.remaining());
    }
    AugmentingPath path;
    for (std::uint32_t j = 0; j < length; ++j) {
      path.vertices.push_back(reader.u32());
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void SummaryCodec<std::vector<VcCoresetOutput>>::encode(
    const std::vector<VcCoresetOutput>& batch, WireWriter& writer) {
  writer.u64(batch.size());
  for (const VcCoresetOutput& coreset : batch) {
    SummaryCodec<VcCoresetOutput>::encode(coreset, writer);
  }
}

std::vector<VcCoresetOutput> SummaryCodec<std::vector<VcCoresetOutput>>::decode(
    WireReader& reader) {
  const std::uint64_t count = reader.u64();
  // Each nested coreset needs at least its fixed-size length fields.
  if (count > reader.remaining() / (4 + 8 + 8)) {
    wire_fail(
        "vc coreset batch claims %llu coresets but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(count), reader.remaining());
  }
  std::vector<VcCoresetOutput> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    batch.push_back(SummaryCodec<VcCoresetOutput>::decode(reader));
  }
  return batch;
}

void SummaryCodec<GroupedVcSummary>::encode(const GroupedVcSummary& summary,
                                            WireWriter& writer) {
  SummaryCodec<VcCoresetOutput>::encode(summary.core, writer);
  writer.u64(summary.pinned_groups.size());
  for (const VertexId group : summary.pinned_groups) writer.u32(group);
}

GroupedVcSummary SummaryCodec<GroupedVcSummary>::decode(WireReader& reader) {
  GroupedVcSummary summary;
  summary.core = SummaryCodec<VcCoresetOutput>::decode(reader);
  // Pinned group ids live in the same contracted universe as the core.
  const VertexId n_groups = summary.core.residual_edges.num_vertices();
  const std::uint64_t pinned = reader.u64();
  if (pinned > reader.remaining() / 4) {
    wire_fail(
        "grouped vc summary claims %llu pinned groups but only %zu payload "
        "bytes remain",
        static_cast<unsigned long long>(pinned), reader.remaining());
  }
  summary.pinned_groups.reserve(static_cast<std::size_t>(pinned));
  for (std::uint64_t i = 0; i < pinned; ++i) {
    const VertexId group = reader.u32();
    if (group >= n_groups) {
      wire_fail("pinned group %llu = %u leaves the %u-group universe",
                static_cast<unsigned long long>(i), group, n_groups);
    }
    summary.pinned_groups.push_back(group);
  }
  return summary;
}

}  // namespace rcc
