#include "distributed/summary_wire.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

#include "distributed/protocols.hpp"

namespace rcc {

void wire_fail(const char* fmt, ...) {
  std::fputs("summary wire: ", stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

void WireReader::take(void* out, std::size_t size, const char* what) {
  if (size > size_ - cursor_) {
    wire_fail("truncated payload: %s needs %zu bytes at offset %zu, %zu left",
              what, size, cursor_, remaining());
  }
  std::memcpy(out, data_ + cursor_, size);
  cursor_ += size;
}

void encode_frame_header(const FrameHeader& header, std::uint8_t* out) {
  std::uint8_t* p = out;
  const auto put32 = [&p](std::uint32_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  const auto put16 = [&p](std::uint16_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  put32(kWireMagic);
  put16(kWireVersion);
  put16(static_cast<std::uint16_t>(header.shape));
  put32(header.machine);
  put32(0);  // reserved
  std::uint64_t payload = header.payload_bytes;
  std::memcpy(p, &payload, sizeof payload);
}

FrameHeader decode_frame_header(const std::uint8_t* bytes) {
  WireReader reader(bytes, kFrameHeaderBytes);
  const std::uint32_t magic = reader.u32();
  if (magic != kWireMagic) {
    wire_fail("bad frame magic 0x%08x (expected 0x%08x)", magic, kWireMagic);
  }
  const std::uint32_t version_and_shape = reader.u32();
  const std::uint16_t version =
      static_cast<std::uint16_t>(version_and_shape & 0xffffu);
  const std::uint16_t shape =
      static_cast<std::uint16_t>(version_and_shape >> 16);
  if (version != kWireVersion) {
    wire_fail("frame version %u does not match this build's version %u",
              static_cast<unsigned>(version),
              static_cast<unsigned>(kWireVersion));
  }
  if (shape < static_cast<std::uint16_t>(SummaryShape::kEdgeList) ||
      shape > static_cast<std::uint16_t>(SummaryShape::kShutdown)) {
    wire_fail("unknown summary shape tag %u", static_cast<unsigned>(shape));
  }
  const std::uint32_t machine = reader.u32();
  const std::uint32_t reserved = reader.u32();
  if (reserved != 0) {
    wire_fail("reserved header word is 0x%08x, must be 0", reserved);
  }
  const std::uint64_t payload_bytes = reader.u64();
  if (payload_bytes > kMaxFramePayloadBytes) {
    wire_fail("payload length %llu exceeds the %llu-byte frame cap",
              static_cast<unsigned long long>(payload_bytes),
              static_cast<unsigned long long>(kMaxFramePayloadBytes));
  }
  return FrameHeader{static_cast<SummaryShape>(shape), machine, payload_bytes};
}

void SummaryCodec<EdgeList>::encode(const EdgeList& list, WireWriter& writer) {
  writer.u32(list.num_vertices());
  writer.u64(list.num_edges());
  for (const Edge& e : list) {
    writer.u32(e.u);
    writer.u32(e.v);
  }
}

EdgeList SummaryCodec<EdgeList>::decode(WireReader& reader) {
  const VertexId n = reader.u32();
  const std::uint64_t m = reader.u64();
  // Cheap sanity gate before reserving: each edge needs 8 payload bytes.
  if (m > reader.remaining() / 8) {
    wire_fail("edge list claims %llu edges but only %zu payload bytes remain",
              static_cast<unsigned long long>(m), reader.remaining());
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = reader.u32();
    const VertexId v = reader.u32();
    if (u >= n || v >= n) {
      wire_fail("edge %llu = (%u, %u) leaves the %u-vertex universe",
                static_cast<unsigned long long>(i), u, v, n);
    }
    if (u == v) {
      wire_fail("edge %llu is a self-loop at vertex %u",
                static_cast<unsigned long long>(i), u);
    }
    edges.push_back(Edge{u, v});
  }
  return EdgeList(n, std::move(edges));
}

void SummaryCodec<VcCoresetOutput>::encode(const VcCoresetOutput& coreset,
                                           WireWriter& writer) {
  SummaryCodec<EdgeList>::encode(coreset.residual_edges, writer);
  writer.u64(coreset.fixed_vertices.size());
  for (const VertexId v : coreset.fixed_vertices) writer.u32(v);
}

VcCoresetOutput SummaryCodec<VcCoresetOutput>::decode(WireReader& reader) {
  VcCoresetOutput coreset;
  coreset.residual_edges = SummaryCodec<EdgeList>::decode(reader);
  const VertexId n = coreset.residual_edges.num_vertices();
  const std::uint64_t fixed = reader.u64();
  if (fixed > reader.remaining() / 4) {
    wire_fail(
        "vc coreset claims %llu fixed vertices but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(fixed), reader.remaining());
  }
  coreset.fixed_vertices.reserve(static_cast<std::size_t>(fixed));
  for (std::uint64_t i = 0; i < fixed; ++i) {
    const VertexId v = reader.u32();
    if (v >= n) {
      wire_fail("fixed vertex %llu = %u leaves the %u-vertex universe",
                static_cast<unsigned long long>(i), v, n);
    }
    coreset.fixed_vertices.push_back(v);
  }
  return coreset;
}

void SummaryCodec<WeightedCoresetOutput>::encode(
    const WeightedCoresetOutput& coreset, WireWriter& writer) {
  writer.u32(coreset.edges.num_vertices);
  writer.u64(coreset.edges.edges.size());
  for (const WeightedEdge& e : coreset.edges.edges) {
    writer.u32(e.u);
    writer.u32(e.v);
    writer.f64(e.weight);
  }
}

WeightedCoresetOutput SummaryCodec<WeightedCoresetOutput>::decode(
    WireReader& reader) {
  WeightedCoresetOutput coreset;
  const VertexId n = reader.u32();
  const std::uint64_t m = reader.u64();
  if (m > reader.remaining() / 16) {
    wire_fail(
        "weighted edge list claims %llu edges but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(m), reader.remaining());
  }
  coreset.edges.num_vertices = n;
  coreset.edges.edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = reader.u32();
    const VertexId v = reader.u32();
    const double w = reader.f64();
    if (u >= n || v >= n || u == v) {
      wire_fail("weighted edge %llu = (%u, %u) is invalid for a %u-vertex "
                "universe",
                static_cast<unsigned long long>(i), u, v, n);
    }
    if (!(w >= 0.0)) {
      wire_fail("weighted edge %llu carries a negative or NaN weight",
                static_cast<unsigned long long>(i));
    }
    coreset.edges.edges.push_back(WeightedEdge{u, v, w});
  }
  return coreset;
}

void SummaryCodec<std::vector<AugmentingPath>>::encode(
    const std::vector<AugmentingPath>& paths, WireWriter& writer) {
  writer.u64(paths.size());
  for (const AugmentingPath& path : paths) {
    writer.u32(static_cast<std::uint32_t>(path.vertices.size()));
    for (const VertexId v : path.vertices) writer.u32(v);
  }
}

std::vector<AugmentingPath> SummaryCodec<std::vector<AugmentingPath>>::decode(
    WireReader& reader) {
  const std::uint64_t count = reader.u64();
  // Each path needs at least its 4-byte length prefix.
  if (count > reader.remaining() / 4) {
    wire_fail("path batch claims %llu paths but only %zu payload bytes remain",
              static_cast<unsigned long long>(count), reader.remaining());
  }
  std::vector<AugmentingPath> paths;
  paths.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t length = reader.u32();
    if (length > reader.remaining() / 4) {
      wire_fail(
          "path %llu claims %u vertices but only %zu payload bytes remain",
          static_cast<unsigned long long>(i), length, reader.remaining());
    }
    AugmentingPath path;
    for (std::uint32_t j = 0; j < length; ++j) {
      path.vertices.push_back(reader.u32());
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void SummaryCodec<std::vector<VcCoresetOutput>>::encode(
    const std::vector<VcCoresetOutput>& batch, WireWriter& writer) {
  writer.u64(batch.size());
  for (const VcCoresetOutput& coreset : batch) {
    SummaryCodec<VcCoresetOutput>::encode(coreset, writer);
  }
}

std::vector<VcCoresetOutput> SummaryCodec<std::vector<VcCoresetOutput>>::decode(
    WireReader& reader) {
  const std::uint64_t count = reader.u64();
  // Each nested coreset needs at least its fixed-size length fields.
  if (count > reader.remaining() / (4 + 8 + 8)) {
    wire_fail(
        "vc coreset batch claims %llu coresets but only %zu payload bytes "
        "remain",
        static_cast<unsigned long long>(count), reader.remaining());
  }
  std::vector<VcCoresetOutput> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    batch.push_back(SummaryCodec<VcCoresetOutput>::decode(reader));
  }
  return batch;
}

void SummaryCodec<GroupedVcSummary>::encode(const GroupedVcSummary& summary,
                                            WireWriter& writer) {
  SummaryCodec<VcCoresetOutput>::encode(summary.core, writer);
  writer.u64(summary.pinned_groups.size());
  for (const VertexId group : summary.pinned_groups) writer.u32(group);
}

void SummaryCodec<PieceDelivery>::encode(const PieceDelivery& piece,
                                         WireWriter& writer) {
  writer.u32(piece.round);
  for (const std::uint64_t word : piece.rng_state) writer.u64(word);
  SummaryCodec<EdgeList>::encode(piece.edges, writer);
}

PieceDelivery SummaryCodec<PieceDelivery>::decode(WireReader& reader) {
  PieceDelivery piece;
  piece.round = reader.u32();
  for (std::uint64_t& word : piece.rng_state) word = reader.u64();
  piece.edges = SummaryCodec<EdgeList>::decode(reader);
  return piece;
}

PieceDeliveryView decode_piece_frame_view(const FrameHeader& header,
                                          const std::uint8_t* payload) {
  // The borrow below reinterprets wire records as Edge values; this is only
  // sound while Edge is exactly two packed little-endian u32s.
  static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 8 &&
                    sizeof(VertexId) == 4,
                "PieceDeliveryView assumes Edge is two packed u32s");
  if (header.shape != SummaryShape::kPieceDelivery) {
    wire_fail("frame from machine %u carries shape tag %u, expected %u",
              header.machine, static_cast<unsigned>(header.shape),
              static_cast<unsigned>(SummaryShape::kPieceDelivery));
  }
  WireReader reader(payload, static_cast<std::size_t>(header.payload_bytes));
  PieceDeliveryView view;
  view.round = reader.u32();
  for (std::uint64_t& word : view.rng_state) word = reader.u64();
  view.num_vertices = reader.u32();
  const std::uint64_t m = reader.u64();
  if (m > reader.remaining() / 8 || m * 8 != reader.remaining()) {
    wire_fail("piece frame claims %llu edges but %zu payload bytes remain",
              static_cast<unsigned long long>(m), reader.remaining());
  }
  view.num_edges = static_cast<std::size_t>(m);
  view.edges = reinterpret_cast<const Edge*>(
      payload + (static_cast<std::size_t>(header.payload_bytes) -
                 reader.remaining()));
  for (std::size_t i = 0; i < view.num_edges; ++i) {
    const Edge e = view.edges[i];
    if (e.u >= view.num_vertices || e.v >= view.num_vertices) {
      wire_fail("edge %zu = (%u, %u) leaves the %u-vertex universe", i, e.u,
                e.v, view.num_vertices);
    }
    if (e.u == e.v) {
      wire_fail("edge %zu is a self-loop at vertex %u", i, e.u);
    }
  }
  return view;
}

std::vector<std::uint8_t> encode_piece_frame(
    const Edge* edges, std::size_t num_edges, VertexId num_vertices,
    const std::array<std::uint64_t, 4>& rng_state, std::uint32_t round,
    std::uint32_t machine) {
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
  bytes.reserve(kFrameHeaderBytes + 4 + 32 + 12 + 8 * num_edges);
  WireWriter writer(bytes);
  writer.u32(round);
  for (const std::uint64_t word : rng_state) writer.u64(word);
  writer.u32(num_vertices);
  writer.u64(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    writer.u32(edges[i].u);
    writer.u32(edges[i].v);
  }
  const std::uint64_t payload = bytes.size() - kFrameHeaderBytes;
  if (payload > kMaxFramePayloadBytes) {
    wire_fail("machine %u piece payload (%llu bytes) exceeds the frame cap",
              machine, static_cast<unsigned long long>(payload));
  }
  encode_frame_header(
      FrameHeader{SummaryShape::kPieceDelivery, machine, payload},
      bytes.data());
  return bytes;
}

void encode_piece_frame_prefix(std::size_t num_edges, VertexId num_vertices,
                               const std::array<std::uint64_t, 4>& rng_state,
                               std::uint32_t round, std::uint32_t machine,
                               std::uint8_t* out) {
  static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 8,
                "the frame body streams Edge records as raw bytes");
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
  bytes.reserve(kPieceFramePrefixBytes);
  WireWriter writer(bytes);
  writer.u32(round);
  for (const std::uint64_t word : rng_state) writer.u64(word);
  writer.u32(num_vertices);
  writer.u64(num_edges);
  RCC_CHECK(bytes.size() == kPieceFramePrefixBytes);
  const std::uint64_t payload =
      (kPieceFramePrefixBytes - kFrameHeaderBytes) + 8 * num_edges;
  if (payload > kMaxFramePayloadBytes) {
    wire_fail("machine %u piece payload (%llu bytes) exceeds the frame cap",
              machine, static_cast<unsigned long long>(payload));
  }
  encode_frame_header(
      FrameHeader{SummaryShape::kPieceDelivery, machine, payload},
      bytes.data());
  std::memcpy(out, bytes.data(), kPieceFramePrefixBytes);
}

void encode_edge_list_frame_prefix(const EdgeList& summary,
                                   std::uint32_t machine, std::uint8_t* out) {
  static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 8,
                "the frame body streams Edge records as raw bytes");
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
  bytes.reserve(kEdgeListFramePrefixBytes);
  WireWriter writer(bytes);
  writer.u32(summary.num_vertices());
  writer.u64(summary.num_edges());
  RCC_CHECK(bytes.size() == kEdgeListFramePrefixBytes);
  const std::uint64_t payload =
      (kEdgeListFramePrefixBytes - kFrameHeaderBytes) + 8 * summary.num_edges();
  if (payload > kMaxFramePayloadBytes) {
    wire_fail("machine %u summary payload (%llu bytes) exceeds the frame cap",
              machine, static_cast<unsigned long long>(payload));
  }
  encode_frame_header(FrameHeader{SummaryShape::kEdgeList, machine, payload},
                      bytes.data());
  std::memcpy(out, bytes.data(), kEdgeListFramePrefixBytes);
}

std::vector<std::uint8_t> encode_shutdown_frame(std::uint32_t machine) {
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
  encode_frame_header(FrameHeader{SummaryShape::kShutdown, machine, 0},
                      bytes.data());
  return bytes;
}

GroupedVcSummary SummaryCodec<GroupedVcSummary>::decode(WireReader& reader) {
  GroupedVcSummary summary;
  summary.core = SummaryCodec<VcCoresetOutput>::decode(reader);
  // Pinned group ids live in the same contracted universe as the core.
  const VertexId n_groups = summary.core.residual_edges.num_vertices();
  const std::uint64_t pinned = reader.u64();
  if (pinned > reader.remaining() / 4) {
    wire_fail(
        "grouped vc summary claims %llu pinned groups but only %zu payload "
        "bytes remain",
        static_cast<unsigned long long>(pinned), reader.remaining());
  }
  summary.pinned_groups.reserve(static_cast<std::size_t>(pinned));
  for (std::uint64_t i = 0; i < pinned; ++i) {
    const VertexId group = reader.u32();
    if (group >= n_groups) {
      wire_fail("pinned group %llu = %u leaves the %u-group universe",
                static_cast<unsigned long long>(i), group, n_groups);
    }
    summary.pinned_groups.push_back(group);
  }
  return summary;
}

}  // namespace rcc
