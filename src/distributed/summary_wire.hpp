// Versioned wire format for machine summaries.
//
// The coordinator model is only honest about communication once a summary
// actually crosses a process boundary: this header defines the frame every
// worker process sends over the loopback transport (socket_transport.hpp).
// A frame is a fixed 24-byte header followed by a shape-tagged payload:
//
//   offset  size  field
//        0     4  magic          0x52434357 ("WCCR" little-endian)
//        4     2  version        kWireVersion (= 1)
//        6     2  shape          SummaryShape tag of the payload
//        8     4  machine        sending machine's id in [0, k)
//       12     4  reserved       must be 0
//       16     8  payload_bytes  payload length (<= kMaxFramePayloadBytes)
//
// All scalars are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64, so weighted summaries round-trip BIT-identically (the
// seed-for-seed differential depends on that — a decimal detour would
// perturb the weighted merge).
//
// Error philosophy matches the rest of the library: a malformed frame
// (bad magic, version skew, truncation, oversize, trailing bytes,
// out-of-range vertex ids) is a protocol violation, not a recoverable
// condition — wire_fail prints a "summary wire:" diagnostic naming what was
// wrong and aborts, so the adversarial-input tests are death tests and no
// malformed byte ever reaches a fold.
#pragma once

#include <array>
#include <bit>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <vector>

#include "coreset/coreset.hpp"
#include "coreset/weighted_coreset.hpp"
#include "graph/edge_list.hpp"
#include "matching/augmenting_paths.hpp"
#include "util/types.hpp"

namespace rcc {

// Frames are defined little-endian; the library targets little-endian hosts
// (x86-64 / AArch64), so scalar encode/decode is a plain memcpy.
static_assert(std::endian::native == std::endian::little,
              "summary wire codecs assume a little-endian host");

inline constexpr std::uint32_t kWireMagic = 0x52434357u;  // "WCCR" on the wire
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Per-frame payload cap: a summary is a COMPRESSED view of a machine's
/// piece, so anything beyond 1 GiB is a corrupt length field, not data.
inline constexpr std::uint64_t kMaxFramePayloadBytes = std::uint64_t{1} << 30;

/// Payload tag of a frame: one per summary type a round-combiner sends,
/// plus the coordinator->worker control frames of the persistent shm
/// transport (pieces ride the same versioned framing as summaries, so one
/// header decoder and one validation funnel serve both directions).
enum class SummaryShape : std::uint16_t {
  kEdgeList = 1,       // coreset matching / filtering / EDCS rounds
  kVcCoreset = 2,      // vertex cover: residual edges + fixed vertices
  kWeightedEdges = 3,  // Crouch-Stubbs weighted matching coreset
  kPathBatch = 4,      // augmenting-path round: batch of short paths
  kVcCoresetBatch = 5, // weighted VC: one VcCoresetOutput per weight level
  kGroupedVc = 6,      // grouped VC: core coreset + pinned group ids
  kPieceDelivery = 7,  // downlink: one round's piece + forked RNG stream
  kShutdown = 8,       // downlink: persistent worker exit handshake (empty)
};

/// Prints "summary wire: <formatted message>" to stderr and aborts. Every
/// decode-side validation funnels through here so malformed input dies with
/// a diagnostic instead of corrupting a fold.
[[noreturn]] void wire_fail(const char* fmt, ...);

/// Appends little-endian scalars to a byte buffer. Encoding never fails —
/// writers serialize in-memory values that already satisfy the library's
/// invariants.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  /// IEEE-754 bit pattern via u64: bit-exact, NaN payloads included.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

 private:
  void append(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + size);
  }
  std::vector<std::uint8_t>* out_;
};

/// Cursor over a received payload. Reading past the end is a truncated
/// frame: wire_fail, not UB.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof v, "u32");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v, "u64");
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::size_t remaining() const { return size_ - cursor_; }

 private:
  void take(void* out, std::size_t size, const char* what);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

/// Shape tag + byte-level codec for one summary type. Specializations are
/// the single source of truth for each payload layout; encode and decode
/// are exact inverses (decode(encode(s)) is bit-identical to s).
template <typename T>
struct SummaryCodec;  // specialized per summary shape below

/// A summary type the socket transport can carry.
template <typename T>
concept WireSerializable =
    requires(const T& value, WireWriter& writer, WireReader& reader) {
      { SummaryCodec<T>::kShape } -> std::convertible_to<SummaryShape>;
      SummaryCodec<T>::encode(value, writer);
      { SummaryCodec<T>::decode(reader) } -> std::same_as<T>;
    };

template <>
struct SummaryCodec<EdgeList> {
  static constexpr SummaryShape kShape = SummaryShape::kEdgeList;
  // Layout: u32 num_vertices, u64 num_edges, then (u32 u, u32 v) per edge.
  static void encode(const EdgeList& list, WireWriter& writer);
  static EdgeList decode(WireReader& reader);
};

template <>
struct SummaryCodec<VcCoresetOutput> {
  static constexpr SummaryShape kShape = SummaryShape::kVcCoreset;
  // Layout: EdgeList residual, u64 fixed count, u32 per fixed vertex.
  static void encode(const VcCoresetOutput& coreset, WireWriter& writer);
  static VcCoresetOutput decode(WireReader& reader);
};

template <>
struct SummaryCodec<WeightedCoresetOutput> {
  static constexpr SummaryShape kShape = SummaryShape::kWeightedEdges;
  // Layout: u32 num_vertices, u64 num_edges, then (u32, u32, f64-bits).
  static void encode(const WeightedCoresetOutput& coreset, WireWriter& writer);
  static WeightedCoresetOutput decode(WireReader& reader);
};

template <>
struct SummaryCodec<std::vector<AugmentingPath>> {
  static constexpr SummaryShape kShape = SummaryShape::kPathBatch;
  // Layout: u64 path count, then per path u32 length + u32 per vertex.
  static void encode(const std::vector<AugmentingPath>& paths,
                     WireWriter& writer);
  static std::vector<AugmentingPath> decode(WireReader& reader);
};

template <>
struct SummaryCodec<std::vector<VcCoresetOutput>> {
  static constexpr SummaryShape kShape = SummaryShape::kVcCoresetBatch;
  // Layout: u64 coreset count, then each VcCoresetOutput as above.
  static void encode(const std::vector<VcCoresetOutput>& batch,
                     WireWriter& writer);
  static std::vector<VcCoresetOutput> decode(WireReader& reader);
};

struct GroupedVcSummary;  // distributed/protocols.hpp

template <>
struct SummaryCodec<GroupedVcSummary> {
  static constexpr SummaryShape kShape = SummaryShape::kGroupedVc;
  // Layout: VcCoresetOutput core (in the contracted group universe — its
  // residual edge list's num_vertices IS the group count), u64 pinned-group
  // count, u32 per pinned group id.
  static void encode(const GroupedVcSummary& summary, WireWriter& writer);
  static GroupedVcSummary decode(WireReader& reader);
};

/// One round's work order for a persistent shm worker: the machine's shard
/// of the surviving edges plus the machine RNG stream the coordinator forked
/// for this round (so the worker's draws are identical to the in-process and
/// fork-per-round paths, and the caller's RNG position is untouched).
struct PieceDelivery {
  std::uint32_t round = 0;                   // sanity: executor round index
  std::array<std::uint64_t, 4> rng_state{};  // Rng::state() of the stream
  EdgeList edges;                            // the machine's piece
};

template <>
struct SummaryCodec<PieceDelivery> {
  static constexpr SummaryShape kShape = SummaryShape::kPieceDelivery;
  // Layout: u32 round, 4 x u64 rng state, EdgeList piece as above.
  static void encode(const PieceDelivery& piece, WireWriter& writer);
  static PieceDelivery decode(WireReader& reader);
};

/// Encodes a piece frame straight from a partition shard view — the hot
/// downlink path; byte-identical to encode_frame over a PieceDelivery whose
/// EdgeList copies the span, without materializing that copy.
std::vector<std::uint8_t> encode_piece_frame(
    const Edge* edges, std::size_t num_edges, VertexId num_vertices,
    const std::array<std::uint64_t, 4>& rng_state, std::uint32_t round,
    std::uint32_t machine);

/// Frame header plus the fixed head of a kPieceDelivery payload (round, rng
/// state, num_vertices, num_edges): everything before the edge records.
inline constexpr std::size_t kPieceFramePrefixBytes =
    kFrameHeaderBytes + 4 + 32 + 4 + 8;

/// Frame header plus the fixed head of a kEdgeList payload (num_vertices,
/// num_edges): everything before the edge records.
inline constexpr std::size_t kEdgeListFramePrefixBytes =
    kFrameHeaderBytes + 4 + 8;

/// Writes the header + fixed payload prefix of an EdgeList summary frame
/// into `out` (kEdgeListFramePrefixBytes of space); the summary's raw edge
/// bytes follow directly on the wire. prefix + edge bytes is byte-identical
/// to encode_frame over the same EdgeList — the uplink counterpart of
/// encode_piece_frame_prefix, for workers whose summary IS an edge list
/// (the bulk shape of the coreset drivers).
void encode_edge_list_frame_prefix(const EdgeList& summary,
                                   std::uint32_t machine, std::uint8_t* out);

/// Writes the header + fixed payload prefix of a piece frame into `out`
/// (kPieceFramePrefixBytes of space). The num_edges * 8 edge bytes follow
/// directly on the wire, and the wire's (u32 u, u32 v) records are Edge's
/// memory layout — so a sender can stream the shard span itself as the
/// frame body with no staging copy. prefix + raw edge bytes is
/// byte-identical to encode_piece_frame over the same arguments.
void encode_piece_frame_prefix(std::size_t num_edges, VertexId num_vertices,
                               const std::array<std::uint64_t, 4>& rng_state,
                               std::uint32_t round, std::uint32_t machine,
                               std::uint8_t* out);

/// Encodes the (payload-free) shutdown frame of the persistent-worker exit
/// handshake.
std::vector<std::uint8_t> encode_shutdown_frame(std::uint32_t machine);

/// Decoded frame header; `payload_bytes` bytes of payload follow on the wire.
struct FrameHeader {
  SummaryShape shape;
  std::uint32_t machine;
  std::uint64_t payload_bytes;
};

/// Writes the 24-byte header into `out` (caller guarantees the space).
void encode_frame_header(const FrameHeader& header, std::uint8_t* out);

/// Parses and VALIDATES a 24-byte header: magic, version, reserved word,
/// shape tag range, and the payload cap all wire_fail on violation.
FrameHeader decode_frame_header(const std::uint8_t* bytes);

/// Zero-copy view of a received kPieceDelivery payload: `edges` points INTO
/// the frame payload (the wire's (u32 u, u32 v) records are Edge's memory
/// layout, asserted in the codec), so a persistent worker reads its piece
/// without materializing an owning EdgeList. Runs the same validation
/// funnel as the owning decode — ids in range, no self-loops, exact payload
/// consumption — just without the copy. The view borrows the payload
/// buffer: it is valid only while the frame it was decoded from lives.
struct PieceDeliveryView {
  std::uint32_t round = 0;
  std::array<std::uint64_t, 4> rng_state{};
  VertexId num_vertices = 0;
  const Edge* edges = nullptr;
  std::size_t num_edges = 0;
};

/// Decodes and validates a piece frame as a borrowing view (shape-checked
/// against kPieceDelivery; wire_fails on any violation, like
/// decode_frame_payload).
PieceDeliveryView decode_piece_frame_view(const FrameHeader& header,
                                          const std::uint8_t* payload);

/// Encodes one complete frame (header + payload) ready for send_all.
template <WireSerializable T>
std::vector<std::uint8_t> encode_frame(const T& summary,
                                       std::uint32_t machine) {
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes, 0);
  WireWriter writer(bytes);
  SummaryCodec<T>::encode(summary, writer);
  const std::uint64_t payload = bytes.size() - kFrameHeaderBytes;
  if (payload > kMaxFramePayloadBytes) {
    wire_fail("machine %u summary payload (%llu bytes) exceeds the frame cap",
              machine, static_cast<unsigned long long>(payload));
  }
  encode_frame_header(FrameHeader{SummaryCodec<T>::kShape, machine, payload},
                      bytes.data());
  return bytes;
}

/// Decodes a received payload against a validated header: the shape must
/// match T's and the payload must be consumed exactly (trailing bytes are a
/// framing error).
template <WireSerializable T>
T decode_frame_payload(const FrameHeader& header, const std::uint8_t* data) {
  if (header.shape != SummaryCodec<T>::kShape) {
    wire_fail("frame from machine %u carries shape tag %u, expected %u",
              header.machine, static_cast<unsigned>(header.shape),
              static_cast<unsigned>(SummaryCodec<T>::kShape));
  }
  WireReader reader(data, static_cast<std::size_t>(header.payload_bytes));
  T value = SummaryCodec<T>::decode(reader);
  if (reader.remaining() != 0) {
    wire_fail("frame from machine %u leaves %zu trailing payload bytes",
              header.machine, reader.remaining());
  }
  return value;
}

}  // namespace rcc
