// Weighted vertex cover in the simultaneous model via weight grouping.
//
// The paper states (Section 1.1) that "grouping by weight" extends the
// Theorem 2 coreset to weighted vertex cover with an O(log n) factor loss
// in approximation and space, and omits the details. This is our
// reconstruction of that blueprint:
//
//   1. Bucket vertices into geometric weight classes (powers of two over
//      the minimum weight) — O(log W) classes.
//   2. Split the edges by the class of their *cheaper* endpoint; every edge
//      lands in exactly one class subgraph G_c.
//   3. Every machine runs the unweighted peeling coreset (Theorem 2) on its
//      piece of every G_c and sends all class summaries in one message —
//      the protocol stays simultaneous; the summary grows by the O(log W)
//      class factor, mirroring the paper's "extra O(log n) term in space".
//   4. The coordinator unions the fixed sets, then covers the residual
//      union with the *weighted* local-ratio 2-approximation (it knows the
//      weights), so the final additions are weight-aware.
//
// We make no approximation-theorem claim beyond what the bench measures
// (EXP15): ratios against the local-ratio lower bound across weight ranges.
#pragma once

#include "distributed/protocol.hpp"
#include "vertex_cover/weighted_vc.hpp"

namespace rcc {

/// The engine's canonical result (`solution` is the cover; each machine's
/// summary is its vector of per-class coresets) extended with the
/// weighted-protocol derived quantities.
struct WeightedVcProtocolResult
    : ProtocolResult<VertexCover, std::vector<VcCoresetOutput>> {
  double cover_cost = 0.0;
  std::size_t weight_classes = 0;
};

WeightedVcProtocolResult weighted_vc_protocol(EdgeSource graph,
                                              const VertexWeights& weights,
                                              std::size_t k, Rng& rng,
                                              ThreadPool* pool = nullptr);

/// Streaming variant: the coordinator folds each machine's class summaries
/// (fixed-vertex union + residual concatenation) as they land and runs the
/// weighted local-ratio step after the last one. Canonical order is
/// seed-for-seed identical to the barrier entry point.
WeightedVcProtocolResult weighted_vc_protocol_streaming(
    EdgeSource graph, const VertexWeights& weights, std::size_t k,
    Rng& rng, ThreadPool* pool = nullptr,
    const StreamingOptions& streaming = {});

}  // namespace rcc
