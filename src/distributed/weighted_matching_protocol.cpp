#include "distributed/weighted_matching_protocol.hpp"

#include <utility>

#include "matching/weighted.hpp"

namespace rcc {

namespace {

/// The engine lambdas shared by the barrier and streaming entry points.
struct WeightedMatchingPhases {
  double class_base;

  auto build() const {
    return [this](WeightedEdgeSpan piece, const PartitionContext& ctx,
                  Rng& /*machine_rng*/) {
      return crouch_stubbs_coreset(piece, ctx, class_base);
    };
  }
  // A weighted edge message: two vertex ids + one weight word.
  static MessageSize account(const WeightedCoresetOutput& s) {
    return MessageSize{s.edges.edges.size(), s.edges.edges.size()};
  }
};

WeightedMatchingProtocolResult to_weighted_result(
    ProtocolResult<Matching, WeightedCoresetOutput>&& engine_result,
    WeightedEdgeSource graph, double class_base) {
  WeightedMatchingProtocolResult result;
  static_cast<ProtocolResult<Matching, WeightedCoresetOutput>&>(result) =
      std::move(engine_result);
  result.matching_weight = matching_weight(result.solution, graph.edges());
  for (const WeightedCoresetOutput& s : result.summaries) {
    result.max_classes_per_machine =
        std::max(result.max_classes_per_machine,
                 split_weight_classes(s.edges, class_base).classes.size());
  }
  return result;
}

/// StreamingFold of the weighted protocol: absorb concatenates the coreset
/// edges (compose_weighted_coresets' union loop, streamed), finish runs the
/// Crouch-Stubbs merge on the union.
struct WeightedMatchingStreamFold {
  VertexId num_vertices;
  VertexId left_size;
  double class_base;
  WeightedEdgeList union_edges;

  WeightedMatchingStreamFold(VertexId n, VertexId left_size, double class_base)
      : num_vertices(n), left_size(left_size), class_base(class_base) {
    union_edges.num_vertices = n;
  }

  void absorb(WeightedCoresetOutput& summary, std::size_t /*machine*/) {
    RCC_CHECK(summary.edges.num_vertices == num_vertices);
    union_edges.edges.insert(union_edges.edges.end(),
                             summary.edges.edges.begin(),
                             summary.edges.edges.end());
  }
  Matching finish(std::vector<WeightedCoresetOutput>& /*summaries*/,
                  Rng& /*rng*/) {
    return crouch_stubbs_matching(union_edges, left_size, class_base);
  }
};

}  // namespace

WeightedMatchingProtocolResult weighted_matching_protocol(
    WeightedEdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool, double class_base) {
  const WeightedMatchingPhases phases{class_base};
  const auto combine = [&](std::vector<WeightedCoresetOutput>& summaries,
                           Rng& /*coordinator_rng*/) {
    return compose_weighted_coresets(summaries, graph.num_vertices(),
                                     left_size, class_base);
  };

  auto engine_result =
      run_protocol(graph, k, left_size, rng, pool, phases.build(),
                   &WeightedMatchingPhases::account, combine);
  return to_weighted_result(std::move(engine_result), graph, class_base);
}

WeightedMatchingProtocolResult weighted_matching_protocol_streaming(
    WeightedEdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool, double class_base, const StreamingOptions& streaming) {
  const WeightedMatchingPhases phases{class_base};
  WeightedMatchingStreamFold fold(graph.num_vertices(), left_size,
                                  class_base);
  auto engine_result = run_protocol_streaming<WeightedEdge>(
      std::span<const WeightedEdge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, left_size, rng, pool, phases.build(),
      &WeightedMatchingPhases::account, fold, streaming);
  return to_weighted_result(std::move(engine_result), graph, class_base);
}

}  // namespace rcc
