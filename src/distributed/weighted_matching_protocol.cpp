#include "distributed/weighted_matching_protocol.hpp"

#include "matching/weighted.hpp"
#include "partition/partition.hpp"

namespace rcc {

WeightedMatchingProtocolResult weighted_matching_protocol(
    const WeightedEdgeList& graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool, double class_base) {
  WeightedMatchingProtocolResult result;
  const auto pieces = random_partition_weighted(graph, k, rng);

  std::vector<WeightedCoresetOutput> summaries(k);
  std::vector<Rng> machine_rngs;
  machine_rngs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) machine_rngs.push_back(rng.fork());

  auto machine_work = [&](std::size_t i) {
    PartitionContext ctx{graph.num_vertices, k, i, left_size};
    summaries[i] = crouch_stubbs_coreset(pieces[i], ctx, class_base);
  };
  if (pool != nullptr) {
    parallel_for(*pool, k, machine_work);
  } else {
    for (std::size_t i = 0; i < k; ++i) machine_work(i);
  }

  result.comm.per_machine.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    // A weighted edge message: two vertex ids + one weight word.
    result.comm.per_machine[i].edges = summaries[i].edges.edges.size();
    result.comm.per_machine[i].vertices = summaries[i].edges.edges.size();
    result.max_classes_per_machine =
        std::max(result.max_classes_per_machine,
                 split_weight_classes(summaries[i].edges, class_base)
                     .classes.size());
  }

  result.matching = compose_weighted_coresets(summaries, graph.num_vertices,
                                              left_size, class_base);
  result.matching_weight = matching_weight(result.matching, graph);
  return result;
}

}  // namespace rcc
