#include "distributed/weighted_matching_protocol.hpp"

#include "matching/weighted.hpp"

namespace rcc {

WeightedMatchingProtocolResult weighted_matching_protocol(
    const WeightedEdgeList& graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool, double class_base) {
  const auto build = [&](WeightedEdgeSpan piece, const PartitionContext& ctx,
                         Rng& /*machine_rng*/) {
    return crouch_stubbs_coreset(piece, ctx, class_base);
  };
  // A weighted edge message: two vertex ids + one weight word.
  const auto account = [](const WeightedCoresetOutput& s) {
    return MessageSize{s.edges.edges.size(), s.edges.edges.size()};
  };
  const auto combine = [&](std::vector<WeightedCoresetOutput>& summaries,
                           Rng& /*coordinator_rng*/) {
    return compose_weighted_coresets(summaries, graph.num_vertices, left_size,
                                     class_base);
  };

  auto engine_result =
      run_protocol(graph, k, left_size, rng, pool, build, account, combine);

  WeightedMatchingProtocolResult result;
  result.matching = std::move(engine_result.solution);
  result.matching_weight = matching_weight(result.matching, graph);
  result.comm = std::move(engine_result.comm);
  result.timing = engine_result.timing;
  for (const WeightedCoresetOutput& s : engine_result.summaries) {
    result.max_classes_per_machine =
        std::max(result.max_classes_per_machine,
                 split_weight_classes(s.edges, class_base).classes.size());
  }
  return result;
}

}  // namespace rcc
