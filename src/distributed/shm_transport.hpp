// Shared-memory ring transport for the cross-process machine phase.
//
// The socket transport (socket_transport.hpp) proved the cross-process
// machine phase seed-for-seed identical to the in-process paths, but it
// pays a serialize-to-kernel copy per frame and a fork per machine per
// round. This transport removes both taxes on single-host runs:
//
//   * frames travel through fixed-capacity SPSC ring buffers living in one
//     MAP_SHARED | MAP_ANONYMOUS mapping created BEFORE the workers fork,
//     so a frame is one userspace memcpy in and one out — no socket, no
//     kernel buffering, no per-frame file descriptors;
//   * the rings are bidirectional (an uplink and a downlink pair per
//     machine), which is what makes workers *persistent*: the coordinator
//     forks k workers once — after the round-0 partition, so the first
//     round's shards ride the fork as copy-on-write pages and its
//     kPieceDelivery frame carries only the machine RNG stream — then ships
//     every later round's piece DOWN through the ring and reads the summary
//     frame back UP. The multi-round executor stops re-forking every round.
//
// Frames are byte-identical to the socket transport's (summary_wire.hpp):
// all ten driver codecs, the validation funnel, and the seed-for-seed
// differential suite transfer unchanged. The coordinator-side ShmWorkerPool
// hands back completed frames in ARRIVAL order exactly like FrameCollector,
// so the engine's CanonicalReorder sits on top unmodified.
//
// Ring mechanics: each direction is a single-producer single-consumer byte
// ring with free-running 32-bit cursors (capacity is a power of two below
// 2^31, so `tail - head` is the used byte count under wraparound
// arithmetic). Writers publish with a release store and a (cross-process)
// futex wake; readers wait with bounded futex sleeps. Frames LARGER than
// the ring flow in chunks — the writer blocks until the reader frees space,
// so a tiny ring degrades to lockstep streaming instead of deadlocking.
// The coordinator multiplexes k uplinks off one doorbell word (workers bump
// it after every publish) because futex can wait on only one address.
//
// Failure philosophy matches the socket path: every coordinator wait is
// bounded by timeout_ms and a worker that dies mid-round is diagnosed BY
// MACHINE ID (waitpid(WNOHANG) on the stalled machines, then a re-drain so
// a worker that exited after completing its frame is never misreported).
// Workers detect coordinator death via parent-pid checks between rounds and
// bounded waits mid-frame. Fault-injection knobs pin every failure path.
#pragma once

#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "distributed/socket_transport.hpp"
#include "distributed/summary_wire.hpp"

namespace rcc {

/// Knobs of the shared-memory ring transport.
struct ShmTransportOptions {
  /// Data capacity of EACH ring (one uplink + one downlink per machine),
  /// rounded up to a power of two. Frames larger than the ring still flow —
  /// chunked, with writer/reader in lockstep — so this sizes the overlap
  /// window, not a hard frame limit.
  std::size_t ring_bytes = std::size_t{1} << 20;

  /// Deadline for every coordinator wait (frame bytes, downlink space,
  /// shutdown reaping) and for worker-side mid-frame waits. A worker silent
  /// for this long is declared dead and the run aborts with its machine id.
  int timeout_ms = 10000;

  /// Fault injection: this machine's worker exits silently instead of
  /// producing its summary; -1 disables. For a persistent pool the worker
  /// dies at the START of round `fault_kill_round` (after reading the
  /// piece), so the mid-run death of a long-lived worker is testable.
  int fault_kill_machine = -1;
  int fault_kill_round = 0;

  /// Fault injection: this machine's worker writes its frame header plus
  /// half the payload into the ring, then dies (torn-frame test); -1
  /// disables.
  int fault_partial_frame_machine = -1;

  /// Fault injection: this machine's worker ignores the shutdown frame and
  /// sleeps instead of exiting — shutdown_and_reap must SIGKILL it after
  /// the bounded timeout and name it; -1 disables.
  int fault_ignore_shutdown_machine = -1;
};

/// Prints "shm transport: <formatted message>" to stderr and aborts — the
/// transport_fail of the ring path.
[[noreturn]] void shm_fail(const char* fmt, ...);

/// Fault injection: sleeps until killed. Used by worker bodies when
/// fault_ignore_shutdown_machine names them — the coordinator's bounded
/// reap must SIGKILL and diagnose the unresponsive worker.
[[noreturn]] void worker_sleep_forever();

namespace shm_detail {

/// Producer/consumer cursors of one SPSC ring, each on its own cache line
/// (they are also the futex words, so cross-process waits land here).
struct RingControl {
  alignas(64) std::atomic<std::uint32_t> head;  // consumer cursor
  alignas(64) std::atomic<std::uint32_t> tail;  // producer cursor
};
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "ring cursors must be lock-free to live in shared memory");

/// Non-owning view of one ring inside the shared segment.
struct Ring {
  RingControl* ctl = nullptr;
  std::uint8_t* data = nullptr;
  std::uint32_t capacity = 0;  // power of two, < 2^31
};

/// Copies what fits (up to `size`) into the ring, publishes, and wakes the
/// reader; returns the bytes written (0 when the ring is full).
std::size_t ring_write_some(const Ring& ring, const std::uint8_t* src,
                            std::size_t size);

/// Copies up to `size` available bytes out of the ring, publishes the freed
/// space, and wakes the writer; returns the bytes read (0 when empty).
std::size_t ring_read_some(const Ring& ring, std::uint8_t* dst,
                           std::size_t size);

/// Bounded futex sleep until `word` changes away from `seen`. Spurious
/// returns are fine — callers re-check their condition in a loop.
void futex_wait_for_change(std::atomic<std::uint32_t>* word,
                           std::uint32_t seen, int timeout_ms);

/// Wakes every futex waiter on `word`.
void futex_wake_all(std::atomic<std::uint32_t>* word);

}  // namespace shm_detail

/// The one MAP_SHARED segment of a pool: a doorbell word plus k
/// (uplink, downlink) ring pairs. Created before the fork so parent and
/// children address the same physical pages; unmapped by the destructor on
/// whichever side runs it (children _exit, so in practice the parent).
class ShmSegment {
 public:
  ShmSegment(std::size_t machines, std::size_t ring_bytes);
  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  std::size_t machines() const { return machines_; }
  /// Bumped (and futex-woken) by workers after every uplink publish; the
  /// coordinator's one wait address for "any ring made progress".
  std::atomic<std::uint32_t>* doorbell() const { return doorbell_; }
  shm_detail::Ring uplink(std::size_t machine) const;    // worker -> coord
  shm_detail::Ring downlink(std::size_t machine) const;  // coord -> worker

 private:
  std::size_t machines_ = 0;
  std::uint32_t ring_capacity_ = 0;
  std::size_t mapping_bytes_ = 0;
  std::uint8_t* base_ = nullptr;
  std::atomic<std::uint32_t>* doorbell_ = nullptr;
};

/// Worker-side handle over one machine's ring pair. Lives only in the
/// child; reads control/piece frames off the downlink and writes summary
/// frames to the uplink.
class ShmWorkerEndpoint {
 public:
  ShmWorkerEndpoint(const ShmSegment& segment, std::size_t machine,
                    pid_t coordinator_pid, int timeout_ms);

  /// Next complete frame off the downlink. The wait for a frame to START is
  /// indefinite (a persistent worker idles between rounds) but checks the
  /// coordinator's liveness each bounded sleep and _exits quietly when
  /// orphaned; once a header has arrived, the rest of the frame must land
  /// within timeout_ms or the worker shm_fails.
  ReadyFrame read_frame();

  /// Writes one complete frame to the uplink, chunked through the ring and
  /// bounded by timeout_ms per chunk of progress.
  void write_frame(const std::uint8_t* frame, std::size_t size);

  /// Two-part frame write, the uplink mirror of the pool's: `prefix`
  /// (header + fixed payload head) then `body` (raw edge bytes) back to
  /// back — one contiguous frame on the wire, no frame-sized staging
  /// vector in the worker.
  void write_frame(const std::uint8_t* prefix, std::size_t prefix_bytes,
                   const std::uint8_t* body, std::size_t body_bytes);

  /// Fault injection: writes raw bytes (e.g. a torn frame prefix) without
  /// any framing discipline.
  void write_raw(const std::uint8_t* bytes, std::size_t size);

  std::size_t machine() const { return machine_; }

 private:
  shm_detail::Ring uplink_;
  shm_detail::Ring downlink_;
  std::atomic<std::uint32_t>* doorbell_;
  std::size_t machine_;
  pid_t coordinator_pid_;
  int timeout_ms_;
};

/// Coordinator-side pool of k forked ring workers. One fork per machine per
/// POOL (not per round): spawn() once, then any number of
/// { begin_round(); send_frame()*; next_ready() x k; } cycles, then
/// shutdown_and_reap(). Ephemeral single-round use skips the downlink:
/// spawn() workers that compute and write immediately, collect with
/// next_ready(), then reap().
class ShmWorkerPool {
 public:
  ShmWorkerPool(std::size_t machines, const ShmTransportOptions& options);
  /// SIGKILLs and reaps any worker still alive (abandoned pool — normal
  /// exits go through shutdown_and_reap / reap).
  ~ShmWorkerPool();

  ShmWorkerPool(const ShmWorkerPool&) = delete;
  ShmWorkerPool& operator=(const ShmWorkerPool&) = delete;

  /// Forks one worker per machine; worker i runs body(i, endpoint) in the
  /// child and _exit(0)s when body returns. Call exactly once.
  template <typename Body>
  void spawn(const Body& body) {
    spawn_impl(
        [](void* ctx, std::size_t machine, ShmWorkerEndpoint& endpoint) {
          (*static_cast<const Body*>(ctx))(machine, endpoint);
        },
        const_cast<void*>(static_cast<const void*>(&body)));
  }

  /// Starts a collection round: the next `machines()` next_ready() calls
  /// belong to it. (spawn() opens round 0 implicitly; ephemeral users never
  /// call this.)
  void begin_round();

  /// Writes one complete frame down machine's downlink, chunked; bounded by
  /// timeout_ms per chunk of progress, and a worker that died mid-delivery
  /// is named.
  void send_frame(std::size_t machine, const std::uint8_t* frame,
                  std::size_t size);

  /// Two-part frame write: `prefix` (header + fixed payload prefix) followed
  /// by `body` (raw edge bytes), back to back on the same downlink. The
  /// worker sees one contiguous frame — SPSC ring writes are a byte stream —
  /// but the sender skips staging the body into a frame-sized scratch
  /// vector, which on dense multi-round runs is a fresh megabyte-scale
  /// allocation per machine per round.
  void send_frame(std::size_t machine, const std::uint8_t* prefix,
                  std::size_t prefix_bytes, const std::uint8_t* body,
                  std::size_t body_bytes);

  /// Next completed uplink frame of the current round, in arrival order —
  /// the FrameCollector::next_ready of the ring path. Must be called
  /// exactly machines() times per round. Duplicate frames, foreign machine
  /// ids, torn frames from dead workers, and deadline overruns all shm_fail
  /// with the offending/missing machine ids.
  ReadyFrame next_ready();

  /// Persistent-pool exit handshake: sends every live worker a shutdown
  /// frame, then reaps each within the bounded timeout; a worker that
  /// ignores the handshake is SIGKILLed and named.
  void shutdown_and_reap();

  /// Ephemeral reap: workers exit on their own after writing their single
  /// frame; mirrors reap_workers' clean-exit reporting.
  void reap(bool require_clean = true);

  std::size_t machines() const { return segment_.machines(); }
  std::uint32_t round() const { return round_; }
  /// Uplink framed bytes received (headers + payloads): the measured wire
  /// cost of the machine phases, cumulative over rounds.
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Downlink bytes shipped (piece + control frames), cumulative.
  std::uint64_t piece_bytes() const { return piece_bytes_; }
  std::uint64_t frames_delivered() const { return delivered_total_; }
  /// Processes forked over the pool's lifetime (== machines() — the point).
  std::uint64_t forks() const { return forks_; }

 private:
  /// Per-machine uplink frame reassembly state. The header lands in a fixed
  /// array and the payload is read DIRECTLY into the vector that ships as
  /// the ReadyFrame's payload — the drain path adds no intermediate copy on
  /// top of the ring's one memcpy out.
  struct Assembly {
    std::size_t header_filled = 0;
    std::array<std::uint8_t, kFrameHeaderBytes> header_bytes{};
    bool header_parsed = false;
    FrameHeader header{};
    std::size_t payload_filled = 0;
    std::vector<std::uint8_t> payload;
  };

  using WorkerFn = void (*)(void* ctx, std::size_t machine,
                            ShmWorkerEndpoint& endpoint);
  void spawn_impl(WorkerFn fn, void* ctx);
  /// Drains every uplink ring into its assembly buffer; completed frames
  /// move to ready_. Returns true when any byte arrived.
  bool drain_uplinks();
  bool drain_one(std::size_t machine);
  /// waitpid(WNOHANG) over machines the current round still owes a frame;
  /// a dead one gets a final drain, then shm_fail naming it.
  void check_for_dead_workers();
  [[noreturn]] void fail_missing() const;

  ShmSegment segment_;
  ShmTransportOptions options_;
  std::vector<pid_t> pids_;
  std::vector<char> alive_;
  std::vector<Assembly> assembly_;
  std::vector<char> completed_;  // frame landed this round
  std::deque<ReadyFrame> ready_;
  std::uint32_t round_ = 0;
  std::uint64_t rounds_begun_ = 0;
  std::size_t delivered_this_round_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t piece_bytes_ = 0;
  std::uint64_t forks_ = 0;
};

}  // namespace rcc
