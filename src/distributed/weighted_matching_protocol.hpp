// Weighted maximum matching in the simultaneous model: the Crouch-Stubbs
// coreset per machine, weighted merge at the coordinator, with the same
// word-exact communication accounting as the unweighted protocols. A thin
// wrapper over the ProtocolEngine instantiated with weighted edges.
#pragma once

#include "coreset/weighted_coreset.hpp"
#include "distributed/message.hpp"
#include "distributed/protocol_engine.hpp"
#include "matching/matching.hpp"
#include "util/thread_pool.hpp"

namespace rcc {

/// The engine's canonical result (`solution` is the matching; `comm`
/// charges a weighted edge 3 words: two ids + one weight) extended with the
/// weighted-protocol derived quantities.
struct WeightedMatchingProtocolResult
    : ProtocolResult<Matching, WeightedCoresetOutput> {
  double matching_weight = 0.0;
  std::size_t max_classes_per_machine = 0;
};

WeightedMatchingProtocolResult weighted_matching_protocol(
    WeightedEdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr, double class_base = 2.0);

/// Streaming variant: the coordinator unions the Crouch-Stubbs coresets as
/// machines finish and runs the weighted merge after the last one. The
/// weighted merge is deterministic in the union order, so canonical order
/// is seed-for-seed identical to the barrier entry point.
WeightedMatchingProtocolResult weighted_matching_protocol_streaming(
    WeightedEdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr, double class_base = 2.0,
    const StreamingOptions& streaming = {});

}  // namespace rcc
