#include "distributed/protocol.hpp"

#include "partition/partition.hpp"
#include "util/timer.hpp"

namespace rcc {

namespace {

/// Runs fn(machine_index, machine_rng) for every machine, in parallel when a
/// pool is provided. RNG streams are forked up front so the outcome does not
/// depend on thread scheduling.
void run_machines(std::size_t k, Rng& rng, ThreadPool* pool,
                  const std::function<void(std::size_t, Rng&)>& fn) {
  std::vector<Rng> machine_rngs;
  machine_rngs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) machine_rngs.push_back(rng.fork());
  if (pool != nullptr) {
    parallel_for(*pool, k, [&](std::size_t i) { fn(i, machine_rngs[i]); });
  } else {
    for (std::size_t i = 0; i < k; ++i) fn(i, machine_rngs[i]);
  }
}

}  // namespace

MatchingProtocolResult run_matching_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const MatchingCoreset& coreset,
    ComposeSolver solver, VertexId left_size, Rng& rng, ThreadPool* pool) {
  MatchingProtocolResult result;
  const std::size_t k = pieces.size();
  RCC_CHECK(k >= 1);
  const VertexId n = pieces.front().num_vertices();

  WallTimer timer;
  result.summaries.assign(k, EdgeList(n));
  run_machines(k, rng, pool, [&](std::size_t i, Rng& machine_rng) {
    PartitionContext ctx{n, k, i, left_size};
    result.summaries[i] = coreset.build(pieces[i], ctx, machine_rng);
  });
  result.timing.summaries_seconds = timer.seconds();

  result.comm.per_machine.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.comm.per_machine[i].edges = result.summaries[i].num_edges();
  }

  timer.reset();
  result.matching =
      compose_matching_coresets(result.summaries, solver, left_size, rng);
  result.timing.combine_seconds = timer.seconds();
  return result;
}

MatchingProtocolResult run_matching_protocol(const EdgeList& graph,
                                             std::size_t k,
                                             const MatchingCoreset& coreset,
                                             ComposeSolver solver,
                                             VertexId left_size, Rng& rng,
                                             ThreadPool* pool) {
  WallTimer timer;
  const std::vector<EdgeList> pieces = random_partition(graph, k, rng);
  const double partition_seconds = timer.seconds();
  MatchingProtocolResult result = run_matching_protocol_on_partition(
      pieces, coreset, solver, left_size, rng, pool);
  result.timing.partition_seconds = partition_seconds;
  return result;
}

VcProtocolResult run_vc_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const VertexCoverCoreset& coreset,
    VertexId num_vertices, Rng& rng, ThreadPool* pool) {
  VcProtocolResult result;
  const std::size_t k = pieces.size();
  RCC_CHECK(k >= 1);

  WallTimer timer;
  std::vector<VcCoresetOutput> summaries(k);
  run_machines(k, rng, pool, [&](std::size_t i, Rng& machine_rng) {
    PartitionContext ctx{num_vertices, k, i, 0};
    summaries[i] = coreset.build(pieces[i], ctx, machine_rng);
  });
  result.timing.summaries_seconds = timer.seconds();

  result.comm.per_machine.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.comm.per_machine[i].edges = summaries[i].residual_edges.num_edges();
    result.comm.per_machine[i].vertices = summaries[i].fixed_vertices.size();
  }

  timer.reset();
  result.cover = compose_vc_coresets(summaries, num_vertices, rng);
  result.timing.combine_seconds = timer.seconds();
  return result;
}

VcProtocolResult run_vc_protocol(const EdgeList& graph, std::size_t k,
                                 const VertexCoverCoreset& coreset, Rng& rng,
                                 ThreadPool* pool) {
  WallTimer timer;
  const std::vector<EdgeList> pieces = random_partition(graph, k, rng);
  const double partition_seconds = timer.seconds();
  VcProtocolResult result = run_vc_protocol_on_partition(
      pieces, coreset, graph.num_vertices(), rng, pool);
  result.timing.partition_seconds = partition_seconds;
  return result;
}

}  // namespace rcc
