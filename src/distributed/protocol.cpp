#include "distributed/protocol.hpp"

#include <utility>

#include "matching/greedy.hpp"
#include "matching/max_matching.hpp"
#include "vertex_cover/approx.hpp"

namespace rcc {

namespace {

/// The engine lambdas shared by the matching entry points.
struct MatchingPhases {
  const MatchingCoreset& coreset;
  ComposeSolver solver;
  VertexId left_size;

  auto build() const {
    return [this](EdgeSpan piece, const PartitionContext& ctx,
                  Rng& machine_rng) {
      return coreset.build(piece, ctx, machine_rng);
    };
  }
  static MessageSize account(const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  }
  auto combine() const {
    return [this](std::vector<EdgeList>& summaries, Rng& coordinator_rng) {
      return compose_matching_coresets(summaries, solver, left_size,
                                       coordinator_rng);
    };
  }
};

/// The engine lambdas shared by the vertex cover entry points.
struct VcPhases {
  const VertexCoverCoreset& coreset;

  auto build() const {
    return [this](EdgeSpan piece, const PartitionContext& ctx,
                  Rng& machine_rng) {
      return coreset.build(piece, ctx, machine_rng);
    };
  }
  static MessageSize account(const VcCoresetOutput& summary) {
    return MessageSize{summary.residual_edges.num_edges(),
                       summary.fixed_vertices.size()};
  }
  static auto combine(VertexId num_vertices) {
    return [num_vertices](std::vector<VcCoresetOutput>& summaries,
                          Rng& coordinator_rng) {
      return compose_vc_coresets(summaries, num_vertices, coordinator_rng);
    };
  }
};

/// StreamingFold of the matching protocol: absorb unions the coreset
/// subgraphs as machines finish (canonical order reproduces
/// compose_matching_coresets' EdgeList::union_of byte for byte), finish
/// solves the union. Absorb touches only the coordinator's union, never
/// anything the machine phase reads.
struct MatchingStreamFold {
  ComposeSolver solver;
  VertexId left_size;
  EdgeList union_edges;

  void init(std::size_t /*k*/) {}
  void absorb(EdgeList& summary, std::size_t /*machine*/) {
    union_edges.append(summary);
  }
  Matching finish(std::vector<EdgeList>& /*summaries*/, Rng& rng) {
    if (solver == ComposeSolver::kMaximum) {
      return maximum_matching(union_edges, left_size);
    }
    return greedy_maximal_matching(union_edges, GreedyOrder::kRandom, rng);
  }
};

/// StreamingFold of the VC protocol: absorb accumulates fixed vertices and
/// the raw residual union; finish drops residual edges the complete fixed
/// set already covers and 2-approximates the rest — the exact
/// compose_vc_coresets pipeline with its first loop streamed.
struct VcStreamFold {
  VertexCover cover;
  EdgeList residual_union;

  explicit VcStreamFold(VertexId n) : cover(n), residual_union(n) {}

  void absorb(VcCoresetOutput& summary, std::size_t /*machine*/) {
    for (VertexId v : summary.fixed_vertices) cover.insert(v);
    residual_union.append(summary.residual_edges);
  }
  VertexCover finish(std::vector<VcCoresetOutput>& /*summaries*/, Rng& rng) {
    const EdgeList open = residual_union.filter([&](const Edge& e) {
      return !cover.contains(e.u) && !cover.contains(e.v);
    });
    cover.merge(vc_two_approximation(open, rng));
    return std::move(cover);
  }
};

}  // namespace

MatchingProtocolResult run_matching_protocol(EdgeSource graph,
                                             std::size_t k,
                                             const MatchingCoreset& coreset,
                                             ComposeSolver solver,
                                             VertexId left_size, Rng& rng,
                                             ThreadPool* pool) {
  const MatchingPhases phases{coreset, solver, left_size};
  return run_protocol(graph, k, left_size, rng, pool, phases.build(),
                      &MatchingPhases::account, phases.combine());
}

MatchingProtocolResult run_matching_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const MatchingCoreset& coreset,
    ComposeSolver solver, VertexId left_size, Rng& rng, ThreadPool* pool) {
  RCC_CHECK(!pieces.empty());
  const MatchingPhases phases{coreset, solver, left_size};
  return run_protocol_on_pieces<Edge>(
      pieces_of(pieces), pieces.front().num_vertices(), left_size, rng, pool,
      phases.build(), &MatchingPhases::account, phases.combine());
}

VcProtocolResult run_vc_protocol(EdgeSource graph, std::size_t k,
                                 const VertexCoverCoreset& coreset, Rng& rng,
                                 ThreadPool* pool) {
  const VcPhases phases{coreset};
  return run_protocol(graph, k, /*left_size=*/0, rng, pool, phases.build(),
                      &VcPhases::account,
                      VcPhases::combine(graph.num_vertices()));
}

VcProtocolResult run_vc_protocol_on_partition(
    const std::vector<EdgeList>& pieces, const VertexCoverCoreset& coreset,
    VertexId num_vertices, Rng& rng, ThreadPool* pool) {
  RCC_CHECK(!pieces.empty());
  const VcPhases phases{coreset};
  return run_protocol_on_pieces<Edge>(
      pieces_of(pieces), num_vertices, /*left_size=*/0, rng, pool,
      phases.build(), &VcPhases::account, VcPhases::combine(num_vertices));
}

MatchingProtocolResult run_matching_protocol_streaming(
    EdgeSource graph, std::size_t k, const MatchingCoreset& coreset,
    ComposeSolver solver, VertexId left_size, Rng& rng, ThreadPool* pool,
    const StreamingOptions& streaming) {
  const MatchingPhases phases{coreset, solver, left_size};
  MatchingStreamFold fold{solver, left_size, EdgeList(graph.num_vertices())};
  return run_protocol_streaming<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, left_size, rng, pool, phases.build(),
      &MatchingPhases::account, fold, streaming);
}

VcProtocolResult run_vc_protocol_streaming(EdgeSource graph,
                                           std::size_t k,
                                           const VertexCoverCoreset& coreset,
                                           Rng& rng, ThreadPool* pool,
                                           const StreamingOptions& streaming) {
  const VcPhases phases{coreset};
  VcStreamFold fold(graph.num_vertices());
  return run_protocol_streaming<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, /*left_size=*/0, rng, pool, phases.build(),
      &VcPhases::account, fold, streaming);
}

}  // namespace rcc
