#include "distributed/shm_transport.hpp"

#include <errno.h>
#include <linux/futex.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

namespace rcc {

void shm_fail(const char* fmt, ...) {
  std::fputs("shm transport: ", stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

void worker_sleep_forever() {
  for (;;) ::pause();
}

namespace {

std::int64_t monotonic_ms() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// Slice of a bounded wait: short enough that liveness checks (parent pid,
/// waitpid) stay responsive, long enough that an idle wait burns no CPU.
constexpr int kWaitSliceMs = 50;

long futex_syscall(std::atomic<std::uint32_t>* word, int op, std::uint32_t val,
                   const timespec* timeout) {
  // No FUTEX_PRIVATE_FLAG: the words live in a MAP_SHARED mapping and the
  // waiter/waker are different processes.
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), op, val,
                   timeout, nullptr, 0);
}

}  // namespace

namespace shm_detail {

void futex_wait_for_change(std::atomic<std::uint32_t>* word,
                           std::uint32_t seen, int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000;
  // EAGAIN (word already changed), EINTR, and ETIMEDOUT are all fine:
  // callers re-check their condition in a loop.
  futex_syscall(word, FUTEX_WAIT, seen, &ts);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) {
  futex_syscall(word, FUTEX_WAKE, INT_MAX, nullptr);
}

std::size_t ring_write_some(const Ring& ring, const std::uint8_t* src,
                            std::size_t size) {
  // Sole producer: tail is ours (relaxed); head needs acquire so the
  // consumer's reads of the bytes we are about to overwrite happened-before.
  const std::uint32_t head = ring.ctl->head.load(std::memory_order_acquire);
  const std::uint32_t tail = ring.ctl->tail.load(std::memory_order_relaxed);
  const std::uint32_t space = ring.capacity - (tail - head);
  if (space == 0) return 0;
  const std::size_t n = std::min<std::size_t>(size, space);
  const std::uint32_t mask = ring.capacity - 1;
  const std::uint32_t pos = tail & mask;
  const std::size_t contiguous =
      std::min<std::size_t>(n, ring.capacity - pos);
  std::memcpy(ring.data + pos, src, contiguous);
  std::memcpy(ring.data, src + contiguous, n - contiguous);
  ring.ctl->tail.store(tail + static_cast<std::uint32_t>(n),
                       std::memory_order_release);
  futex_wake_all(&ring.ctl->tail);
  return n;
}

std::size_t ring_read_some(const Ring& ring, std::uint8_t* dst,
                           std::size_t size) {
  const std::uint32_t tail = ring.ctl->tail.load(std::memory_order_acquire);
  const std::uint32_t head = ring.ctl->head.load(std::memory_order_relaxed);
  const std::uint32_t used = tail - head;
  if (used == 0) return 0;
  const std::size_t n = std::min<std::size_t>(size, used);
  const std::uint32_t mask = ring.capacity - 1;
  const std::uint32_t pos = head & mask;
  const std::size_t contiguous =
      std::min<std::size_t>(n, ring.capacity - pos);
  std::memcpy(dst, ring.data + pos, contiguous);
  std::memcpy(dst + contiguous, ring.data, n - contiguous);
  ring.ctl->head.store(head + static_cast<std::uint32_t>(n),
                       std::memory_order_release);
  futex_wake_all(&ring.ctl->head);
  return n;
}

}  // namespace shm_detail

namespace {

using shm_detail::Ring;
using shm_detail::RingControl;
using shm_detail::futex_wait_for_change;
using shm_detail::futex_wake_all;
using shm_detail::ring_read_some;
using shm_detail::ring_write_some;

/// True when the downlink ring is empty as of one coherent snapshot; on
/// false the caller should read again, on true it may futex-wait on the
/// tail word with `seen_tail`.
bool ring_empty_snapshot(const Ring& ring, std::uint32_t* seen_tail) {
  const std::uint32_t tail = ring.ctl->tail.load(std::memory_order_acquire);
  const std::uint32_t head = ring.ctl->head.load(std::memory_order_relaxed);
  *seen_tail = tail;
  return tail == head;
}

/// True when the ring is full as of one coherent snapshot (producer side).
bool ring_full_snapshot(const Ring& ring, std::uint32_t* seen_head) {
  const std::uint32_t head = ring.ctl->head.load(std::memory_order_acquire);
  const std::uint32_t tail = ring.ctl->tail.load(std::memory_order_relaxed);
  *seen_head = head;
  return tail - head == ring.capacity;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShmSegment

ShmSegment::ShmSegment(std::size_t machines, std::size_t ring_bytes) {
  RCC_CHECK(machines >= 1);
  machines_ = machines;
  // Power-of-two capacity: the free-running 32-bit cursors index the ring by
  // masking, which requires the capacity to divide 2^32.
  std::size_t capacity = 64;
  while (capacity < ring_bytes) capacity <<= 1;
  RCC_CHECK(capacity <= (std::size_t{1} << 30));
  ring_capacity_ = static_cast<std::uint32_t>(capacity);

  const std::size_t ring_block = sizeof(RingControl) + capacity;
  mapping_bytes_ = 64 + machines * 2 * ring_block;  // 64: doorbell line
  void* mapped = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapped == MAP_FAILED) {
    shm_fail("mmap(%zu bytes for %zu machines): %s", mapping_bytes_, machines,
             strerror(errno));
  }
  base_ = static_cast<std::uint8_t*>(mapped);
  doorbell_ = new (base_) std::atomic<std::uint32_t>(0);
  for (std::size_t i = 0; i < machines * 2; ++i) {
    auto* ctl = reinterpret_cast<RingControl*>(base_ + 64 + i * ring_block);
    new (&ctl->head) std::atomic<std::uint32_t>(0);
    new (&ctl->tail) std::atomic<std::uint32_t>(0);
  }
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) ::munmap(base_, mapping_bytes_);
}

shm_detail::Ring ShmSegment::uplink(std::size_t machine) const {
  RCC_CHECK(machine < machines_);
  const std::size_t ring_block = sizeof(RingControl) + ring_capacity_;
  std::uint8_t* block = base_ + 64 + (2 * machine) * ring_block;
  return Ring{reinterpret_cast<RingControl*>(block),
              block + sizeof(RingControl), ring_capacity_};
}

shm_detail::Ring ShmSegment::downlink(std::size_t machine) const {
  RCC_CHECK(machine < machines_);
  const std::size_t ring_block = sizeof(RingControl) + ring_capacity_;
  std::uint8_t* block = base_ + 64 + (2 * machine + 1) * ring_block;
  return Ring{reinterpret_cast<RingControl*>(block),
              block + sizeof(RingControl), ring_capacity_};
}

// ---------------------------------------------------------------------------
// ShmWorkerEndpoint (child side)

ShmWorkerEndpoint::ShmWorkerEndpoint(const ShmSegment& segment,
                                     std::size_t machine,
                                     pid_t coordinator_pid, int timeout_ms)
    : uplink_(segment.uplink(machine)),
      downlink_(segment.downlink(machine)),
      doorbell_(segment.doorbell()),
      machine_(machine),
      coordinator_pid_(coordinator_pid),
      timeout_ms_(timeout_ms) {}

ReadyFrame ShmWorkerEndpoint::read_frame() {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  std::size_t have = 0;
  // Waiting for a frame to START is unbounded — a persistent worker idles
  // here between rounds — but never blind: every slice re-checks that the
  // coordinator is still our parent, and an orphan exits quietly (the
  // failure belongs to whoever killed the coordinator, not to us).
  for (;;) {
    have = ring_read_some(downlink_, header_bytes, kFrameHeaderBytes);
    if (have > 0) break;
    if (::getppid() != coordinator_pid_) ::_exit(0);
    std::uint32_t seen_tail = 0;
    if (ring_empty_snapshot(downlink_, &seen_tail)) {
      futex_wait_for_change(&downlink_.ctl->tail, seen_tail, kWaitSliceMs);
    }
  }
  // A frame has started: the rest must land within the deadline.
  const std::int64_t deadline = monotonic_ms() + timeout_ms_;
  const auto read_fully = [&](std::uint8_t* dst, std::size_t need,
                              std::size_t got, const char* what) {
    while (got < need) {
      const std::size_t n = ring_read_some(downlink_, dst + got, need - got);
      if (n > 0) {
        got += n;
        continue;
      }
      if (::getppid() != coordinator_pid_) ::_exit(0);
      if (monotonic_ms() >= deadline) {
        shm_fail("machine %zu: downlink frame stalled mid-%s "
                 "(%zu of %zu bytes) for %d ms",
                 machine_, what, got, need, timeout_ms_);
      }
      std::uint32_t seen_tail = 0;
      if (ring_empty_snapshot(downlink_, &seen_tail)) {
        futex_wait_for_change(&downlink_.ctl->tail, seen_tail, kWaitSliceMs);
      }
    }
  };
  read_fully(header_bytes, kFrameHeaderBytes, have, "header");

  ReadyFrame frame;
  frame.header = decode_frame_header(header_bytes);
  if (frame.header.machine != machine_) {
    shm_fail("machine %zu: downlink frame is addressed to machine %u",
             machine_, frame.header.machine);
  }
  frame.payload.resize(static_cast<std::size_t>(frame.header.payload_bytes));
  read_fully(frame.payload.data(), frame.payload.size(), 0, "payload");
  return frame;
}

void ShmWorkerEndpoint::write_raw(const std::uint8_t* bytes,
                                  std::size_t size) {
  std::int64_t deadline = monotonic_ms() + timeout_ms_;
  std::size_t sent = 0;
  while (sent < size) {
    const std::size_t n = ring_write_some(uplink_, bytes + sent, size - sent);
    if (n > 0) {
      sent += n;
      // Publish-then-bump order matters: the coordinator snapshots the
      // doorbell BEFORE draining, so a bump after the tail store can never
      // be missed.
      doorbell_->fetch_add(1, std::memory_order_release);
      futex_wake_all(doorbell_);
      deadline = monotonic_ms() + timeout_ms_;  // progress resets the clock
      continue;
    }
    if (::getppid() != coordinator_pid_) ::_exit(0);
    if (monotonic_ms() >= deadline) {
      shm_fail("machine %zu: uplink ring full for %d ms "
               "(%zu of %zu frame bytes sent)",
               machine_, timeout_ms_, sent, size);
    }
    std::uint32_t seen_head = 0;
    if (ring_full_snapshot(uplink_, &seen_head)) {
      futex_wait_for_change(&uplink_.ctl->head, seen_head, kWaitSliceMs);
    }
  }
}

void ShmWorkerEndpoint::write_frame(const std::uint8_t* frame,
                                    std::size_t size) {
  write_raw(frame, size);
}

void ShmWorkerEndpoint::write_frame(const std::uint8_t* prefix,
                                    std::size_t prefix_bytes,
                                    const std::uint8_t* body,
                                    std::size_t body_bytes) {
  write_raw(prefix, prefix_bytes);
  if (body_bytes > 0) write_raw(body, body_bytes);
}

// ---------------------------------------------------------------------------
// ShmWorkerPool (coordinator side)

ShmWorkerPool::ShmWorkerPool(std::size_t machines,
                             const ShmTransportOptions& options)
    : segment_(machines, options.ring_bytes),
      options_(options),
      alive_(machines, 0),
      assembly_(machines),
      completed_(machines, 0) {}

ShmWorkerPool::~ShmWorkerPool() {
  for (std::size_t m = 0; m < pids_.size(); ++m) {
    if (alive_[m] == 0) continue;
    ::kill(pids_[m], SIGKILL);
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pids_[m], &status, 0);
    } while (r < 0 && errno == EINTR);
    alive_[m] = 0;
  }
}

void ShmWorkerPool::spawn_impl(WorkerFn fn, void* ctx) {
  RCC_CHECK(pids_.empty());
  const pid_t coordinator = ::getpid();
  for (std::size_t m = 0; m < machines(); ++m) {
    // Same fork discipline as the socket transport: the child _exits (never
    // exit) so it runs no atexit handlers or static destructors against the
    // copy-on-write state it shares with the parent.
    const pid_t pid = ::fork();
    if (pid < 0) shm_fail("fork(machine %zu): %s", m, strerror(errno));
    if (pid == 0) {
      ShmWorkerEndpoint endpoint(segment_, m, coordinator,
                                 options_.timeout_ms);
      fn(ctx, m, endpoint);
      ::_exit(0);
    }
    pids_.push_back(pid);
    alive_[m] = 1;
  }
  forks_ += machines();
}

void ShmWorkerPool::begin_round() {
  if (rounds_begun_++ > 0) {
    RCC_CHECK(delivered_this_round_ == machines());
    ++round_;
  }
  delivered_this_round_ = 0;
  std::fill(completed_.begin(), completed_.end(), 0);
  for (Assembly& assembly : assembly_) {
    // A round boundary with half a frame in flight would silently corrupt
    // the next round's reassembly; it can only mean the caller skipped
    // next_ready() calls, which begin_round's delivered check already trips.
    RCC_CHECK(!assembly.header_parsed && assembly.header_filled == 0);
  }
}

void ShmWorkerPool::send_frame(std::size_t machine, const std::uint8_t* frame,
                               std::size_t size) {
  RCC_CHECK(machine < machines());
  const Ring ring = segment_.downlink(machine);
  std::int64_t deadline = monotonic_ms() + options_.timeout_ms;
  std::size_t sent = 0;
  while (sent < size) {
    const std::size_t n = ring_write_some(ring, frame + sent, size - sent);
    if (n > 0) {
      sent += n;
      piece_bytes_ += n;
      deadline = monotonic_ms() + options_.timeout_ms;
      continue;
    }
    // The ring is full: either the worker is slow (wait for it to drain) or
    // dead (name it — a full downlink would otherwise block forever).
    if (alive_[machine] != 0) {
      int status = 0;
      const pid_t r = ::waitpid(pids_[machine], &status, WNOHANG);
      if (r == pids_[machine]) alive_[machine] = 0;
    }
    if (alive_[machine] == 0) {
      shm_fail("machine %zu worker died while its round-%u frame was being "
               "delivered (%zu of %zu bytes)",
               machine, round_, sent, size);
    }
    if (monotonic_ms() >= deadline) {
      shm_fail("timed out after %d ms delivering a round-%u frame to "
               "machine %zu (%zu of %zu bytes)",
               options_.timeout_ms, round_, machine, sent, size);
    }
    std::uint32_t seen_head = 0;
    if (ring_full_snapshot(ring, &seen_head)) {
      futex_wait_for_change(&ring.ctl->head, seen_head, kWaitSliceMs);
    }
  }
}

void ShmWorkerPool::send_frame(std::size_t machine, const std::uint8_t* prefix,
                               std::size_t prefix_bytes,
                               const std::uint8_t* body,
                               std::size_t body_bytes) {
  send_frame(machine, prefix, prefix_bytes);
  if (body_bytes > 0) send_frame(machine, body, body_bytes);
}

bool ShmWorkerPool::drain_one(std::size_t machine) {
  Assembly& assembly = assembly_[machine];
  const Ring ring = segment_.uplink(machine);
  bool progress = false;
  for (;;) {
    if (completed_[machine] != 0) {
      // One frame per machine per round is the protocol; anything after the
      // frame (a duplicate, a stray write) is a violation, caught NOW so it
      // cannot masquerade as the next round's bytes.
      std::uint8_t stray;
      const std::size_t n = ring_read_some(ring, &stray, 1);
      if (n == 0) return progress;
      shm_fail("machine %zu sent %zu bytes beyond its round-%u frame",
               machine, n, round_);
    }
    if (!assembly.header_parsed) {
      const std::size_t n = ring_read_some(
          ring, assembly.header_bytes.data() + assembly.header_filled,
          kFrameHeaderBytes - assembly.header_filled);
      if (n == 0) return progress;
      progress = true;
      wire_bytes_ += n;
      assembly.header_filled += n;
      if (assembly.header_filled < kFrameHeaderBytes) continue;
      // decode_frame_header validates magic/version/reserved/shape/cap and
      // aborts with a wire diagnostic on violation.
      assembly.header = decode_frame_header(assembly.header_bytes.data());
      assembly.header_parsed = true;
      if (assembly.header.machine != machine) {
        shm_fail("frame on machine %zu's ring names machine %u",
                 machine, assembly.header.machine);
      }
      assembly.payload.resize(
          static_cast<std::size_t>(assembly.header.payload_bytes));
      assembly.payload_filled = 0;
    }
    if (assembly.payload_filled < assembly.payload.size()) {
      const std::size_t n = ring_read_some(
          ring, assembly.payload.data() + assembly.payload_filled,
          assembly.payload.size() - assembly.payload_filled);
      if (n == 0) return progress;
      progress = true;
      wire_bytes_ += n;
      assembly.payload_filled += n;
      if (assembly.payload_filled < assembly.payload.size()) continue;
    }
    ReadyFrame frame;
    frame.header = assembly.header;
    frame.payload = std::move(assembly.payload);
    assembly = Assembly{};
    completed_[machine] = 1;
    ready_.push_back(std::move(frame));
  }
}

bool ShmWorkerPool::drain_uplinks() {
  bool progress = false;
  for (std::size_t m = 0; m < machines(); ++m) {
    if (drain_one(m)) progress = true;
  }
  return progress;
}

void ShmWorkerPool::check_for_dead_workers() {
  for (std::size_t m = 0; m < machines(); ++m) {
    if (completed_[m] != 0 || alive_[m] == 0) continue;
    int status = 0;
    const pid_t r = ::waitpid(pids_[m], &status, WNOHANG);
    if (r != pids_[m]) continue;
    alive_[m] = 0;
    // The worker may have exited AFTER publishing its complete frame (the
    // ephemeral pattern); drain once more before declaring it dead.
    drain_one(m);
    if (completed_[m] != 0) continue;
    const Assembly& assembly = assembly_[m];
    if (assembly.header_parsed) {
      shm_fail("machine %zu worker died mid-frame in round %u "
               "(%zu of %llu payload bytes)",
               m, round_, assembly.payload_filled,
               static_cast<unsigned long long>(
                   assembly.header.payload_bytes));
    }
    shm_fail("machine %zu worker died before sending its round-%u frame",
             m, round_);
  }
}

void ShmWorkerPool::fail_missing() const {
  std::string missing;
  for (std::size_t m = 0; m < machines(); ++m) {
    if (completed_[m] == 0) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(m);
    }
  }
  shm_fail("timed out after %d ms waiting for round-%u machine frames; "
           "missing machine ids: [%s]",
           options_.timeout_ms, round_, missing.c_str());
}

ReadyFrame ShmWorkerPool::next_ready() {
  RCC_CHECK(delivered_this_round_ < machines());
  const std::int64_t deadline = monotonic_ms() + options_.timeout_ms;
  for (;;) {
    if (!ready_.empty()) {
      ReadyFrame frame = std::move(ready_.front());
      ready_.pop_front();
      ++delivered_this_round_;
      ++delivered_total_;
      return frame;
    }
    // Snapshot the doorbell BEFORE draining: a worker bumps it after every
    // publish, so any publish the drain below misses changes the word and
    // the futex wait returns immediately — no lost wakeups.
    const std::uint32_t doorbell =
        segment_.doorbell()->load(std::memory_order_acquire);
    if (drain_uplinks()) continue;
    check_for_dead_workers();
    if (!ready_.empty()) continue;
    const std::int64_t remaining = deadline - monotonic_ms();
    if (remaining <= 0) fail_missing();
    futex_wait_for_change(
        segment_.doorbell(), doorbell,
        static_cast<int>(std::min<std::int64_t>(remaining, kWaitSliceMs)));
  }
}

void ShmWorkerPool::shutdown_and_reap() {
  for (std::size_t m = 0; m < machines(); ++m) {
    if (alive_[m] == 0) continue;
    const std::vector<std::uint8_t> frame =
        encode_shutdown_frame(static_cast<std::uint32_t>(m));
    send_frame(m, frame.data(), frame.size());
  }
  const std::int64_t deadline = monotonic_ms() + options_.timeout_ms;
  std::size_t live = 0;
  for (std::size_t m = 0; m < machines(); ++m) live += alive_[m] != 0;
  // One sweep over ALL live workers per poll, with an exponential backoff
  // from 10 us between empty sweeps: the workers were all woken by their
  // shutdown frames above and exit concurrently, so the happy path reaps
  // the whole pool in a handful of sweeps — a per-machine millisecond-scale
  // sleep ladder would put k sequential sleeps on every pooled run.
  long backoff_ns = 10 * 1000;
  while (live > 0) {
    bool reaped_any = false;
    for (std::size_t m = 0; m < machines(); ++m) {
      if (alive_[m] == 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(pids_[m], &status, WNOHANG);
      if (r == pids_[m]) {
        alive_[m] = 0;
        --live;
        reaped_any = true;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!clean) {
          shm_fail("machine %zu worker did not exit cleanly on shutdown", m);
        }
        continue;
      }
      if (r < 0 && errno != EINTR) {
        shm_fail("waitpid(machine %zu): %s", m, strerror(errno));
      }
    }
    if (live == 0) break;
    if (monotonic_ms() >= deadline) {
      for (std::size_t m = 0; m < machines(); ++m) {
        if (alive_[m] == 0) continue;
        ::kill(pids_[m], SIGKILL);
        int discard = 0;
        ::waitpid(pids_[m], &discard, 0);
        alive_[m] = 0;
        shm_fail("machine %zu worker ignored the shutdown handshake for "
                 "%d ms; killed",
                 m, options_.timeout_ms);
      }
    }
    if (reaped_any) {
      backoff_ns = 10 * 1000;  // progress: stay hot for the stragglers
    } else {
      const timespec backoff{0, backoff_ns};
      ::nanosleep(&backoff, nullptr);
      backoff_ns = std::min(backoff_ns * 2, 2000000L);  // cap at 2 ms
    }
  }
}

void ShmWorkerPool::reap(bool require_clean) {
  for (std::size_t m = 0; m < machines(); ++m) {
    if (alive_[m] == 0) continue;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pids_[m], &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r < 0) shm_fail("waitpid(machine %zu): %s", m, strerror(errno));
    alive_[m] = 0;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!clean) {
      if (WIFEXITED(status)) {
        std::fprintf(stderr,
                     "shm transport: machine %zu worker exited with "
                     "status %d\n",
                     m, WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        std::fprintf(stderr,
                     "shm transport: machine %zu worker died on signal %d\n",
                     m, WTERMSIG(status));
      }
      if (require_clean) {
        shm_fail("machine %zu worker did not exit cleanly", m);
      }
    }
  }
}

}  // namespace rcc
