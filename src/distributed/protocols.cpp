#include "distributed/protocols.hpp"

#include <cmath>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"

namespace rcc {

MatchingProtocolResult coreset_matching_protocol(const EdgeList& graph,
                                                 std::size_t k,
                                                 VertexId left_size, Rng& rng,
                                                 ThreadPool* pool) {
  const MaximumMatchingCoreset coreset;
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

MatchingProtocolResult subsampled_matching_protocol(const EdgeList& graph,
                                                    std::size_t k, double alpha,
                                                    VertexId left_size, Rng& rng,
                                                    ThreadPool* pool) {
  const SubsampledMatchingCoreset coreset(alpha);
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

VcProtocolResult coreset_vc_protocol(const EdgeList& graph, std::size_t k,
                                     Rng& rng, ThreadPool* pool) {
  const PeelingVcCoreset coreset;
  return run_vc_protocol(graph, k, coreset, rng, pool);
}

namespace {

/// One machine's message in the grouped protocol: the Theorem 2 summary on
/// the contracted multigraph, plus the groups the machine pinned locally.
struct GroupedVcSummary {
  VcCoresetOutput core;
  std::vector<VertexId> pinned_groups;
};

}  // namespace

VcProtocolResult grouped_vc_protocol(const EdgeList& graph, std::size_t k,
                                     double alpha, Rng& rng, ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  const double log_n = std::log2(std::max<double>(n, 2.0));
  const VertexId g = static_cast<VertexId>(
      std::max(1.0, std::floor(alpha / log_n)));
  const VertexId n_groups = (n + g - 1) / g;
  const PeelingVcCoreset coreset;

  // Machine phase: contract the shard onto the group universe, then run the
  // Theorem 2 coreset on the contracted multigraph. Edges internal to a
  // group cannot survive the contraction (they would be self-loops); the
  // machine pins those groups into its fixed solution instead, which is
  // sound because the expansion of the group contains both endpoints.
  const auto build = [&](EdgeSpan shard, const PartitionContext& ctx,
                         Rng& machine_rng) {
    GroupedVcSummary summary;
    std::vector<bool> pinned(n_groups, false);
    EdgeList contracted(n_groups);
    for (const Edge& e : shard) {
      const VertexId gu = e.u / g;
      const VertexId gv = e.v / g;
      if (gu == gv) {
        if (!pinned[gu]) {
          pinned[gu] = true;
          summary.pinned_groups.push_back(gu);
        }
      } else {
        contracted.add(gu, gv);  // multigraph: parallel edges preserved
      }
    }
    // Edges incident to a pinned group are already covered locally.
    contracted = contracted.filter(
        [&](const Edge& e) { return !pinned[e.u] && !pinned[e.v]; });
    const PartitionContext group_ctx{n_groups, ctx.k, ctx.machine_index, 0};
    summary.core = coreset.build(contracted, group_ctx, machine_rng);
    return summary;
  };

  // The pinned groups travel in the message alongside the summary.
  const auto account = [](const GroupedVcSummary& s) {
    return MessageSize{s.core.residual_edges.num_edges(),
                       s.core.fixed_vertices.size() + s.pinned_groups.size()};
  };

  // Coordinator: compose the group-universe coresets, then expand the group
  // cover (and every pinned group) back to original vertices.
  const auto combine = [&](std::vector<GroupedVcSummary>& summaries,
                           Rng& coordinator_rng) {
    std::vector<VcCoresetOutput> cores;
    cores.reserve(summaries.size());
    for (GroupedVcSummary& s : summaries) cores.push_back(std::move(s.core));
    const VertexCover group_cover =
        compose_vc_coresets(cores, n_groups, coordinator_rng);

    VertexCover expanded(n);
    const auto expand_group = [&](VertexId group) {
      const VertexId begin = group * g;
      const VertexId end = std::min<VertexId>(begin + g, n);
      for (VertexId v = begin; v < end; ++v) expanded.insert(v);
    };
    for (VertexId group = 0; group < n_groups; ++group) {
      if (group_cover.contains(group)) expand_group(group);
    }
    for (const GroupedVcSummary& s : summaries) {
      for (VertexId group : s.pinned_groups) expand_group(group);
    }
    return expanded;
  };

  auto engine_result = run_protocol(graph, k, /*left_size=*/0, rng, pool,
                                    build, account, combine);

  VcProtocolResult result;
  result.cover = std::move(engine_result.solution);
  result.comm = std::move(engine_result.comm);
  result.timing = engine_result.timing;
  RCC_CHECK(result.cover.covers(graph));
  return result;
}

}  // namespace rcc
