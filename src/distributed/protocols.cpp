#include "distributed/protocols.hpp"

#include <cmath>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"

namespace rcc {

MatchingProtocolResult coreset_matching_protocol(EdgeSource graph,
                                                 std::size_t k,
                                                 VertexId left_size, Rng& rng,
                                                 ThreadPool* pool) {
  const MaximumMatchingCoreset coreset;
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

MatchingProtocolResult subsampled_matching_protocol(EdgeSource graph,
                                                    std::size_t k, double alpha,
                                                    VertexId left_size, Rng& rng,
                                                    ThreadPool* pool) {
  const SubsampledMatchingCoreset coreset(alpha);
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

VcProtocolResult coreset_vc_protocol(EdgeSource graph, std::size_t k,
                                     Rng& rng, ThreadPool* pool) {
  const PeelingVcCoreset coreset;
  return run_vc_protocol(graph, k, coreset, rng, pool);
}

namespace {

/// The grouping geometry plus the machine phase shared by the barrier and
/// streaming grouped drivers.
struct GroupedVcPhases {
  VertexId n;
  VertexId g;         // group width
  VertexId n_groups;  // contracted universe size
  const PeelingVcCoreset& coreset;

  static GroupedVcPhases make(EdgeSource graph, double alpha,
                              const PeelingVcCoreset& coreset) {
    const VertexId n = graph.num_vertices();
    const double log_n = std::log2(std::max<double>(n, 2.0));
    const VertexId g = static_cast<VertexId>(
        std::max(1.0, std::floor(alpha / log_n)));
    return GroupedVcPhases{n, g, (n + g - 1) / g, coreset};
  }

  // Machine phase: contract the shard onto the group universe, then run the
  // Theorem 2 coreset on the contracted multigraph. Edges internal to a
  // group cannot survive the contraction (they would be self-loops); the
  // machine pins those groups into its fixed solution instead, which is
  // sound because the expansion of the group contains both endpoints.
  auto build() const {
    return [this](EdgeSpan shard, const PartitionContext& ctx,
                  Rng& machine_rng) {
      GroupedVcSummary summary;
      std::vector<bool> pinned(n_groups, false);
      EdgeList contracted(n_groups);
      for (const Edge& e : shard) {
        const VertexId gu = e.u / g;
        const VertexId gv = e.v / g;
        if (gu == gv) {
          if (!pinned[gu]) {
            pinned[gu] = true;
            summary.pinned_groups.push_back(gu);
          }
        } else {
          contracted.add(gu, gv);  // multigraph: parallel edges preserved
        }
      }
      // Edges incident to a pinned group are already covered locally.
      contracted = contracted.filter(
          [&](const Edge& e) { return !pinned[e.u] && !pinned[e.v]; });
      const PartitionContext group_ctx{n_groups, ctx.k, ctx.machine_index, 0};
      summary.core = coreset.build(contracted, group_ctx, machine_rng);
      return summary;
    };
  }

  // The pinned groups travel in the message alongside the summary.
  static MessageSize account(const GroupedVcSummary& s) {
    return MessageSize{s.core.residual_edges.num_edges(),
                       s.core.fixed_vertices.size() + s.pinned_groups.size()};
  }

  void expand_group(VertexCover& expanded, VertexId group) const {
    const VertexId begin = group * g;
    const VertexId end = std::min<VertexId>(begin + g, n);
    for (VertexId v = begin; v < end; ++v) expanded.insert(v);
  }
};

/// StreamingFold of the grouped protocol: absorb stages each machine's core
/// (moved out of the retained summary) and expands its pinned groups;
/// finish composes the group-universe coresets and expands the group cover.
/// Pinned expansion is a set insert, so absorb order cannot change it.
struct GroupedVcStreamFold {
  const GroupedVcPhases& phases;
  std::vector<VcCoresetOutput> cores;
  VertexCover expanded;

  explicit GroupedVcStreamFold(const GroupedVcPhases& phases)
      : phases(phases), expanded(phases.n) {}

  void init(std::size_t k) { cores.resize(k); }
  void absorb(GroupedVcSummary& summary, std::size_t machine) {
    cores[machine] = std::move(summary.core);
    for (VertexId group : summary.pinned_groups) {
      phases.expand_group(expanded, group);
    }
  }
  VertexCover finish(std::vector<GroupedVcSummary>& /*summaries*/, Rng& rng) {
    const VertexCover group_cover =
        compose_vc_coresets(cores, phases.n_groups, rng);
    for (VertexId group = 0; group < phases.n_groups; ++group) {
      if (group_cover.contains(group)) phases.expand_group(expanded, group);
    }
    return std::move(expanded);
  }
};

}  // namespace

GroupedVcProtocolResult grouped_vc_protocol(EdgeSource graph,
                                            std::size_t k, double alpha,
                                            Rng& rng, ThreadPool* pool) {
  const PeelingVcCoreset coreset;
  const GroupedVcPhases phases = GroupedVcPhases::make(graph, alpha, coreset);

  // Coordinator: compose the group-universe coresets, then expand the group
  // cover (and every pinned group) back to original vertices.
  const auto combine = [&](std::vector<GroupedVcSummary>& summaries,
                           Rng& coordinator_rng) {
    std::vector<VcCoresetOutput> cores;
    cores.reserve(summaries.size());
    for (GroupedVcSummary& s : summaries) cores.push_back(std::move(s.core));
    const VertexCover group_cover =
        compose_vc_coresets(cores, phases.n_groups, coordinator_rng);

    VertexCover expanded(phases.n);
    for (VertexId group = 0; group < phases.n_groups; ++group) {
      if (group_cover.contains(group)) phases.expand_group(expanded, group);
    }
    for (const GroupedVcSummary& s : summaries) {
      for (VertexId group : s.pinned_groups) {
        phases.expand_group(expanded, group);
      }
    }
    return expanded;
  };

  GroupedVcProtocolResult result =
      run_protocol(graph, k, /*left_size=*/0, rng, pool, phases.build(),
                   &GroupedVcPhases::account, combine);
  RCC_CHECK(result.solution.covers(graph.edges()));
  return result;
}

MatchingProtocolResult coreset_matching_protocol_streaming(
    EdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool, const StreamingOptions& streaming) {
  const MaximumMatchingCoreset coreset;
  return run_matching_protocol_streaming(graph, k, coreset,
                                         ComposeSolver::kMaximum, left_size,
                                         rng, pool, streaming);
}

VcProtocolResult coreset_vc_protocol_streaming(
    EdgeSource graph, std::size_t k, Rng& rng, ThreadPool* pool,
    const StreamingOptions& streaming) {
  const PeelingVcCoreset coreset;
  return run_vc_protocol_streaming(graph, k, coreset, rng, pool, streaming);
}

GroupedVcProtocolResult grouped_vc_protocol_streaming(
    EdgeSource graph, std::size_t k, double alpha, Rng& rng,
    ThreadPool* pool, const StreamingOptions& streaming) {
  const PeelingVcCoreset coreset;
  const GroupedVcPhases phases = GroupedVcPhases::make(graph, alpha, coreset);
  GroupedVcStreamFold fold(phases);
  GroupedVcProtocolResult result = run_protocol_streaming<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, /*left_size=*/0, rng, pool, phases.build(),
      &GroupedVcPhases::account, fold, streaming);
  RCC_CHECK(result.solution.covers(graph.edges()));
  return result;
}

}  // namespace rcc
