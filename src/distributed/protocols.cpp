#include "distributed/protocols.hpp"

#include <cmath>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "partition/partition.hpp"
#include "util/timer.hpp"

namespace rcc {

MatchingProtocolResult coreset_matching_protocol(const EdgeList& graph,
                                                 std::size_t k,
                                                 VertexId left_size, Rng& rng,
                                                 ThreadPool* pool) {
  const MaximumMatchingCoreset coreset;
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

MatchingProtocolResult subsampled_matching_protocol(const EdgeList& graph,
                                                    std::size_t k, double alpha,
                                                    VertexId left_size, Rng& rng,
                                                    ThreadPool* pool) {
  const SubsampledMatchingCoreset coreset(alpha);
  return run_matching_protocol(graph, k, coreset, ComposeSolver::kMaximum,
                               left_size, rng, pool);
}

VcProtocolResult coreset_vc_protocol(const EdgeList& graph, std::size_t k,
                                     Rng& rng, ThreadPool* pool) {
  const PeelingVcCoreset coreset;
  return run_vc_protocol(graph, k, coreset, rng, pool);
}

VcProtocolResult grouped_vc_protocol(const EdgeList& graph, std::size_t k,
                                     double alpha, Rng& rng, ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  const double log_n = std::log2(std::max<double>(n, 2.0));
  const VertexId g = static_cast<VertexId>(
      std::max(1.0, std::floor(alpha / log_n)));
  const VertexId n_groups = (n + g - 1) / g;

  WallTimer timer;
  const std::vector<EdgeList> pieces = random_partition(graph, k, rng);
  const double partition_seconds = timer.seconds();

  // Machine-local contraction. Edges internal to a group cannot survive the
  // contraction (they would be self-loops); the machine pins those groups
  // into its fixed solution instead, which is sound because the expansion of
  // the group contains both endpoints.
  std::vector<EdgeList> contracted(k, EdgeList(n_groups));
  std::vector<std::vector<VertexId>> pinned_groups(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<bool> pinned(n_groups, false);
    for (const Edge& e : pieces[i]) {
      const VertexId gu = e.u / g;
      const VertexId gv = e.v / g;
      if (gu == gv) {
        if (!pinned[gu]) {
          pinned[gu] = true;
          pinned_groups[i].push_back(gu);
        }
      } else {
        contracted[i].add(gu, gv);  // multigraph: parallel edges preserved
      }
    }
    // Edges incident to a pinned group are already covered locally.
    contracted[i] = contracted[i].filter(
        [&](const Edge& e) { return !pinned[e.u] && !pinned[e.v]; });
  }

  const PeelingVcCoreset coreset;
  VcProtocolResult grouped = run_vc_protocol_on_partition(
      contracted, coreset, n_groups, rng, pool);
  grouped.timing.partition_seconds = partition_seconds;

  // Account the pinned groups as part of each machine's message.
  for (std::size_t i = 0; i < k; ++i) {
    grouped.comm.per_machine[i].vertices += pinned_groups[i].size();
  }

  // Expand group cover back to original vertices.
  VertexCover expanded(n);
  auto expand_group = [&](VertexId group) {
    const VertexId begin = group * g;
    const VertexId end = std::min<VertexId>(begin + g, n);
    for (VertexId v = begin; v < end; ++v) expanded.insert(v);
  };
  for (VertexId group = 0; group < n_groups; ++group) {
    if (grouped.cover.contains(group)) expand_group(group);
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (VertexId group : pinned_groups[i]) expand_group(group);
  }

  VcProtocolResult result;
  result.cover = std::move(expanded);
  result.comm = std::move(grouped.comm);
  result.timing = grouped.timing;
  RCC_CHECK(result.cover.covers(graph));
  return result;
}

}  // namespace rcc
