// Named end-to-end protocols from the paper, built on the engine:
//
//  * coreset_matching_protocol   — Result 1 upper bound: maximum-matching
//    coresets, O~(nk) total communication, O(1)-approx.
//  * subsampled_matching_protocol — Remark 5.2: trade approximation alpha
//    for communication O~(nk/alpha^2).
//  * coreset_vc_protocol         — Result 1: peeling coresets, O(log n)-approx.
//  * grouped_vc_protocol         — Remark 5.8: contract vertex groups of
//    size Theta(alpha / log n) and run the Theorem 2 coreset on the
//    resulting *multigraph*; alpha-approx with O~(nk/alpha) communication.
#pragma once

#include "distributed/protocol.hpp"

namespace rcc {

MatchingProtocolResult coreset_matching_protocol(EdgeSource graph,
                                                 std::size_t k,
                                                 VertexId left_size, Rng& rng,
                                                 ThreadPool* pool = nullptr);

MatchingProtocolResult subsampled_matching_protocol(EdgeSource graph,
                                                    std::size_t k, double alpha,
                                                    VertexId left_size, Rng& rng,
                                                    ThreadPool* pool = nullptr);

VcProtocolResult coreset_vc_protocol(EdgeSource graph, std::size_t k,
                                     Rng& rng, ThreadPool* pool = nullptr);

/// One machine's message in the grouped protocol: the Theorem 2 summary on
/// the contracted multigraph, plus the groups the machine pinned locally.
struct GroupedVcSummary {
  VcCoresetOutput core;
  std::vector<VertexId> pinned_groups;
};

/// The grouped protocol's canonical result type (its summary shape differs
/// from the plain VC protocol's, so it gets its own ProtocolResult).
using GroupedVcProtocolResult = ProtocolResult<VertexCover, GroupedVcSummary>;

/// Remark 5.8. Vertices are grouped as [v/g] with g = max(1,
/// floor(alpha / log2 n)); each machine contracts its piece onto the group
/// universe (dropping nothing: an edge internal to a group pins that group
/// into the machine's fixed solution, since any cover must take one of its
/// endpoints and the group expansion contains both). The returned cover
/// lives in the *original* vertex universe.
GroupedVcProtocolResult grouped_vc_protocol(EdgeSource graph,
                                            std::size_t k, double alpha,
                                            Rng& rng,
                                            ThreadPool* pool = nullptr);

/// Streaming variants of the named protocols (see
/// run_matching_protocol_streaming for the order/determinism contract).
MatchingProtocolResult coreset_matching_protocol_streaming(
    EdgeSource graph, std::size_t k, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr, const StreamingOptions& streaming = {});

VcProtocolResult coreset_vc_protocol_streaming(
    EdgeSource graph, std::size_t k, Rng& rng, ThreadPool* pool = nullptr,
    const StreamingOptions& streaming = {});

GroupedVcProtocolResult grouped_vc_protocol_streaming(
    EdgeSource graph, std::size_t k, double alpha, Rng& rng,
    ThreadPool* pool = nullptr, const StreamingOptions& streaming = {});

}  // namespace rcc
