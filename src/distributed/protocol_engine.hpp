// The unified simultaneous-protocol engine (coordinator model, Section 2).
//
// Every protocol in this library — unweighted/weighted matching,
// unweighted/weighted/grouped vertex cover, and the MPC simulation's
// coreset round — is one instance of the same three-phase pipeline:
//
//   partition  — the sharded partitioner scatters the input into one flat
//                edge arena with a per-machine offset index (zero-copy
//                pieces; see partition/sharded_partition.hpp),
//   machines   — every machine builds its summary from its arena shard,
//                one task per machine on the thread pool, each with an
//                up-front forked RNG stream so results are independent of
//                thread scheduling,
//   combine    — the coordinator folds the k summaries into a solution
//                (matching solver / VC union / weighted merge — pluggable).
//
// The engine is generic over the edge payload (Edge / WeightedEdge), the
// summary type, and the three phase callables, and returns a unified
// ProtocolResult carrying the solution, the retained summaries, word-exact
// communication stats, and per-phase wall timings. The legacy entry points
// in protocol.hpp / protocols.hpp / weighted_*_protocol.hpp are thin
// wrappers over run_protocol / run_protocol_on_pieces.
//
// Adding a protocol variant means writing three lambdas — see the wrappers
// in protocol.cpp for the pattern; no new driver loop, accounting, or
// timing code.
#pragma once

#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "distributed/message.hpp"
#include "partition/partition.hpp"
#include "partition/sharded_partition.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rcc {

/// Wall time of each engine phase.
struct ProtocolTiming {
  double partition_seconds = 0.0;
  double summaries_seconds = 0.0;  // wall time of the parallel machine phase
  double combine_seconds = 0.0;
};

/// What every protocol run returns: the coordinator's solution, the machine
/// summaries (retained for probes and experiments), the communication
/// ledger, and per-phase timings.
template <typename Solution, typename Summary>
struct ProtocolResult {
  Solution solution;
  std::vector<Summary> summaries;
  CommStats comm;
  ProtocolTiming timing;
};

/// Machine + combine phases over pre-made pieces (arena shards, or any
/// contiguous edge storage — experiments use this to contrast random vs
/// adversarial partitionings on identical edges).
///
///   build(piece, ctx, machine_rng) -> Summary   one machine's summary,
///       where piece is the typed view (EdgeSpan / WeightedEdgeSpan) over
///       the machine's shard
///   account(summary)               -> MessageSize   word-exact message cost
///   combine(summaries, rng)        -> Solution   the coordinator phase
template <typename EdgeT, typename Build, typename Account, typename Combine>
auto run_protocol_on_pieces(const std::vector<std::span<const EdgeT>>& pieces,
                            VertexId num_vertices, VertexId left_size, Rng& rng,
                            ThreadPool* pool, const Build& build,
                            const Account& account, const Combine& combine) {
  using View = typename EdgeViewOf<EdgeT>::type;
  using Summary = std::decay_t<std::invoke_result_t<
      const Build&, View, const PartitionContext&, Rng&>>;
  using Solution = std::decay_t<
      std::invoke_result_t<const Combine&, std::vector<Summary>&, Rng&>>;

  const std::size_t k = pieces.size();
  RCC_CHECK(k >= 1);
  ProtocolResult<Solution, Summary> result;

  // Machine phase. RNG streams are forked up front so the outcome does not
  // depend on thread scheduling.
  WallTimer timer;
  std::vector<Rng> machine_rngs;
  machine_rngs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) machine_rngs.push_back(rng.fork());
  result.summaries.resize(k);
  const auto machine_work = [&](std::size_t i) {
    const PartitionContext ctx{num_vertices, k, i, left_size};
    const View piece(pieces[i].data(), pieces[i].size(), num_vertices);
    result.summaries[i] = build(piece, ctx, machine_rngs[i]);
  };
  if (pool != nullptr) {
    parallel_for(*pool, k, machine_work);
  } else {
    for (std::size_t i = 0; i < k; ++i) machine_work(i);
  }
  result.timing.summaries_seconds = timer.seconds();

  result.comm.per_machine.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.comm.per_machine[i] = account(result.summaries[i]);
  }

  timer.reset();
  result.solution = combine(result.summaries, rng);
  result.timing.combine_seconds = timer.seconds();
  return result;
}

/// Adapts a sharded partition into engine pieces (zero-copy arena slices;
/// the partition must outlive the call).
template <typename EdgeT>
std::vector<std::span<const EdgeT>> pieces_of(
    const ShardedPartition<EdgeT>& parts) {
  std::vector<std::span<const EdgeT>> pieces;
  pieces.reserve(parts.num_machines());
  for (std::size_t i = 0; i < parts.num_machines(); ++i) {
    pieces.push_back(parts.shard(i));
  }
  return pieces;
}

/// The full pipeline: sharded random partition, then machines + combine.
/// The partition and machine phases both run on `pool` when provided.
template <typename EdgeT, typename Build, typename Account, typename Combine>
auto run_protocol(std::span<const EdgeT> edges, VertexId num_vertices,
                  std::size_t k, VertexId left_size, Rng& rng, ThreadPool* pool,
                  const Build& build, const Account& account,
                  const Combine& combine) {
  WallTimer timer;
  const ShardedPartition<EdgeT> parts(edges, num_vertices, k, rng, pool);
  const double partition_seconds = timer.seconds();

  auto result = run_protocol_on_pieces<EdgeT>(pieces_of(parts), num_vertices,
                                              left_size, rng, pool, build,
                                              account, combine);
  result.timing.partition_seconds = partition_seconds;
  return result;
}

/// Whole-graph conveniences: run the full pipeline straight off an owning
/// edge list (the common entry-point shape) without each caller spelling
/// out the raw span plumbing.
template <typename Build, typename Account, typename Combine>
auto run_protocol(const EdgeList& graph, std::size_t k, VertexId left_size,
                  Rng& rng, ThreadPool* pool, const Build& build,
                  const Account& account, const Combine& combine) {
  return run_protocol<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, left_size, rng, pool, build, account, combine);
}

template <typename Build, typename Account, typename Combine>
auto run_protocol(const WeightedEdgeList& graph, std::size_t k,
                  VertexId left_size, Rng& rng, ThreadPool* pool,
                  const Build& build, const Account& account,
                  const Combine& combine) {
  return run_protocol<WeightedEdge>(
      std::span<const WeightedEdge>(graph.edges.data(), graph.edges.size()),
      graph.num_vertices, k, left_size, rng, pool, build, account, combine);
}

/// Adapts a vector of owning edge lists into engine pieces (zero-copy views;
/// the lists must outlive the call). All pieces must share one vertex
/// universe — the engine rebuilds each view with the caller's num_vertices,
/// so a divergent piece would silently have its universe overridden.
inline std::vector<std::span<const Edge>> pieces_of(
    const std::vector<EdgeList>& lists) {
  std::vector<std::span<const Edge>> pieces;
  pieces.reserve(lists.size());
  for (const EdgeList& l : lists) {
    RCC_CHECK(l.num_vertices() == lists.front().num_vertices());
    pieces.emplace_back(l.edges().data(), l.num_edges());
  }
  return pieces;
}

}  // namespace rcc
