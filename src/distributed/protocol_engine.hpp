// The unified simultaneous-protocol engine (coordinator model, Section 2).
//
// Every protocol in this library — unweighted/weighted matching,
// unweighted/weighted/grouped vertex cover, and the MPC simulation's
// coreset round — is one instance of the same three-phase pipeline:
//
//   partition  — the sharded partitioner scatters the input into one flat
//                edge arena with a per-machine offset index (zero-copy
//                pieces; see partition/sharded_partition.hpp),
//   machines   — every machine builds its summary from its arena shard,
//                one task per machine on the thread pool, each with an
//                up-front forked RNG stream so results are independent of
//                thread scheduling,
//   combine    — the coordinator folds the k summaries into a solution
//                (matching solver / VC union / weighted merge — pluggable).
//
// The engine is generic over the edge payload (Edge / WeightedEdge), the
// summary type, and the three phase callables, and returns a unified
// ProtocolResult carrying the solution, the retained summaries, word-exact
// communication stats, and per-phase wall timings. The legacy entry points
// in protocol.hpp / protocols.hpp / weighted_*_protocol.hpp are thin
// wrappers over run_protocol / run_protocol_on_pieces.
//
// Adding a protocol variant means writing three lambdas — see the wrappers
// in protocol.cpp for the pattern; no new driver loop, accounting, or
// timing code.
//
// The combine phase has two shapes:
//
//   * the ALL-SUMMARIES fold `combine(summaries, rng)` — the coordinator
//     waits for every machine (a barrier) and folds the whole vector, and
//   * the STREAMING fold — machines push completed summaries into a bounded
//     completion queue and a StreamingFold (`init / absorb(summary, machine)
//     / finish`) consumes them as they land, overlapping the machine and
//     combine phases so the coordinator is not gated on the slowest shard.
//
// run_protocol_on_pieces (the all-summaries shape) is a thin wrapper over
// the streaming core with a no-op absorb. Streaming keeps the repo's
// seed-for-seed determinism contract in StreamingOrder::kCanonical: a small
// reorder buffer keyed on machine id makes the absorb order canonical, so a
// canonical streaming run is draw-for-draw identical to the barrier fold.
// StreamingOrder::kArrival absorbs in completion order — the fastest
// overlap, for folds whose result is absorb-order independent.
#pragma once

#include <array>
#include <atomic>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "distributed/message.hpp"
#include "distributed/shm_transport.hpp"
#include "distributed/socket_transport.hpp"
#include "distributed/summary_wire.hpp"
#include "graph/edge_source.hpp"
#include "partition/partition.hpp"
#include "partition/sharded_partition.hpp"
#include "util/completion.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/workspace.hpp"

namespace rcc {

class Options;

/// Wall time of each engine phase.
struct ProtocolTiming {
  double partition_seconds = 0.0;
  double summaries_seconds = 0.0;  // wall time of the parallel machine phase
                                   // (streaming: machine phase + overlapped
                                   // absorbs, until the last absorb returns)
  double combine_seconds = 0.0;    // barrier: the whole fold;
                                   // streaming: the finish call only
};

/// Absorb scheduling of the streaming combine path.
enum class StreamingOrder {
  kCanonical,  // absorb in machine-id order via a reorder buffer —
               // seed-for-seed identical to the all-summaries fold
  kArrival,    // absorb in completion order — maximal overlap, only for
               // folds whose result is absorb-order independent
};

/// How machine summaries reach the coordinator.
enum class EngineTransport {
  kInproc,  // shared address space: thread pool + completion queue
  kSocket,  // k forked worker processes streaming framed summaries over
            // loopback TCP (summary_wire.hpp / socket_transport.hpp)
  kShm,     // k forked worker processes exchanging the same frames through
            // shared-memory rings (shm_transport.hpp); persistent workers
            // when a multi-round executor provides a pool
};

/// Knobs of the streaming combine path.
struct StreamingOptions {
  StreamingOrder order = StreamingOrder::kCanonical;
  /// Completion-queue slots between the machines and the coordinator;
  /// 0 sizes the queue to k so producers never block on a slow consumer.
  std::size_t queue_capacity = 0;
  /// Where the machine phase runs. kSocket and kShm require a
  /// WireSerializable summary type and ignore the thread pool — the worker
  /// processes ARE the parallelism.
  EngineTransport transport = EngineTransport::kInproc;
  /// Socket-transport knobs (port, deadline, fault injection); unused for
  /// kInproc.
  SocketTransportOptions socket;
  /// Shm-transport knobs (ring capacity, deadline, fault injection); unused
  /// unless transport == kShm.
  ShmTransportOptions shm;
  /// A live persistent worker pool for transport == kShm, or null. Set by
  /// multi-round executors (run_mpc_rounds) that forked the pool INSIDE
  /// round 0, right after the first partition: the engine ships round 0 an
  /// rng-only control frame (the workers' copy-on-write snapshots already
  /// hold their round-0 shards) and every later round its piece + forked
  /// RNG stream DOWN the pool's rings instead of forking fresh workers. The
  /// workers must be running the executor's round-loop body, which decodes
  /// that protocol. Null means the engine forks ephemeral ring workers for
  /// this one call (single-round drivers). Edge-typed pieces only.
  ShmWorkerPool* shm_pool = nullptr;
};

/// What crossed a process boundary; all zeros for in-process runs.
struct TransportTelemetry {
  EngineTransport kind = EngineTransport::kInproc;
  std::uint64_t wire_bytes = 0;  // framed bytes received (headers + payloads)
  std::uint64_t frames = 0;      // summary frames received (== k on success)
  /// Downlink bytes the coordinator shipped (piece-delivery frames of a
  /// persistent shm pool); 0 for transports that inherit pieces via fork.
  std::uint64_t piece_bytes = 0;
  /// Worker processes forked FOR THIS CALL: k for socket and ephemeral shm
  /// runs, 0 for a round served by a persistent pool (its forks happened at
  /// spawn — the amortization the pool exists to provide).
  std::uint64_t forks = 0;
};

/// What the streaming path observed; all zeros for barrier runs.
struct StreamingTelemetry {
  bool streamed = false;
  StreamingOrder order = StreamingOrder::kCanonical;
  /// Summaries the coordinator absorbed BEFORE the machine phase finished
  /// (i.e. before the last summary was built): the pipelining the streaming
  /// path exists to create — 0 on a barrier run (everything is absorbed
  /// after the phase), up to k-1 on a perfectly skewed one. With a thread
  /// pool this is wall-clock machine/combine overlap; on a sequential run
  /// it measures the same interleaving (absorb i precedes build i+1), just
  /// without concurrency.
  std::size_t absorbed_while_machines_ran = 0;
};

/// What every protocol run returns: the coordinator's solution, the machine
/// summaries (retained for probes and experiments), the communication
/// ledger, per-phase timings, and the streaming overlap telemetry.
template <typename Solution, typename Summary>
struct ProtocolResult {
  Solution solution;
  std::vector<Summary> summaries;
  CommStats comm;
  ProtocolTiming timing;
  StreamingTelemetry streaming;
  TransportTelemetry transport;
};

/// Machine phases + STREAMING combine over pre-made pieces. This is the
/// engine core; the all-summaries shape below wraps it.
///
///   build(piece, ctx, machine_rng) -> Summary   one machine's summary,
///       where piece is the typed view (EdgeSpan / WeightedEdgeSpan) over
///       the machine's shard
///   account(summary)               -> MessageSize   word-exact message cost
///
/// The StreamingFold contract:
///
///   fold.init(k)                      optional; before any machine runs
///   fold.absorb(summary, machine)     once per machine, in opts.order; runs
///       on the CALLER's thread, overlapped with other machines' build calls
///       — it must not mutate state the build phase reads. The summary's
///       message cost is accounted before the call, so absorb may move the
///       summary's contents out. A fold that needs the cost (e.g. to charge
///       a ledger) declares absorb(summary, machine, const MessageSize&)
///       instead and receives the recorded cost — account is never
///       re-evaluated
///   fold.finish(summaries, rng) -> Solution   after every absorb; the
///       retained summary vector is passed for folds (like the barrier
///       wrapper) that want the whole collection
///
/// RNG discipline matches the barrier path exactly: k machine streams are
/// forked up front, absorb draws nothing, finish gets the coordinator's rng —
/// so a canonical-order streaming run consumes the identical stream.
template <typename EdgeT, typename Build, typename Account, typename StreamFold>
auto run_protocol_streaming_on_pieces(
    const std::vector<std::span<const EdgeT>>& pieces, VertexId num_vertices,
    VertexId left_size, Rng& rng, ThreadPool* pool, const Build& build,
    const Account& account, StreamFold&& fold,
    const StreamingOptions& opts = {},
    ProtocolWorkspace* workspace = nullptr) {
  using View = typename EdgeViewOf<EdgeT>::type;
  using Summary = std::decay_t<std::invoke_result_t<
      const Build&, View, const PartitionContext&, Rng&>>;
  using Solution = std::decay_t<decltype(fold.finish(
      std::declval<std::vector<Summary>&>(), std::declval<Rng&>()))>;

  const std::size_t k = pieces.size();
  RCC_CHECK(k >= 1);
  ProtocolResult<Solution, Summary> result;
  result.streaming.streamed = true;
  result.streaming.order = opts.order;

  if constexpr (requires { fold.init(k); }) fold.init(k);

  // RNG streams are forked up front so the outcome does not depend on
  // thread scheduling.
  WallTimer timer;
  std::vector<Rng> machine_rngs;
  machine_rngs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) machine_rngs.push_back(rng.fork());
  result.summaries.resize(k);
  // Round-persistent scratch: machine i always receives workspace scratch i
  // (pre-grown here — the set must not grow concurrently), so repeated
  // rounds reuse one warmed working set per machine slot.
  if (workspace != nullptr) workspace->ensure_machines(k);
  const auto machine_work = [&](std::size_t i) {
    const PartitionContext ctx{
        num_vertices, k, i, left_size,
        workspace != nullptr ? &workspace->machine(i) : nullptr};
    const View piece(pieces[i].data(), pieces[i].size(), num_vertices);
    result.summaries[i] = build(piece, ctx, machine_rngs[i]);
  };

  // A summary's word-exact cost is recorded the moment it is handed to the
  // coordinator — before absorb, which is thereby free to consume (move out
  // of) the retained summary; cost-aware folds get the recorded MessageSize
  // instead of re-running account.
  result.comm.per_machine.resize(k);
  const auto deliver = [&](std::size_t id) {
    result.comm.per_machine[id] = account(result.summaries[id]);
    if constexpr (requires {
                    fold.absorb(result.summaries[id], id,
                                result.comm.per_machine[id]);
                  }) {
      fold.absorb(result.summaries[id], id, result.comm.per_machine[id]);
    } else {
      fold.absorb(result.summaries[id], id);
    }
  };
  // Cross-process transports share one collect loop: pull k frames off the
  // transport in arrival order — the exact role CompletionQueue::pop plays
  // in-process — decode, and absorb through the same CanonicalReorder, so
  // folds, accounting, and RNG draws carry over unchanged. (A generic
  // lambda, called only from the WireSerializable branches below; `frame`
  // stays type-dependent on the lambda parameter so the decode call is not
  // checked for non-serializable summaries.)
  const auto collect_frames = [&](auto&& next_frame) {
    CanonicalReorder reorder(k);
    for (std::size_t received = 0; received < k; ++received) {
      auto frame = next_frame();
      const std::size_t id = frame.header.machine;
      result.summaries[id] =
          decode_frame_payload<Summary>(frame.header, frame.payload.data());
      const auto absorb = [&](std::size_t m) {
        if (received + 1 < k) {
          ++result.streaming.absorbed_while_machines_ran;
        }
        deliver(m);
      };
      if (opts.order == StreamingOrder::kArrival) {
        absorb(id);
      } else {
        reorder.complete(id, absorb);
      }
    }
    if (opts.order == StreamingOrder::kCanonical) {
      RCC_CHECK(reorder.drained());
    }
  };
  if (opts.transport == EngineTransport::kSocket) {
    // Cross-process machine phase: fork k workers, each builds its summary
    // on its copy-on-write inherited piece (with the rng stream forked for
    // it ABOVE, in the parent — so the coordinator rng's position is
    // identical to the in-process paths), frames it per summary_wire.hpp,
    // and streams it to this process over loopback. The thread pool is
    // ignored: workers are the parallelism.
    if constexpr (WireSerializable<Summary>) {
      const SocketTransportOptions& sock = opts.socket;
      LoopbackListener listener(sock.leader_port);
      const std::uint16_t port = listener.port();
      const auto worker_body = [&](std::size_t i) {
        if (static_cast<long>(i) == sock.fault_kill_machine) {
          worker_exit_silently();
        }
        machine_work(i);  // fills the CHILD's copy of summaries[i]
        const std::vector<std::uint8_t> frame =
            encode_frame(result.summaries[i], static_cast<std::uint32_t>(i));
        const int fd = connect_to_leader(port, sock.timeout_ms);
        if (static_cast<long>(i) == sock.fault_partial_frame_machine) {
          send_partial_frame_and_die(fd, frame.data(), frame.size());
        }
        send_all(fd, frame.data(), frame.size());
      };
      const std::vector<pid_t> workers = spawn_workers(k, worker_body);
      {
        FrameCollector collector(listener, k, sock.timeout_ms);
        collect_frames([&] { return collector.next_ready(); });
        result.transport.kind = EngineTransport::kSocket;
        result.transport.wire_bytes = collector.wire_bytes();
        result.transport.frames = collector.frames_delivered();
        result.transport.forks = k;
      }
      reap_workers(workers);
    } else {
      RCC_CHECK(
          !"engine transport 'socket' requires a wire-serializable summary");
    }
  } else if (opts.transport == EngineTransport::kShm) {
    if constexpr (WireSerializable<Summary>) {
      bool served_by_pool = false;
      if constexpr (std::is_same_v<EdgeT, Edge>) {
        if (opts.shm_pool != nullptr) {
          // Persistent pool (multi-round executors): the workers forked
          // ONCE, inside round 0 right after the first partition, and are
          // idling in their round loop. Round 0's pieces therefore rode the
          // fork itself (copy-on-write, the socket transport's free piece
          // story) and its frames carry only the rng stream forked for each
          // machine ABOVE (so the coordinator rng's position is identical
          // to every other path); later rounds repartition after the fork,
          // so their frames ship the actual piece. Collect the summary
          // frames back off the rings either way.
          served_by_pool = true;
          ShmWorkerPool& worker_pool = *opts.shm_pool;
          RCC_CHECK(worker_pool.machines() == k);
          const std::uint64_t wire_before = worker_pool.wire_bytes();
          const std::uint64_t piece_before = worker_pool.piece_bytes();
          worker_pool.begin_round();
          const bool piece_rode_the_fork = worker_pool.round() == 0;
          for (std::size_t i = 0; i < k; ++i) {
            // Stack-built prefix + the shard bytes streamed straight from
            // the partition: the downlink never stages a frame-sized
            // scratch vector (megabytes per machine per round on dense
            // multi-round runs).
            std::array<std::uint8_t, kPieceFramePrefixBytes> prefix;
            const std::size_t body_edges =
                piece_rode_the_fork ? 0 : pieces[i].size();
            encode_piece_frame_prefix(
                body_edges, num_vertices, machine_rngs[i].state(),
                worker_pool.round(), static_cast<std::uint32_t>(i),
                prefix.data());
            worker_pool.send_frame(
                i, prefix.data(), prefix.size(),
                reinterpret_cast<const std::uint8_t*>(pieces[i].data()),
                body_edges * sizeof(Edge));
          }
          collect_frames([&] { return worker_pool.next_ready(); });
          result.transport.kind = EngineTransport::kShm;
          result.transport.wire_bytes = worker_pool.wire_bytes() - wire_before;
          result.transport.frames = k;
          result.transport.piece_bytes =
              worker_pool.piece_bytes() - piece_before;
          result.transport.forks = 0;  // forked at spawn, not per round
        }
      }
      if (!served_by_pool) {
        // Ephemeral ring workers: fork k processes for this one call, each
        // building on its copy-on-write inherited piece (socket-path
        // discipline) and writing its frame through its uplink ring.
        const ShmTransportOptions& shm = opts.shm;
        ShmWorkerPool worker_pool(k, shm);
        worker_pool.spawn([&](std::size_t i, ShmWorkerEndpoint& endpoint) {
          if (static_cast<long>(i) == shm.fault_kill_machine) {
            worker_exit_silently();
          }
          machine_work(i);  // fills the CHILD's copy of summaries[i]
          const std::vector<std::uint8_t> frame =
              encode_frame(result.summaries[i], static_cast<std::uint32_t>(i));
          if (static_cast<long>(i) == shm.fault_partial_frame_machine) {
            endpoint.write_raw(frame.data(),
                               kFrameHeaderBytes +
                                   (frame.size() - kFrameHeaderBytes) / 2);
            worker_exit_silently();
          }
          endpoint.write_frame(frame.data(), frame.size());
        });
        collect_frames([&] { return worker_pool.next_ready(); });
        result.transport.kind = EngineTransport::kShm;
        result.transport.wire_bytes = worker_pool.wire_bytes();
        result.transport.frames = worker_pool.frames_delivered();
        result.transport.forks = worker_pool.forks();
        worker_pool.reap();
      }
    } else {
      RCC_CHECK(
          !"engine transport 'shm' requires a wire-serializable summary");
    }
  } else if (pool == nullptr || pool->size() == 1 || k == 1) {
    // Sequential: build and absorb alternate machine by machine, so arrival
    // order IS canonical order and every absorb but the last overlaps an
    // unfinished machine in the schedule sense. A one-worker pool takes this
    // branch too — it admits no machine/absorb overlap, so the dispatch
    // (one futex wake per machine while the coordinator blocks on the
    // completion queue) is pure overhead on top of the same schedule.
    for (std::size_t i = 0; i < k; ++i) {
      machine_work(i);
      deliver(i);
      if (i + 1 < k) ++result.streaming.absorbed_while_machines_ran;
    }
  } else {
    CompletionQueue queue(opts.queue_capacity == 0 ? k : opts.queue_capacity);
    std::atomic<std::size_t> building{k};
    for (std::size_t i = 0; i < k; ++i) {
      pool->submit([&, i] {
        machine_work(i);
        building.fetch_sub(1, std::memory_order_release);
        queue.push(i);
      });
    }
    const auto absorb = [&](std::size_t id) {
      if (building.load(std::memory_order_acquire) > 0) {
        ++result.streaming.absorbed_while_machines_ran;
      }
      deliver(id);
    };
    if (opts.order == StreamingOrder::kArrival) {
      for (std::size_t done = 0; done < k; ++done) absorb(queue.pop());
    } else {
      // Canonical order: the reorder buffer releases machine ids in
      // ascending order; an id is absorbable once every lower id has been.
      // The same CanonicalReorder sits on top of the socket transport's
      // frame collector above — one copy of the determinism mechanism.
      CanonicalReorder reorder(k);
      for (std::size_t done = 0; done < k; ++done) {
        reorder.complete(queue.pop(), absorb);
      }
      RCC_CHECK(reorder.drained());
    }
    pool->wait_idle();
  }
  result.timing.summaries_seconds = timer.seconds();

  timer.reset();
  result.solution = fold.finish(result.summaries, rng);
  result.timing.combine_seconds = timer.seconds();
  return result;
}

namespace engine_detail {

/// Adapts an all-summaries combine into the StreamingFold contract: absorb
/// is a no-op (the summaries already land in the engine's retained vector)
/// and finish is the barrier fold.
template <typename Combine>
struct BarrierFold {
  const Combine& combine;

  template <typename Summary>
  void absorb(Summary&, std::size_t) {}
  template <typename Summary>
  auto finish(std::vector<Summary>& summaries, Rng& rng) {
    return combine(summaries, rng);
  }
};

}  // namespace engine_detail

/// Machine + combine phases over pre-made pieces (arena shards, or any
/// contiguous edge storage — experiments use this to contrast random vs
/// adversarial partitionings on identical edges). The all-summaries shape:
///
///   combine(summaries, rng) -> Solution   the coordinator phase, after a
///       barrier on the whole machine phase
///
/// Implemented as a no-op-absorb wrapper over the streaming core above, so
/// both shapes share one driver loop and accounting path.
template <typename EdgeT, typename Build, typename Account, typename Combine>
auto run_protocol_on_pieces(const std::vector<std::span<const EdgeT>>& pieces,
                            VertexId num_vertices, VertexId left_size, Rng& rng,
                            ThreadPool* pool, const Build& build,
                            const Account& account, const Combine& combine,
                            ProtocolWorkspace* workspace = nullptr) {
  engine_detail::BarrierFold<Combine> fold{combine};
  auto result = run_protocol_streaming_on_pieces<EdgeT>(
      pieces, num_vertices, left_size, rng, pool, build, account, fold,
      StreamingOptions{}, workspace);
  // The fold saw nothing before the barrier; report barrier semantics.
  result.streaming = StreamingTelemetry{};
  return result;
}

/// Adapts a sharded partition into engine pieces (zero-copy arena slices;
/// the partition must outlive the call).
template <typename EdgeT>
std::vector<std::span<const EdgeT>> pieces_of(
    const ShardedPartition<EdgeT>& parts) {
  std::vector<std::span<const EdgeT>> pieces;
  pieces.reserve(parts.num_machines());
  for (std::size_t i = 0; i < parts.num_machines(); ++i) {
    pieces.push_back(parts.shard(i));
  }
  return pieces;
}

/// The full pipeline: sharded random partition, then machines + combine.
/// The partition and machine phases both run on `pool` when provided.
template <typename EdgeT, typename Build, typename Account, typename Combine>
auto run_protocol(std::span<const EdgeT> edges, VertexId num_vertices,
                  std::size_t k, VertexId left_size, Rng& rng, ThreadPool* pool,
                  const Build& build, const Account& account,
                  const Combine& combine) {
  WallTimer timer;
  const ShardedPartition<EdgeT> parts(edges, num_vertices, k, rng, pool);
  const double partition_seconds = timer.seconds();

  auto result = run_protocol_on_pieces<EdgeT>(pieces_of(parts), num_vertices,
                                              left_size, rng, pool, build,
                                              account, combine);
  result.timing.partition_seconds = partition_seconds;
  return result;
}

/// Whole-graph conveniences: run the full pipeline straight off an
/// EdgeSource (the common entry-point shape) without each caller spelling
/// out the raw span plumbing. EdgeSource converts implicitly from both an
/// owning EdgeList and an mmap-backed MappedGraph (graph/edge_source.hpp),
/// so the same call works in-memory and out-of-core.
template <typename Build, typename Account, typename Combine>
auto run_protocol(EdgeSource graph, std::size_t k, VertexId left_size,
                  Rng& rng, ThreadPool* pool, const Build& build,
                  const Account& account, const Combine& combine) {
  return run_protocol<Edge>(
      std::span<const Edge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, left_size, rng, pool, build, account, combine);
}

template <typename Build, typename Account, typename Combine>
auto run_protocol(WeightedEdgeSource graph, std::size_t k,
                  VertexId left_size, Rng& rng, ThreadPool* pool,
                  const Build& build, const Account& account,
                  const Combine& combine) {
  return run_protocol<WeightedEdge>(
      std::span<const WeightedEdge>(graph.edges().data(), graph.num_edges()),
      graph.num_vertices(), k, left_size, rng, pool, build, account, combine);
}

/// The full streaming pipeline: sharded random partition, then machines
/// streaming their summaries into the fold as they finish.
template <typename EdgeT, typename Build, typename Account, typename StreamFold>
auto run_protocol_streaming(std::span<const EdgeT> edges,
                            VertexId num_vertices, std::size_t k,
                            VertexId left_size, Rng& rng, ThreadPool* pool,
                            const Build& build, const Account& account,
                            StreamFold&& fold,
                            const StreamingOptions& opts = {}) {
  WallTimer timer;
  const ShardedPartition<EdgeT> parts(edges, num_vertices, k, rng, pool);
  const double partition_seconds = timer.seconds();

  auto result = run_protocol_streaming_on_pieces<EdgeT>(
      pieces_of(parts), num_vertices, left_size, rng, pool, build, account,
      std::forward<StreamFold>(fold), opts);
  result.timing.partition_seconds = partition_seconds;
  return result;
}

/// Registers the streaming combine + transport knobs on an Options parser:
///   --engine-streaming             stream summaries into the coordinator fold
///   --engine-streaming-order       arrival | canonical (reorder buffer)
///   --engine-queue-capacity        completion-queue slots (0 = one/machine)
///   --engine-transport             inproc | socket (forked workers over
///                                  loopback) | shm (forked workers over
///                                  shared-memory rings); both cross-process
///                                  values imply the streaming path
///   --engine-transport-port        coordinator port (0 = ephemeral)
///   --engine-transport-timeout-ms  socket/shm deadline per wait
///   --engine-shm-ring-bytes        per-direction ring capacity for shm
void add_streaming_flags(Options& options);

/// Reads the knobs registered by add_streaming_flags back; exits(2) on an
/// unknown enum value or out-of-range number (strict Options philosophy).
StreamingOptions streaming_options_from_options(const Options& options);

/// True when --engine-streaming was set.
bool streaming_enabled_from_options(const Options& options);

/// Adapts a vector of owning edge lists into engine pieces (zero-copy views;
/// the lists must outlive the call). All pieces must share one vertex
/// universe — the engine rebuilds each view with the caller's num_vertices,
/// so a divergent piece would silently have its universe overridden.
inline std::vector<std::span<const Edge>> pieces_of(
    const std::vector<EdgeList>& lists) {
  std::vector<std::span<const Edge>> pieces;
  pieces.reserve(lists.size());
  for (const EdgeList& l : lists) {
    RCC_CHECK(l.num_vertices() == lists.front().num_vertices());
    pieces.emplace_back(l.edges().data(), l.num_edges());
  }
  return pieces;
}

}  // namespace rcc
