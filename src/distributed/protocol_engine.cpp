#include "distributed/protocol_engine.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/options.hpp"

namespace rcc {

void add_streaming_flags(Options& options) {
  // Idempotent: add_mpc_engine_flags registers this bundle too, and a
  // driver may legitimately call both.
  if (options.has("engine-streaming")) return;
  options
      .flag("engine-streaming", "false",
            "stream machine summaries into the coordinator fold as they "
            "finish (overlaps the machine and combine phases)")
      .flag("engine-streaming-order", "canonical",
            "streaming absorb order: 'canonical' (reorder buffer, "
            "seed-for-seed identical to the barrier fold) or 'arrival'")
      .flag("engine-queue-capacity", "0",
            "completion-queue slots between machines and the coordinator "
            "(0 = one per machine, producers never block)")
      .flag("engine-transport", "inproc",
            "machine-phase transport: 'inproc' (threads + completion "
            "queue), 'socket' (forked worker processes streaming framed "
            "summaries over loopback TCP), or 'shm' (forked worker "
            "processes exchanging the same frames through shared-memory "
            "rings; persistent workers under multi-round executors)")
      .flag("engine-transport-port", "0",
            "coordinator listening port for --engine-transport=socket "
            "(0 = kernel-assigned ephemeral port)")
      .flag("engine-transport-timeout-ms", "10000",
            "socket/shm transport deadline for worker connects and frame "
            "waits; a worker silent this long fails the run with its "
            "machine id")
      .flag("engine-shm-ring-bytes", "1048576",
            "per-direction shared-memory ring capacity in bytes for "
            "--engine-transport=shm (rounded up to a power of two; larger "
            "frames still flow, chunked)");
}

StreamingOptions streaming_options_from_options(const Options& options) {
  StreamingOptions opts;
  const std::string order = options.get_string("engine-streaming-order");
  if (order == "canonical") {
    opts.order = StreamingOrder::kCanonical;
  } else if (order == "arrival") {
    opts.order = StreamingOrder::kArrival;
  } else {
    std::fprintf(stderr,
                 "flag --engine-streaming-order: '%s' is not one of "
                 "'arrival', 'canonical'\n",
                 order.c_str());
    std::exit(2);
  }
  const std::int64_t capacity = options.get_int("engine-queue-capacity");
  if (capacity < 0) {
    std::fprintf(stderr,
                 "flag --engine-queue-capacity: %lld must be >= 0\n",
                 static_cast<long long>(capacity));
    std::exit(2);
  }
  opts.queue_capacity = static_cast<std::size_t>(capacity);
  const std::string transport = options.get_string("engine-transport");
  if (transport == "inproc") {
    opts.transport = EngineTransport::kInproc;
  } else if (transport == "socket") {
    opts.transport = EngineTransport::kSocket;
  } else if (transport == "shm") {
    opts.transport = EngineTransport::kShm;
  } else {
    std::fprintf(stderr,
                 "flag --engine-transport: '%s' is not one of 'inproc', "
                 "'socket', 'shm'\n",
                 transport.c_str());
    std::exit(2);
  }
  const std::int64_t port = options.get_int("engine-transport-port");
  if (port < 0 || port > 65535) {
    std::fprintf(stderr,
                 "flag --engine-transport-port: %lld is not a port number\n",
                 static_cast<long long>(port));
    std::exit(2);
  }
  opts.socket.leader_port = static_cast<std::uint16_t>(port);
  const std::int64_t timeout = options.get_int("engine-transport-timeout-ms");
  if (timeout <= 0) {
    std::fprintf(stderr,
                 "flag --engine-transport-timeout-ms: %lld must be > 0\n",
                 static_cast<long long>(timeout));
    std::exit(2);
  }
  opts.socket.timeout_ms = static_cast<int>(timeout);
  opts.shm.timeout_ms = static_cast<int>(timeout);
  const std::int64_t ring_bytes = options.get_int("engine-shm-ring-bytes");
  if (ring_bytes < 64 || ring_bytes > (std::int64_t{1} << 30)) {
    std::fprintf(stderr,
                 "flag --engine-shm-ring-bytes: %lld must be in [64, 2^30]\n",
                 static_cast<long long>(ring_bytes));
    std::exit(2);
  }
  opts.shm.ring_bytes = static_cast<std::size_t>(ring_bytes);
  return opts;
}

bool streaming_enabled_from_options(const Options& options) {
  return options.get_bool("engine-streaming");
}

}  // namespace rcc
