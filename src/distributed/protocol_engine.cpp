#include "distributed/protocol_engine.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/options.hpp"

namespace rcc {

void add_streaming_flags(Options& options) {
  // Idempotent: add_mpc_engine_flags registers this bundle too, and a
  // driver may legitimately call both.
  if (options.has("engine-streaming")) return;
  options
      .flag("engine-streaming", "false",
            "stream machine summaries into the coordinator fold as they "
            "finish (overlaps the machine and combine phases)")
      .flag("engine-streaming-order", "canonical",
            "streaming absorb order: 'canonical' (reorder buffer, "
            "seed-for-seed identical to the barrier fold) or 'arrival'")
      .flag("engine-queue-capacity", "0",
            "completion-queue slots between machines and the coordinator "
            "(0 = one per machine, producers never block)");
}

StreamingOptions streaming_options_from_options(const Options& options) {
  StreamingOptions opts;
  const std::string order = options.get_string("engine-streaming-order");
  if (order == "canonical") {
    opts.order = StreamingOrder::kCanonical;
  } else if (order == "arrival") {
    opts.order = StreamingOrder::kArrival;
  } else {
    std::fprintf(stderr,
                 "flag --engine-streaming-order: '%s' is not one of "
                 "'arrival', 'canonical'\n",
                 order.c_str());
    std::exit(2);
  }
  const std::int64_t capacity = options.get_int("engine-queue-capacity");
  if (capacity < 0) {
    std::fprintf(stderr,
                 "flag --engine-queue-capacity: %lld must be >= 0\n",
                 static_cast<long long>(capacity));
    std::exit(2);
  }
  opts.queue_capacity = static_cast<std::size_t>(capacity);
  return opts;
}

bool streaming_enabled_from_options(const Options& options) {
  return options.get_bool("engine-streaming");
}

}  // namespace rcc
