// Edmonds' blossom algorithm: maximum matching in general graphs.
//
// Theorem 1 holds for general (not just bipartite) graphs, so the library
// needs a maximum matching routine without a bipartiteness assumption. This
// is the classical O(V^3) contraction implementation with a greedy
// initialization pass; suitable for the general-graph experiments (the
// heavy bipartite sweeps go through Hopcroft-Karp instead).
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

/// Maximum matching of an arbitrary simple graph.
Matching blossom_maximum_matching(const Graph& g);

}  // namespace rcc
