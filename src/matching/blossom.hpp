// Edmonds' blossom algorithm: maximum matching in general graphs.
//
// Theorem 1 holds for general (not just bipartite) graphs, so the library
// needs a maximum matching routine without a bipartiteness assumption. This
// is the classical contraction implementation with a greedy initialization
// pass and two perf refinements that matter for the coreset workloads:
//
//  * Hungarian-tree pruning — when the search from a free vertex fails, its
//    alternating tree is "frustrated": no augmenting path (now or after any
//    later augmentation) passes through any of its vertices, so the whole
//    tree is marked dead and never explored again (Galil, ACM Computing
//    Surveys 1986, Section on Edmonds' algorithm). Without this, the union
//    of k near-perfect shard matchings — exactly what the coreset
//    coordinator solves every round — degenerates to Theta(f * m) for f
//    failed searches; with it the total failed-search work is O(m).
//  * scratch reuse — all O(n) working arrays can live in a caller-owned
//    BlossomScratch (stashed in a MachineScratch workspace slot), so
//    repeated solves allocate nothing once warm.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

class MachineScratch;

/// Reusable working set of the blossom solver (one per thread/scratch).
/// Contents between calls are garbage; only capacity persists.
struct BlossomScratch {
  std::vector<VertexId> mate;
  std::vector<VertexId> parent;
  std::vector<VertexId> base;  // union-find forest of blossom bases
  std::vector<VertexId> queue;
  std::vector<VertexId> touched;
  std::vector<VertexId> path_marked;
  std::vector<char> used;
  std::vector<char> on_path;
  std::vector<char> dead;
};

/// Maximum matching of an arbitrary simple graph. `scratch` (optional)
/// provides the reusable working arrays; `prune_hungarian_trees` exists so
/// differential tests can pit the pruned search against the exhaustive one
/// (both are exact; pruning only skips provably dead exploration).
/// `warm_start` (optional) seeds the solver with an existing valid matching
/// of g instead of the greedy initialization pass — every tree search costs
/// Omega(explored component), so entering with a near-maximum matching
/// (e.g. after bounded augmenting-path passes) removes most searches.
Matching blossom_maximum_matching(const Graph& g,
                                  MachineScratch* scratch = nullptr,
                                  bool prune_hungarian_trees = true,
                                  const Matching* warm_start = nullptr);

/// As above, writing into a caller-reused Matching (reset internally).
/// `warm_start == &out` is allowed (the seed is read out first).
void blossom_maximum_matching_into(Matching& out, const Graph& g,
                                   MachineScratch* scratch = nullptr,
                                   bool prune_hungarian_trees = true,
                                   const Matching* warm_start = nullptr);

}  // namespace rcc
