// Maximal matching by greedy edge scan, under pluggable edge orders.
//
// This is the "natural first idea" coreset that the paper shows fails
// (Section 1.2: an arbitrary maximal matching per machine can be an
// Omega(k)-approximation), so the order policies matter: GreedyOrder::kGiven
// models a fixed scan, kRandom an oblivious one, and order_by lets the
// experiments construct the adversarial order that realizes the Omega(k) gap.
//
// greedy_maximal_matching_by is templated on the key callable (no
// std::function indirection — it sits inside every weighted fold's hot
// loop) and evaluates the key ONCE per edge into a flat array before
// sorting, so an O(m log m) sort costs m key evaluations, not m log m.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace rcc {

enum class GreedyOrder {
  kGiven,   // scan edges in input order
  kRandom,  // uniformly random permutation of the edges
};

namespace greedy_detail {

/// Shared scan: adds edges in `order` while they keep `out` a matching.
/// `out` is reset to the edge universe first.
inline void scan_into(Matching& out, EdgeSpan edges,
                      const std::vector<std::size_t>& order) {
  out.reset(edges.num_vertices());
  for (std::size_t idx : order) {
    const Edge& e = edges[idx];
    if (!out.is_matched(e.u) && !out.is_matched(e.v)) out.match(e.u, e.v);
  }
}

inline std::vector<std::size_t>& order_buffer(std::vector<std::size_t>& local,
                                              MachineScratch* scratch,
                                              std::size_t m) {
  std::vector<std::size_t>& idx =
      scratch != nullptr
          ? scratch->index_buffer(m)
          : workspace_detail::sized(local, m, nullptr);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

}  // namespace greedy_detail

/// Maximal matching scanning edges in the requested order, written into a
/// caller-reused Matching. `rng` is only consulted for kRandom; `scratch`
/// (optional) supplies the order buffer.
inline void greedy_maximal_matching_into(Matching& out, EdgeSpan edges,
                                         GreedyOrder order, Rng& rng,
                                         MachineScratch* scratch = nullptr) {
  std::vector<std::size_t> local;
  std::vector<std::size_t>& idx =
      greedy_detail::order_buffer(local, scratch, edges.num_edges());
  if (order == GreedyOrder::kRandom) rng.shuffle(idx);
  greedy_detail::scan_into(out, edges, idx);
}

/// Maximal matching scanning edges in the requested order. `rng` is only
/// consulted for kRandom.
Matching greedy_maximal_matching(EdgeSpan edges, GreedyOrder order, Rng& rng,
                                 MachineScratch* scratch = nullptr);

/// Maximal matching scanning edges sorted by ascending key(e); ties keep
/// input order (stable sort). This is the hook used to build adversarial
/// maximal matchings (e.g. "hub edges first" in the EXP2 gadget). The key
/// is evaluated exactly once per edge into a precomputed array; results are
/// identical to sorting with per-comparison key calls for any pure key.
template <typename Key>
void greedy_maximal_matching_by_into(Matching& out, EdgeSpan edges,
                                     const Key& key,
                                     MachineScratch* scratch = nullptr) {
  const std::size_t m = edges.num_edges();
  std::vector<std::size_t> local_idx;
  std::vector<double> local_keys;
  std::vector<std::size_t>& idx =
      greedy_detail::order_buffer(local_idx, scratch, m);
  std::vector<double>& keys =
      scratch != nullptr ? scratch->key_buffer(m)
                         : workspace_detail::sized(local_keys, m, nullptr);
  for (std::size_t i = 0; i < m; ++i) keys[i] = key(edges[i]);
  // Plain sort with the index as tie-break: the exact order stable_sort
  // would produce, without stable_sort's temporary-buffer allocation.
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  greedy_detail::scan_into(out, edges, idx);
}

template <typename Key>
Matching greedy_maximal_matching_by(EdgeSpan edges, const Key& key,
                                    MachineScratch* scratch = nullptr) {
  Matching out;
  greedy_maximal_matching_by_into(out, edges, key, scratch);
  return out;
}

/// Greedily extends `base` with edges from `extra` that keep it a matching
/// (the inner step of the paper's GreedyMatch combiner, Section 3.1).
void greedy_extend(Matching& base, const EdgeList& extra);

/// As above, reading the extension edges straight off another matching's
/// mate array (ascending smaller endpoint — the same order to_edge_list()
/// yields) without materializing an edge list. Extension edges that clash
/// with `base` are skipped independently, so the result equals
/// greedy_extend(base, extra.to_edge_list()).
void greedy_extend(Matching& base, const Matching& extra);

}  // namespace rcc
