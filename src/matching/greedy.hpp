// Maximal matching by greedy edge scan, under pluggable edge orders.
//
// This is the "natural first idea" coreset that the paper shows fails
// (Section 1.2: an arbitrary maximal matching per machine can be an
// Omega(k)-approximation), so the order policies matter: GreedyOrder::kGiven
// models a fixed scan, kRandom an oblivious one, and order_by lets the
// experiments construct the adversarial order that realizes the Omega(k) gap.
#pragma once

#include <functional>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"

namespace rcc {

enum class GreedyOrder {
  kGiven,   // scan edges in input order
  kRandom,  // uniformly random permutation of the edges
};

/// Maximal matching scanning edges in the requested order. `rng` is only
/// consulted for kRandom.
Matching greedy_maximal_matching(EdgeSpan edges, GreedyOrder order, Rng& rng);

/// Maximal matching scanning edges sorted by ascending key(e); ties keep
/// input order (stable sort). This is the hook used to build adversarial
/// maximal matchings (e.g. "hub edges first" in the EXP2 gadget).
Matching greedy_maximal_matching_by(
    EdgeSpan edges, const std::function<double(const Edge&)>& key);

/// Greedily extends `base` with edges from `extra` that keep it a matching
/// (the inner step of the paper's GreedyMatch combiner, Section 3.1).
void greedy_extend(Matching& base, const EdgeList& extra);

}  // namespace rcc
