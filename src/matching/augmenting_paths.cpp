#include "matching/augmenting_paths.hpp"

#include <algorithm>
#include <span>

#include "graph/edge.hpp"
#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Sorted CSR adjacency over the searched edge set (parallel edges collapse
/// naturally: the DFS only asks "is w reachable from u", so duplicates just
/// repeat a neighbor and are skipped by the on-path checks). The three
/// arrays live in the caller's scratch so repeated searches (one per machine
/// per MPC round) reuse their capacity.
struct Adjacency {
  std::span<std::size_t> offsets;  // n + 1
  std::span<VertexId> neighbors;   // 2m

  Adjacency(EdgeSpan edges, MachineScratch& scratch) {
    const VertexId n = edges.num_vertices();
    std::vector<std::size_t>& off = scratch.offsets(n + 1);
    std::fill(off.begin(), off.end(), std::size_t{0});
    for (const Edge& e : edges) {
      ++off[e.u + 1];
      ++off[e.v + 1];
    }
    for (VertexId v = 0; v < n; ++v) off[v + 1] += off[v];
    std::vector<VertexId>& nbr = scratch.neighbors(off[n]);
    std::vector<std::size_t>& cursor = scratch.cursor(n);
    std::copy(off.begin(), off.end() - 1, cursor.begin());
    for (const Edge& e : edges) {
      nbr[cursor[e.u]++] = e.v;
      nbr[cursor[e.v]++] = e.u;
    }
    for (VertexId v = 0; v < n; ++v) {
      std::sort(nbr.begin() + static_cast<std::ptrdiff_t>(off[v]),
                nbr.begin() + static_cast<std::ptrdiff_t>(off[v + 1]));
    }
    offsets = std::span<std::size_t>(off.data(), n + 1);
    neighbors = std::span<VertexId>(nbr.data(), off[n]);
  }

  std::span<const VertexId> of(VertexId v) const {
    return {neighbors.data() + offsets[v], neighbors.data() + offsets[v + 1]};
  }
};

/// Depth-bounded exhaustive DFS over simple alternating paths. `blocked`
/// doubles as the on-path marker during the recursion and as the permanent
/// committed-path marker between searches; the recursion unwinds its own
/// marks, so no global visited state survives a failed branch (that is what
/// keeps the emptiness test exact in non-bipartite graphs). The marks are
/// epoch-stamped (EpochMarks): "all clear" is an O(1) epoch bump instead of
/// an O(n) allocation + zeroing per search call.
class PathSearch {
 public:
  PathSearch(const Adjacency& adj, const Matching& matching,
             std::size_t max_length, EpochMarks& blocked)
      : adj_(adj),
        matching_(matching),
        free_budget_((max_length + 1) / 2),
        blocked_(blocked) {}

  /// Tries to grow an augmenting path out of the free vertex `start`; on
  /// success the full vertex sequence is in `path` and its vertices stay
  /// blocked (committed).
  bool from(VertexId start, std::vector<VertexId>& path) {
    path.clear();
    path.push_back(start);
    blocked_.set(start);
    if (extend(start, free_budget_, path)) return true;
    blocked_.unset(start);
    return false;
  }

 private:
  /// `u` is at an even position (start, or just entered via a matching
  /// edge); `budget` non-matching hops remain.
  bool extend(VertexId u, std::size_t budget, std::vector<VertexId>& path) {
    const VertexId mate_u = matching_.is_matched(u) ? matching_.mate(u)
                                                    : kInvalidVertex;
    for (VertexId w : adj_.of(u)) {
      if (w == mate_u || blocked_.test(w)) continue;  // non-matching simple hop
      if (!matching_.is_matched(w)) {                 // free endpoint: done
        path.push_back(w);
        blocked_.set(w);
        return true;
      }
      if (budget < 2) continue;  // the forced matched hop needs one more
      const VertexId x = matching_.mate(w);
      if (blocked_.test(x)) continue;
      path.push_back(w);
      path.push_back(x);
      blocked_.set(w);
      blocked_.set(x);
      if (extend(x, budget - 1, path)) return true;
      blocked_.unset(w);
      blocked_.unset(x);
      path.pop_back();
      path.pop_back();
    }
    return false;
  }

  const Adjacency& adj_;
  const Matching& matching_;
  std::size_t free_budget_;
  EpochMarks& blocked_;
};

std::vector<AugmentingPath> search(EdgeSpan edges, const Matching& matching,
                                   std::size_t max_length, bool first_only,
                                   MachineScratch* scratch) {
  std::vector<AugmentingPath> found;
  if (edges.empty() || max_length == 0) return found;
  const VertexId n = edges.num_vertices();
  RCC_CHECK(matching.num_vertices() == n);

  MachineScratch local;
  MachineScratch& s = scratch != nullptr ? *scratch : local;
  const Adjacency adj(edges, s);
  EpochMarks& blocked = s.vertex_marks(n);
  PathSearch dfs(adj, matching, max_length, blocked);
  std::vector<VertexId> path;
  for (VertexId s_vertex = 0; s_vertex < n; ++s_vertex) {
    if (matching.is_matched(s_vertex) || blocked.test(s_vertex)) continue;
    if (!dfs.from(s_vertex, path)) continue;
    AugmentingPath p{path};
    p.canonicalize();
    found.push_back(std::move(p));
    if (first_only) break;
  }
  return found;
}

}  // namespace

void AugmentingPath::canonicalize() {
  if (!vertices.empty() && vertices.front() > vertices.back()) {
    std::reverse(vertices.begin(), vertices.end());
  }
}

bool canonical_less(const AugmentingPath& a, const AugmentingPath& b) {
  return a.vertices < b.vertices;
}

std::vector<AugmentingPath> find_augmenting_paths(EdgeSpan edges,
                                                  const Matching& matching,
                                                  std::size_t max_length,
                                                  MachineScratch* scratch) {
  return search(edges, matching, max_length, /*first_only=*/false, scratch);
}

bool has_augmenting_path(EdgeSpan edges, const Matching& matching,
                         std::size_t max_length, MachineScratch* scratch) {
  return !search(edges, matching, max_length, /*first_only=*/true, scratch)
              .empty();
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching) {
  const std::size_t len = path.vertices.size();
  if (len < 2 || len % 2 != 0) return false;  // odd edge count = even vertices
  const VertexId n = matching.num_vertices();
  // Flat simplicity check: sort a copy and look for adjacent repeats (the
  // former unordered_set insert loop, minus the hashing).
  std::vector<VertexId> sorted(path.vertices);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.back() >= n) return false;  // ids in range (sorted: max is last)
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;  // repeated vertex
  }
  if (matching.is_matched(path.vertices.front()) ||
      matching.is_matched(path.vertices.back())) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < len; ++i) {
    const VertexId a = path.vertices[i];
    const VertexId b = path.vertices[i + 1];
    if (i % 2 == 0) {  // must be a non-matching edge
      if (matching.is_matched(a) && matching.mate(a) == b) return false;
    } else {  // must be THE matching edge
      if (!matching.is_matched(a) || matching.mate(a) != b) return false;
    }
  }
  return true;
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching, EdgeSpan edges) {
  if (!is_valid_augmenting_path(path, matching)) return false;
  // Flat membership check: collect the path's non-matching hops (few) into a
  // sorted array and scan the edge set once, instead of hashing all m edges.
  std::vector<Edge> hops;
  hops.reserve(path.vertices.size() / 2);
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    hops.push_back(make_edge(path.vertices[i], path.vertices[i + 1]));
  }
  std::sort(hops.begin(), hops.end());
  std::vector<char> hop_found(hops.size(), 0);
  for (const Edge& e : edges) {
    const auto [lo, hi] = std::equal_range(hops.begin(), hops.end(), e);
    for (auto it = lo; it != hi; ++it) {
      hop_found[static_cast<std::size_t>(it - hops.begin())] = 1;
    }
  }
  for (char f : hop_found) {
    if (!f) return false;  // a non-matching hop must exist in the edges
  }
  return true;
}

void apply_augmenting_path(Matching& matching, const AugmentingPath& path) {
  RCC_DCHECK(is_valid_augmenting_path(path, matching));
  // Unhook the matched interior first, then flip the non-matching hops in.
  for (std::size_t i = 1; i + 1 < path.vertices.size(); i += 2) {
    matching.unmatch(path.vertices[i]);
  }
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    matching.match(path.vertices[i], path.vertices[i + 1]);
  }
}

std::size_t augment_matching(Matching& matching, EdgeSpan edges,
                             std::size_t max_length, MachineScratch* scratch) {
  std::size_t augmentations = 0;
  MachineScratch local;  // reused across the batch iterations
  MachineScratch* s = scratch != nullptr ? scratch : &local;
  for (;;) {
    const std::vector<AugmentingPath> batch =
        find_augmenting_paths(edges, matching, max_length, s);
    if (batch.empty()) return augmentations;
    for (const AugmentingPath& p : batch) {
      apply_augmenting_path(matching, p);
      ++augmentations;
    }
  }
}

}  // namespace rcc
