#include "matching/augmenting_paths.hpp"

#include <algorithm>
#include <span>
#include <unordered_set>

#include "graph/edge.hpp"

namespace rcc {

namespace {

/// Sorted CSR adjacency over the searched edge set (parallel edges collapse
/// naturally: the DFS only asks "is w reachable from u", so duplicates just
/// repeat a neighbor and are skipped by the on-path checks).
struct Adjacency {
  std::vector<std::size_t> offsets;
  std::vector<VertexId> neighbors;

  explicit Adjacency(EdgeSpan edges) {
    const VertexId n = edges.num_vertices();
    offsets.assign(n + 1, 0);
    for (const Edge& e : edges) {
      ++offsets[e.u + 1];
      ++offsets[e.v + 1];
    }
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    neighbors.resize(offsets[n]);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      neighbors[cursor[e.u]++] = e.v;
      neighbors[cursor[e.v]++] = e.u;
    }
    for (VertexId v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }
  }

  std::span<const VertexId> of(VertexId v) const {
    return {neighbors.data() + offsets[v], neighbors.data() + offsets[v + 1]};
  }
};

/// Depth-bounded exhaustive DFS over simple alternating paths. `blocked`
/// doubles as the on-path marker during the recursion and as the permanent
/// committed-path marker between searches; the recursion unwinds its own
/// marks, so no global visited state survives a failed branch (that is what
/// keeps the emptiness test exact in non-bipartite graphs).
class PathSearch {
 public:
  PathSearch(const Adjacency& adj, const Matching& matching,
             std::size_t max_length, std::vector<char>& blocked)
      : adj_(adj),
        matching_(matching),
        free_budget_((max_length + 1) / 2),
        blocked_(blocked) {}

  /// Tries to grow an augmenting path out of the free vertex `start`; on
  /// success the full vertex sequence is in `path` and its vertices stay
  /// blocked (committed).
  bool from(VertexId start, std::vector<VertexId>& path) {
    path.clear();
    path.push_back(start);
    blocked_[start] = 1;
    if (extend(start, free_budget_, path)) return true;
    blocked_[start] = 0;
    return false;
  }

 private:
  /// `u` is at an even position (start, or just entered via a matching
  /// edge); `budget` non-matching hops remain.
  bool extend(VertexId u, std::size_t budget, std::vector<VertexId>& path) {
    const VertexId mate_u = matching_.is_matched(u) ? matching_.mate(u)
                                                    : kInvalidVertex;
    for (VertexId w : adj_.of(u)) {
      if (w == mate_u || blocked_[w]) continue;  // non-matching simple hop
      if (!matching_.is_matched(w)) {            // free endpoint: done
        path.push_back(w);
        blocked_[w] = 1;
        return true;
      }
      if (budget < 2) continue;  // the forced matched hop needs one more
      const VertexId x = matching_.mate(w);
      if (blocked_[x]) continue;
      path.push_back(w);
      path.push_back(x);
      blocked_[w] = 1;
      blocked_[x] = 1;
      if (extend(x, budget - 1, path)) return true;
      blocked_[w] = 0;
      blocked_[x] = 0;
      path.pop_back();
      path.pop_back();
    }
    return false;
  }

  const Adjacency& adj_;
  const Matching& matching_;
  std::size_t free_budget_;
  std::vector<char>& blocked_;
};

std::vector<AugmentingPath> search(EdgeSpan edges, const Matching& matching,
                                   std::size_t max_length, bool first_only) {
  std::vector<AugmentingPath> found;
  if (edges.empty() || max_length == 0) return found;
  const VertexId n = edges.num_vertices();
  RCC_CHECK(matching.num_vertices() == n);

  const Adjacency adj(edges);
  std::vector<char> blocked(n, 0);
  PathSearch dfs(adj, matching, max_length, blocked);
  std::vector<VertexId> path;
  for (VertexId s = 0; s < n; ++s) {
    if (matching.is_matched(s) || blocked[s]) continue;
    if (!dfs.from(s, path)) continue;
    AugmentingPath p{path};
    p.canonicalize();
    found.push_back(std::move(p));
    if (first_only) break;
  }
  return found;
}

}  // namespace

void AugmentingPath::canonicalize() {
  if (!vertices.empty() && vertices.front() > vertices.back()) {
    std::reverse(vertices.begin(), vertices.end());
  }
}

bool canonical_less(const AugmentingPath& a, const AugmentingPath& b) {
  return a.vertices < b.vertices;
}

std::vector<AugmentingPath> find_augmenting_paths(EdgeSpan edges,
                                                  const Matching& matching,
                                                  std::size_t max_length) {
  return search(edges, matching, max_length, /*first_only=*/false);
}

bool has_augmenting_path(EdgeSpan edges, const Matching& matching,
                         std::size_t max_length) {
  return !search(edges, matching, max_length, /*first_only=*/true).empty();
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching) {
  const std::size_t len = path.vertices.size();
  if (len < 2 || len % 2 != 0) return false;  // odd edge count = even vertices
  const VertexId n = matching.num_vertices();
  std::unordered_set<VertexId> seen;
  for (VertexId v : path.vertices) {
    if (v >= n || !seen.insert(v).second) return false;  // out of range / repeat
  }
  if (matching.is_matched(path.vertices.front()) ||
      matching.is_matched(path.vertices.back())) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < len; ++i) {
    const VertexId a = path.vertices[i];
    const VertexId b = path.vertices[i + 1];
    if (i % 2 == 0) {  // must be a non-matching edge
      if (matching.is_matched(a) && matching.mate(a) == b) return false;
    } else {  // must be THE matching edge
      if (!matching.is_matched(a) || matching.mate(a) != b) return false;
    }
  }
  return true;
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching, EdgeSpan edges) {
  if (!is_valid_augmenting_path(path, matching)) return false;
  std::unordered_set<Edge, EdgeHash> present;
  present.reserve(edges.num_edges());
  for (const Edge& e : edges) present.insert(e);
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    if (!present.count(make_edge(path.vertices[i], path.vertices[i + 1]))) {
      return false;  // a non-matching hop must exist in the searched edges
    }
  }
  return true;
}

void apply_augmenting_path(Matching& matching, const AugmentingPath& path) {
  RCC_DCHECK(is_valid_augmenting_path(path, matching));
  // Unhook the matched interior first, then flip the non-matching hops in.
  for (std::size_t i = 1; i + 1 < path.vertices.size(); i += 2) {
    matching.unmatch(path.vertices[i]);
  }
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    matching.match(path.vertices[i], path.vertices[i + 1]);
  }
}

std::size_t augment_matching(Matching& matching, EdgeSpan edges,
                             std::size_t max_length) {
  std::size_t augmentations = 0;
  for (;;) {
    const std::vector<AugmentingPath> batch =
        find_augmenting_paths(edges, matching, max_length);
    if (batch.empty()) return augmentations;
    for (const AugmentingPath& p : batch) {
      apply_augmenting_path(matching, p);
      ++augmentations;
    }
  }
}

}  // namespace rcc
