#include "matching/augmenting_paths.hpp"

#include <algorithm>
#include <span>

#include "graph/edge.hpp"
#include "graph/incremental_csr.hpp"
#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Depth-bounded exhaustive DFS over simple alternating paths. `blocked`
/// doubles as the on-path marker during the recursion and as the permanent
/// committed-path marker between searches; the recursion unwinds its own
/// marks, so no global visited state survives a failed branch (that is what
/// keeps the emptiness test exact in non-bipartite graphs). The marks are
/// epoch-stamped (EpochMarks): "all clear" is an O(1) epoch bump instead of
/// an O(n) allocation + zeroing per search call.
///
/// Everything the inner loop touches is a flat pointer captured once: the
/// CSR rows, the mate array, and the mark view. The search is memory-bound
/// on small shards, and routing each probe through accessor methods made
/// the compiler re-load members across stores; the flat form keeps the loop
/// state in registers. Results are bit-identical to the accessor form (same
/// adjacency order, same checks in the same order).
class PathSearch {
 public:
  PathSearch(const IncrementalCsr& csr, const Matching& matching,
             std::size_t max_length, EpochMarks::View blocked)
      : off_(csr.offsets_data()),
        nbr_(csr.arcs_data()),
        mate_(matching.mate_data()),
        free_budget_((max_length + 1) / 2),
        blocked_(blocked) {}

  /// Tries to grow an augmenting path out of the free vertex `start`; on
  /// success the full vertex sequence is in `path` and its vertices stay
  /// blocked (committed).
  bool from(VertexId start, std::vector<VertexId>& path) {
    path.clear();
    path.push_back(start);
    blocked_.set(start);
    if (extend(start, free_budget_, path)) return true;
    blocked_.unset(start);
    return false;
  }

 private:
  /// `u` is at an even position (start, or just entered via a matching
  /// edge); `budget` non-matching hops remain.
  bool extend(VertexId u, std::size_t budget, std::vector<VertexId>& path) {
    const VertexId mate_u = mate_[u];  // kInvalidVertex when u is free
    const std::size_t row_end = off_[u + 1];
    for (std::size_t i = off_[u]; i < row_end; ++i) {
      const VertexId w = nbr_[i];
      if (w == mate_u || blocked_.test(w)) continue;  // non-matching simple hop
      const VertexId x = mate_[w];
      if (x == kInvalidVertex) {  // free endpoint: done
        path.push_back(w);
        blocked_.set(w);
        return true;
      }
      if (budget < 2) continue;  // the forced matched hop needs one more
      if (blocked_.test(x)) continue;
      path.push_back(w);
      path.push_back(x);
      blocked_.set(w);
      blocked_.set(x);
      if (extend(x, budget - 1, path)) return true;
      blocked_.unset(w);
      blocked_.unset(x);
      path.pop_back();
      path.pop_back();
    }
    return false;
  }

  const std::uint32_t* off_;
  const VertexId* nbr_;
  const VertexId* mate_;
  std::size_t free_budget_;
  EpochMarks::View blocked_;
};

std::vector<AugmentingPath> search(EdgeSpan edges, const Matching& matching,
                                   std::size_t max_length, bool first_only,
                                   MachineScratch* scratch) {
  std::vector<AugmentingPath> found;
  if (edges.empty() || max_length == 0) return found;
  const VertexId n = edges.num_vertices();
  RCC_CHECK(matching.num_vertices() == n);

  MachineScratch local;
  MachineScratch& s = scratch != nullptr ? *scratch : local;
  IncrementalCsr& csr = s.state<IncrementalCsr>();
  // Counting-sort build, or O(m) reuse when the multiset is unchanged — the
  // coordinator sweep and augment_matching's batch loop re-search one fixed
  // edge set, so their CSR survives across calls untouched.
  csr.ensure(edges, s.stats());
  EpochMarks& blocked = s.vertex_marks(n);
  PathSearch dfs(csr, matching, max_length, blocked.view());
  const EpochMarks::View committed = blocked.view();
  const VertexId* mate = matching.mate_data();
  const std::uint32_t* off = csr.offsets_data();
  // The DFS path buffer lives in the scratch so warm searches (including
  // fruitless probes that push/pop a few hops) never allocate.
  std::vector<VertexId>& path = s.state<std::vector<VertexId>>();
  path.clear();
  std::size_t row_begin = off[0];
  for (VertexId s_vertex = 0; s_vertex < n; ++s_vertex) {
    // Degree-0 starts (vertices outside this shard's piece) cannot begin a
    // path: from() would push, scan an empty row, and unwind. Skipping them
    // is result-identical and turns the start scan from O(n) probes into
    // O(vertices actually present) — the shard-piece case where n is the
    // full universe but the piece holds m/k edges. The running row_begin
    // keeps the scan at one offset load per vertex.
    const std::size_t row_end = off[s_vertex + 1];
    const bool isolated = row_end == row_begin;
    row_begin = row_end;
    if (isolated) continue;
    if (mate[s_vertex] != kInvalidVertex || committed.test(s_vertex)) continue;
    if (!dfs.from(s_vertex, path)) continue;
    AugmentingPath p{path};
    p.canonicalize();
    found.push_back(std::move(p));
    if (first_only) break;
  }
  return found;
}

}  // namespace

void AugmentingPath::canonicalize() {
  if (!vertices.empty() && vertices.front() > vertices.back()) {
    std::reverse(vertices.begin(), vertices.end());
  }
}

bool canonical_less(const AugmentingPath& a, const AugmentingPath& b) {
  return a.vertices < b.vertices;
}

std::vector<AugmentingPath> find_augmenting_paths(EdgeSpan edges,
                                                  const Matching& matching,
                                                  std::size_t max_length,
                                                  MachineScratch* scratch) {
  return search(edges, matching, max_length, /*first_only=*/false, scratch);
}

bool has_augmenting_path(EdgeSpan edges, const Matching& matching,
                         std::size_t max_length, MachineScratch* scratch) {
  return !search(edges, matching, max_length, /*first_only=*/true, scratch)
              .empty();
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching,
                              MachineScratch* scratch) {
  const std::size_t len = path.vertices.size();
  if (len < 2 || len % 2 != 0) return false;  // odd edge count = even vertices
  const VertexId n = matching.num_vertices();
  if (scratch != nullptr) {
    // Simplicity via epoch-stamped marks: O(len) and allocation-free (the
    // former sorted-copy check heap-allocated per call).
    const EpochMarks::View seen = scratch->vertex_marks(n).view();
    for (const VertexId v : path.vertices) {
      if (v >= n || seen.test(v)) return false;  // out of range or repeated
      seen.set(v);
    }
  } else {
    // No scratch: paths are short (2k+1 hops for small k), so a pairwise
    // scan stays cheap and never touches the heap either.
    for (std::size_t i = 0; i < len; ++i) {
      if (path.vertices[i] >= n) return false;
      for (std::size_t j = i + 1; j < len; ++j) {
        if (path.vertices[i] == path.vertices[j]) return false;
      }
    }
  }
  if (matching.is_matched(path.vertices.front()) ||
      matching.is_matched(path.vertices.back())) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < len; ++i) {
    const VertexId a = path.vertices[i];
    const VertexId b = path.vertices[i + 1];
    if (i % 2 == 0) {  // must be a non-matching edge
      if (matching.is_matched(a) && matching.mate(a) == b) return false;
    } else {  // must be THE matching edge
      if (!matching.is_matched(a) || matching.mate(a) != b) return false;
    }
  }
  return true;
}

bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching, EdgeSpan edges,
                              MachineScratch* scratch) {
  if (!is_valid_augmenting_path(path, matching, scratch)) return false;
  // Flat membership check: collect the path's non-matching hops (few) into a
  // sorted array and scan the edge set once, instead of hashing all m edges.
  std::vector<Edge> hops;
  hops.reserve(path.vertices.size() / 2);
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    hops.push_back(make_edge(path.vertices[i], path.vertices[i + 1]));
  }
  std::sort(hops.begin(), hops.end());
  std::vector<char> hop_found(hops.size(), 0);
  for (const Edge& e : edges) {
    const auto [lo, hi] = std::equal_range(hops.begin(), hops.end(), e);
    for (auto it = lo; it != hi; ++it) {
      hop_found[static_cast<std::size_t>(it - hops.begin())] = 1;
    }
  }
  for (char f : hop_found) {
    if (!f) return false;  // a non-matching hop must exist in the edges
  }
  return true;
}

void apply_augmenting_path(Matching& matching, const AugmentingPath& path) {
  RCC_DCHECK(is_valid_augmenting_path(path, matching));
  // Unhook the matched interior first, then flip the non-matching hops in.
  for (std::size_t i = 1; i + 1 < path.vertices.size(); i += 2) {
    matching.unmatch(path.vertices[i]);
  }
  for (std::size_t i = 0; i + 1 < path.vertices.size(); i += 2) {
    matching.match(path.vertices[i], path.vertices[i + 1]);
  }
}

std::size_t augment_matching(Matching& matching, EdgeSpan edges,
                             std::size_t max_length, MachineScratch* scratch) {
  std::size_t augmentations = 0;
  MachineScratch local;  // reused across the batch iterations
  MachineScratch* s = scratch != nullptr ? scratch : &local;
  for (;;) {
    const std::vector<AugmentingPath> batch =
        find_augmenting_paths(edges, matching, max_length, s);
    if (batch.empty()) return augmentations;
    for (const AugmentingPath& p : batch) {
      apply_augmenting_path(matching, p);
      ++augmentations;
    }
  }
}

}  // namespace rcc
