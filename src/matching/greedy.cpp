#include "matching/greedy.hpp"

namespace rcc {

Matching greedy_maximal_matching(EdgeSpan edges, GreedyOrder order, Rng& rng,
                                 MachineScratch* scratch) {
  Matching out;
  greedy_maximal_matching_into(out, edges, order, rng, scratch);
  return out;
}

void greedy_extend(Matching& base, const EdgeList& extra) {
  // A free-free edge is exactly a length-1 augmenting path — the degenerate
  // case of matching/augmenting_paths.hpp — but this runs inside every
  // fold's hot loop, so the flip stays a direct match() rather than an
  // AugmentingPath allocation per edge.
  for (const Edge& e : extra) {
    if (!base.is_matched(e.u) && !base.is_matched(e.v)) base.match(e.u, e.v);
  }
}

void greedy_extend(Matching& base, const Matching& extra) {
  for (VertexId v = 0; v < extra.num_vertices(); ++v) {
    const VertexId w = extra.mate(v);
    if (w == kInvalidVertex || w < v) continue;  // each edge once, via min end
    if (!base.is_matched(v) && !base.is_matched(w)) base.match(v, w);
  }
}

}  // namespace rcc
