#include "matching/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace rcc {

namespace {
Matching scan(EdgeSpan edges, const std::vector<std::size_t>& order) {
  Matching m(edges.num_vertices());
  for (std::size_t idx : order) {
    const Edge& e = edges[idx];
    if (!m.is_matched(e.u) && !m.is_matched(e.v)) m.match(e.u, e.v);
  }
  return m;
}
}  // namespace

Matching greedy_maximal_matching(EdgeSpan edges, GreedyOrder order, Rng& rng) {
  std::vector<std::size_t> idx(edges.num_edges());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (order == GreedyOrder::kRandom) rng.shuffle(idx);
  return scan(edges, idx);
}

Matching greedy_maximal_matching_by(
    EdgeSpan edges, const std::function<double(const Edge&)>& key) {
  std::vector<std::size_t> idx(edges.num_edges());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return key(edges[a]) < key(edges[b]);
  });
  return scan(edges, idx);
}

void greedy_extend(Matching& base, const EdgeList& extra) {
  // A free-free edge is exactly a length-1 augmenting path — the degenerate
  // case of matching/augmenting_paths.hpp — but this runs inside every
  // fold's hot loop, so the flip stays a direct match() rather than an
  // AugmentingPath allocation per edge.
  for (const Edge& e : extra) {
    if (!base.is_matched(e.u) && !base.is_matched(e.v)) base.match(e.u, e.v);
  }
}

}  // namespace rcc
