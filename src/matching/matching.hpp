// Matching value type with O(m) validation.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace rcc {

/// A matching over a fixed vertex universe [0, n): a set of vertex-disjoint
/// edges, stored both as the mate array (mate[v] == kInvalidVertex when v is
/// unmatched) and implicitly recoverable as an edge list.
class Matching {
 public:
  Matching() = default;
  explicit Matching(VertexId num_vertices)
      : mate_(num_vertices, kInvalidVertex) {}

  /// Builds from an edge list; aborts if the edges are not vertex-disjoint.
  static Matching from_edges(const EdgeList& edges);

  VertexId num_vertices() const { return static_cast<VertexId>(mate_.size()); }

  /// Number of matched edges.
  std::size_t size() const { return size_; }

  bool is_matched(VertexId v) const { return mate_[v] != kInvalidVertex; }
  VertexId mate(VertexId v) const { return mate_[v]; }

  /// Flat view of the mate array (size num_vertices()) for hot search loops
  /// that hoist it into a register once instead of re-entering the
  /// accessors per probe. Read-only; kInvalidVertex marks unmatched slots.
  const VertexId* mate_data() const { return mate_.data(); }

  /// Re-initializes to the empty matching over [0, num_vertices), keeping
  /// the mate array's capacity — the reuse primitive that lets solvers and
  /// round-combiners recycle one Matching instead of reconstructing it.
  void reset(VertexId num_vertices) {
    mate_.assign(num_vertices, kInvalidVertex);
    size_ = 0;
  }

  /// Adds edge (u, v); both endpoints must currently be unmatched.
  void match(VertexId u, VertexId v);

  /// Removes the edge covering v (and its mate); no-op if v is unmatched.
  void unmatch(VertexId v);

  /// The matched edges as an EdgeList (each edge once, normalized).
  EdgeList to_edge_list() const;

  /// Internal consistency: mate is an involution and size_ agrees.
  bool valid() const;

  /// True if every matched edge actually exists in `graph_edges`
  /// (set-membership check; used by tests to catch fabricated edges).
  bool subset_of(EdgeSpan graph_edges) const;

  /// True if no edge of `graph_edges` has both endpoints unmatched — i.e.
  /// the matching is maximal in that graph.
  bool maximal_in(EdgeSpan graph_edges) const;

 private:
  std::vector<VertexId> mate_;
  std::size_t size_ = 0;
};

}  // namespace rcc
