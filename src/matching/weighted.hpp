// Weighted matching: the Crouch-Stubbs reduction the paper cites for its
// weighted extension (Section 1.1), plus baselines.
//
// Crouch-Stubbs [22] buckets edges into geometric weight classes, solves an
// *unweighted* matching problem inside each class, and greedily merges the
// class matchings from heaviest to lightest. With classes [2^j, 2^{j+1})
// this loses a factor at most 2 * (class rounding) relative to the optimum,
// which is exactly the "factor 2 loss ... extra O(log n) term in space" the
// paper quotes.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

/// Weighted graph as an edge list over [0, n).
struct WeightedEdgeList {
  VertexId num_vertices = 0;
  std::vector<WeightedEdge> edges;

  void add(VertexId u, VertexId v, double w) {
    RCC_CHECK(u != v && u < num_vertices && v < num_vertices && w >= 0.0);
    edges.push_back(WeightedEdge{u, v, w});
  }
};

/// Non-owning view of contiguous weighted edges (the weighted counterpart of
/// EdgeSpan): what a machine receives from the sharded partitioner. Converts
/// implicitly from WeightedEdgeList; the viewed storage must outlive it.
class WeightedEdgeSpan {
 public:
  WeightedEdgeSpan() = default;

  WeightedEdgeSpan(const WeightedEdge* data, std::size_t size,
                   VertexId num_vertices)
      : data_(data), size_(size), num_vertices_(num_vertices) {}

  /*implicit*/ WeightedEdgeSpan(const WeightedEdgeList& list)
      : data_(list.edges.data()),
        size_(list.edges.size()),
        num_vertices_(list.num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return size_; }
  bool empty() const { return size_ == 0; }

  const WeightedEdge& operator[](std::size_t i) const { return data_[i]; }

  const WeightedEdge* data() const { return data_; }
  const WeightedEdge* begin() const { return data_; }
  const WeightedEdge* end() const { return data_ + size_; }

 private:
  const WeightedEdge* data_ = nullptr;
  std::size_t size_ = 0;
  VertexId num_vertices_ = 0;
};

/// Total weight of a matching's edges under `weights` (edges must exist).
double matching_weight(const Matching& m, WeightedEdgeSpan weights);

/// Greedy heaviest-edge-first maximal matching: classical 1/2-approximation
/// to the maximum weight matching. Used as a centralized baseline.
Matching greedy_weighted_matching(const WeightedEdgeList& wedges);

/// Splits edges into geometric weight classes: class j holds weights in
/// [base^j, base^{j+1}) relative to the minimum positive weight. Returns the
/// per-class unweighted edge lists, heaviest class first, plus class floors.
struct WeightClasses {
  std::vector<EdgeList> classes;       // heaviest first
  std::vector<double> class_floor;     // lower weight bound per class
};
WeightClasses split_weight_classes(WeightedEdgeSpan wedges, double base = 2.0);

/// Crouch-Stubbs: maximum matching per weight class, merged greedily from
/// the heaviest class down. `left_size` > 0 enables the bipartite solver.
Matching crouch_stubbs_matching(const WeightedEdgeList& wedges,
                                VertexId left_size = 0, double base = 2.0);

/// Exact maximum-weight matching by exhaustive search; for n <= ~20 only
/// (tests use it as a ratio denominator).
double exact_max_weight_matching(const WeightedEdgeList& wedges);

}  // namespace rcc
