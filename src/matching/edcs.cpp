#include "matching/edcs.hpp"

#include <unordered_set>
#include <vector>

#include "graph/edge.hpp"

namespace rcc {

namespace {

void build_into(EdgeList& out, EdgeSpan piece, const EdcsParams& params,
                EdcsBuilder& b, WorkspaceStats* stats) {
  out.reset(piece.num_vertices());
  if (piece.empty()) return;
  const VertexId n = piece.num_vertices();

  // Distinct pairs in canonical (u, v) order off the CSR's sorted rows:
  // duplicates are row-adjacent, so dedup is one comparison per arc, and the
  // enumeration order — hence the whole build — depends only on the edge
  // multiset, never on the piece's arrival order.
  b.csr.ensure(piece, stats);
  const std::uint32_t* off = b.csr.offsets_data();
  const VertexId* arcs = b.csr.arcs_data();
  workspace_detail::reserved(b.distinct, piece.num_edges(), stats);
  b.distinct.clear();
  for (VertexId u = 0; u < n; ++u) {
    VertexId prev = kInvalidVertex;
    for (std::uint32_t i = off[u]; i < off[u + 1]; ++i) {
      const VertexId v = arcs[i];
      if (v <= u || v == prev) continue;  // lower half-row or parallel copy
      prev = v;
      b.distinct.push_back(Edge{u, v});
    }
  }
  const std::size_t md = b.distinct.size();
  const Edge* es = b.distinct.data();

  VertexId* deg = workspace_detail::sized(b.deg_h, n, stats).data();
  std::fill(deg, deg + n, VertexId{0});
  std::uint8_t* in_h = workspace_detail::sized(b.in_h, md, stats).data();
  std::fill(in_h, in_h + md, std::uint8_t{0});

  // Local-search fixpoint, Gauss-Seidel over the canonical order: remove an
  // H-edge whose degree sum exceeds beta, add a non-H-edge whose sum is
  // below beta - lambda, until a sweep changes nothing — which is exactly
  // "P1 and P2 both hold". Every flip raises the potential from edcs.hpp by
  // at least 2 (lambda >= 1), the potential spans O(n * beta^2), and a sweep
  // either flips something or is the last, so the cap below is unreachable
  // short of a logic bug.
  const std::size_t beta = params.beta;
  const std::size_t low = params.beta - params.lambda;
  const std::uint64_t max_sweeps =
      4 * static_cast<std::uint64_t>(n) * beta * beta + 8;
  std::uint64_t sweeps = 0;
  bool changed = true;
  while (changed) {
    RCC_CHECK(++sweeps <= max_sweeps);
    changed = false;
    for (std::size_t i = 0; i < md; ++i) {
      const VertexId u = es[i].u;
      const VertexId v = es[i].v;
      const std::size_t sum = static_cast<std::size_t>(deg[u]) + deg[v];
      if (in_h[i]) {
        if (sum > beta) {
          in_h[i] = 0;
          --deg[u];
          --deg[v];
          changed = true;
        }
      } else if (sum < low) {
        in_h[i] = 1;
        ++deg[u];
        ++deg[v];
        changed = true;
      }
    }
  }

  out.reserve(md);
  for (std::size_t i = 0; i < md; ++i) {
    if (in_h[i]) out.add(es[i]);
  }
}

}  // namespace

void build_edcs_into(EdgeList& out, EdgeSpan piece, const EdcsParams& params,
                     MachineScratch* scratch) {
  params.validate();
  if (scratch != nullptr) {
    build_into(out, piece, params, scratch->state<EdcsBuilder>(),
               scratch->stats());
    return;
  }
  EdcsBuilder local;
  build_into(out, piece, params, local, nullptr);
}

EdgeList build_edcs(EdgeSpan piece, const EdcsParams& params,
                    MachineScratch* scratch) {
  EdgeList out;
  build_edcs_into(out, piece, params, scratch);
  return out;
}

bool edcs_invariants_hold(EdgeSpan graph, EdgeSpan h,
                          const EdcsParams& params) {
  params.validate();
  const VertexId n = graph.num_vertices();
  if (h.num_vertices() != n) return false;

  // Degrees over DISTINCT pairs: parallel copies carry no weight in either
  // invariant (the builder keeps one copy per pair, but the oracle accepts
  // any representation of the same subgraph).
  std::unordered_set<Edge, EdgeHash> h_set;
  std::vector<std::size_t> deg(n, 0);
  for (const Edge& e : h) {
    if (e.is_loop()) return false;
    if (h_set.insert(make_edge(e.u, e.v)).second) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  std::unordered_set<Edge, EdgeHash> g_set;
  for (const Edge& e : graph) g_set.insert(make_edge(e.u, e.v));
  for (const Edge& e : h_set) {
    if (g_set.count(e) == 0) return false;  // not a subgraph
  }
  for (const Edge& e : g_set) {
    const std::size_t sum = deg[e.u] + deg[e.v];
    if (h_set.count(e) > 0) {
      if (sum > params.beta) return false;  // P1
    } else {
      if (sum + params.lambda < params.beta) return false;  // P2
    }
  }
  return true;
}

}  // namespace rcc
