#include "matching/blossom.hpp"

#include <vector>

#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Working state shared across augmentation searches.
///
/// The classical contraction algorithm resets O(n) state before every search;
/// on sparse graphs with many isolated or quickly-settled vertices that makes
/// the whole run quadratic. Instead we log every vertex a search modifies in
/// `touched` and undo only those entries at the next search, so one search
/// costs O(size of the explored component) (plus contraction work).
///
/// Contraction bookkeeping: `base` is a union-find forest (path halving).
/// The textbook implementation re-scans every explored vertex per blossom
/// event to re-base the contracted set — O(tree size) per event, which on
/// the coreset coordinator's union-of-matchings workload measured 1000x the
/// BFS cost itself (3.6e8 rebase steps against 3e5 edge visits). Contracting
/// through the DSU touches only the two blossom paths: the swallowed bases
/// are unioned into the new base, and the only vertices that newly become
/// even are the odd path vertices themselves (anything else based inside the
/// blossom was already even when its own blossom formed), so they are
/// enqueued right on the path walk.
///
/// The arrays themselves live in a BlossomScratch so repeated solves reuse
/// their capacity; per-call initialization is plain O(n) fills (no heap
/// traffic once warm).
struct BlossomState {
  const Graph& g;
  BlossomScratch& s;
  const bool prune;

  BlossomState(const Graph& graph, BlossomScratch& scratch, bool prune_trees,
               WorkspaceStats* stats)
      : g(graph), s(scratch), prune(prune_trees) {
    const std::size_t n = graph.num_vertices();
    workspace_detail::sized(s.mate, n, stats);
    workspace_detail::sized(s.parent, n, stats);
    workspace_detail::sized(s.base, n, stats);
    workspace_detail::sized(s.used, n, stats);
    workspace_detail::sized(s.on_path, n, stats);
    workspace_detail::sized(s.dead, n, stats);
    std::fill(s.mate.begin(), s.mate.end(), kInvalidVertex);
    std::fill(s.parent.begin(), s.parent.end(), kInvalidVertex);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) s.base[v] = v;
    std::fill(s.used.begin(), s.used.end(), char{0});
    std::fill(s.on_path.begin(), s.on_path.end(), char{0});
    std::fill(s.dead.begin(), s.dead.end(), char{0});
    s.queue.clear();
    s.touched.clear();
    s.path_marked.clear();
  }

  void touch(VertexId v) { s.touched.push_back(v); }

  void reset_search_state() {
    for (VertexId v : s.touched) {
      s.parent[v] = kInvalidVertex;
      s.used[v] = 0;
      s.base[v] = v;
    }
    s.touched.clear();
  }

  /// Current blossom base of v: union-find root with path halving. Every
  /// vertex whose DSU entry deviates from self is on a compressed chain of
  /// touched vertices, so the touched-undo in reset_search_state() restores
  /// the forest exactly.
  VertexId find(VertexId v) {
    while (s.base[v] != v) {
      s.base[v] = s.base[s.base[v]];
      v = s.base[v];
    }
    return v;
  }

  /// The search from the last root failed: its alternating tree is a
  /// Hungarian tree — no augmenting path will ever pass through any of its
  /// vertices (failed searches are exhaustive, and augmentations elsewhere
  /// cannot revive them), so the tree is removed from the graph for good.
  void bury_failed_tree() {
    for (VertexId v : s.touched) s.dead[v] = 1;
  }

  /// Lowest common ancestor of the bases of a and b in the alternating tree.
  VertexId lca(VertexId a, VertexId b) {
    s.path_marked.clear();
    VertexId x = a;
    for (;;) {
      x = find(x);
      s.on_path[x] = 1;
      s.path_marked.push_back(x);
      if (s.mate[x] == kInvalidVertex) break;  // reached the tree root
      x = s.parent[s.mate[x]];
    }
    VertexId y = b;
    for (;;) {
      y = find(y);
      if (s.on_path[y]) break;
      y = s.parent[s.mate[y]];
    }
    for (VertexId v : s.path_marked) s.on_path[v] = 0;
    return y;
  }

  /// Contracts the blossom branch from v up to base b into b: swallowed
  /// bases are unioned into b, odd path vertices become even and are
  /// enqueued, and `child` is the vertex on the other branch that v's tree
  /// edge should point to.
  void mark_path(VertexId v, VertexId b, VertexId child) {
    for (VertexId bv = find(v); bv != b; bv = find(v)) {
      const VertexId mv = s.mate[v];
      s.base[bv] = b;       // union the even base into the blossom
      s.base[find(mv)] = b; // and the odd side (its own base, or an earlier
                            // blossom's — whose members are already even)
      if (!s.used[mv]) {
        // The only vertices a contraction newly exposes as even are the odd
        // path vertices; everything else based inside the blossom became
        // even when its own blossom formed.
        s.used[mv] = 1;
        touch(mv);
        s.queue.push_back(mv);
      }
      s.parent[v] = child;
      touch(v);
      child = mv;
      v = s.parent[mv];
    }
  }

  /// Grows an alternating tree from `root`; returns an exposed vertex ending
  /// an augmenting path, or kInvalidVertex if none exists from this root.
  VertexId find_path(VertexId root) {
    reset_search_state();
    s.used[root] = 1;
    touch(root);
    s.queue.clear();
    s.queue.push_back(root);
    for (std::size_t head = 0; head < s.queue.size(); ++head) {
      const VertexId v = s.queue[head];
      for (VertexId to : g.neighbors(v)) {
        if (prune && s.dead[to]) continue;  // buried Hungarian tree
        if (find(v) == find(to) || s.mate[v] == to) continue;
        if (to == root || (s.mate[to] != kInvalidVertex &&
                           s.parent[s.mate[to]] != kInvalidVertex)) {
          // Odd cycle: contract the blossom rooted at lca(v, to) by
          // unioning both branches' bases into it (mark_path also enqueues
          // the odd path vertices that just became even).
          const VertexId cur_base = lca(v, to);
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
        } else if (s.parent[to] == kInvalidVertex) {
          s.parent[to] = v;
          touch(to);
          if (s.mate[to] == kInvalidVertex) {
            return to;  // augmenting path root..to found
          }
          s.used[s.mate[to]] = 1;
          touch(s.mate[to]);
          s.queue.push_back(s.mate[to]);
        }
      }
    }
    return kInvalidVertex;
  }

  /// Flips matched status along the augmenting path ending at v.
  void augment(VertexId v) {
    while (v != kInvalidVertex) {
      const VertexId pv = s.parent[v];
      const VertexId next = s.mate[pv];
      s.mate[v] = pv;
      s.mate[pv] = v;
      v = next;
    }
  }
};

}  // namespace

void blossom_maximum_matching_into(Matching& out, const Graph& g,
                                   MachineScratch* scratch,
                                   bool prune_hungarian_trees,
                                   const Matching* warm_start) {
  BlossomScratch local;
  BlossomScratch& bs =
      scratch != nullptr ? scratch->state<BlossomScratch>() : local;
  BlossomState st(g, bs, prune_hungarian_trees,
                  scratch != nullptr ? scratch->stats() : nullptr);

  if (warm_start != nullptr) {
    // Seed from the caller's matching (read before out.reset — the caller
    // may pass &out). Validity of the seed is the caller's contract.
    RCC_CHECK(warm_start->num_vertices() == g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      bs.mate[v] = warm_start->mate(v);
    }
  } else {
    // Greedy initialization: removes most augmentation phases on random
    // graphs.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (bs.mate[v] != kInvalidVertex) continue;
      for (VertexId w : g.neighbors(v)) {
        if (bs.mate[w] == kInvalidVertex && w != v) {
          bs.mate[v] = w;
          bs.mate[w] = v;
          break;
        }
      }
    }
  }

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (bs.mate[v] != kInvalidVertex || g.degree(v) == 0) continue;
    const VertexId end = st.find_path(v);
    if (end != kInvalidVertex) {
      st.augment(end);
    } else if (prune_hungarian_trees) {
      st.bury_failed_tree();
    }
  }

  out.reset(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (bs.mate[v] != kInvalidVertex && v < bs.mate[v]) {
      out.match(v, bs.mate[v]);
    }
  }
}

Matching blossom_maximum_matching(const Graph& g, MachineScratch* scratch,
                                  bool prune_hungarian_trees,
                                  const Matching* warm_start) {
  Matching result;
  blossom_maximum_matching_into(result, g, scratch, prune_hungarian_trees,
                                warm_start);
  return result;
}

}  // namespace rcc
