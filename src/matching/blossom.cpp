#include "matching/blossom.hpp"

#include <vector>

namespace rcc {

namespace {

/// Working state shared across augmentation searches.
///
/// The classical contraction algorithm resets O(n) state before every search;
/// on sparse graphs with many isolated or quickly-settled vertices that makes
/// the whole run quadratic. Instead we log every vertex a search modifies in
/// `touched` and undo only those entries at the next search, so one search
/// costs O(size of the explored component) (plus contraction work).
struct BlossomState {
  const Graph& g;
  std::vector<VertexId> mate;
  std::vector<VertexId> parent;  // alternating-tree parent (through blossoms)
  std::vector<VertexId> base;    // blossom base of each vertex
  std::vector<bool> used;        // in the alternating tree (even level)
  std::vector<bool> in_blossom;  // scratch: bases inside the current blossom
  std::vector<bool> on_path;     // scratch for lca()
  std::vector<VertexId> queue;
  std::vector<VertexId> touched;      // vertices whose search state is dirty
  std::vector<VertexId> marked;       // in_blossom entries to clear
  std::vector<VertexId> path_marked;  // on_path entries to clear

  explicit BlossomState(const Graph& graph)
      : g(graph),
        mate(graph.num_vertices(), kInvalidVertex),
        parent(graph.num_vertices(), kInvalidVertex),
        base(graph.num_vertices(), 0),
        used(graph.num_vertices(), false),
        in_blossom(graph.num_vertices(), false),
        on_path(graph.num_vertices(), false) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) base[v] = v;
  }

  void touch(VertexId v) { touched.push_back(v); }

  void reset_search_state() {
    for (VertexId v : touched) {
      parent[v] = kInvalidVertex;
      used[v] = false;
      base[v] = v;
    }
    touched.clear();
  }

  /// Lowest common ancestor of the bases of a and b in the alternating tree.
  VertexId lca(VertexId a, VertexId b) {
    path_marked.clear();
    VertexId x = a;
    for (;;) {
      x = base[x];
      on_path[x] = true;
      path_marked.push_back(x);
      if (mate[x] == kInvalidVertex) break;  // reached the tree root
      x = parent[mate[x]];
    }
    VertexId y = b;
    for (;;) {
      y = base[y];
      if (on_path[y]) break;
      y = parent[mate[y]];
    }
    for (VertexId v : path_marked) on_path[v] = false;
    return y;
  }

  /// Marks blossom bases on the path from v up to base b; `child` is the
  /// vertex on the other branch that v's tree edge should point to.
  void mark_path(VertexId v, VertexId b, VertexId child) {
    while (base[v] != b) {
      if (!in_blossom[base[v]]) {
        in_blossom[base[v]] = true;
        marked.push_back(base[v]);
      }
      if (!in_blossom[base[mate[v]]]) {
        in_blossom[base[mate[v]]] = true;
        marked.push_back(base[mate[v]]);
      }
      parent[v] = child;
      touch(v);
      child = mate[v];
      v = parent[mate[v]];
    }
  }

  /// Grows an alternating tree from `root`; returns an exposed vertex ending
  /// an augmenting path, or kInvalidVertex if none exists from this root.
  VertexId find_path(VertexId root) {
    reset_search_state();
    used[root] = true;
    touch(root);
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId to : g.neighbors(v)) {
        if (base[v] == base[to] || mate[v] == to) continue;
        if (to == root ||
            (mate[to] != kInvalidVertex && parent[mate[to]] != kInvalidVertex)) {
          // Odd cycle: contract the blossom rooted at lca(v, to). Only
          // touched vertices can have a base inside the blossom (untouched
          // vertices have base == self and are not tree bases), so the
          // re-basing scan is confined to the touched set.
          const VertexId cur_base = lca(v, to);
          marked.clear();
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
          for (std::size_t t = 0; t < touched.size(); ++t) {
            const VertexId x = touched[t];
            if (in_blossom[base[x]]) {
              base[x] = cur_base;
              if (!used[x]) {
                used[x] = true;
                queue.push_back(x);
              }
            }
          }
          for (VertexId x : marked) in_blossom[x] = false;
        } else if (parent[to] == kInvalidVertex) {
          parent[to] = v;
          touch(to);
          if (mate[to] == kInvalidVertex) {
            return to;  // augmenting path root..to found
          }
          used[mate[to]] = true;
          touch(mate[to]);
          queue.push_back(mate[to]);
        }
      }
    }
    return kInvalidVertex;
  }

  /// Flips matched status along the augmenting path ending at v.
  void augment(VertexId v) {
    while (v != kInvalidVertex) {
      const VertexId pv = parent[v];
      const VertexId next = mate[pv];
      mate[v] = pv;
      mate[pv] = v;
      v = next;
    }
  }
};

}  // namespace

Matching blossom_maximum_matching(const Graph& g) {
  BlossomState st(g);

  // Greedy initialization: removes most augmentation phases on random graphs.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (st.mate[v] != kInvalidVertex) continue;
    for (VertexId w : g.neighbors(v)) {
      if (st.mate[w] == kInvalidVertex && w != v) {
        st.mate[v] = w;
        st.mate[w] = v;
        break;
      }
    }
  }

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (st.mate[v] != kInvalidVertex || g.degree(v) == 0) continue;
    const VertexId end = st.find_path(v);
    if (end != kInvalidVertex) st.augment(end);
  }

  Matching result(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (st.mate[v] != kInvalidVertex && v < st.mate[v]) {
      result.match(v, st.mate[v]);
    }
  }
  return result;
}

}  // namespace rcc
