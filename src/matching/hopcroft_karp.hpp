// Hopcroft-Karp maximum bipartite matching, O(m * sqrt(n)).
//
// This is the workhorse "any maximum matching algorithm" that machines run
// on their pieces for Theorem 1 when instances are bipartite (which all of
// the paper's hard distributions are). The O(n) working arrays can come
// from a caller-owned scratch so per-piece solves stop allocating once the
// workspace is warm.
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

class MachineScratch;

/// Maximum matching of a bipartition-tagged graph. Aborts if the graph has
/// no bipartition tag (use maximum_matching() to dispatch automatically).
Matching hopcroft_karp(const Graph& g, MachineScratch* scratch = nullptr);

/// As above, writing into a caller-reused Matching (reset internally).
void hopcroft_karp_into(Matching& out, const Graph& g,
                        MachineScratch* scratch = nullptr);

}  // namespace rcc
