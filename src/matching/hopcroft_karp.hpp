// Hopcroft-Karp maximum bipartite matching, O(m * sqrt(n)).
//
// This is the workhorse "any maximum matching algorithm" that machines run
// on their pieces for Theorem 1 when instances are bipartite (which all of
// the paper's hard distributions are).
#pragma once

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

/// Maximum matching of a bipartition-tagged graph. Aborts if the graph has
/// no bipartition tag (use maximum_matching() to dispatch automatically).
Matching hopcroft_karp(const Graph& g);

}  // namespace rcc
