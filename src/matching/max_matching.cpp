#include "matching/max_matching.hpp"

#include "matching/blossom.hpp"
#include "matching/hopcroft_karp.hpp"

namespace rcc {

Matching maximum_matching(const Graph& g) {
  if (g.is_bipartite_tagged()) return hopcroft_karp(g);
  return blossom_maximum_matching(g);
}

Matching maximum_matching(EdgeSpan edges, VertexId left_size) {
  if (left_size > 0) {
    return hopcroft_karp(Graph(edges, Bipartition{left_size}));
  }
  return blossom_maximum_matching(Graph(edges));
}

std::size_t maximum_matching_size(EdgeSpan edges, VertexId left_size) {
  return maximum_matching(edges, left_size).size();
}

}  // namespace rcc
