#include "matching/max_matching.hpp"

#include <cstdint>
#include <optional>

#include "matching/blossom.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Workspace-resident CSR + the signature of the edge sequence it was built
/// from. Unlike the sorted IncrementalCsr of the augmenting search, a Graph's
/// neighbor rows preserve the INPUT EDGE ORDER — and the solvers' returned
/// matchings depend on that order — so the reuse check hashes the sequence,
/// not the multiset: a permuted copy of the same edges rebuilds (it would
/// yield a different, though equally maximum, matching). Collision odds are
/// the usual 2^-64 per pair; a false match only skips rebuilding a CSR that
/// is already byte-identical whp, never changes what the solver computes on
/// the arrays it is handed.
struct CachedGraph {
  Graph g;
  std::uint64_t sig = 0;
  std::size_t m = 0;
  VertexId n = 0;
  VertexId left = 0;
  bool valid = false;
};

std::uint64_t sequence_signature(EdgeSpan edges) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const Edge& e : edges) {
    std::uint64_t x = (static_cast<std::uint64_t>(e.u) << 32) | e.v;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h = (h ^ (x ^ (x >> 31))) * 1099511628211ULL;  // order-sensitive fold
  }
  return h;
}

}  // namespace

Matching maximum_matching(const Graph& g, MachineScratch* scratch) {
  if (g.is_bipartite_tagged()) return hopcroft_karp(g, scratch);
  return blossom_maximum_matching(g, scratch);
}

Matching maximum_matching(EdgeSpan edges, VertexId left_size,
                          MachineScratch* scratch) {
  Matching result;
  maximum_matching_into(result, edges, left_size, scratch);
  return result;
}

void maximum_matching_into(Matching& out, EdgeSpan edges, VertexId left_size,
                           MachineScratch* scratch) {
  const std::optional<Bipartition> bipartition =
      left_size > 0 ? std::optional<Bipartition>(Bipartition{left_size})
                    : std::nullopt;
  if (scratch != nullptr) {
    // The CSR and every solver array come from the workspace: repeated
    // per-piece / per-round solves reuse one warmed working set, and a
    // repeated solve over the SAME edge sequence (exact-oracle harnesses,
    // per-class re-solves) skips the CSR rebuild outright.
    CachedGraph& cg = scratch->state<CachedGraph>();
    const std::uint64_t sig = sequence_signature(edges);
    if (!(cg.valid && cg.n == edges.num_vertices() &&
          cg.m == edges.num_edges() && cg.left == left_size &&
          cg.sig == sig)) {
      cg.g.assign(edges, bipartition,
                  &scratch->cursor(
                      static_cast<std::size_t>(edges.num_vertices())));
      cg.sig = sig;
      cg.m = edges.num_edges();
      cg.n = edges.num_vertices();
      cg.left = left_size;
      cg.valid = true;
    }
    if (cg.g.is_bipartite_tagged()) {
      hopcroft_karp_into(out, cg.g, scratch);
    } else {
      blossom_maximum_matching_into(out, cg.g, scratch);
    }
    return;
  }
  const Graph g(edges, bipartition);
  if (g.is_bipartite_tagged()) {
    hopcroft_karp_into(out, g);
  } else {
    blossom_maximum_matching_into(out, g);
  }
}

std::size_t maximum_matching_size(EdgeSpan edges, VertexId left_size) {
  return maximum_matching(edges, left_size).size();
}

}  // namespace rcc
