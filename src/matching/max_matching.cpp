#include "matching/max_matching.hpp"

#include <optional>

#include "matching/blossom.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/workspace.hpp"

namespace rcc {

Matching maximum_matching(const Graph& g, MachineScratch* scratch) {
  if (g.is_bipartite_tagged()) return hopcroft_karp(g, scratch);
  return blossom_maximum_matching(g, scratch);
}

Matching maximum_matching(EdgeSpan edges, VertexId left_size,
                          MachineScratch* scratch) {
  Matching result;
  maximum_matching_into(result, edges, left_size, scratch);
  return result;
}

void maximum_matching_into(Matching& out, EdgeSpan edges, VertexId left_size,
                           MachineScratch* scratch) {
  const std::optional<Bipartition> bipartition =
      left_size > 0 ? std::optional<Bipartition>(Bipartition{left_size})
                    : std::nullopt;
  if (scratch != nullptr) {
    // The CSR and every solver array come from the workspace: repeated
    // per-piece / per-round solves reuse one warmed working set.
    Graph& g = scratch->state<Graph>();
    g.assign(edges, bipartition,
             &scratch->cursor(static_cast<std::size_t>(edges.num_vertices())));
    if (g.is_bipartite_tagged()) {
      hopcroft_karp_into(out, g, scratch);
    } else {
      blossom_maximum_matching_into(out, g, scratch);
    }
    return;
  }
  const Graph g(edges, bipartition);
  if (g.is_bipartite_tagged()) {
    hopcroft_karp_into(out, g);
  } else {
    blossom_maximum_matching_into(out, g);
  }
}

std::size_t maximum_matching_size(EdgeSpan edges, VertexId left_size) {
  return maximum_matching(edges, left_size).size();
}

}  // namespace rcc
