// Bounded-length augmenting-path search: the layered primitive behind the
// (1+eps) multi-round matching combiner.
//
// An augmenting path for a matching M is a simple path v0, v1, ..., vL whose
// edges alternate non-matching / matching and whose endpoints v0, vL are both
// free; flipping it (the symmetric difference) grows M by exactly one edge.
// The classical short-augmenting-path bound makes bounded search useful: if M
// admits NO augmenting path of length <= 2k+1, then
//
//   |M| >= (k+1)/(k+2) * |M*|,   i.e.   |M*| / |M| <= 1 + 1/(k+1),
//
// in any graph (decompose M xor M* into alternating paths/cycles; every
// M*-augmenting component is an augmenting path for M with at least k+1
// M-edges). The MPC combiner (mpc/augmenting_rounds.hpp) terminates on
// exactly this certificate, so the search here must be EXACT with respect to
// the length bound: find_augmenting_paths returns empty iff no augmenting
// path of length <= max_length exists. That rules out the visited-marking
// prunings of Hopcroft-Karp-style layered search (correct only for bipartite
// graphs); instead the search exhaustively enumerates simple alternating
// paths by depth-bounded DFS with backtracking — exponential in the length
// bound in the worst case, but the bound is a small knob (2k+1 for k = O(1/eps))
// and the matched continuation out of every odd vertex is forced, so the
// branching factor applies to only (L+1)/2 of the L hops.
//
// Everything here is deterministic: start vertices ascend, adjacency is
// sorted, discovered paths are canonically oriented (first id < last id).
// greedy.cpp's greedy_extend is the degenerate caller (length-1 paths), and
// augment_matching with an unbounded length cap is an exact maximum-matching
// route that the unit tests cross-check against Hopcroft-Karp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "util/types.hpp"

namespace rcc {

class MachineScratch;

/// Small-buffer vertex sequence for AugmentingPath. Bounded searches emit
/// short paths (a 2k+1 length cap means 2k+2 vertices, k a small constant),
/// and the machine phase creates thousands of them per round — one heap
/// allocation per path dominated the empty-matching bootstrap round. Up to
/// kInline vertices live inside the object; longer sequences (the exact
/// maximum-matching route drops the cap) spill to the heap transparently.
/// Iteration, indexing, and comparisons behave exactly like the
/// std::vector<VertexId> this replaces (lexicographic order in particular,
/// which the combiner's canonical sort depends on).
class PathVertices {
 public:
  static constexpr std::uint32_t kInline = 8;

  PathVertices() = default;
  PathVertices(std::initializer_list<VertexId> init) {
    assign(init.begin(), init.size());
  }
  PathVertices(const std::vector<VertexId>& v) { assign(v.data(), v.size()); }
  PathVertices(const PathVertices& other) {
    assign(other.data(), other.size_);
  }
  PathVertices(PathVertices&& other) noexcept { steal(other); }
  PathVertices& operator=(const PathVertices& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }
  PathVertices& operator=(PathVertices&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      heap_ = nullptr;
      capacity_ = kInline;
      steal(other);
    }
    return *this;
  }
  ~PathVertices() { delete[] heap_; }

  VertexId* data() { return heap_ != nullptr ? heap_ : inline_; }
  const VertexId* data() const { return heap_ != nullptr ? heap_ : inline_; }
  VertexId* begin() { return data(); }
  VertexId* end() { return data() + size_; }
  const VertexId* begin() const { return data(); }
  const VertexId* end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  VertexId operator[](std::size_t i) const { return data()[i]; }
  VertexId& operator[](std::size_t i) { return data()[i]; }
  VertexId front() const { return data()[0]; }
  VertexId back() const { return data()[size_ - 1]; }

  void push_back(VertexId v) {
    if (size_ == capacity_) grow(2 * capacity_);
    data()[size_++] = v;
  }
  void clear() { size_ = 0; }

  friend bool operator==(const PathVertices& a, const PathVertices& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const PathVertices& a,
                         const std::vector<VertexId>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator<(const PathVertices& a, const PathVertices& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  void assign(const VertexId* src, std::size_t n) {
    if (n > capacity_) grow(n);
    std::copy(src, src + n, data());
    size_ = static_cast<std::uint32_t>(n);
  }
  void grow(std::size_t n) {
    VertexId* fresh = new VertexId[n];
    std::copy(data(), data() + size_, fresh);
    delete[] heap_;
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(n);
  }
  /// Move helper: assumes *this owns no heap block. Inline contents move by
  /// copy (trivial elements); a heap block changes owners.
  void steal(PathVertices& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = kInline;
    } else {
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  VertexId* heap_ = nullptr;  // non-null iff spilled past kInline
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = kInline;
  VertexId inline_[kInline];
};

/// One augmenting path, stored as its vertex sequence v0..vL (L odd edges,
/// alternation starting and ending with a non-matching edge). Only the
/// non-matching edges need to exist in the searched edge set — the matching
/// edges are carried by M itself, which is what lets a machine discover a
/// path inside its shard against a broadcast matching.
struct AugmentingPath {
  PathVertices vertices;

  std::size_t length() const { return vertices.size() - 1; }  // edges
  /// Message cost in words: one vertex id per path vertex.
  std::uint64_t words() const { return vertices.size(); }

  /// Canonical orientation (first id < last id); alternation is symmetric,
  /// so both orientations describe the same flip.
  void canonicalize();

  friend bool operator==(const AugmentingPath&, const AugmentingPath&) = default;
};

/// Canonical path order: lexicographic on the (canonicalized) vertex
/// sequences. The combiner's first-wins conflict resolution sorts by this,
/// which makes the fold independent of machine count and thread schedule.
bool canonical_less(const AugmentingPath& a, const AugmentingPath& b);

/// A set of vertex-disjoint augmenting paths of odd length <= max_length for
/// `matching`, discovered greedily (ascending start vertex, lexicographic
/// DFS) over the non-matching edges in `edges`. Exact as an emptiness test:
/// returns empty iff NO such path exists. The paths are canonicalized and
/// mutually vertex-disjoint, so they can all be applied in any order.
/// `scratch` (optional) supplies the adjacency/mark buffers from a
/// round-persistent workspace, making repeated searches allocation-free in
/// steady state; results are identical with or without it.
std::vector<AugmentingPath> find_augmenting_paths(
    EdgeSpan edges, const Matching& matching, std::size_t max_length,
    MachineScratch* scratch = nullptr);

/// True iff some augmenting path of length <= max_length exists (same search,
/// stopping at the first hit).
bool has_augmenting_path(EdgeSpan edges, const Matching& matching,
                         std::size_t max_length,
                         MachineScratch* scratch = nullptr);

/// Structural validity: odd length, simple, endpoints free, interior edges
/// alternate against `matching`. Does NOT check edge membership — pass
/// `edges` to also require every non-matching hop to exist there (tests use
/// this; the combiner trusts its machines and only re-checks disjointness).
/// With `scratch`, the simplicity check runs on epoch-stamped marks; without
/// it, on a pairwise scan — both allocation-free, same verdicts.
bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching,
                              MachineScratch* scratch = nullptr);
bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching, EdgeSpan edges,
                              MachineScratch* scratch = nullptr);

/// Flips the path's symmetric difference into `matching` (|M| grows by one).
/// Precondition: is_valid_augmenting_path(path, matching).
void apply_augmenting_path(Matching& matching, const AugmentingPath& path);

/// Repeatedly finds and applies disjoint path batches of length <= max_length
/// until none remain; returns the number of augmentations. With max_length >=
/// num_vertices this drives `matching` to a maximum matching of `edges`
/// (exhaustive search; intended for tests and small instances — the
/// polynomial solvers in hopcroft_karp/blossom are the production route).
std::size_t augment_matching(Matching& matching, EdgeSpan edges,
                             std::size_t max_length,
                             MachineScratch* scratch = nullptr);

}  // namespace rcc
