// Bounded-length augmenting-path search: the layered primitive behind the
// (1+eps) multi-round matching combiner.
//
// An augmenting path for a matching M is a simple path v0, v1, ..., vL whose
// edges alternate non-matching / matching and whose endpoints v0, vL are both
// free; flipping it (the symmetric difference) grows M by exactly one edge.
// The classical short-augmenting-path bound makes bounded search useful: if M
// admits NO augmenting path of length <= 2k+1, then
//
//   |M| >= (k+1)/(k+2) * |M*|,   i.e.   |M*| / |M| <= 1 + 1/(k+1),
//
// in any graph (decompose M xor M* into alternating paths/cycles; every
// M*-augmenting component is an augmenting path for M with at least k+1
// M-edges). The MPC combiner (mpc/augmenting_rounds.hpp) terminates on
// exactly this certificate, so the search here must be EXACT with respect to
// the length bound: find_augmenting_paths returns empty iff no augmenting
// path of length <= max_length exists. That rules out the visited-marking
// prunings of Hopcroft-Karp-style layered search (correct only for bipartite
// graphs); instead the search exhaustively enumerates simple alternating
// paths by depth-bounded DFS with backtracking — exponential in the length
// bound in the worst case, but the bound is a small knob (2k+1 for k = O(1/eps))
// and the matched continuation out of every odd vertex is forced, so the
// branching factor applies to only (L+1)/2 of the L hops.
//
// Everything here is deterministic: start vertices ascend, adjacency is
// sorted, discovered paths are canonically oriented (first id < last id).
// greedy.cpp's greedy_extend is the degenerate caller (length-1 paths), and
// augment_matching with an unbounded length cap is an exact maximum-matching
// route that the unit tests cross-check against Hopcroft-Karp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "util/types.hpp"

namespace rcc {

class MachineScratch;

/// One augmenting path, stored as its vertex sequence v0..vL (L odd edges,
/// alternation starting and ending with a non-matching edge). Only the
/// non-matching edges need to exist in the searched edge set — the matching
/// edges are carried by M itself, which is what lets a machine discover a
/// path inside its shard against a broadcast matching.
struct AugmentingPath {
  std::vector<VertexId> vertices;

  std::size_t length() const { return vertices.size() - 1; }  // edges
  /// Message cost in words: one vertex id per path vertex.
  std::uint64_t words() const { return vertices.size(); }

  /// Canonical orientation (first id < last id); alternation is symmetric,
  /// so both orientations describe the same flip.
  void canonicalize();

  friend bool operator==(const AugmentingPath&, const AugmentingPath&) = default;
};

/// Canonical path order: lexicographic on the (canonicalized) vertex
/// sequences. The combiner's first-wins conflict resolution sorts by this,
/// which makes the fold independent of machine count and thread schedule.
bool canonical_less(const AugmentingPath& a, const AugmentingPath& b);

/// A set of vertex-disjoint augmenting paths of odd length <= max_length for
/// `matching`, discovered greedily (ascending start vertex, lexicographic
/// DFS) over the non-matching edges in `edges`. Exact as an emptiness test:
/// returns empty iff NO such path exists. The paths are canonicalized and
/// mutually vertex-disjoint, so they can all be applied in any order.
/// `scratch` (optional) supplies the adjacency/mark buffers from a
/// round-persistent workspace, making repeated searches allocation-free in
/// steady state; results are identical with or without it.
std::vector<AugmentingPath> find_augmenting_paths(
    EdgeSpan edges, const Matching& matching, std::size_t max_length,
    MachineScratch* scratch = nullptr);

/// True iff some augmenting path of length <= max_length exists (same search,
/// stopping at the first hit).
bool has_augmenting_path(EdgeSpan edges, const Matching& matching,
                         std::size_t max_length,
                         MachineScratch* scratch = nullptr);

/// Structural validity: odd length, simple, endpoints free, interior edges
/// alternate against `matching`. Does NOT check edge membership — pass
/// `edges` to also require every non-matching hop to exist there (tests use
/// this; the combiner trusts its machines and only re-checks disjointness).
bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching);
bool is_valid_augmenting_path(const AugmentingPath& path,
                              const Matching& matching, EdgeSpan edges);

/// Flips the path's symmetric difference into `matching` (|M| grows by one).
/// Precondition: is_valid_augmenting_path(path, matching).
void apply_augmenting_path(Matching& matching, const AugmentingPath& path);

/// Repeatedly finds and applies disjoint path batches of length <= max_length
/// until none remain; returns the number of augmentations. With max_length >=
/// num_vertices this drives `matching` to a maximum matching of `edges`
/// (exhaustive search; intended for tests and small instances — the
/// polynomial solvers in hopcroft_karp/blossom are the production route).
std::size_t augment_matching(Matching& matching, EdgeSpan edges,
                             std::size_t max_length,
                             MachineScratch* scratch = nullptr);

}  // namespace rcc
