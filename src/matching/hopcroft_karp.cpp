#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <vector>

#include "util/workspace.hpp"

namespace rcc {

namespace {
constexpr VertexId kInf = std::numeric_limits<VertexId>::max();

/// Reusable working set of the HK solver (contents are garbage between
/// calls; only capacity persists).
struct HkScratch {
  std::vector<VertexId> mate;
  std::vector<VertexId> dist;
  std::vector<VertexId> queue;
};

}  // namespace

void hopcroft_karp_into(Matching& out, const Graph& g,
                        MachineScratch* scratch) {
  RCC_CHECK(g.is_bipartite_tagged());
  const VertexId n = g.num_vertices();
  const VertexId nL = g.bipartition()->left_size;

  HkScratch local;
  HkScratch& hk = scratch != nullptr ? scratch->state<HkScratch>() : local;
  WorkspaceStats* stats = scratch != nullptr ? scratch->stats() : nullptr;
  workspace_detail::sized(hk.mate, n, stats);
  workspace_detail::sized(hk.dist, nL, stats);
  std::fill(hk.mate.begin(), hk.mate.end(), kInvalidVertex);
  hk.queue.clear();
  workspace_detail::reserved(hk.queue, nL, stats);
  std::vector<VertexId>& mate = hk.mate;
  std::vector<VertexId>& dist = hk.dist;
  std::vector<VertexId>& queue = hk.queue;

  // BFS layers from unmatched left vertices; returns true if some unmatched
  // right vertex is reachable (i.e. an augmenting path exists).
  auto bfs = [&]() -> bool {
    queue.clear();
    for (VertexId u = 0; u < nL; ++u) {
      if (mate[u] == kInvalidVertex) {
        dist[u] = 0;
        queue.push_back(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool found = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId v : g.neighbors(u)) {
        const VertexId next = mate[v];
        if (next == kInvalidVertex) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[u] + 1;
          queue.push_back(next);
        }
      }
    }
    return found;
  };

  // DFS along layered edges, flipping matched/unmatched status on success.
  auto dfs = [&](auto&& self, VertexId u) -> bool {
    for (VertexId v : g.neighbors(u)) {
      const VertexId next = mate[v];
      if (next == kInvalidVertex ||
          (dist[next] == dist[u] + 1 && self(self, next))) {
        mate[u] = v;
        mate[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (VertexId u = 0; u < nL; ++u) {
      if (mate[u] == kInvalidVertex) {
        dfs(dfs, u);
      }
    }
  }

  out.reset(n);
  for (VertexId u = 0; u < nL; ++u) {
    if (mate[u] != kInvalidVertex) out.match(u, mate[u]);
  }
}

Matching hopcroft_karp(const Graph& g, MachineScratch* scratch) {
  Matching result;
  hopcroft_karp_into(result, g, scratch);
  return result;
}

}  // namespace rcc
