#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <vector>

#include "util/workspace.hpp"

namespace rcc {

namespace {
constexpr VertexId kInf = std::numeric_limits<VertexId>::max();

/// Reusable working set of the HK solver (contents are garbage between
/// calls; only capacity persists).
struct HkScratch {
  std::vector<VertexId> mate;
  std::vector<VertexId> dist;
  std::vector<VertexId> queue;
  std::vector<VertexId> active;  // left vertices with degree > 0
};

}  // namespace

void hopcroft_karp_into(Matching& out, const Graph& g,
                        MachineScratch* scratch) {
  RCC_CHECK(g.is_bipartite_tagged());
  const VertexId n = g.num_vertices();
  const VertexId nL = g.bipartition()->left_size;

  HkScratch local;
  HkScratch& hk = scratch != nullptr ? scratch->state<HkScratch>() : local;
  WorkspaceStats* stats = scratch != nullptr ? scratch->stats() : nullptr;
  workspace_detail::sized(hk.mate, n, stats);
  workspace_detail::sized(hk.dist, nL, stats);
  std::fill(hk.mate.begin(), hk.mate.end(), kInvalidVertex);
  hk.queue.clear();
  workspace_detail::reserved(hk.queue, nL, stats);
  VertexId* const mate = hk.mate.data();
  VertexId* const dist = hk.dist.data();
  std::vector<VertexId>& queue = hk.queue;
  const std::size_t* const goff = g.offsets_data();
  const VertexId* const gadj = g.adjacency_data();

  // Active-left list, built once per solve: an isolated left vertex can
  // never be matched and its BFS/DFS visits are no-ops (it scans an empty
  // row and writes dist entries nothing reads), so skipping it per phase is
  // result-identical. On a random O(m/k)-size shard most of the left side
  // is isolated, which turns the per-phase O(nL) sweeps into O(active).
  hk.active.clear();
  workspace_detail::reserved(hk.active, nL, stats);
  for (VertexId u = 0; u < nL; ++u) {
    if (goff[u + 1] > goff[u]) hk.active.push_back(u);
  }
  const std::vector<VertexId>& active = hk.active;

  // BFS layers from unmatched left vertices; returns true if some unmatched
  // right vertex is reachable (i.e. an augmenting path exists).
  auto bfs = [&]() -> bool {
    queue.clear();
    for (const VertexId u : active) {
      if (mate[u] == kInvalidVertex) {
        dist[u] = 0;
        queue.push_back(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool found = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      const std::size_t row_end = goff[u + 1];
      for (std::size_t i = goff[u]; i < row_end; ++i) {
        const VertexId next = mate[gadj[i]];
        if (next == kInvalidVertex) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[u] + 1;
          queue.push_back(next);
        }
      }
    }
    return found;
  };

  // DFS along layered edges, flipping matched/unmatched status on success.
  auto dfs = [&](auto&& self, VertexId u) -> bool {
    const std::size_t row_end = goff[u + 1];
    for (std::size_t i = goff[u]; i < row_end; ++i) {
      const VertexId v = gadj[i];
      const VertexId next = mate[v];
      if (next == kInvalidVertex ||
          (dist[next] == dist[u] + 1 && self(self, next))) {
        mate[u] = v;
        mate[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (const VertexId u : active) {
      if (mate[u] == kInvalidVertex) {
        dfs(dfs, u);
      }
    }
  }

  out.reset(n);
  for (const VertexId u : active) {
    if (mate[u] != kInvalidVertex) out.match(u, mate[u]);
  }
}

Matching hopcroft_karp(const Graph& g, MachineScratch* scratch) {
  Matching result;
  hopcroft_karp_into(result, g, scratch);
  return result;
}

}  // namespace rcc
