#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <vector>

namespace rcc {

namespace {
constexpr VertexId kInf = std::numeric_limits<VertexId>::max();
}

Matching hopcroft_karp(const Graph& g) {
  RCC_CHECK(g.is_bipartite_tagged());
  const VertexId n = g.num_vertices();
  const VertexId nL = g.bipartition()->left_size;

  std::vector<VertexId> mate(n, kInvalidVertex);
  std::vector<VertexId> dist(nL, kInf);
  std::vector<VertexId> queue;
  queue.reserve(nL);

  // BFS layers from unmatched left vertices; returns true if some unmatched
  // right vertex is reachable (i.e. an augmenting path exists).
  auto bfs = [&]() -> bool {
    queue.clear();
    for (VertexId u = 0; u < nL; ++u) {
      if (mate[u] == kInvalidVertex) {
        dist[u] = 0;
        queue.push_back(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool found = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId v : g.neighbors(u)) {
        const VertexId next = mate[v];
        if (next == kInvalidVertex) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[u] + 1;
          queue.push_back(next);
        }
      }
    }
    return found;
  };

  // DFS along layered edges, flipping matched/unmatched status on success.
  auto dfs = [&](auto&& self, VertexId u) -> bool {
    for (VertexId v : g.neighbors(u)) {
      const VertexId next = mate[v];
      if (next == kInvalidVertex ||
          (dist[next] == dist[u] + 1 && self(self, next))) {
        mate[u] = v;
        mate[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (VertexId u = 0; u < nL; ++u) {
      if (mate[u] == kInvalidVertex) {
        dfs(dfs, u);
      }
    }
  }

  Matching result(n);
  for (VertexId u = 0; u < nL; ++u) {
    if (mate[u] != kInvalidVertex) result.match(u, mate[u]);
  }
  return result;
}

}  // namespace rcc
