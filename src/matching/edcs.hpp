// Edge-degree-constrained subgraphs (EDCS): the machine summary that beats
// the maximum-matching coreset's approximation.
//
// A subgraph H of G is a (beta, beta - lambda)-EDCS ("Coresets Meet EDCS",
// arXiv:1711.03076; parameters as in the degree-sum formulation) when
//
//   (P1) every edge (u, v) of H      has deg_H(u) + deg_H(v) <= beta, and
//   (P2) every edge (u, v) of G \ H  has deg_H(u) + deg_H(v) >= beta - lambda.
//
// P1 caps the summary at fewer than beta * n / 2 edges; P2 forces H to keep
// enough edges around every sparse spot that a maximum matching of H is an
// (almost 3/2)-approximation of the maximum matching of G — and when the
// machines of the randomized-partition protocol ship EDCSs of their pieces
// instead of maximum matchings, the union inherits that quality (the
// almost-3/2 / almost-3 results of arXiv:1711.03076, with the communication
// side bounded by Kapralov-Maystre-Tardos, arXiv:2011.06481).
//
// The builder is the standard local-search fixpoint: sweep the edges in
// canonical order, remove an H-edge whose degree sum exceeds beta, add a
// non-H-edge whose degree sum is below beta - lambda, repeat until a sweep
// changes nothing — at which point both invariants hold by definition. With
// lambda >= 1 every flip raises the potential
//   Phi = (2*beta - 1) * sum_v deg_H(v) - 2 * sum_v deg_H(v)^2
// by at least 2: a removal at degree sum s >= beta + 1 gains 4s - 4*beta - 2,
// an addition at degree sum s <= beta - lambda - 1 gains 4*beta - 4s - 6 >=
// 4*lambda - 2. Phi ranges over O(n * beta^2), so the fixpoint terminates
// after O(n * beta^2) flips.
//
// Multigraph semantics: the EDCS is computed on the DISTINCT edge pairs of
// the piece (parallel copies carry no extra matching or cover value), and
// the distinct pairs are enumerated off the piece's IncrementalCsr rows —
// sorted rows make dedup a linear adjacent-skip, and the canonical (u, v)
// enumeration order makes the result a pure function of the edge multiset:
// shuffling the piece's edge order cannot change the EDCS, which is what
// keeps the round-combiner thread-count deterministic for free. All builder
// state (the CSR, the distinct-edge array, the degree and membership arrays)
// lives in a MachineScratch state slot, so warm rounds build EDCSs with zero
// allocations.
#pragma once

#include <cstddef>

#include "graph/edge_list.hpp"
#include "graph/incremental_csr.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

namespace rcc {

class MachineScratch;

/// EDCS degree parameters. Valid when beta >= 2, 1 <= lambda < beta (the
/// termination argument needs lambda >= 1; beta - lambda >= 1 keeps P2
/// meaningful). validate() aborts on nonsense instead of looping forever.
struct EdcsParams {
  std::size_t beta = 16;
  std::size_t lambda = 2;

  void validate() const {
    RCC_CHECK(beta >= 2);
    RCC_CHECK(lambda >= 1);
    RCC_CHECK(lambda < beta);
  }
};

/// Per-scratch builder state: the piece CSR plus the fixpoint's arrays.
/// Rides MachineScratch::state<EdcsBuilder>() so every buffer keeps its
/// high-water capacity across rounds (and across runs on a warm workspace).
struct EdcsBuilder {
  IncrementalCsr csr;           // piece adjacency, sorted rows
  ScratchVec<Edge> distinct;    // distinct pairs, canonical order
  ScratchVec<VertexId> deg_h;   // deg_H per vertex
  ScratchVec<std::uint8_t> in_h;  // membership per distinct edge
};

/// Builds a (beta, beta - lambda)-EDCS of `piece` into `out` (cleared first;
/// vertex universe copied from the piece). Edges land in canonical sorted
/// order, one copy per distinct pair. `scratch` (optional) supplies the
/// persistent EdcsBuilder; without it a call-local builder is used.
void build_edcs_into(EdgeList& out, EdgeSpan piece, const EdcsParams& params,
                     MachineScratch* scratch = nullptr);

/// As above, returning a fresh EdgeList.
EdgeList build_edcs(EdgeSpan piece, const EdcsParams& params,
                    MachineScratch* scratch = nullptr);

/// Invariant oracle for tests and assertions: true iff `h` is a subgraph of
/// `graph` (by distinct pairs) satisfying P1 and P2 for the given
/// parameters. O(n + m) with no randomization; computed in integer
/// arithmetic throughout.
bool edcs_invariants_hold(EdgeSpan graph, EdgeSpan h, const EdcsParams& params);

}  // namespace rcc
