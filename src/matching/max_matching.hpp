// Maximum matching dispatcher: the "ALG" of Theorem 1.
//
// Theorem 1 states that *any* maximum matching of a piece is a valid
// coreset, independent of the algorithm computing it; this dispatcher picks
// Hopcroft-Karp when a bipartition tag is available and Edmonds' blossom
// otherwise, so callers never care which one ran.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

/// Maximum matching of g (HK if bipartite-tagged, blossom otherwise).
Matching maximum_matching(const Graph& g);

/// Convenience: builds the Graph internally from any edge view (EdgeList or
/// a partitioner shard — no copy either way). If `left_size` is nonzero the
/// edges are treated as bipartite with that boundary.
Matching maximum_matching(EdgeSpan edges, VertexId left_size = 0);

/// Maximum matching *size* only.
std::size_t maximum_matching_size(EdgeSpan edges, VertexId left_size = 0);

}  // namespace rcc
