// Maximum matching dispatcher: the "ALG" of Theorem 1.
//
// Theorem 1 states that *any* maximum matching of a piece is a valid
// coreset, independent of the algorithm computing it; this dispatcher picks
// Hopcroft-Karp when a bipartition tag is available and Edmonds' blossom
// otherwise, so callers never care which one ran. Passing a MachineScratch
// routes the CSR build and the solver's O(n) working arrays through the
// round-persistent workspace, so per-piece solves stop allocating once warm.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace rcc {

class MachineScratch;

/// Maximum matching of g (HK if bipartite-tagged, blossom otherwise).
Matching maximum_matching(const Graph& g, MachineScratch* scratch = nullptr);

/// Convenience: builds the Graph internally from any edge view (EdgeList or
/// a partitioner shard — no copy either way). If `left_size` is nonzero the
/// edges are treated as bipartite with that boundary.
Matching maximum_matching(EdgeSpan edges, VertexId left_size = 0,
                          MachineScratch* scratch = nullptr);

/// As above, writing into a caller-reused Matching (reset internally) — the
/// zero-allocation shape for folds that solve one union per round.
void maximum_matching_into(Matching& out, EdgeSpan edges,
                           VertexId left_size = 0,
                           MachineScratch* scratch = nullptr);

/// Maximum matching *size* only.
std::size_t maximum_matching_size(EdgeSpan edges, VertexId left_size = 0);

}  // namespace rcc
