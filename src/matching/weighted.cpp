#include "matching/weighted.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "matching/max_matching.hpp"

namespace rcc {

double matching_weight(const Matching& m, WeightedEdgeSpan weights) {
  // Weight lookup by normalized edge; parallel weighted edges keep the max
  // (a matching would always prefer the heavier copy).
  std::unordered_map<Edge, double, EdgeHash> weight_of;
  weight_of.reserve(weights.num_edges() * 2);
  for (const WeightedEdge& we : weights) {
    auto [it, inserted] = weight_of.try_emplace(we.edge(), we.weight);
    if (!inserted) it->second = std::max(it->second, we.weight);
  }
  double total = 0.0;
  for (const Edge& e : m.to_edge_list()) {
    auto it = weight_of.find(e);
    RCC_CHECK(it != weight_of.end());
    total += it->second;
  }
  return total;
}

Matching greedy_weighted_matching(const WeightedEdgeList& wedges) {
  std::vector<std::size_t> idx(wedges.edges.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  // Plain sort with an index tie-break (the greedy.hpp idiom): same order a
  // stable_sort by weight produces, without stable_sort's temp-buffer
  // allocation.
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const double wa = wedges.edges[a].weight;
    const double wb = wedges.edges[b].weight;
    if (wa != wb) return wa > wb;
    return a < b;
  });
  Matching m(wedges.num_vertices);
  for (std::size_t i : idx) {
    const WeightedEdge& we = wedges.edges[i];
    if (!m.is_matched(we.u) && !m.is_matched(we.v)) m.match(we.u, we.v);
  }
  return m;
}

WeightClasses split_weight_classes(WeightedEdgeSpan wedges, double base) {
  RCC_CHECK(base > 1.0);
  WeightClasses out;
  double wmin = 0.0;
  for (const auto& we : wedges) {
    if (we.weight > 0.0 && (wmin == 0.0 || we.weight < wmin)) wmin = we.weight;
  }
  if (wmin == 0.0) {
    // All weights zero: one empty class.
    out.classes.emplace_back(wedges.num_vertices());
    out.class_floor.push_back(0.0);
    return out;
  }
  int max_class = 0;
  auto class_of = [&](double w) {
    return static_cast<int>(std::floor(std::log(w / wmin) / std::log(base)));
  };
  for (const auto& we : wedges) {
    if (we.weight > 0.0) max_class = std::max(max_class, class_of(we.weight));
  }
  const int num_classes = max_class + 1;
  out.classes.assign(num_classes, EdgeList(wedges.num_vertices()));
  out.class_floor.assign(num_classes, 0.0);
  for (int j = 0; j < num_classes; ++j) {
    // Heaviest class first: slot 0 holds class max_class.
    out.class_floor[j] = wmin * std::pow(base, max_class - j);
  }
  for (const auto& we : wedges) {
    if (we.weight <= 0.0) continue;
    const int j = class_of(we.weight);
    out.classes[max_class - j].add(we.u, we.v);
  }
  return out;
}

Matching crouch_stubbs_matching(const WeightedEdgeList& wedges,
                                VertexId left_size, double base) {
  const WeightClasses wc = split_weight_classes(wedges, base);
  Matching merged(wedges.num_vertices);
  for (const EdgeList& cls : wc.classes) {
    if (cls.empty()) continue;
    EdgeList dedup_cls = cls;
    dedup_cls.dedup();
    const Matching class_matching = maximum_matching(dedup_cls, left_size);
    // Greedy merge: keep any class edge whose endpoints are still free.
    for (const Edge& e : class_matching.to_edge_list()) {
      if (!merged.is_matched(e.u) && !merged.is_matched(e.v)) {
        merged.match(e.u, e.v);
      }
    }
  }
  return merged;
}

namespace {
double exact_rec(const WeightedEdgeList& wedges, std::size_t i,
                 std::vector<bool>& used) {
  if (i == wedges.edges.size()) return 0.0;
  // Skip edge i.
  double best = exact_rec(wedges, i + 1, used);
  const WeightedEdge& we = wedges.edges[i];
  if (!used[we.u] && !used[we.v]) {
    used[we.u] = used[we.v] = true;
    best = std::max(best, we.weight + exact_rec(wedges, i + 1, used));
    used[we.u] = used[we.v] = false;
  }
  return best;
}
}  // namespace

double exact_max_weight_matching(const WeightedEdgeList& wedges) {
  RCC_CHECK(wedges.edges.size() <= 26);  // 2^m search; tests stay tiny
  std::vector<bool> used(wedges.num_vertices, false);
  return exact_rec(wedges, 0, used);
}

}  // namespace rcc
