#include "matching/matching.hpp"

namespace rcc {

Matching Matching::from_edges(const EdgeList& edges) {
  Matching m(edges.num_vertices());
  for (const Edge& e : edges) m.match(e.u, e.v);
  return m;
}

void Matching::match(VertexId u, VertexId v) {
  RCC_CHECK(u != v);
  RCC_CHECK(mate_[u] == kInvalidVertex && mate_[v] == kInvalidVertex);
  mate_[u] = v;
  mate_[v] = u;
  ++size_;
}

void Matching::unmatch(VertexId v) {
  const VertexId w = mate_[v];
  if (w == kInvalidVertex) return;
  mate_[v] = kInvalidVertex;
  mate_[w] = kInvalidVertex;
  --size_;
}

EdgeList Matching::to_edge_list() const {
  EdgeList out(num_vertices());
  out.reserve(size_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (mate_[v] != kInvalidVertex && v < mate_[v]) out.add(v, mate_[v]);
  }
  return out;
}

bool Matching::valid() const {
  std::size_t matched = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const VertexId w = mate_[v];
    if (w == kInvalidVertex) continue;
    if (w >= num_vertices() || mate_[w] != v || w == v) return false;
    ++matched;
  }
  return matched == 2 * size_;
}

bool Matching::subset_of(EdgeSpan graph_edges) const {
  // Flat scan instead of hashing the whole graph: a graph edge (u, v) is a
  // matched edge iff mate[u] == v, and each matched edge is counted once via
  // its smaller endpoint, so all size_ matched edges were seen iff the count
  // reaches size_. Parallel copies are deduplicated by the seen[] mark.
  std::vector<char> seen(num_vertices(), 0);
  std::size_t found = 0;
  for (const Edge& e : graph_edges) {
    const VertexId lo = e.u < e.v ? e.u : e.v;
    const VertexId hi = e.u < e.v ? e.v : e.u;
    if (mate_[lo] == hi && !seen[lo]) {
      seen[lo] = 1;
      ++found;
    }
  }
  return found == size_;
}

bool Matching::maximal_in(EdgeSpan graph_edges) const {
  for (const Edge& e : graph_edges) {
    if (!is_matched(e.u) && !is_matched(e.v)) return false;
  }
  return true;
}

}  // namespace rcc
