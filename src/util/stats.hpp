// Streaming and batch statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rcc {

/// Numerically stable single-pass mean/variance (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample: order statistics plus moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  /// "mean ± stddev [min, max]" rendering for experiment logs.
  std::string str(int precision = 3) const;
};

/// Computes a Summary; copies and sorts the input internally.
Summary summarize(std::vector<double> values);

/// Linear-interpolation percentile of a pre-sorted sample, q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace rcc
