// Monotonic wall-clock timing for benchmarks and the experiment harnesses.
#pragma once

#include <chrono>

namespace rcc {

/// Simple monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rcc
