// Disjoint-set union (union-find) with union by size and path compression.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace rcc {

class Dsu {
 public:
  explicit Dsu(VertexId n) : parent_(n), size_(n, 1) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }

  VertexId find(VertexId v) {
    VertexId root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {
      const VertexId next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(VertexId a, VertexId b) { return find(a) == find(b); }

  VertexId component_size(VertexId v) { return size_[find(v)]; }

  std::size_t num_components() {
    std::size_t count = 0;
    for (VertexId v = 0; v < parent_.size(); ++v) {
      if (find(v) == v) ++count;
    }
    return count;
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
};

}  // namespace rcc
