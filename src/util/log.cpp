#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace rcc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[rcc %s] %s\n", level_tag(level), buf);
}

}  // namespace rcc
