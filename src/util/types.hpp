// Core scalar types shared by every rcc subsystem.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rcc {

/// Vertex identifier. Graphs in this library are bounded by 2^32-2 vertices,
/// which comfortably covers the laptop-scale experiments of the paper while
/// halving the memory traffic of edge-heavy kernels relative to 64-bit ids.
using VertexId = std::uint32_t;

/// Edge index into an EdgeList.
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex" (unmatched endpoint, absent parent, ...).
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "RCC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace rcc

/// Contract check that stays on in release builds. The experiments in this
/// repository are correctness-sensitive (approximation ratios are measured
/// against these invariants), so violations abort loudly instead of
/// propagating silently wrong numbers into tables.
#define RCC_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) ::rcc::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define RCC_DCHECK(expr) RCC_CHECK(expr)
#else
#define RCC_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
