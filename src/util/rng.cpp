#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "util/types.hpp"

namespace rcc {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RCC_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RCC_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::geometric_skip(double p) {
  RCC_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform01();
  // floor(log(1-u)/log(1-p)) failures before first success.
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t universe, std::uint64_t k) {
  RCC_CHECK(k <= universe);
  // Floyd's algorithm: O(k) expected inserts.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = universe - k; j < universe; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::fork() {
  // Mix two draws into a fresh seed; streams of parent and child do not
  // overlap in practice for experiment-scale draw counts.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 32) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace rcc
