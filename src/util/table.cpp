#include "util/table.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/types.hpp"

namespace rcc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RCC_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RCC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += " ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  emit_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::print() const {
  // RCC_TABLE_FORMAT=csv switches every bench table to machine-readable
  // output without touching the bench binaries.
  const char* format = std::getenv("RCC_TABLE_FORMAT");
  if (format != nullptr && std::string(format) == "csv") {
    std::fputs(csv().c_str(), stdout);
    return;
  }
  std::fputs(str().c_str(), stdout);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::fmt_ratio(double v) { return fmt(v, 3); }

}  // namespace rcc
