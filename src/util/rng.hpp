// Deterministic, fast pseudo-random generation for reproducible experiments.
//
// Every randomized component in the library takes an explicit Rng&; nothing
// reads global entropy. Two instances seeded identically produce identical
// experiment tables on any platform (the generator is fully specified, unlike
// std::mt19937 + distribution objects whose output is implementation-defined
// for some distributions).
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace rcc {

/// SplitMix64: used to expand a single user seed into generator state.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators." OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ PRNG (Blackman & Vigna). Passes BigCrush; 2^256-1 period;
/// ~1 ns per draw. Satisfies UniformRandomBitGenerator so it can be handed
/// to std::shuffle if ever needed, but the member helpers below are the
/// supported (deterministic) API.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, bound). Uses Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometric skip: number of failures before the first success of a
  /// Bernoulli(p) sequence. Used by the G(n,p) generators to run in
  /// O(expected edges) instead of O(n^2).
  std::uint64_t geometric_skip(double p);

  /// Fisher-Yates shuffle of a whole vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, universe) in O(k) expected
  /// time (Floyd's algorithm). Returned in unspecified order.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t universe, std::uint64_t k);

  /// Forks an independent stream: deterministic function of this generator's
  /// next outputs, suitable for seeding per-machine RNGs in parallel runs.
  Rng fork();

  /// The full 256-bit generator state, for transports that ship a forked
  /// stream to another process (the persistent shm workers receive their
  /// per-round machine stream this way). from_state is the exact inverse:
  /// the restored generator continues draw-for-draw where state() was taken.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  static Rng from_state(const std::array<std::uint64_t, 4>& s) {
    Rng rng(0);
    rng.s_[0] = s[0];
    rng.s_[1] = s[1];
    rng.s_[2] = s[2];
    rng.s_[3] = s[3];
    return rng;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rcc
