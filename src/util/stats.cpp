#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/types.hpp"

namespace rcc {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  RCC_CHECK(!sorted.empty());
  RCC_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  RunningStat rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = values.front();
  s.max = values.back();
  s.p25 = percentile_sorted(values, 0.25);
  s.median = percentile_sorted(values, 0.5);
  s.p75 = percentile_sorted(values, 0.75);
  return s;
}

std::string Summary::str(int precision) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f [%.*f, %.*f]", precision, mean,
                precision, stddev, precision, min, precision, max);
  return buf;
}

}  // namespace rcc
