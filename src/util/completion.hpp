// Completion-order adapters shared by every transport behind the engine's
// streaming combine path.
//
// The ProtocolEngine's determinism story rests on one small mechanism: no
// matter in which order machine summaries COMPLETE (thread scheduling for the
// in-process CompletionQueue, frame arrival for the loopback socket
// transport), StreamingOrder::kCanonical absorbs them in ascending machine-id
// order, so a streamed run consumes the coordinator's RNG and mutates the
// fold draw-for-draw like the barrier fold. CanonicalReorder is that reorder
// buffer, factored out of the engine so the in-process queue and the
// cross-process frame collector release ids through the SAME code — the
// seed-for-seed differential between the two transports then tests the
// transports, not two copies of the reordering logic.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace rcc {

/// Reorder buffer keyed on machine id: feed it completions in any order, it
/// invokes the absorb callback for every id that becomes releasable in
/// ascending order (id i is releasable once 0..i-1 have all been absorbed).
class CanonicalReorder {
 public:
  explicit CanonicalReorder(std::size_t k) : completed_(k, 0) {}

  /// Marks `id` complete and absorbs every releasable id in order.
  template <typename Absorb>
  void complete(std::size_t id, Absorb&& absorb) {
    RCC_CHECK(id < completed_.size() && completed_[id] == 0);
    completed_[id] = 1;
    while (next_ < completed_.size() && completed_[next_] != 0) {
      absorb(next_);
      ++next_;
    }
  }

  /// True once every id in [0, k) has been absorbed.
  bool drained() const { return next_ == completed_.size(); }

 private:
  std::vector<char> completed_;
  std::size_t next_ = 0;
};

}  // namespace rcc
