// Round-persistent scratch memory for the protocol engine's hot paths.
//
// The paper's efficiency story is that every machine does near-linear local
// work on an O(m/k)-size piece — which makes the per-round constant factor
// allocation-bound once the algorithms themselves are linear. Before this
// subsystem, every MPC round re-allocated (and re-faulted) the partition
// scatter buffers, one CSR adjacency per machine, O(n) solver state per
// matching call, and a fresh survivor EdgeList per fold. A ProtocolWorkspace
// owns all of that storage across rounds (and across runs, when the caller
// keeps one alive): buffers grow to their high-water mark during round 0 and
// are reused verbatim afterwards, so steady-state rounds perform zero
// workspace allocations — a property the workspace *counts* (WorkspaceStats)
// and tests/workspace_test.cpp regression-checks per round.
//
// Ownership rules (see README "Performance playbook"):
//  * one MachineScratch per machine task — the engine hands machine i its
//    scratch through PartitionContext::scratch; builds may use it freely and
//    must not share it across machines,
//  * one coordinator MachineScratch for the fold phase
//    (MpcRoundContext::coordinator_scratch()) — absorb/finish run on the
//    coordinator thread and never race the machine scratches,
//  * epoch-stamped marks make "clear" O(1): bump the epoch instead of
//    zeroing n entries. unset() writes epoch 0, which no clear() ever
//    reuses, so set/unset/test work within one epoch,
//  * all scratch state is *conversational garbage* between calls: no
//    function may assume a buffer's content on entry, only its capacity.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

/// Buffer-growth accounting shared by every buffer of one workspace.
/// `allocations` counts capacity growths (i.e. real heap traffic), not uses;
/// a warmed-up workspace holds it constant. Atomic because machine scratches
/// grow concurrently on pool threads.
struct WorkspaceStats {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> bytes_reserved{0};

  void note_growth(std::uint64_t bytes) {
    allocations.fetch_add(1, std::memory_order_relaxed);
    bytes_reserved.fetch_add(bytes, std::memory_order_relaxed);
  }
};

/// Point-in-time copy of a workspace's counters (WorkspaceStats itself is
/// non-copyable because of the atomics).
struct WorkspaceCounters {
  std::uint64_t allocations = 0;
  std::uint64_t bytes_reserved = 0;
};

namespace workspace_detail {

/// Allocator adaptor that default-initializes on value-less construct: for
/// trivial element types, vector::resize stops value-initializing (no
/// memset over memory the caller overwrites anyway). Only for buffers whose
/// every element is written before it is read — the cold-start cost of a
/// workspace is otherwise dominated by zeroing pages it is about to fill.
template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using Traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename Traits::template rebind_alloc<U>>;
  };
  using A::A;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    Traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace workspace_detail

/// Scratch vector: identical to std::vector except that resize() leaves new
/// trivial elements uninitialized. The raw-pointer views hot loops take
/// (data()) are unaffected by the allocator parameter.
template <typename T>
using ScratchVec = std::vector<T, workspace_detail::DefaultInitAllocator<T>>;

namespace workspace_detail {

/// Ensures capacity >= n, recording real capacity growth in `stats`,
/// without touching the size — for queue-style buffers that clear() and
/// push. Growth is geometric (at least doubling) with 25% + 64-slot
/// headroom: workloads whose per-round sizes fluctuate — random
/// re-partitions hand a machine a slightly different shard size every
/// round, with relative variance ~1/sqrt(shard) that the constant floor
/// covers on small shards — land inside the slack instead of growing by a
/// few percent each round, so the steady state really is allocation-free.
template <typename T, typename Alloc>
std::vector<T, Alloc>& reserved(std::vector<T, Alloc>& v, std::size_t n,
                                WorkspaceStats* stats) {
  if (v.capacity() < n) {
    const std::size_t target = std::max(n + n / 4 + 64, v.capacity() * 2);
    if (stats != nullptr) {
      stats->note_growth((target - v.capacity()) * sizeof(T));
    }
    v.reserve(target);
  }
  return v;
}

/// Resizes `v` to n elements under reserved()'s growth policy. Content of
/// the first min(old_size, n) elements is preserved; anything beyond is
/// value-initialized by vector::resize. Callers treat the result as
/// uninitialized scratch unless they filled it themselves.
template <typename T, typename Alloc>
std::vector<T, Alloc>& sized(std::vector<T, Alloc>& v, std::size_t n,
                             WorkspaceStats* stats) {
  reserved(v, n, stats);
  v.resize(n);
  return v;
}

}  // namespace workspace_detail

/// Dense mark array with O(1) clear via epoch stamping: test(v) is true iff
/// set(v) happened after the last clear() (and no unset(v) since). The
/// replacement for the per-call `std::unordered_set<VertexId>` /
/// `std::vector<char>` idiom in the search and validation hot paths.
class EpochMarks {
 public:
  /// Sizes the mark universe to [0, n) and clears all marks (O(1) unless the
  /// array grows or the 32-bit epoch wraps).
  void reset(std::size_t n, WorkspaceStats* stats = nullptr) {
    if (stamps_.size() < n) {
      workspace_detail::sized(stamps_, n, stats);
    }
    bump();
  }

  std::size_t size() const { return stamps_.size(); }

  void set(std::size_t v) {
    RCC_DCHECK(v < stamps_.size());
    stamps_[v] = epoch_;
  }
  /// Reverts v to unmarked within the current epoch (0 is never a live
  /// epoch, so the entry reads as unset until the next set()).
  void unset(std::size_t v) {
    RCC_DCHECK(v < stamps_.size());
    stamps_[v] = 0;
  }
  bool test(std::size_t v) const {
    RCC_DCHECK(v < stamps_.size());
    return stamps_[v] == epoch_;
  }

  /// Flat view for hot sweep loops: the stamp pointer and the live epoch
  /// captured into locals, so a tight loop keeps the epoch in a register
  /// instead of reloading the member after every store (stores through the
  /// stamp pointer may alias the EpochMarks object itself, which otherwise
  /// forces the reload). test() compiles to a single compare — accumulate
  /// its result arithmetically (`hit |= view.test(v)`) to keep conflict
  /// sweeps branchless. The view is invalidated by reset() (epoch bump or
  /// growth); take it after the final reset of the call.
  struct View {
    std::uint32_t* stamps;
    std::uint32_t epoch;

    bool test(std::size_t v) const { return stamps[v] == epoch; }
    void set(std::size_t v) const { stamps[v] = epoch; }
    void unset(std::size_t v) const { stamps[v] = 0; }
  };
  View view() { return {stamps_.data(), epoch_}; }

 private:
  void bump() {
    if (++epoch_ == 0) {  // wrapped: all stamps are stale lies — wipe them
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 0;  // first reset() bumps to 1
};

/// Epoch-stamped dense map: ref(v) yields a value reference that reads as
/// freshly value-initialized the first time v is touched after clear().
/// Replaces "allocate + zero an O(n) counter array per call" (e.g. the
/// degree-cap counters of vertex_cap_kernel).
template <typename T>
class EpochMap {
 public:
  void reset(std::size_t n, WorkspaceStats* stats = nullptr) {
    if (stamps_.size() < n) {
      workspace_detail::sized(stamps_, n, stats);
      workspace_detail::sized(values_, n, stats);
    }
    bump();
  }

  std::size_t size() const { return stamps_.size(); }

  T& ref(std::size_t v) {
    RCC_DCHECK(v < stamps_.size());
    if (stamps_[v] != epoch_) {
      stamps_[v] = epoch_;
      values_[v] = T{};
    }
    return values_[v];
  }

  T get(std::size_t v) const {
    RCC_DCHECK(v < stamps_.size());
    return stamps_[v] == epoch_ ? values_[v] : T{};
  }

 private:
  void bump() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  std::vector<std::uint32_t> stamps_;
  std::vector<T> values_;
  std::uint32_t epoch_ = 0;
};

/// One machine's (or the coordinator's) reusable scratch. Buffers are named
/// for their primary hot-path user but are deliberately generic; a kernel
/// may use any of them as long as it is done with them when it returns
/// (nothing may hold scratch state across calls except capacity).
class MachineScratch {
 public:
  MachineScratch() = default;
  explicit MachineScratch(WorkspaceStats* stats) : stats_(stats) {}

  WorkspaceStats* stats() { return stats_; }

  /// Epoch-stamped vertex marks (augmenting-path blocking, dedup, ...).
  EpochMarks& vertex_marks(std::size_t n) {
    marks_.reset(n, stats_);
    return marks_;
  }

  /// Epoch-stamped per-vertex counters (vertex_cap_kernel's degree caps).
  EpochMap<VertexId>& vertex_counts(std::size_t n) {
    counts_.reset(n, stats_);
    return counts_;
  }

  /// CSR adjacency buffers: offsets (n+1), neighbor arena, scatter cursors.
  std::vector<std::size_t>& offsets(std::size_t n) {
    return workspace_detail::sized(offsets_, n, stats_);
  }
  std::vector<VertexId>& neighbors(std::size_t n) {
    return workspace_detail::sized(neighbors_, n, stats_);
  }
  std::vector<std::size_t>& cursor(std::size_t n) {
    return workspace_detail::sized(cursor_, n, stats_);
  }

  /// Generic index / key scratch (greedy orders and precomputed sort keys).
  std::vector<std::size_t>& index_buffer(std::size_t n) {
    return workspace_detail::sized(index_, n, stats_);
  }
  std::vector<double>& key_buffer(std::size_t n) {
    return workspace_detail::sized(keys_, n, stats_);
  }

  /// Type-erased persistent solver state: one slot per type, default
  /// constructed on first use, reused (with all its warmed internal
  /// capacity) on every later call. This is how algorithm-private working
  /// sets (e.g. the blossom solver's arrays) ride the workspace without
  /// util/ depending on the algorithm layers.
  template <typename T>
  T& state() {
    for (const StateSlot& s : states_) {
      if (*s.type == typeid(T)) return *static_cast<T*>(s.ptr.get());
    }
    if (stats_ != nullptr) stats_->note_growth(sizeof(T));
    states_.push_back(StateSlot{
        &typeid(T),
        std::unique_ptr<void, void (*)(void*)>(
            new T(), [](void* p) { delete static_cast<T*>(p); })});
    return *static_cast<T*>(states_.back().ptr.get());
  }

 private:
  struct StateSlot {
    const std::type_info* type;
    std::unique_ptr<void, void (*)(void*)> ptr;
  };

  WorkspaceStats* stats_ = nullptr;
  EpochMarks marks_;
  EpochMap<VertexId> counts_;
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> neighbors_;
  std::vector<std::size_t> cursor_;
  std::vector<std::size_t> index_;
  std::vector<double> keys_;
  std::vector<StateSlot> states_;
};

/// Reusable buffers of the sharded partitioner's two passes (counting /
/// scatter) plus the edge arena itself. Owned by the workspace so every
/// round's — and every run's — re-partition reuses the same per-batch RNG
/// slots, histograms, destination memos, cursors, and arena storage. One
/// PartitionScratch backs ONE live ShardedPartition at a time (the arena is
/// shared storage, not a copy).
struct PartitionScratch {
  std::vector<Rng> batch_rngs;
  std::vector<std::size_t> counts;
  std::vector<std::uint8_t> dest8;
  std::vector<std::uint32_t> dest32;
  std::vector<std::size_t> cursors;
  std::vector<std::size_t> running;
  std::unique_ptr<std::byte[]> arena;
  std::size_t arena_capacity_bytes = 0;
  WorkspaceStats* stats = nullptr;
};

/// The round-persistent workspace of one protocol execution: k machine
/// scratches + one coordinator scratch + the partitioner's scatter buffers,
/// all charged to one WorkspaceStats. Thread-compatibility contract: machine
/// scratch i is used only by machine task i, the coordinator scratch only by
/// the coordinator thread; ensure_machines() must be called before the
/// machine phase launches (it is not safe to grow the scratch set
/// concurrently).
class ProtocolWorkspace {
 public:
  ProtocolWorkspace() : coordinator_(&stats_) { partition_.stats = &stats_; }

  ProtocolWorkspace(const ProtocolWorkspace&) = delete;
  ProtocolWorkspace& operator=(const ProtocolWorkspace&) = delete;

  /// Pre-sizes the per-machine scratch set; existing scratches (and their
  /// warmed buffers) are kept.
  void ensure_machines(std::size_t k) {
    while (machines_.size() < k) {
      stats_.note_growth(sizeof(MachineScratch));
      machines_.emplace_back(&stats_);
    }
  }

  std::size_t num_machines() const { return machines_.size(); }

  MachineScratch& machine(std::size_t i) {
    RCC_DCHECK(i < machines_.size());
    return machines_[i];
  }

  MachineScratch& coordinator() { return coordinator_; }
  PartitionScratch& partition() { return partition_; }

  WorkspaceCounters counters() const {
    return {stats_.allocations.load(std::memory_order_relaxed),
            stats_.bytes_reserved.load(std::memory_order_relaxed)};
  }

 private:
  WorkspaceStats stats_;
  std::deque<MachineScratch> machines_;  // deque: stable addresses on growth
  MachineScratch coordinator_;
  PartitionScratch partition_;
};

}  // namespace rcc
