// Tiny command-line flag parser for examples and bench binaries.
//
// Syntax: --name=value or --name value; --help prints registered flags.
// Unknown flags abort (typos in experiment parameters must not silently run
// the wrong configuration).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcc {

class Options {
 public:
  Options(std::string program_description);

  /// Registers a flag with a default; returns *this for chaining.
  Options& flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// True when a flag of this name is registered. Lets composable flag
  /// bundles (add_streaming_flags, add_mpc_engine_flags — which includes
  /// the former) be registered idempotently instead of aborting on the
  /// duplicate.
  bool has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Parses argv; aborts on unknown flags; exits(0) after printing --help.
  void parse(int argc, char** argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace rcc
