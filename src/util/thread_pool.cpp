#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rcc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

CompletionQueue::CompletionQueue(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void CompletionQueue::push(std::size_t id) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_not_full_.wait(lock, [this] { return count_ < ring_.size(); });
    ring_[(head_ + count_) % ring_.size()] = id;
    ++count_;
  }
  cv_not_empty_.notify_one();
}

std::size_t CompletionQueue::pop() {
  std::size_t id;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_not_empty_.wait(lock, [this] { return count_ > 0; });
    id = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }
  cv_not_full_.notify_one();
  return id;
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = pool.size();
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, &next, count, per_chunk] {
      for (;;) {
        const std::size_t begin = next.fetch_add(per_chunk);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + per_chunk, count);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  parallel_for(pool, count, fn);
}

}  // namespace rcc
