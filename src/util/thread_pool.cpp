#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace rcc {

ThreadPool::ThreadPool(std::size_t threads, ThreadPoolOptions options) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
#if defined(__linux__)
    if (options.pin_affinity) {
      const unsigned hw =
          std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<int>(i % hw), &set);
      // Best-effort: a restricted cpuset just leaves the thread unpinned.
      (void)pthread_setaffinity_np(workers_.back().native_handle(),
                                   sizeof(set), &set);
    }
#else
    (void)options;
#endif
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    shards_[shard]->tasks.push_back(std::move(task));
  }
  // seq_cst on queued_/sleepers_: submit does {queued_++; read sleepers_}
  // while a parking worker does {sleepers_++; read queued_} — a Dekker
  // handshake. Sequential consistency makes at least one side see the
  // other, so either the submitter notifies or the worker's wait predicate
  // is already true; weaker orders could lose both and strand a task.
  queued_.fetch_add(1);
  if (sleepers_.load() > 0) {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    cv_task_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  cv_idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& out) {
  const std::size_t n = shards_.size();
  // Own queue first (front: FIFO for locally submitted order), then steal
  // from the neighbors' backs, scanning outward so two idle workers tend to
  // raid different victims.
  {
    Shard& mine = *shards_[self];
    std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.tasks.empty()) {
      out = std::move(mine.tasks.front());
      mine.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t off = 1; off < n; ++off) {
    Shard& victim = *shards_[(self + off) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::function<void()> task;
  for (;;) {
    if (try_acquire(id, task)) {
      task();
      task = nullptr;  // release captures before signaling idle
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        cv_idle_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1);  // seq_cst half of the submit() handshake
    cv_task_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) || queued_.load() > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;  // drained: destructor semantics match the old pool
    }
  }
}

CompletionQueue::CompletionQueue(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void CompletionQueue::push(std::size_t id) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_not_full_.wait(lock, [this] { return count_ < ring_.size(); });
    ring_[(head_ + count_) % ring_.size()] = id;
    ++count_;
  }
  cv_not_empty_.notify_one();
}

std::size_t CompletionQueue::pop() {
  std::size_t id;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_not_empty_.wait(lock, [this] { return count_ > 0; });
    id = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }
  cv_not_full_.notify_one();
  return id;
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = pool.size();
  if (workers == 1) {
    // One worker admits no concurrency: parking the caller while a single
    // pool thread runs the chunks buys nothing and pays a futex wake per
    // burst (which a sub-millisecond phase pays many times per round). The
    // call set fn(0..count) is identical either way.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, &next, count, per_chunk] {
      for (;;) {
        const std::size_t begin = next.fetch_add(per_chunk);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + per_chunk, count);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  parallel_for(pool, count, fn);
}

}  // namespace rcc
