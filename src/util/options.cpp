#include "util/options.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/types.hpp"

namespace rcc {

Options::Options(std::string program_description)
    : description_(std::move(program_description)) {}

Options& Options::flag(const std::string& name, const std::string& default_value,
                       const std::string& help) {
  RCC_CHECK(!flags_.count(name));
  flags_[name] = Flag{default_value, help};
  order_.push_back(name);
  return *this;
}

void Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n\nFlags:\n", description_.c_str());
      for (const auto& name : order_) {
        const auto& f = flags_.at(name);
        std::printf("  --%-16s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                    f.value.c_str());
      }
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
      std::exit(2);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
      std::exit(2);
    }
    it->second.value = value;
  }
}

std::string Options::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  RCC_CHECK(it != flags_.end());
  return it->second.value;
}

std::int64_t Options::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  errno = 0;
  const std::int64_t parsed = std::strtoll(v.c_str(), &end, 10);
  // Strict parsing: reject trailing junk AND silent saturation. Without the
  // ERANGE check strtoll clamps out-of-range values to LLONG_MIN/LLONG_MAX,
  // which would run an experiment with a configuration nobody asked for.
  if (end == v.c_str() || *end != '\0') {
    std::fprintf(stderr, "flag --%s: '%s' is not a representable integer\n",
                 name.c_str(), v.c_str());
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr,
                 "flag --%s: '%s' overflows the 64-bit integer range\n",
                 name.c_str(), v.c_str());
    std::exit(2);
  }
  return parsed;
}

double Options::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    std::fprintf(stderr, "flag --%s: '%s' is not a representable number\n",
                 name.c_str(), v.c_str());
    std::exit(2);
  }
  // Same strictness as get_int, but only where the value actually degraded:
  // ERANGE with +-HUGE_VAL is overflow and ERANGE with 0.0 is total
  // underflow — in both cases the program would run with a value the user
  // did not write. glibc also sets ERANGE for gradual underflow to a
  // subnormal (e.g. 1e-310) even though the returned value is faithful, so
  // a nonzero finite result passes.
  if (errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL ||
                          parsed == 0.0)) {
    std::fprintf(stderr,
                 "flag --%s: '%s' is outside the representable double range\n",
                 name.c_str(), v.c_str());
    std::exit(2);
  }
  return parsed;
}

bool Options::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace rcc
