// Fixed-width ASCII table rendering for paper-style experiment output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcc {

/// Collects rows of strings and prints them with aligned columns. All bench
/// binaries in this repo emit their "paper table" through this class so the
/// outputs share one format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string str() const;

  /// Renders as RFC-4180-ish CSV (quoted cells where needed).
  std::string csv() const;

  /// Prints to stdout; honors RCC_TABLE_FORMAT=csv in the environment.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);
  static std::string fmt_ratio(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcc
