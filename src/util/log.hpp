// Minimal leveled logging. Experiments log at Info; library internals at
// Debug; nothing logs from hot loops.
#pragma once

#include <string>

namespace rcc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level tag.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define RCC_LOG_DEBUG(...) ::rcc::log_message(::rcc::LogLevel::kDebug, __VA_ARGS__)
#define RCC_LOG_INFO(...) ::rcc::log_message(::rcc::LogLevel::kInfo, __VA_ARGS__)
#define RCC_LOG_WARN(...) ::rcc::log_message(::rcc::LogLevel::kWarn, __VA_ARGS__)
#define RCC_LOG_ERROR(...) ::rcc::log_message(::rcc::LogLevel::kError, __VA_ARGS__)

}  // namespace rcc
