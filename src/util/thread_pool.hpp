// Minimal fixed-size thread pool with a parallel_for helper.
//
// The simultaneous-communication and MPC simulators use one logical task per
// simulated machine; the pool multiplexes those onto hardware threads so the
// "machines compute their summaries simultaneously" semantics of the paper
// maps onto actual parallel execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rcc {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (the library reports errors via
  /// RCC_CHECK aborts, matching the no-exceptions-across-boundaries rule).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Bounded MPMC completion queue: machine tasks push their id when their
/// summary is ready, the coordinator pops ids and absorbs the summaries as
/// they land (the ProtocolEngine's streaming combine path). Push blocks while
/// the queue is full (backpressure against a slow consumer), pop blocks while
/// it is empty. The queue carries ids, not payloads: the payloads stay in the
/// caller's pre-sized summary vector, so the handoff is zero-copy and the
/// mutex inside push/pop is the happens-before edge that publishes the
/// producer's writes to the consumer.
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity);

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  std::size_t capacity() const { return ring_.size(); }

  /// Enqueues an id; blocks while the queue is at capacity.
  void push(std::size_t id);

  /// Dequeues the oldest id; blocks while the queue is empty.
  std::size_t pop();

 private:
  std::vector<std::size_t> ring_;
  std::size_t head_ = 0;   // index of the oldest element
  std::size_t count_ = 0;  // elements currently queued
  std::mutex mutex_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until done.
/// Work is chunked so tiny iterations do not drown in queue overhead.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: runs fn(i) on a transient pool sized to hardware threads.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace rcc
