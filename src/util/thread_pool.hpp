// Minimal fixed-size thread pool with a parallel_for helper.
//
// The simultaneous-communication and MPC simulators use one logical task per
// simulated machine; the pool multiplexes those onto hardware threads so the
// "machines compute their summaries simultaneously" semantics of the paper
// maps onto actual parallel execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rcc {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (the library reports errors via
  /// RCC_CHECK aborts, matching the no-exceptions-across-boundaries rule).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until done.
/// Work is chunked so tiny iterations do not drown in queue overhead.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: runs fn(i) on a transient pool sized to hardware threads.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace rcc
