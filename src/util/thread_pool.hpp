// Sharded work-stealing thread pool with a parallel_for helper.
//
// The simultaneous-communication and MPC simulators use one logical task per
// simulated machine; the pool multiplexes those onto hardware threads so the
// "machines compute their summaries simultaneously" semantics of the paper
// maps onto actual parallel execution.
//
// Queue discipline: one deque per worker, each behind its own mutex, instead
// of the former single mutex-guarded std::queue. submit() distributes tasks
// round-robin across the shards; a worker pops its own deque from the front
// and, when empty, steals from its neighbors' backs. Under the machine phase
// (k tasks landing at once on w workers) every worker then runs its own
// tasks off a private lock, and the old behavior — every push, pop, AND
// in-flight decrement serialized on one pool-wide mutex — disappears; the
// only global state is three atomics and a sleep/idle pair of condition
// variables touched when workers actually park. Execution semantics are
// unchanged: every submitted task runs exactly once, on some pool thread,
// and wait_idle() returns only when all of them finished. Task-to-worker
// placement is scheduling-dependent exactly as before — determinism of the
// simulators comes from tasks writing disjoint slots, never from placement.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rcc {

struct ThreadPoolOptions {
  /// Pin worker i to CPU (i mod hardware_concurrency). Linux-only (no-op
  /// elsewhere): keeps a worker's warmed MachineScratch hot in one core's
  /// private cache across rounds instead of following the scheduler around
  /// the socket. Off by default — pinning on a shared/oversubscribed host
  /// can hurt, so it is an opt-in knob (`--pool-affinity` in the benches).
  bool pin_affinity = false;
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0, ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (the library reports errors via
  /// RCC_CHECK aborts, matching the no-exceptions-across-boundaries rule).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  /// Cache-line-padded per-worker queue: adjacent shards never false-share
  /// their mutexes/deques.
  struct alignas(64) Shard {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_acquire(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_shard_{0};  // round-robin submit cursor
  std::atomic<std::size_t> queued_{0};      // tasks sitting in some deque
  std::atomic<std::size_t> in_flight_{0};   // queued + currently running
  std::atomic<std::size_t> sleepers_{0};    // workers parked on cv_task_
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable cv_task_;
  std::mutex idle_mutex_;
  std::condition_variable cv_idle_;
};

/// Bounded MPMC completion queue: machine tasks push their id when their
/// summary is ready, the coordinator pops ids and absorbs the summaries as
/// they land (the ProtocolEngine's streaming combine path). Push blocks while
/// the queue is full (backpressure against a slow consumer), pop blocks while
/// it is empty. The queue carries ids, not payloads: the payloads stay in the
/// caller's pre-sized summary vector, so the handoff is zero-copy and the
/// mutex inside push/pop is the happens-before edge that publishes the
/// producer's writes to the consumer.
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity);

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  std::size_t capacity() const { return ring_.size(); }

  /// Enqueues an id; blocks while the queue is at capacity.
  void push(std::size_t id);

  /// Dequeues the oldest id; blocks while the queue is empty.
  std::size_t pop();

 private:
  std::vector<std::size_t> ring_;
  std::size_t head_ = 0;   // index of the oldest element
  std::size_t count_ = 0;  // elements currently queued
  std::mutex mutex_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
};

/// Runs fn(i) for i in [0, count) across the pool, blocking until done.
/// Work is chunked so tiny iterations do not drown in queue overhead; the
/// chunk count is a pure function of (count, pool size), so the set of
/// fn(i) calls — and everything the simulators derive from them — is
/// independent of scheduling.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: runs fn(i) on a transient pool sized to hardware threads.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace rcc
