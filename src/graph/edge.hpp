// Undirected edge primitives.
#pragma once

#include <cstdint>
#include <functional>

#include "util/types.hpp"

namespace rcc {

/// Undirected edge. Stored normalized (u <= v) by the factory below so that
/// equality/hashing are orientation-independent.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;

  bool is_loop() const { return u == v; }

  /// Given one endpoint, returns the other. Precondition: w is an endpoint.
  VertexId other(VertexId w) const {
    RCC_DCHECK(w == u || w == v);
    return w == u ? v : u;
  }
};

/// Normalizing factory: returns {min(a,b), max(a,b)}.
inline Edge make_edge(VertexId a, VertexId b) {
  return a <= b ? Edge{a, b} : Edge{b, a};
}

/// Edge with a non-negative weight; used by the Crouch-Stubbs extension.
struct WeightedEdge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  double weight = 0.0;

  Edge edge() const { return make_edge(u, v); }
};

struct EdgeHash {
  std::size_t operator()(const Edge& e) const {
    // Mix both 32-bit ids into one 64-bit word, then finalize (splitmix).
    std::uint64_t x = (static_cast<std::uint64_t>(e.u) << 32) | e.v;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace rcc
