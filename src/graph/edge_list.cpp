#include "graph/edge_list.hpp"

#include <algorithm>

namespace rcc {

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (auto& e : edges_) {
    RCC_CHECK(e.u < num_vertices_ && e.v < num_vertices_);
    RCC_CHECK(!e.is_loop());
    if (e.u > e.v) std::swap(e.u, e.v);
  }
}

void EdgeList::add(VertexId a, VertexId b) {
  RCC_DCHECK(a < num_vertices_ && b < num_vertices_);
  RCC_CHECK(a != b);
  edges_.push_back(make_edge(a, b));
}

void EdgeList::append(const EdgeList& other) {
  RCC_CHECK(other.num_vertices_ == num_vertices_);
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
}

std::vector<VertexId> EdgeList::degrees() const {
  return EdgeSpan(*this).degrees();
}

void EdgeList::sort() { std::sort(edges_.begin(), edges_.end()); }

void EdgeList::dedup() {
  sort();
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

bool EdgeList::has_parallel_edges() const {
  auto copy = edges_;
  std::sort(copy.begin(), copy.end());
  return std::adjacent_find(copy.begin(), copy.end()) != copy.end();
}

EdgeList EdgeList::sample_edges(std::size_t k, Rng& rng) const {
  if (k >= edges_.size()) return *this;
  EdgeList out(num_vertices_);
  out.reserve(k);
  for (auto idx : rng.sample_distinct(edges_.size(), k)) {
    out.edges_.push_back(edges_[idx]);
  }
  return out;
}

EdgeList EdgeList::subsample(double p, Rng& rng) const {
  EdgeList out(num_vertices_);
  if (p <= 0.0) return out;
  if (p >= 1.0) return *this;
  // Geometric skipping keeps this O(p * m) instead of one bernoulli per edge.
  std::size_t i = rng.geometric_skip(p);
  while (i < edges_.size()) {
    out.edges_.push_back(edges_[i]);
    i += 1 + rng.geometric_skip(p);
  }
  return out;
}

EdgeList EdgeList::union_of(const std::vector<EdgeList>& parts) {
  RCC_CHECK(!parts.empty());
  EdgeList out(parts.front().num_vertices());
  std::size_t total = 0;
  for (const auto& p : parts) total += p.num_edges();
  out.reserve(total);
  for (const auto& p : parts) out.append(p);
  return out;
}

}  // namespace rcc
