#include "graph/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/types.hpp"

namespace rcc {

void write_edge_list(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  RCC_CHECK(out.good());
  out << edges.num_vertices() << ' ' << edges.num_edges() << '\n';
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  RCC_CHECK(out.good());
}

EdgeList read_edge_list(const std::string& path) {
  std::ifstream in(path);
  RCC_CHECK(in.good());
  std::string line;
  auto next_data_line = [&]() -> bool {
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  RCC_CHECK(next_data_line());
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  RCC_CHECK(static_cast<bool>(header >> n >> m));
  EdgeList edges(static_cast<VertexId>(n));
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    RCC_CHECK(next_data_line());
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    RCC_CHECK(static_cast<bool>(row >> u >> v));
    edges.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return edges;
}

}  // namespace rcc
