// Structural graph properties used by the experiments and the Appendix A
// reproduction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace rcc {

/// Number of connected components (isolated vertices count).
std::size_t connected_components(const Graph& g);

/// Degree histogram: hist[d] = number of vertices with degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// The *induced matching* of Section 4.1 / Lemma 4.1: the set of edges both
/// of whose endpoints have degree exactly one in the whole graph. By
/// construction these edges form a matching.
EdgeList induced_matching(const EdgeList& edges);

/// Count of vertices with degree exactly one among the first `prefix`
/// vertices (Proposition A.2(a) measures this on the left side).
std::size_t degree_one_count(const EdgeList& edges, VertexId prefix);

/// True if no two edges share an endpoint.
bool is_matching(const EdgeList& edges);

/// True if `cover` (as an indicator set) touches every edge.
bool covers_all_edges(const EdgeList& edges, const std::vector<bool>& cover);

/// Greedy check that the graph is 2-colorable; returns false on odd cycles.
bool is_bipartite(const Graph& g);

}  // namespace rcc
