// Immutable CSR (compressed sparse row) graph with optional bipartition
// metadata. Built once from an EdgeList; neighbor queries are contiguous
// spans, which is what the matching/peeling kernels need.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace rcc {

/// Bipartition metadata: vertices [0, left_size) form the left side L and
/// [left_size, n) the right side R. Generators that produce bipartite graphs
/// attach this; algorithms that require bipartiteness check for it.
struct Bipartition {
  VertexId left_size = 0;

  bool is_left(VertexId v) const { return v < left_size; }
};

class Graph {
 public:
  Graph() = default;

  /// Builds CSR adjacency from an edge view (EdgeList converts implicitly,
  /// and partitioner shards plug in without a copy). Parallel edges are
  /// preserved (they matter for the multigraph reduction of Remark 5.8).
  explicit Graph(EdgeSpan edges,
                 std::optional<Bipartition> bipartition = std::nullopt);

  /// Rebuilds this graph's CSR from a new edge view, reusing the offset and
  /// adjacency storage (no allocation once capacities are warm). Equivalent
  /// to `*this = Graph(edges, bipartition)` minus the heap traffic — the
  /// reuse path of the round-persistent workspaces.
  void assign(EdgeSpan edges,
              std::optional<Bipartition> bipartition = std::nullopt,
              std::vector<std::size_t>* cursor_scratch = nullptr);

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edge_count_; }

  /// Neighbors of v as a contiguous span (with multiplicity).
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Flat CSR views (sizes n+1 and 2m) for hot solver loops that hoist the
  /// arrays into locals once instead of re-deriving a span per probe.
  const std::size_t* offsets_data() const { return offsets_.data(); }
  const VertexId* adjacency_data() const { return adjacency_.data(); }

  VertexId max_degree() const;

  const std::optional<Bipartition>& bipartition() const { return bipartition_; }
  bool is_bipartite_tagged() const { return bipartition_.has_value(); }

  /// Re-derives the (deduplicated, sorted) edge list u <= v.
  EdgeList to_edge_list() const;

  /// Verifies the bipartition tag against the actual edges (no edge inside
  /// one side). Used by tests and the generators' postconditions.
  bool bipartition_consistent() const;

 private:
  VertexId num_vertices_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::size_t> offsets_;   // size n+1
  std::vector<VertexId> adjacency_;    // size 2m
  std::optional<Bipartition> bipartition_;
};

}  // namespace rcc
