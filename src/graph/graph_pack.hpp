// Packed binary graph format (.rgp) + mmap-backed zero-copy loader: the
// out-of-core ingestion layer.
//
// Every driver in this library consumes edges through the zero-copy span
// discipline (EdgeSpan / WeightedEdgeSpan over a flat arena). This header
// extends that discipline to disk: a pack file stores the edge records in
// exactly the in-memory layout, so MappedGraph can hand out spans whose
// pointers alias the mapping — no parse, no copy, no per-edge allocation —
// and instances stop being capped by what an in-process generator can hold
// in RAM.
//
// Layout (all scalars little-endian; 24-byte header, then fixed-width
// records):
//
//   offset  size  field
//        0     4  magic         0x31504752 ("RGP1" on disk)
//        4     2  version       kPackVersion (= 1)
//        6     2  flags         bit 0: weighted records; other bits reserved
//        8     4  num_vertices  vertex universe [0, n)
//       12     4  reserved      must be 0
//       16     8  num_edges     m record count
//       24   8*m  unweighted records: u32 u, u32 v with u < v (normalized,
//                 no self-loops — the EdgeList invariants)
//         16*m    weighted records: u32 u, u32 v (u != v, either order —
//                 the WeightedEdgeList invariant), f64 weight as its
//                 IEEE-754 bit pattern (bit-exact round trips, like the
//                 summary wire)
//
// The header is 24 bytes and both record widths divide it, so the record
// array is correctly aligned for Edge (align 4) and WeightedEdge (align 8)
// at any page-aligned mapping base.
//
// Error philosophy mirrors distributed/summary_wire.hpp: a malformed pack
// (bad magic, version skew, unknown flags, truncated header or records, a
// length field that disagrees with the file size, out-of-range endpoints,
// self-loops, unnormalized unweighted records, NaN or negative weights) is
// an input-integrity violation, not a recoverable condition — pack_fail
// prints a "graph pack:" diagnostic naming what was wrong and aborts, so
// the adversarial-input tests are death tests and no malformed record ever
// reaches a partitioner or solver.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "matching/weighted.hpp"

namespace rcc {

static_assert(std::endian::native == std::endian::little,
              "graph pack records assume a little-endian host");
static_assert(sizeof(Edge) == 8, "pack records alias Edge directly");
static_assert(sizeof(WeightedEdge) == 16,
              "pack records alias WeightedEdge directly");

inline constexpr std::uint32_t kPackMagic = 0x31504752u;  // "RGP1" on disk
inline constexpr std::uint16_t kPackVersion = 1;
inline constexpr std::uint16_t kPackFlagWeighted = 1u << 0;
inline constexpr std::size_t kPackHeaderBytes = 24;

/// Prints "graph pack: <formatted message>" to stderr and aborts. Every
/// decode-side validation funnels through here so a malformed file dies
/// with a diagnostic instead of feeding garbage to a solver.
[[noreturn]] void pack_fail(const char* fmt, ...);

/// Streaming pack writer: header first (edge count patched on finish), then
/// buffered fixed-width records. This is the out-of-core generation path —
/// a graph is packed edge batch by edge batch without ever materializing an
/// EdgeList, so the file can exceed RAM. Writer-side invariant violations
/// (endpoint out of universe, self-loop, negative/NaN weight) are RCC_CHECK
/// programmer errors; I/O failures (disk full, unwritable path) pack_fail.
class PackWriter {
 public:
  PackWriter(const std::string& path, VertexId num_vertices, bool weighted);
  ~PackWriter();  // finishes if finish() was not called

  PackWriter(const PackWriter&) = delete;
  PackWriter& operator=(const PackWriter&) = delete;

  /// Appends one unweighted record (normalized on the way out).
  void add(VertexId u, VertexId v);
  void add(Edge e) { add(e.u, e.v); }

  /// Appends one weighted record (endpoint order preserved, like
  /// WeightedEdgeList::add).
  void add(VertexId u, VertexId v, double weight);

  std::uint64_t edges_written() const { return edges_written_; }

  /// Flushes the record buffer, patches the true edge count into the
  /// header, and closes the file. Idempotent.
  void finish();

 private:
  void flush();

  std::string path_;
  void* file_ = nullptr;  // std::FILE*, kept out of the header
  VertexId num_vertices_ = 0;
  bool weighted_ = false;
  std::uint64_t edges_written_ = 0;
  std::vector<std::uint8_t> buffer_;
};

/// Whole-list conveniences over PackWriter for graphs that do fit in RAM
/// (tests, tools, checkpointing a generator's output).
struct GraphPack {
  static void write(const EdgeList& edges, const std::string& path);
  static void write(const WeightedEdgeList& edges, const std::string& path);
};

/// RAII read-only mapping of a pack file. Construction opens, maps
/// (MAP_PRIVATE, PROT_READ), advises MADV_SEQUENTIAL, and runs the full
/// decode-side validation pass over every record; a MappedGraph that
/// exists is a valid graph. The edges()/weighted_edges() views alias the
/// mapping — zero-copy, allocation-free (pinned in tests/allocation_test
/// .cpp) — and remain valid exactly as long as this object lives: the
/// EdgeSpan lifetime rule ("the viewed storage must outlive the span")
/// applies with the mapping as the storage.
class MappedGraph {
 public:
  explicit MappedGraph(const std::string& path);
  ~MappedGraph();

  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return num_edges_; }
  bool weighted() const { return weighted_; }
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// The records as a zero-copy view over the mapping.
  EdgeSpan edges() const;                    // unweighted packs only
  WeightedEdgeSpan weighted_edges() const;   // weighted packs only

  /// Releases the resident pages backing records [begin_edge, end_edge)
  /// (madvise MADV_DONTNEED on the page-aligned inner range; partially
  /// covered boundary pages stay). The data is unchanged — the mapping is
  /// read-only and a later access faults the page back in — but the
  /// process's resident set shrinks, which is how a sequential pass over a
  /// larger-than-RAM pack keeps bounded residency without waiting for
  /// kernel memory pressure. The validation pass in the constructor drops
  /// its own window the same way, so merely opening a huge pack never
  /// balloons RSS.
  void drop_resident(std::size_t begin_edge, std::size_t end_edge) const;

 private:
  const std::uint8_t* record_base() const;
  std::size_t record_bytes() const { return weighted_ ? 16 : 8; }
  void validate(const std::string& path) const;

  void* map_ = nullptr;
  std::uint64_t file_bytes_ = 0;
  VertexId num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  bool weighted_ = false;
};

}  // namespace rcc
