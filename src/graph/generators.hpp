// Synthetic graph generators for every instance family the paper uses.
//
// All generators are deterministic functions of the Rng passed in; all
// bipartite generators lay out vertices as [0, nL) = L, [nL, nL+nR) = R and
// tag the result so downstream algorithms can dispatch.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rcc {

/// Erdos-Renyi G(n, p) via geometric skipping: O(p * n^2) expected time.
EdgeList gnp(VertexId n, double p, Rng& rng);

/// G(n, m): exactly m distinct edges sampled uniformly (n*(n-1)/2 universe).
EdgeList gnm(VertexId n, std::uint64_t m, Rng& rng);

/// Random bipartite graph: each L x R pair independently with probability p.
/// Vertex universe [0, nL + nR); result carries a Bipartition tag when built
/// as a Graph via bipartite_graph().
EdgeList random_bipartite(VertexId nL, VertexId nR, double p, Rng& rng);

/// Bipartite graph where every left vertex picks exactly d random distinct
/// right neighbors ("left-d-regular"). Used by the lower-bound distribution
/// sketch in Section 1.2 (random k-regular bipartite graph).
EdgeList left_regular_bipartite(VertexId nL, VertexId nR, VertexId d, Rng& rng);

/// Perfect matching i <-> nL + pi(i) on a random permutation pi.
EdgeList random_perfect_matching(VertexId n_per_side, Rng& rng);

/// Complete bipartite K(nL, nR).
EdgeList complete_bipartite(VertexId nL, VertexId nR);

/// Crown graph S_n^0: K(n, n) minus the perfect matching (a_i, b_i) — every
/// left vertex i adjacent to every right vertex n + j with j != i. Has a
/// perfect matching for n >= 2, but a near-perfect matching that strands the
/// SAME index on both sides (a_d and b_d free) is maximal — the "missing
/// diagonal" kills the free-free edge — so greedy extension gets stuck one
/// edge short while a single length-3 augmenting path closes the gap. This
/// is the separator family for the augmenting-path round-combiner tests.
EdgeList crown(VertexId n_per_side);

/// Disjoint union of `count` crown graphs with `size` vertices per side.
/// Every component carries its own stranding trap (a random maximal matching
/// of crown(3) is one edge short with probability 1/3), so greedy folds lose
/// Theta(count) edges while short augmenting paths recover all of them.
EdgeList crown_forest(VertexId count, VertexId size);

/// Star: center 0 connected to leaves 1..n-1 (the Section 1.2 instance that
/// defeats the minimum-VC-as-coreset idea).
EdgeList star(VertexId n);

/// Disjoint union of `count` stars with `leaves` leaves each.
EdgeList star_forest(VertexId count, VertexId leaves);

/// Path on n vertices.
EdgeList path(VertexId n);

/// Cycle on n vertices (n >= 3).
EdgeList cycle(VertexId n);

/// Chung-Lu power-law-ish graph: expected degree of vertex i proportional to
/// (i+1)^(-1/(beta-1)), normalized to average degree avg_deg. Models the
/// "massive web/social graph" motivation of the MapReduce section.
EdgeList chung_lu_power_law(VertexId n, double beta, double avg_deg, Rng& rng);

/// The hub-gadget instance on which an arbitrary (adversarial) maximal
/// matching coreset degrades to Omega(k) while a maximum matching coreset
/// stays O(1) (Section 1.2 discussion).
///
/// Layout: L = {a_0..a_{n-1}}, R = {b_0..b_{n-1}}, hubs C = {c_0..c_{h-1}}
/// placed on the right side after R. Edges: the perfect matching (a_i, b_i)
/// plus all hub edges (a_i, c_j). With h = Theta(n/k) hubs an adversarial
/// maximal matching inside each random piece can cover nearly every a_i whose
/// matching edge lives in that piece using hub edges, destroying the
/// matching; the union of such coresets has maximum matching O(n/k + h).
struct HubGadget {
  EdgeList edges;      // universe: n left + n right + hubs
  VertexId n = 0;      // pairs
  VertexId hubs = 0;   // |C|
  VertexId left_size = 0;  // bipartition boundary (= n)
};
HubGadget hub_gadget(VertexId n, VertexId hubs);

/// Builds a Graph with a bipartition tag (left_size = nL).
Graph bipartite_graph(const EdgeList& edges, VertexId nL);

/// Builds a Graph with no bipartition tag.
Graph general_graph(const EdgeList& edges);

}  // namespace rcc
