#include "graph/graph.hpp"

#include <algorithm>

namespace rcc {

Graph::Graph(EdgeSpan edges, std::optional<Bipartition> bipartition) {
  assign(edges, bipartition);
}

void Graph::assign(EdgeSpan edges, std::optional<Bipartition> bipartition,
                   std::vector<std::size_t>* cursor_scratch) {
  num_vertices_ = edges.num_vertices();
  edge_count_ = edges.num_edges();
  bipartition_ = bipartition;
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : edges) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.resize(edge_count_ * 2);
  std::vector<std::size_t> local_cursor;
  std::vector<std::size_t>& cursor =
      cursor_scratch != nullptr ? *cursor_scratch : local_cursor;
  cursor.assign(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
}

VertexId Graph::max_degree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) best = std::max(best, degree(v));
  return best;
}

EdgeList Graph::to_edge_list() const {
  EdgeList out(num_vertices_);
  out.reserve(edge_count_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId w : neighbors(v)) {
      if (v < w) out.add(v, w);
    }
  }
  // Parallel edges appear once per copy from the smaller endpoint; fine.
  return out;
}

bool Graph::bipartition_consistent() const {
  if (!bipartition_) return false;
  const VertexId ls = bipartition_->left_size;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const bool v_left = v < ls;
    for (VertexId w : neighbors(v)) {
      if ((w < ls) == v_left) return false;
    }
  }
  return true;
}

}  // namespace rcc
