#include "graph/graph.hpp"

#include <algorithm>

namespace rcc {

Graph::Graph(EdgeSpan edges, std::optional<Bipartition> bipartition) {
  assign(edges, bipartition);
}

void Graph::assign(EdgeSpan edges, std::optional<Bipartition> bipartition,
                   std::vector<std::size_t>* cursor_scratch) {
  num_vertices_ = edges.num_vertices();
  edge_count_ = edges.num_edges();
  bipartition_ = bipartition;
  const std::size_t n = num_vertices_;
  offsets_.assign(n + 1, 0);
  std::size_t* off = offsets_.data();
  const Edge* es = edges.data();
  for (std::size_t i = 0; i < edge_count_; ++i) {
    ++off[es[i].u + 1];
    ++off[es[i].v + 1];
  }
  std::vector<std::size_t> local_cursor;
  std::vector<std::size_t>& cursor =
      cursor_scratch != nullptr ? *cursor_scratch : local_cursor;
  cursor.resize(n);
  std::size_t* cur = cursor.data();
  // Fused prefix sum + cursor initialization: one pass over the vertex
  // range instead of a prefix pass followed by a copy. Layout unchanged —
  // neighbors keep the input edge order (the scatter below is stable),
  // which downstream solvers' returned matchings depend on.
  std::size_t run = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t d = off[v + 1];
    cur[v] = run;
    off[v + 1] = run + d;
    run += d;
  }
  adjacency_.resize(edge_count_ * 2);
  VertexId* adj = adjacency_.data();
  for (std::size_t i = 0; i < edge_count_; ++i) {
    adj[cur[es[i].u]++] = es[i].v;
    adj[cur[es[i].v]++] = es[i].u;
  }
}

VertexId Graph::max_degree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) best = std::max(best, degree(v));
  return best;
}

EdgeList Graph::to_edge_list() const {
  EdgeList out(num_vertices_);
  out.reserve(edge_count_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (VertexId w : neighbors(v)) {
      if (v < w) out.add(v, w);
    }
  }
  // Parallel edges appear once per copy from the smaller endpoint; fine.
  return out;
}

bool Graph::bipartition_consistent() const {
  if (!bipartition_) return false;
  const VertexId ls = bipartition_->left_size;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const bool v_left = v < ls;
    for (VertexId w : neighbors(v)) {
      if ((w < ls) == v_left) return false;
    }
  }
  return true;
}

}  // namespace rcc
