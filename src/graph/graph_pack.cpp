#include "graph/graph_pack.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rcc {
namespace {

/// Record buffer flushed to disk at this size: large enough that packing a
/// billion-edge graph is a few thousand write calls, small enough that the
/// writer's own footprint is invisible next to any real instance.
constexpr std::size_t kWriterBufferBytes = std::size_t{1} << 20;

/// The validation / drop_resident pages-behind window: residency released
/// every 8 MiB of consumed records, so the constructor's full sequential
/// pass over an arbitrarily large pack holds one window resident, not the
/// file.
constexpr std::uint64_t kResidencyWindowBytes = std::uint64_t{8} << 20;

void encode_header(std::uint8_t* out, VertexId num_vertices,
                   std::uint64_t num_edges, bool weighted) {
  std::uint8_t* p = out;
  const auto put32 = [&p](std::uint32_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  const auto put16 = [&p](std::uint16_t v) {
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
  };
  put32(kPackMagic);
  put16(kPackVersion);
  put16(weighted ? kPackFlagWeighted : 0);
  put32(num_vertices);
  put32(0);  // reserved
  std::memcpy(p, &num_edges, sizeof num_edges);
}

}  // namespace

void pack_fail(const char* fmt, ...) {
  std::fputs("graph pack: ", stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::abort();
}

// ---------------------------------------------------------------- PackWriter

PackWriter::PackWriter(const std::string& path, VertexId num_vertices,
                       bool weighted)
    : path_(path), num_vertices_(num_vertices), weighted_(weighted) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    pack_fail("%s: cannot open for writing: %s", path.c_str(),
              std::strerror(errno));
  }
  file_ = f;
  buffer_.reserve(kWriterBufferBytes);
  std::uint8_t header[kPackHeaderBytes];
  encode_header(header, num_vertices_, 0, weighted_);  // m patched on finish
  if (std::fwrite(header, 1, sizeof header, f) != sizeof header) {
    pack_fail("%s: header write failed: %s", path.c_str(),
              std::strerror(errno));
  }
}

PackWriter::~PackWriter() { finish(); }

void PackWriter::add(VertexId u, VertexId v) {
  RCC_CHECK(!weighted_);
  RCC_CHECK(u != v && u < num_vertices_ && v < num_vertices_);
  const Edge e = make_edge(u, v);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&e);
  buffer_.insert(buffer_.end(), bytes, bytes + sizeof e);
  ++edges_written_;
  if (buffer_.size() >= kWriterBufferBytes) flush();
}

void PackWriter::add(VertexId u, VertexId v, double weight) {
  RCC_CHECK(weighted_);
  RCC_CHECK(u != v && u < num_vertices_ && v < num_vertices_);
  RCC_CHECK(weight >= 0.0);  // false for NaN too
  const WeightedEdge e{u, v, weight};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&e);
  buffer_.insert(buffer_.end(), bytes, bytes + sizeof e);
  ++edges_written_;
  if (buffer_.size() >= kWriterBufferBytes) flush();
}

void PackWriter::flush() {
  if (buffer_.empty()) return;
  auto* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), f) != buffer_.size()) {
    pack_fail("%s: record write failed: %s", path_.c_str(),
              std::strerror(errno));
  }
  buffer_.clear();
}

void PackWriter::finish() {
  if (file_ == nullptr) return;
  flush();
  auto* f = static_cast<std::FILE*>(file_);
  // Patch the true record count into the header now that it is known.
  std::uint8_t header[kPackHeaderBytes];
  encode_header(header, num_vertices_, edges_written_, weighted_);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, sizeof header, f) != sizeof header ||
      std::fclose(f) != 0) {
    pack_fail("%s: finalizing the header failed: %s", path_.c_str(),
              std::strerror(errno));
  }
  file_ = nullptr;
}

void GraphPack::write(const EdgeList& edges, const std::string& path) {
  PackWriter writer(path, edges.num_vertices(), /*weighted=*/false);
  for (const Edge& e : edges) writer.add(e);
  writer.finish();
}

void GraphPack::write(const WeightedEdgeList& edges, const std::string& path) {
  PackWriter writer(path, edges.num_vertices, /*weighted=*/true);
  for (const WeightedEdge& e : edges.edges) writer.add(e.u, e.v, e.weight);
  writer.finish();
}

// --------------------------------------------------------------- MappedGraph

MappedGraph::MappedGraph(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    pack_fail("%s: cannot open: %s", path.c_str(), std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    pack_fail("%s: cannot stat: %s", path.c_str(), std::strerror(errno));
  }
  file_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes_ < kPackHeaderBytes) {
    pack_fail("%s: truncated header (file is %llu bytes, header needs %zu)",
              path.c_str(), static_cast<unsigned long long>(file_bytes_),
              kPackHeaderBytes);
  }
  map_ = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file referenced
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    pack_fail("%s: mmap failed: %s", path.c_str(), std::strerror(errno));
  }
  // The validating pass below and the partitioner's counting pass both read
  // front to back; tell the kernel to read ahead aggressively.
  ::madvise(map_, file_bytes_, MADV_SEQUENTIAL);

  const auto* base = static_cast<const std::uint8_t*>(map_);
  std::uint32_t magic, n, reserved;
  std::uint16_t version, flags;
  std::memcpy(&magic, base + 0, sizeof magic);
  std::memcpy(&version, base + 4, sizeof version);
  std::memcpy(&flags, base + 6, sizeof flags);
  std::memcpy(&n, base + 8, sizeof n);
  std::memcpy(&reserved, base + 12, sizeof reserved);
  std::memcpy(&num_edges_, base + 16, sizeof num_edges_);
  if (magic != kPackMagic) {
    pack_fail("%s: bad magic 0x%08x (expected 0x%08x)", path.c_str(), magic,
              kPackMagic);
  }
  if (version != kPackVersion) {
    pack_fail("%s: version %u, this build reads version %u", path.c_str(),
              version, kPackVersion);
  }
  if ((flags & ~kPackFlagWeighted) != 0) {
    pack_fail("%s: unknown flag bits 0x%04x", path.c_str(),
              flags & ~kPackFlagWeighted);
  }
  if (reserved != 0) {
    pack_fail("%s: reserved header word is 0x%08x, must be 0", path.c_str(),
              reserved);
  }
  weighted_ = (flags & kPackFlagWeighted) != 0;
  num_vertices_ = n;
  const std::uint64_t expected =
      kPackHeaderBytes + num_edges_ * static_cast<std::uint64_t>(record_bytes());
  if (file_bytes_ != expected) {
    pack_fail(
        "%s: header claims %llu %s records (%llu file bytes), file has %llu",
        path.c_str(), static_cast<unsigned long long>(num_edges_),
        weighted_ ? "weighted" : "unweighted",
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(file_bytes_));
  }
  validate(path);
}

void MappedGraph::validate(const std::string& path) const {
  // One sequential sweep over every record; residency is dropped a window
  // behind the cursor, so validating a larger-than-RAM pack holds one
  // window resident. Later readers (the partitioner's two passes) re-fault
  // the pages from the page cache.
  const std::size_t rec = record_bytes();
  const std::uint64_t window_edges = kResidencyWindowBytes / rec;
  std::uint64_t dropped_below = 0;
  for (std::uint64_t i = 0; i < num_edges_; ++i) {
    const std::uint8_t* r = record_base() + i * rec;
    std::uint32_t u, v;
    std::memcpy(&u, r + 0, sizeof u);
    std::memcpy(&v, r + 4, sizeof v);
    if (u >= num_vertices_ || v >= num_vertices_) {
      pack_fail("%s: record %llu endpoints (%u, %u) out of universe [0, %u)",
                path.c_str(), static_cast<unsigned long long>(i), u, v,
                num_vertices_);
    }
    if (u == v) {
      pack_fail("%s: record %llu is a self-loop at vertex %u", path.c_str(),
                static_cast<unsigned long long>(i), u);
    }
    if (!weighted_ && u > v) {
      pack_fail("%s: record %llu (%u, %u) is not normalized (u < v)",
                path.c_str(), static_cast<unsigned long long>(i), u, v);
    }
    if (weighted_) {
      double w;
      std::memcpy(&w, r + 8, sizeof w);
      if (std::isnan(w)) {
        pack_fail("%s: record %llu weight is NaN", path.c_str(),
                  static_cast<unsigned long long>(i));
      }
      if (w < 0.0) {
        pack_fail("%s: record %llu weight %f is negative", path.c_str(),
                  static_cast<unsigned long long>(i), w);
      }
    }
    if (i + 1 - dropped_below >= 2 * window_edges) {
      drop_resident(dropped_below, dropped_below + window_edges);
      dropped_below += window_edges;
    }
  }
}

MappedGraph::~MappedGraph() {
  if (map_ != nullptr) ::munmap(map_, file_bytes_);
}

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : map_(other.map_),
      file_bytes_(other.file_bytes_),
      num_vertices_(other.num_vertices_),
      num_edges_(other.num_edges_),
      weighted_(other.weighted_) {
  other.map_ = nullptr;
  other.file_bytes_ = 0;
  other.num_edges_ = 0;
  other.num_vertices_ = 0;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, file_bytes_);
    map_ = other.map_;
    file_bytes_ = other.file_bytes_;
    num_vertices_ = other.num_vertices_;
    num_edges_ = other.num_edges_;
    weighted_ = other.weighted_;
    other.map_ = nullptr;
    other.file_bytes_ = 0;
    other.num_edges_ = 0;
    other.num_vertices_ = 0;
  }
  return *this;
}

const std::uint8_t* MappedGraph::record_base() const {
  return static_cast<const std::uint8_t*>(map_) + kPackHeaderBytes;
}

EdgeSpan MappedGraph::edges() const {
  RCC_CHECK(!weighted_);
  return EdgeSpan(reinterpret_cast<const Edge*>(record_base()),
                  static_cast<std::size_t>(num_edges_), num_vertices_);
}

WeightedEdgeSpan MappedGraph::weighted_edges() const {
  RCC_CHECK(weighted_);
  return WeightedEdgeSpan(reinterpret_cast<const WeightedEdge*>(record_base()),
                          static_cast<std::size_t>(num_edges_), num_vertices_);
}

void MappedGraph::drop_resident(std::size_t begin_edge,
                                std::size_t end_edge) const {
  RCC_CHECK(begin_edge <= end_edge && end_edge <= num_edges_);
  const long page = ::sysconf(_SC_PAGESIZE);
  const auto psize = static_cast<std::uintptr_t>(page);
  const auto base = reinterpret_cast<std::uintptr_t>(record_base());
  std::uintptr_t lo = base + begin_edge * record_bytes();
  std::uintptr_t hi = base + end_edge * record_bytes();
  lo = (lo + psize - 1) / psize * psize;  // only whole pages inside the range
  hi = hi / psize * psize;
  if (lo >= hi) return;
  ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
}

}  // namespace rcc
