// The ingestion seam: one value type every protocol entry point accepts,
// abstracting over WHERE the input edges live.
//
// Two origins exist today:
//
//   * heap   — an EdgeList built in-process (generators, tests, survivors),
//   * mapped — a MappedGraph whose records alias an .rgp pack file on disk
//              (graph/graph_pack.hpp), so the instance never has to fit in
//              RAM.
//
// An EdgeSource is a non-owning view (span + universe + origin tag), built
// implicitly from either origin, so `run_matching_protocol(graph, ...)`
// keeps compiling whether `graph` is an EdgeList or a MappedGraph. The
// engine and executor read the edges through one code path — the sharded
// partitioner's counting and scatter passes run over the mapped region in
// the same fixed-size batches they use over heap edges, so destinations,
// arena layout, and every downstream draw are byte-identical between
// origins (pinned seed-for-seed in tests/graph_pack_test.cpp).
//
// Lifetime: like EdgeSpan, the viewed storage (EdgeList, MappedGraph, or
// arena) must outlive the source; nothing in the library stores a source
// beyond the call it is passed to.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/graph_pack.hpp"
#include "matching/weighted.hpp"

namespace rcc {

/// Where an edge source's storage lives; informational (telemetry, benches)
/// — every algorithm treats both origins identically.
enum class EdgeOrigin {
  kHeap,    // in-process EdgeList / WeightedEdgeList storage
  kMapped,  // mmap-backed .rgp pack records
};

class EdgeSource {
 public:
  /*implicit*/ EdgeSource(const EdgeList& list)
      : span_(list), origin_(EdgeOrigin::kHeap) {}

  /*implicit*/ EdgeSource(const MappedGraph& map)
      : span_(map.edges()), origin_(EdgeOrigin::kMapped) {}

  EdgeSource(EdgeSpan span, EdgeOrigin origin)
      : span_(span), origin_(origin) {}

  EdgeSpan edges() const { return span_; }
  VertexId num_vertices() const { return span_.num_vertices(); }
  std::size_t num_edges() const { return span_.num_edges(); }
  bool empty() const { return span_.empty(); }
  EdgeOrigin origin() const { return origin_; }

 private:
  EdgeSpan span_;
  EdgeOrigin origin_ = EdgeOrigin::kHeap;
};

class WeightedEdgeSource {
 public:
  /*implicit*/ WeightedEdgeSource(const WeightedEdgeList& list)
      : span_(list), origin_(EdgeOrigin::kHeap) {}

  /*implicit*/ WeightedEdgeSource(const MappedGraph& map)
      : span_(map.weighted_edges()), origin_(EdgeOrigin::kMapped) {}

  WeightedEdgeSource(WeightedEdgeSpan span, EdgeOrigin origin)
      : span_(span), origin_(origin) {}

  WeightedEdgeSpan edges() const { return span_; }
  VertexId num_vertices() const { return span_.num_vertices(); }
  std::size_t num_edges() const { return span_.num_edges(); }
  bool empty() const { return span_.num_edges() == 0; }
  EdgeOrigin origin() const { return origin_; }

 private:
  WeightedEdgeSpan span_;
  EdgeOrigin origin_ = EdgeOrigin::kHeap;
};

}  // namespace rcc
