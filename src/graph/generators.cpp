#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

namespace rcc {

EdgeList gnp(VertexId n, double p, Rng& rng) {
  EdgeList out(n);
  if (n < 2 || p <= 0.0) return out;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) out.add(u, v);
    }
    return out;
  }
  // Walk the strictly-upper-triangular adjacency matrix linearly with
  // geometric jumps between present edges.
  const std::uint64_t universe =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = rng.geometric_skip(p);
  while (idx < universe) {
    // Decode the linear index into (u, v), u < v: row u holds n-1-u cells.
    // Solve the triangular-number inversion directly.
    const double nn = static_cast<double>(n);
    double approx =
        nn - 0.5 - std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 * static_cast<double>(idx));
    auto u = static_cast<std::uint64_t>(approx);
    auto row_start = [&](std::uint64_t r) {
      return r * (2 * static_cast<std::uint64_t>(n) - r - 1) / 2;
    };
    while (u > 0 && row_start(u) > idx) --u;
    while (row_start(u + 1) <= idx) ++u;
    const std::uint64_t v = u + 1 + (idx - row_start(u));
    out.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
    idx += 1 + rng.geometric_skip(p);
  }
  return out;
}

EdgeList gnm(VertexId n, std::uint64_t m, Rng& rng) {
  EdgeList out(n);
  if (n < 2) return out;
  const std::uint64_t universe = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  RCC_CHECK(m <= universe);
  for (std::uint64_t code : rng.sample_distinct(universe, m)) {
    // Decode as in gnp.
    const double nn = static_cast<double>(n);
    double approx =
        nn - 0.5 - std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 * static_cast<double>(code));
    auto u = static_cast<std::uint64_t>(approx);
    auto row_start = [&](std::uint64_t r) {
      return r * (2 * static_cast<std::uint64_t>(n) - r - 1) / 2;
    };
    while (u > 0 && row_start(u) > code) --u;
    while (row_start(u + 1) <= code) ++u;
    const std::uint64_t v = u + 1 + (code - row_start(u));
    out.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return out;
}

EdgeList random_bipartite(VertexId nL, VertexId nR, double p, Rng& rng) {
  const VertexId n = nL + nR;
  EdgeList out(n);
  if (nL == 0 || nR == 0 || p <= 0.0) return out;
  if (p >= 1.0) return complete_bipartite(nL, nR);
  const std::uint64_t universe = static_cast<std::uint64_t>(nL) * nR;
  std::uint64_t idx = rng.geometric_skip(p);
  while (idx < universe) {
    const auto u = static_cast<VertexId>(idx / nR);
    const auto v = static_cast<VertexId>(nL + idx % nR);
    out.add(u, v);
    idx += 1 + rng.geometric_skip(p);
  }
  return out;
}

EdgeList left_regular_bipartite(VertexId nL, VertexId nR, VertexId d, Rng& rng) {
  RCC_CHECK(d <= nR);
  EdgeList out(nL + nR);
  out.reserve(static_cast<std::size_t>(nL) * d);
  for (VertexId u = 0; u < nL; ++u) {
    for (auto r : rng.sample_distinct(nR, d)) {
      out.add(u, nL + static_cast<VertexId>(r));
    }
  }
  return out;
}

EdgeList random_perfect_matching(VertexId n_per_side, Rng& rng) {
  std::vector<VertexId> perm(n_per_side);
  for (VertexId i = 0; i < n_per_side; ++i) perm[i] = i;
  rng.shuffle(perm);
  EdgeList out(2 * n_per_side);
  out.reserve(n_per_side);
  for (VertexId i = 0; i < n_per_side; ++i) out.add(i, n_per_side + perm[i]);
  return out;
}

EdgeList complete_bipartite(VertexId nL, VertexId nR) {
  EdgeList out(nL + nR);
  out.reserve(static_cast<std::size_t>(nL) * nR);
  for (VertexId u = 0; u < nL; ++u) {
    for (VertexId v = 0; v < nR; ++v) out.add(u, nL + v);
  }
  return out;
}

EdgeList crown(VertexId n_per_side) {
  RCC_CHECK(n_per_side >= 2);
  EdgeList out(2 * n_per_side);
  out.reserve(static_cast<std::size_t>(n_per_side) * (n_per_side - 1));
  for (VertexId i = 0; i < n_per_side; ++i) {
    for (VertexId j = 0; j < n_per_side; ++j) {
      if (i != j) out.add(i, n_per_side + j);
    }
  }
  return out;
}

EdgeList crown_forest(VertexId count, VertexId size) {
  RCC_CHECK(size >= 2);
  const VertexId per_crown = 2 * size;
  EdgeList out(count * per_crown);
  for (VertexId c = 0; c < count; ++c) {
    const VertexId base = c * per_crown;
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = 0; j < size; ++j) {
        if (i != j) out.add(base + i, base + size + j);
      }
    }
  }
  return out;
}

EdgeList star(VertexId n) {
  RCC_CHECK(n >= 2);
  EdgeList out(n);
  out.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) out.add(0, v);
  return out;
}

EdgeList star_forest(VertexId count, VertexId leaves) {
  const VertexId per_star = leaves + 1;
  EdgeList out(count * per_star);
  out.reserve(static_cast<std::size_t>(count) * leaves);
  for (VertexId s = 0; s < count; ++s) {
    const VertexId center = s * per_star;
    for (VertexId l = 1; l <= leaves; ++l) out.add(center, center + l);
  }
  return out;
}

EdgeList path(VertexId n) {
  EdgeList out(n);
  for (VertexId v = 0; v + 1 < n; ++v) out.add(v, v + 1);
  return out;
}

EdgeList cycle(VertexId n) {
  RCC_CHECK(n >= 3);
  EdgeList out = path(n);
  out.add(n - 1, 0);
  return out;
}

EdgeList chung_lu_power_law(VertexId n, double beta, double avg_deg, Rng& rng) {
  RCC_CHECK(beta > 2.0);
  // Target weights w_i ~ (i+1)^(-1/(beta-1)), scaled to sum = n * avg_deg.
  std::vector<double> w(n);
  double total = 0.0;
  const double exponent = -1.0 / (beta - 1.0);
  for (VertexId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), exponent);
    total += w[i];
  }
  const double scale = avg_deg * static_cast<double>(n) / total;
  for (auto& x : w) x *= scale;
  const double W = avg_deg * static_cast<double>(n);

  // Efficient Chung-Lu sampling (Miller & Hagberg style): walk vertex pairs
  // in weight order with geometric skips using an upper-bound probability,
  // then accept with the exact ratio.
  EdgeList out(n);
  for (VertexId u = 0; u < n; ++u) {
    VertexId v = u + 1;
    if (v >= n) break;
    double p_bound = std::min(1.0, w[u] * w[v] / W);
    while (v < n && p_bound > 0.0) {
      const std::uint64_t skip = rng.geometric_skip(p_bound);
      if (skip >= static_cast<std::uint64_t>(n - v)) break;
      v += static_cast<VertexId>(skip);
      const double p_exact = std::min(1.0, w[u] * w[v] / W);
      if (rng.bernoulli(p_exact / p_bound)) out.add(u, v);
      p_bound = p_exact;
      ++v;
    }
  }
  return out;
}

HubGadget hub_gadget(VertexId n, VertexId hubs) {
  HubGadget g;
  g.n = n;
  g.hubs = hubs;
  g.left_size = n;
  // Universe: [0,n) = a_i, [n,2n) = b_i, [2n, 2n+hubs) = c_j. The bs and cs
  // share the right side, so the graph is bipartite with left_size = n.
  EdgeList out(2 * n + hubs);
  out.reserve(static_cast<std::size_t>(n) * (1 + hubs));
  for (VertexId i = 0; i < n; ++i) out.add(i, n + i);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < hubs; ++j) out.add(i, 2 * n + j);
  }
  g.edges = std::move(out);
  return g;
}

Graph bipartite_graph(const EdgeList& edges, VertexId nL) {
  return Graph(edges, Bipartition{nL});
}

Graph general_graph(const EdgeList& edges) { return Graph(edges); }

}  // namespace rcc
