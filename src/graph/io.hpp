// Plain-text edge-list I/O.
//
// Format:
//   line 1: "n m"            (vertex count, edge count)
//   m lines: "u v"           (0-based endpoints)
// Lines starting with '#' are comments.
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace rcc {

/// Writes the edge list; aborts on I/O failure.
void write_edge_list(const EdgeList& edges, const std::string& path);

/// Reads an edge list written by write_edge_list (or hand-authored in the
/// same format); aborts with a diagnostic on malformed input.
EdgeList read_edge_list(const std::string& path);

}  // namespace rcc
