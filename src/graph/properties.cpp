#include "graph/properties.hpp"

#include <vector>

namespace rcc {

std::size_t connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack;
  std::size_t components = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return components;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++hist[g.degree(v)];
  return hist;
}

EdgeList induced_matching(const EdgeList& edges) {
  const auto deg = edges.degrees();
  return edges.filter([&](const Edge& e) { return deg[e.u] == 1 && deg[e.v] == 1; });
}

std::size_t degree_one_count(const EdgeList& edges, VertexId prefix) {
  const auto deg = edges.degrees();
  std::size_t count = 0;
  for (VertexId v = 0; v < prefix && v < edges.num_vertices(); ++v) {
    if (deg[v] == 1) ++count;
  }
  return count;
}

bool is_matching(const EdgeList& edges) {
  std::vector<bool> used(edges.num_vertices(), false);
  for (const Edge& e : edges) {
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = used[e.v] = true;
  }
  return true;
}

bool covers_all_edges(const EdgeList& edges, const std::vector<bool>& cover) {
  RCC_CHECK(cover.size() >= edges.num_vertices());
  for (const Edge& e : edges) {
    if (!cover[e.u] && !cover[e.v]) return false;
  }
  return true;
}

bool is_bipartite(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<int> color(n, -1);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(v)) {
        if (color[w] == -1) {
          color[w] = color[v] ^ 1;
          stack.push_back(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace rcc
