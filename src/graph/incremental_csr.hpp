// Incremental counting-sorted CSR adjacency for the round-persistent hot
// paths.
//
// The PR-5 profile showed the augmenting machine phase spending ~40% of its
// time rebuilding a sorted CSR per shard per round: a counting scatter
// followed by n per-vertex `std::sort` calls. Both costs are avoidable. A
// sorted neighbor list is a pure function of the edge *multiset*, so it can
// be produced by counting sort alone — bucket every arc by its target, then
// sweep targets in ascending order appending to each source's row — in
// O(n + m) with zero comparisons. And the multiset itself often does not
// change between calls: the augmenting round-combiner recirculates the same
// edge set every round (only the matching moves), and batch augmentation
// re-searches one fixed graph until no path remains. IncrementalCsr
// therefore remembers an order-independent signature of the multiset it was
// built from and turns those calls into O(m) verification with zero writes.
//
// Ownership/compaction rules (see README "Performance playbook"):
//  * the CSR owns its storage and normally lives in a MachineScratch state
//    slot (`scratch.state<IncrementalCsr>()`), so capacity persists across
//    rounds like every other workspace buffer;
//  * `ensure()` is the only entry point hot paths need: it reuses when the
//    signature matches and counting-sort rebuilds otherwise;
//  * `compact()` shrinks the adjacency in place to the subgraph induced by
//    a vertex predicate — the survivor-filter shape every round-combiner
//    uses — and updates the signature so a following `ensure()` over the
//    filtered edge list reuses instead of rebuilding. Rows keep their
//    sorted order under compaction (filtering preserves sortedness), so a
//    compacted CSR is bit-identical to a fresh build over the survivors
//    (differential-tested in tests/workspace_test.cpp).
//
// Signature caveat: reuse detection is a 64-bit multiset hash (sum of
// per-edge splitmix64 finalizers), so two different multisets collide with
// probability ~2^-64 per pair. The differential tests pin the observable
// behavior seed-for-seed; the hash only ever decides "skip a rebuild that
// would have produced what is already here".
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"
#include "util/workspace.hpp"

namespace rcc {

class IncrementalCsr {
 public:
  /// Makes the CSR describe `edges` with sorted neighbor rows, reusing the
  /// current arrays when the multiset signature matches. Returns true on
  /// reuse (O(m) verification, no writes), false on a counting-sort rebuild.
  bool ensure(EdgeSpan edges, WorkspaceStats* stats = nullptr) {
    // O(1) pre-checks gate the O(m) hash: when the vertex universe or the
    // arc count already disagree (the machine-phase shape — re-randomized
    // pieces rarely coincide in size round over round), skip straight to
    // the build, which folds the signature into its counting pass.
    if (valid_ && edges.num_vertices() == n_ &&
        2 * edges.num_edges() == num_arcs()) {
      const std::uint64_t sig = multiset_signature(edges);
      if (sig == signature_) {
        ++reuses_;
        return true;
      }
      build_impl<false>(edges, sig, stats);
      return false;
    }
    build_impl<true>(edges, 0, stats);
    return false;
  }

  /// Unconditional counting-sort rebuild (sorted rows, O(n + m), no
  /// comparison sort anywhere).
  void build(EdgeSpan edges, WorkspaceStats* stats = nullptr) {
    build_impl<true>(edges, 0, stats);
  }

  /// In-place compaction to the subgraph induced by `keep`: every arc with a
  /// dropped endpoint on either side is removed, rows stay sorted, and the
  /// signature is recomputed from the survivors so the next ensure() over
  /// the filtered edge list is a reuse. O(current arcs), no allocation.
  template <typename KeepVertex>
  void compact(KeepVertex&& keep) {
    RCC_CHECK(valid_);
    std::uint32_t* off = offsets_.data();
    VertexId* nbr = neighbors_.data();
    std::uint32_t write = 0;
    std::uint64_t sig = 0;
    std::size_t read = 0;
    for (VertexId u = 0; u < n_; ++u) {
      const std::size_t row_end = off[u + 1];
      if (keep(u)) {
        bool loop_toggle = false;  // self-loop arcs come in pairs: count one
        for (; read < row_end; ++read) {
          const VertexId v = nbr[read];
          if (!keep(v)) continue;
          nbr[write++] = v;
          if (v > u) {
            sig += edge_hash(u, v);
          } else if (v == u && (loop_toggle = !loop_toggle) == false) {
            sig += edge_hash(u, u);
          }
        }
      }
      read = row_end;
      off[u + 1] = write;  // old value already consumed for this row
    }
    signature_ = sig;
    ++compactions_;
  }

  /// Drops the cached signature so the next ensure() rebuilds. Use after
  /// mutating the arrays through raw pointers.
  void invalidate() { valid_ = false; }

  VertexId num_vertices() const { return n_; }
  std::size_t num_arcs() const { return valid_ ? offsets_[n_] : 0; }
  bool valid() const { return valid_; }

  std::span<const VertexId> row(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Raw views for flat hot loops (size n+1 / num_arcs()).
  const std::uint32_t* offsets_data() const { return offsets_.data(); }
  const VertexId* arcs_data() const { return neighbors_.data(); }

  /// Maintenance counters: how often ensure() rebuilt vs reused, and how
  /// many in-place compactions ran. Tests use these to prove the reuse path
  /// actually fires; they carry no behavioral weight.
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t reuses() const { return reuses_; }
  std::uint64_t compactions() const { return compactions_; }

  /// The order-independent multiset signature reuse detection runs on.
  static std::uint64_t multiset_signature(EdgeSpan edges) {
    std::uint64_t sig = 0;
    for (const Edge& e : edges) sig += edge_hash(e.u, e.v);
    return sig;
  }

 private:
  static std::uint64_t edge_hash(VertexId a, VertexId b) {
    const VertexId lo = a < b ? a : b;
    const VertexId hi = a < b ? b : a;
    std::uint64_t x = (static_cast<std::uint64_t>(lo) << 32) | hi;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// kFuseSignature: fold the multiset hash into the counting pass (the
  /// rebuild-after-failed-prechecks path already paid for a standalone hash
  /// and passes it in instead).
  template <bool kFuseSignature>
  void build_impl(EdgeSpan edges, std::uint64_t sig, WorkspaceStats* stats) {
    const VertexId n = edges.num_vertices();
    const std::size_t m = edges.num_edges();
    // Internal cursors are 32-bit (half the memory traffic of size_t on the
    // n-proportional passes, which dominate for shard pieces where n >> m).
    RCC_CHECK(2 * m <= 0xFFFFFFFFull);
    n_ = n;
    std::uint32_t* off =
        workspace_detail::sized(offsets_, static_cast<std::size_t>(n) + 1,
                                stats)
            .data();
    std::uint32_t* cur =
        workspace_detail::sized(cursor_, static_cast<std::size_t>(n), stats)
            .data();
    std::fill(off, off + n + 1, std::uint32_t{0});
    const Edge* es = edges.data();
    for (std::size_t i = 0; i < m; ++i) {
      ++off[es[i].u + 1];
      ++off[es[i].v + 1];
      if constexpr (kFuseSignature) sig += edge_hash(es[i].u, es[i].v);
    }
    // Fused prefix sum + phase-A cursor initialization (one pass, not two).
    std::uint32_t run = 0;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t d = off[v + 1];
      cur[v] = run;
      off[v + 1] = run + d;
      run += d;
    }
    // Phase A: bucket every arc by its TARGET, storing the source. Bucket
    // sizes equal degrees, so the final offsets double as bucket bounds —
    // and the pass leaves every cursor at its row END.
    VertexId* bkt =
        workspace_detail::sized(bucket_, 2 * m, stats).data();
    for (std::size_t i = 0; i < m; ++i) {
      bkt[cur[es[i].v]++] = es[i].u;
      bkt[cur[es[i].u]++] = es[i].v;
    }
    // Phase B: sweep targets in DESCENDING order, writing each source's row
    // right-to-left through the end-cursors phase A left behind (no cursor
    // re-init pass). Descending targets prepended = ascending rows,
    // duplicates (parallel edges) preserved — exactly what per-row
    // std::sort over a scatter produces, without the n sort calls.
    VertexId* out =
        workspace_detail::sized(neighbors_, 2 * m, stats).data();
    for (VertexId t = n; t-- > 0;) {
      for (std::size_t i = off[t]; i < off[t + 1]; ++i) {
        out[--cur[bkt[i]]] = t;
      }
    }
    signature_ = sig;
    valid_ = true;
    ++rebuilds_;
  }

  // Offsets and cursors are 32-bit on purpose: the n-proportional passes
  // (zero-fill, prefix sum, phase-B outer sweep) are memory-bound and n can
  // dwarf the piece size on shard builds; halving the element width halves
  // their traffic. The build checks 2m fits. ScratchVec because every build
  // overwrites all four arrays end to end — value-initializing them on the
  // cold-start resize would double the first round's memory traffic.
  ScratchVec<std::uint32_t> offsets_;  // n + 1
  ScratchVec<VertexId> neighbors_;     // 2m, rows sorted ascending
  ScratchVec<std::uint32_t> cursor_;   // scratch: scatter cursors
  ScratchVec<VertexId> bucket_;        // scratch: arcs bucketed by target
  VertexId n_ = 0;
  std::uint64_t signature_ = 0;
  bool valid_ = false;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace rcc
