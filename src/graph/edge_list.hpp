// EdgeList: the interchange format between generators, partitioners,
// coresets, and solvers.
//
// A coreset in this paper *is* a subgraph (plus possibly fixed vertices), so
// edge lists — not adjacency structures — are what machines exchange. The
// CSR Graph is built from an EdgeList only where an algorithm needs
// neighbor queries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

class EdgeList {
 public:
  EdgeList() = default;

  /// num_vertices fixes the vertex universe [0, n); edges may only mention
  /// ids below n (checked on insertion in debug builds).
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  EdgeList(VertexId num_vertices, std::vector<Edge> edges);

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& operator[](std::size_t i) const { return edges_[i]; }

  auto begin() const { return edges_.begin(); }
  auto end() const { return edges_.end(); }

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Adds an edge (normalized). Self-loops are rejected: the matching and
  /// vertex-cover problems are defined on simple graphs (parallel edges are
  /// allowed and meaningful for the Remark 5.8 multigraph reduction).
  void add(VertexId a, VertexId b);
  void add(Edge e) { add(e.u, e.v); }

  /// Appends all edges of another list over the same vertex universe.
  void append(const EdgeList& other);

  /// Degree of every vertex (parallel edges counted with multiplicity).
  std::vector<VertexId> degrees() const;

  /// Sorts edges lexicographically (useful for deterministic output).
  void sort();

  /// Removes parallel duplicates; sorts as a side effect.
  void dedup();

  /// True if some edge joins two distinct vertices more than once.
  bool has_parallel_edges() const;

  /// Keeps edges for which pred(e) is true.
  template <typename Pred>
  EdgeList filter(Pred pred) const {
    EdgeList out(num_vertices_);
    for (const Edge& e : edges_) {
      if (pred(e)) out.add(e);
    }
    return out;
  }

  /// Uniform random subset of exactly min(k, m) edges.
  EdgeList sample_edges(std::size_t k, Rng& rng) const;

  /// Independent Bernoulli(p) subsample of the edges.
  EdgeList subsample(double p, Rng& rng) const;

  /// Union of several lists over a common vertex universe.
  static EdgeList union_of(const std::vector<EdgeList>& parts);

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace rcc
