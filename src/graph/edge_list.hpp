// EdgeList: the interchange format between generators, partitioners,
// coresets, and solvers.
//
// A coreset in this paper *is* a subgraph (plus possibly fixed vertices), so
// edge lists — not adjacency structures — are what machines exchange. The
// CSR Graph is built from an EdgeList only where an algorithm needs
// neighbor queries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

class EdgeSpan;

class EdgeList {
 public:
  EdgeList() = default;

  /// num_vertices fixes the vertex universe [0, n); edges may only mention
  /// ids below n (checked on insertion in debug builds).
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  EdgeList(VertexId num_vertices, std::vector<Edge> edges);

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& operator[](std::size_t i) const { return edges_[i]; }

  auto begin() const { return edges_.begin(); }
  auto end() const { return edges_.end(); }

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Drops all edges but keeps the vertex universe AND the edge capacity —
  /// the reuse primitive of the round-persistent workspaces: a fold that
  /// clears and refills one list every round stops allocating once the list
  /// reaches its high-water mark.
  void clear() { edges_.clear(); }

  /// clear() plus a (possibly new) vertex universe; capacity is kept.
  void reset(VertexId num_vertices) {
    num_vertices_ = num_vertices;
    edges_.clear();
  }

  /// Replaces the contents with a copy of `src` (universe included),
  /// reusing this list's capacity. The allocation-free alternative to
  /// `list = span.to_edge_list()`.
  void assign(EdgeSpan src);

  /// Replaces the contents with the edges of `src` for which pred(e) holds,
  /// reusing this list's capacity (the in-place alternative to
  /// EdgeSpan::filter). `src` must not alias this list's storage.
  template <typename Pred>
  void assign_filtered(EdgeSpan src, Pred pred);

  /// Adds an edge (normalized). Self-loops are rejected: the matching and
  /// vertex-cover problems are defined on simple graphs (parallel edges are
  /// allowed and meaningful for the Remark 5.8 multigraph reduction).
  void add(VertexId a, VertexId b);
  void add(Edge e) { add(e.u, e.v); }

  /// Appends all edges of another list over the same vertex universe.
  void append(const EdgeList& other);

  /// Degree of every vertex (parallel edges counted with multiplicity).
  std::vector<VertexId> degrees() const;

  /// Sorts edges lexicographically (useful for deterministic output).
  void sort();

  /// Removes parallel duplicates; sorts as a side effect.
  void dedup();

  /// True if some edge joins two distinct vertices more than once.
  bool has_parallel_edges() const;

  /// Keeps edges for which pred(e) is true. (Defined after EdgeSpan below —
  /// the span implementation is the single copy of the loop.)
  template <typename Pred>
  EdgeList filter(Pred pred) const;

  /// Uniform random subset of exactly min(k, m) edges.
  EdgeList sample_edges(std::size_t k, Rng& rng) const;

  /// Independent Bernoulli(p) subsample of the edges.
  EdgeList subsample(double p, Rng& rng) const;

  /// Union of several lists over a common vertex universe.
  static EdgeList union_of(const std::vector<EdgeList>& parts);

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

/// Non-owning view of contiguous edges over a fixed vertex universe. This is
/// what a machine receives from the sharded partitioner: a slice of the
/// shared edge arena, never a copy. Converts implicitly from EdgeList so
/// every span-taking algorithm still accepts owning lists at zero cost.
///
/// Lifetime: the viewed storage (arena or EdgeList) must outlive the span;
/// nothing in the library stores spans beyond the call they are passed to.
class EdgeSpan {
 public:
  EdgeSpan() = default;

  EdgeSpan(const Edge* data, std::size_t size, VertexId num_vertices)
      : data_(data), size_(size), num_vertices_(num_vertices) {}

  /*implicit*/ EdgeSpan(const EdgeList& list)
      : data_(list.edges().data()),
        size_(list.num_edges()),
        num_vertices_(list.num_vertices()) {}

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Edge& operator[](std::size_t i) const { return data_[i]; }

  const Edge* data() const { return data_; }
  const Edge* begin() const { return data_; }
  const Edge* end() const { return data_ + size_; }

  /// Degree of every vertex (parallel edges counted with multiplicity).
  std::vector<VertexId> degrees() const {
    std::vector<VertexId> deg;
    degrees_into(deg);
    return deg;
  }

  /// degrees() into a caller-owned buffer (reused capacity, no allocation
  /// once `out` has reached the universe size).
  void degrees_into(std::vector<VertexId>& out) const {
    out.assign(num_vertices_, 0);
    for (std::size_t i = 0; i < size_; ++i) {
      ++out[data_[i].u];
      ++out[data_[i].v];
    }
  }

  /// Materializes an owning copy (the only copying operation on a span).
  EdgeList to_edge_list() const {
    return EdgeList(num_vertices_, std::vector<Edge>(begin(), end()));
  }

  /// Keeps edges for which pred(e) is true; the output owns its edges.
  template <typename Pred>
  EdgeList filter(Pred pred) const {
    EdgeList out(num_vertices_);
    for (std::size_t i = 0; i < size_; ++i) {
      if (pred(data_[i])) out.add(data_[i]);
    }
    return out;
  }

 private:
  const Edge* data_ = nullptr;
  std::size_t size_ = 0;
  VertexId num_vertices_ = 0;
};

template <typename Pred>
EdgeList EdgeList::filter(Pred pred) const {
  return EdgeSpan(*this).filter(pred);
}

inline void EdgeList::assign(EdgeSpan src) {
  num_vertices_ = src.num_vertices();
  edges_.assign(src.begin(), src.end());
}

template <typename Pred>
void EdgeList::assign_filtered(EdgeSpan src, Pred pred) {
  RCC_DCHECK(edges_.empty() || src.begin() < edges_.data() ||
             src.begin() >= edges_.data() + edges_.size());
  num_vertices_ = src.num_vertices();
  edges_.clear();
  for (const Edge& e : src) {
    if (pred(e)) edges_.push_back(e);
  }
}

}  // namespace rcc
