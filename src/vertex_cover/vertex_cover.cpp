#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

VertexCover VertexCover::from_vertices(VertexId num_vertices,
                                       const std::vector<VertexId>& vertices) {
  VertexCover c(num_vertices);
  for (VertexId v : vertices) c.insert(v);
  return c;
}

void VertexCover::merge(const VertexCover& other) {
  RCC_CHECK(other.num_vertices() == num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (other.in_cover_[v]) insert(v);
  }
}

bool VertexCover::covers(EdgeSpan edges) const {
  RCC_CHECK(edges.num_vertices() == num_vertices());
  for (const Edge& e : edges) {
    if (!in_cover_[e.u] && !in_cover_[e.v]) return false;
  }
  return true;
}

std::vector<VertexId> VertexCover::vertices() const {
  std::vector<VertexId> out;
  out.reserve(size_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (in_cover_[v]) out.push_back(v);
  }
  return out;
}

}  // namespace rcc
