#include "vertex_cover/weighted_vc.hpp"

#include <algorithm>

#include "graph/graph.hpp"

namespace rcc {

double cover_weight(const VertexCover& cover, const VertexWeights& weights) {
  RCC_CHECK(weights.size() == cover.num_vertices());
  double total = 0.0;
  for (VertexId v = 0; v < cover.num_vertices(); ++v) {
    if (cover.contains(v)) total += weights[v];
  }
  return total;
}

WeightedVcResult local_ratio_weighted_vc(const EdgeList& edges,
                                         const VertexWeights& weights) {
  RCC_CHECK(weights.size() == edges.num_vertices());
  for (double w : weights) RCC_CHECK(w >= 0.0);
  WeightedVcResult result;
  result.cover = VertexCover(edges.num_vertices());
  VertexWeights residual = weights;
  for (const Edge& e : edges) {
    if (result.cover.contains(e.u) || result.cover.contains(e.v)) continue;
    const double price = std::min(residual[e.u], residual[e.v]);
    residual[e.u] -= price;
    residual[e.v] -= price;
    result.lower_bound += price;
    // Zero-residual vertices are paid for; taking them is free now.
    if (residual[e.u] <= 0.0) result.cover.insert(e.u);
    if (residual[e.v] <= 0.0) result.cover.insert(e.v);
  }
  RCC_CHECK(result.cover.covers(edges));
  return result;
}

VertexCover greedy_weighted_vc(const EdgeList& edges,
                               const VertexWeights& weights) {
  RCC_CHECK(weights.size() == edges.num_vertices());
  const Graph g(edges);
  const VertexId n = g.num_vertices();
  std::vector<std::int64_t> residual_deg(n);
  for (VertexId v = 0; v < n; ++v) residual_deg[v] = g.degree(v);
  VertexCover cover(n);
  // residual_deg[v] counts v's incident edges with both endpoints outside
  // the cover; taking v covers exactly residual_deg[v] edges.
  std::int64_t uncovered = static_cast<std::int64_t>(edges.num_edges());
  while (uncovered > 0) {
    // O(n) selection per step keeps the code simple; the baselines run on
    // modest instances.
    VertexId best = kInvalidVertex;
    double best_score = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (cover.contains(v) || residual_deg[v] == 0) continue;
      const double score = weights[v] / static_cast<double>(residual_deg[v]);
      if (best == kInvalidVertex || score < best_score) {
        best = v;
        best_score = score;
      }
    }
    RCC_CHECK(best != kInvalidVertex);
    uncovered -= residual_deg[best];
    cover.insert(best);
    for (VertexId w : g.neighbors(best)) {
      if (!cover.contains(w)) --residual_deg[w];
    }
    residual_deg[best] = 0;
  }
  RCC_CHECK(cover.covers(edges));
  return cover;
}

namespace {
double exact_rec(const std::vector<Edge>& edges, std::size_t i,
                 const VertexWeights& weights, std::vector<bool>& taken,
                 double cost, double best) {
  if (cost >= best) return best;
  // Find next uncovered edge.
  while (i < edges.size() &&
         (taken[edges[i].u] || taken[edges[i].v])) {
    ++i;
  }
  if (i == edges.size()) return std::min(best, cost);
  const Edge& e = edges[i];
  taken[e.u] = true;
  best = exact_rec(edges, i + 1, weights, taken, cost + weights[e.u], best);
  taken[e.u] = false;
  taken[e.v] = true;
  best = exact_rec(edges, i + 1, weights, taken, cost + weights[e.v], best);
  taken[e.v] = false;
  return best;
}
}  // namespace

double exact_weighted_vc_small(const EdgeList& edges,
                               const VertexWeights& weights) {
  RCC_CHECK(edges.num_edges() <= 40);
  std::vector<Edge> es(edges.begin(), edges.end());
  std::vector<bool> taken(edges.num_vertices(), false);
  double total = 0.0;
  for (double w : weights) total += w;
  return exact_rec(es, 0, weights, taken, 0.0, total);
}

}  // namespace rcc
