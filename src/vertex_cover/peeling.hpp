// Degree-peeling algorithms for vertex cover.
//
// Two artifacts live here:
//  1. The single-graph Parnas-Ron style peeling that the paper's VC-Coreset
//     modifies (Section 3.2, [59]): repeatedly collect all vertices whose
//     residual degree exceeds a geometrically shrinking threshold.
//  2. The *hypothetical* peeling process of Section 3.2 that is only used in
//     the analysis of Theorem 2: given an optimal cover O*, it peels
//     O_j = {v in O* : deg >= n/2^j} and
//     Obar_j = {v in O*-bar : deg >= n/2^{j+2}} from the bipartite residual.
//     We implement it so that property tests can check the "sandwich"
//     relation of Lemma 3.6 and the size bound of Lemma 3.5 empirically.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// Result of a peeling run: vertices peeled per level plus residual edges.
struct PeelingResult {
  std::vector<std::vector<VertexId>> levels;  // levels[j] = peeled in round j
  EdgeList residual;                          // edges of the final graph

  std::vector<VertexId> all_peeled() const;
};

/// Parnas-Ron peeling on a single graph: round j removes vertices of
/// residual degree >= n / 2^{j+1}; stops once the threshold drops to
/// <= max(4 * log2(n), 1). O(log n)-approximation machinery of [59].
PeelingResult parnas_ron_peeling(const EdgeList& edges);

/// Full O(log n)-approximate VC: peeled vertices plus a 2-approximation on
/// the sparse residual.
VertexCover parnas_ron_vertex_cover(const EdgeList& edges, Rng& rng);

/// The hypothetical two-threshold process from the proof of Theorem 2.
/// `optimal_cover` is an indicator for O* (any vertex cover works, but the
/// lemma is about an optimal one). Edges inside O* are dropped first (O*-bar
/// is independent, so the residual is bipartite between O* and O*-bar).
struct HypotheticalPeeling {
  std::vector<std::vector<VertexId>> o_levels;     // O_j   (subsets of O*)
  std::vector<std::vector<VertexId>> obar_levels;  // Obar_j (subsets of O*-bar)

  std::vector<VertexId> all_o() const;
  std::vector<VertexId> all_obar() const;
  std::size_t total_size() const;
};
HypotheticalPeeling hypothetical_peeling(const EdgeList& edges,
                                         const std::vector<bool>& optimal_cover);

}  // namespace rcc
