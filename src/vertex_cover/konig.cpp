#include "vertex_cover/konig.hpp"

#include <vector>

#include "matching/hopcroft_karp.hpp"

namespace rcc {

VertexCover konig_min_vertex_cover(const Graph& g) {
  RCC_CHECK(g.is_bipartite_tagged());
  const VertexId n = g.num_vertices();
  const VertexId nL = g.bipartition()->left_size;
  const Matching m = hopcroft_karp(g);

  // Z := vertices reachable from unmatched L-vertices along alternating
  // paths (unmatched edge L->R, matched edge R->L).
  std::vector<bool> in_z(n, false);
  std::vector<VertexId> stack;
  for (VertexId u = 0; u < nL; ++u) {
    if (!m.is_matched(u)) {
      in_z[u] = true;
      stack.push_back(u);
    }
  }
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (v < nL) {
      for (VertexId w : g.neighbors(v)) {
        if (m.mate(v) != w && !in_z[w]) {  // unmatched edge
          in_z[w] = true;
          stack.push_back(w);
        }
      }
    } else {
      const VertexId w = m.mate(v);
      if (w != kInvalidVertex && !in_z[w]) {  // matched edge back to L
        in_z[w] = true;
        stack.push_back(w);
      }
    }
  }

  VertexCover cover(n);
  for (VertexId u = 0; u < nL; ++u) {
    if (!in_z[u]) cover.insert(u);
  }
  for (VertexId v = nL; v < n; ++v) {
    if (in_z[v]) cover.insert(v);
  }
  RCC_CHECK(cover.size() == m.size());  // Koenig's theorem
  return cover;
}

std::size_t konig_vc_size(const Graph& g) { return hopcroft_karp(g).size(); }

}  // namespace rcc
