// Exact minimum vertex cover for bipartite graphs via Koenig's theorem.
//
// Every hard instance in the paper is bipartite, so this provides the exact
// VC(G) denominators for the measured approximation ratios at full scale
// (the general-graph branch-and-bound in exact.hpp only handles tiny n).
#pragma once

#include "graph/graph.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// Minimum vertex cover of a bipartition-tagged graph: computes a maximum
/// matching, then the alternating-reachability construction
/// VC = (L \ Z) U (R n Z) with Z the set reachable from unmatched left
/// vertices along alternating paths.
VertexCover konig_min_vertex_cover(const Graph& g);

/// |minimum vertex cover| = |maximum matching| for bipartite graphs.
std::size_t konig_vc_size(const Graph& g);

}  // namespace rcc
