#include "vertex_cover/exact.hpp"

#include <algorithm>
#include <vector>

namespace rcc {

namespace {

/// Mutable adjacency for branch and bound; vertices are removed by clearing
/// their lists symmetrically.
struct BnB {
  std::vector<std::vector<VertexId>> adj;
  std::size_t best;

  explicit BnB(const EdgeList& edges)
      : adj(edges.num_vertices()), best(edges.num_vertices()) {
    for (const Edge& e : edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    for (auto& a : adj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
  }

  std::vector<VertexId> remove_vertex(VertexId v) {
    std::vector<VertexId> removed_neighbors = adj[v];
    for (VertexId w : removed_neighbors) {
      auto& aw = adj[w];
      aw.erase(std::find(aw.begin(), aw.end(), v));
    }
    adj[v].clear();
    return removed_neighbors;
  }

  void restore_vertex(VertexId v, std::vector<VertexId> neighbors) {
    for (VertexId w : neighbors) adj[w].push_back(v);
    adj[v] = std::move(neighbors);
  }

  /// Lower bound: greedy edge-disjoint matching size (each matched edge
  /// forces one cover vertex).
  std::size_t lower_bound() const {
    std::vector<bool> used(adj.size(), false);
    std::size_t lb = 0;
    for (VertexId v = 0; v < adj.size(); ++v) {
      if (used[v]) continue;
      for (VertexId w : adj[v]) {
        if (!used[w]) {
          used[v] = used[w] = true;
          ++lb;
          break;
        }
      }
    }
    return lb;
  }

  void solve(std::size_t chosen) {
    if (chosen + lower_bound() >= best) return;

    // Degree-1 rule: if v has exactly one neighbor w, taking w is optimal.
    for (VertexId v = 0; v < adj.size(); ++v) {
      if (adj[v].size() == 1) {
        const VertexId w = adj[v][0];
        auto saved = remove_vertex(w);
        solve(chosen + 1);
        restore_vertex(w, std::move(saved));
        return;
      }
    }

    // Pick the max-degree vertex v; branch on "v in cover" vs "all of N(v)".
    VertexId pivot = kInvalidVertex;
    std::size_t max_deg = 0;
    for (VertexId v = 0; v < adj.size(); ++v) {
      if (adj[v].size() > max_deg) {
        max_deg = adj[v].size();
        pivot = v;
      }
    }
    if (pivot == kInvalidVertex) {  // no edges left
      best = std::min(best, chosen);
      return;
    }

    {
      auto saved = remove_vertex(pivot);
      solve(chosen + 1);
      restore_vertex(pivot, std::move(saved));
    }
    {
      // Exclude pivot: every neighbor must join the cover.
      std::vector<VertexId> neighbors = adj[pivot];
      std::vector<std::pair<VertexId, std::vector<VertexId>>> saved;
      saved.reserve(neighbors.size());
      for (VertexId w : neighbors) {
        saved.emplace_back(w, remove_vertex(w));
      }
      solve(chosen + neighbors.size());
      for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        restore_vertex(it->first, std::move(it->second));
      }
    }
  }
};

}  // namespace

std::size_t exact_min_vertex_cover_size(const EdgeList& edges) {
  if (edges.empty()) return 0;
  EdgeList simple = edges;
  simple.dedup();
  BnB solver(simple);
  solver.solve(0);
  return solver.best;
}

}  // namespace rcc
