// Classical vertex cover approximations: the coordinator in the paper's
// protocols runs the 2-approximation on the union of coresets.
#pragma once

#include "graph/edge_list.hpp"
#include "util/rng.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// 2-approximation: both endpoints of a maximal matching. The maximal
/// matching is computed by a random-order greedy scan driven by `rng`.
VertexCover vc_two_approximation(const EdgeList& edges, Rng& rng);

/// Greedy max-degree heuristic (ln n approximation): repeatedly take the
/// highest-residual-degree vertex. O(m log n) via a degree bucket queue.
VertexCover vc_greedy_max_degree(const EdgeList& edges);

}  // namespace rcc
