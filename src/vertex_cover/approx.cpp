#include "vertex_cover/approx.hpp"

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"
#include "matching/greedy.hpp"

namespace rcc {

VertexCover vc_two_approximation(const EdgeList& edges, Rng& rng) {
  const Matching m = greedy_maximal_matching(edges, GreedyOrder::kRandom, rng);
  VertexCover cover(edges.num_vertices());
  for (const Edge& e : m.to_edge_list()) {
    cover.insert(e.u);
    cover.insert(e.v);
  }
  return cover;
}

VertexCover vc_greedy_max_degree(const EdgeList& edges) {
  const Graph g(edges);
  const VertexId n = g.num_vertices();
  std::vector<std::int64_t> residual(n);
  for (VertexId v = 0; v < n; ++v) residual[v] = g.degree(v);

  // Bucket queue over degrees; lazily skip stale entries.
  const VertexId max_deg = g.max_degree();
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[residual[v]].push_back(v);

  std::vector<bool> removed(n, false);
  VertexCover cover(n);
  std::int64_t cur = max_deg;
  while (cur > 0) {
    auto& bucket = buckets[cur];
    if (bucket.empty()) {
      --cur;
      continue;
    }
    const VertexId v = bucket.back();
    bucket.pop_back();
    if (removed[v] || residual[v] != cur) continue;  // stale entry
    // Take v into the cover; its incident edges disappear.
    cover.insert(v);
    removed[v] = true;
    residual[v] = 0;
    for (VertexId w : g.neighbors(v)) {
      if (removed[w]) continue;
      if (--residual[w] > 0) {
        buckets[residual[w]].push_back(w);
      }
    }
  }
  return cover;
}

}  // namespace rcc
