// Vertex cover value type with O(m) validation.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace rcc {

/// A set of vertices over [0, n) intended to cover every edge of some graph.
class VertexCover {
 public:
  VertexCover() = default;
  explicit VertexCover(VertexId num_vertices)
      : in_cover_(num_vertices, false) {}

  static VertexCover from_vertices(VertexId num_vertices,
                                   const std::vector<VertexId>& vertices);

  /// Re-initializes to the empty cover over [0, num_vertices), keeping the
  /// indicator's capacity (the reuse primitive for per-round cover buffers).
  void reset(VertexId num_vertices) {
    in_cover_.assign(num_vertices, false);
    size_ = 0;
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(in_cover_.size());
  }
  std::size_t size() const { return size_; }

  bool contains(VertexId v) const { return in_cover_[v]; }

  void insert(VertexId v) {
    RCC_DCHECK(v < in_cover_.size());
    if (!in_cover_[v]) {
      in_cover_[v] = true;
      ++size_;
    }
  }

  /// Adds every vertex of `other` (same universe).
  void merge(const VertexCover& other);

  /// True if every edge has at least one endpoint in the cover.
  bool covers(EdgeSpan edges) const;

  std::vector<VertexId> vertices() const;
  const std::vector<bool>& indicator() const { return in_cover_; }

 private:
  std::vector<bool> in_cover_;
  std::size_t size_ = 0;
};

}  // namespace rcc
