// Vertex-weighted minimum vertex cover: baselines and certificates.
//
// The paper extends its VC coreset to the weighted problem by "grouping by
// weight" with an O(log n) factor loss (Section 1.1; details omitted). This
// header provides the centralized machinery that extension needs:
//
//  * local_ratio_weighted_vc — the classic Bar-Yehuda & Even 2-approximation
//    (local-ratio / primal-dual). It also returns the dual certificate
//    (total price paid), which lower-bounds the weighted optimum, so
//    experiments can report true approximation ratios without an exact
//    solver.
//  * greedy_weighted_vc — weight-over-degree greedy (H_n-approximation),
//    a second baseline.
//  * exact_weighted_vc_small — exhaustive optimum for tiny instances
//    (tests only).
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// Vertex weights for a graph over [0, n). All weights must be >= 0.
using VertexWeights = std::vector<double>;

/// Total weight of a cover.
double cover_weight(const VertexCover& cover, const VertexWeights& weights);

struct WeightedVcResult {
  VertexCover cover;
  /// Sum of edge prices charged by the local-ratio run: a lower bound on
  /// the optimal cover weight, and cover_weight <= 2 * lower_bound.
  double lower_bound = 0.0;
};

/// Bar-Yehuda & Even local-ratio 2-approximation: scan edges; for each
/// uncovered edge, pay min(residual(u), residual(v)) against both endpoints;
/// vertices whose residual hits zero enter the cover.
WeightedVcResult local_ratio_weighted_vc(const EdgeList& edges,
                                         const VertexWeights& weights);

/// Greedy: repeatedly take the vertex minimizing weight / residual-degree.
VertexCover greedy_weighted_vc(const EdgeList& edges, const VertexWeights& weights);

/// Exact optimum by exhaustive branch and bound; aborts above ~30 vertices
/// of support.
double exact_weighted_vc_small(const EdgeList& edges, const VertexWeights& weights);

}  // namespace rcc
