// Exact minimum vertex cover for small general graphs via branch and bound.
//
// Used by tests and small-scale experiments as a ratio denominator where the
// instance is not bipartite. Exponential worst case; callers keep n small.
#pragma once

#include "graph/edge_list.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

/// Size of a minimum vertex cover. Intended for graphs with <= ~40 vertices
/// or very sparse larger ones (degree-1 kernelization handles forests fast).
std::size_t exact_min_vertex_cover_size(const EdgeList& edges);

}  // namespace rcc
