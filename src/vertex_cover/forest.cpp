#include "vertex_cover/forest.hpp"

#include <vector>

#include "graph/graph.hpp"

namespace rcc {

VertexCover forest_min_vertex_cover(EdgeSpan edges, ForestTieBreak tie) {
  EdgeList simple = edges.to_edge_list();
  simple.dedup();
  const Graph g(simple);
  const VertexId n = g.num_vertices();
  std::vector<std::int64_t> residual(n);
  std::vector<bool> removed(n, false);
  std::vector<VertexId> leaf_queue;
  for (VertexId v = 0; v < n; ++v) {
    residual[v] = g.degree(v);
    if (residual[v] == 1) leaf_queue.push_back(v);
  }

  VertexCover cover(n);
  std::size_t processed_edges = 0;
  auto remove_into_cover = [&](VertexId v) {
    cover.insert(v);
    removed[v] = true;
    for (VertexId w : g.neighbors(v)) {
      if (removed[w]) continue;
      ++processed_edges;
      if (--residual[w] == 1) leaf_queue.push_back(w);
    }
    residual[v] = 0;
  };

  for (std::size_t head = 0; head < leaf_queue.size(); ++head) {
    const VertexId leaf = leaf_queue[head];
    if (removed[leaf] || residual[leaf] != 1) continue;
    // Find the surviving neighbor.
    VertexId nb = kInvalidVertex;
    for (VertexId w : g.neighbors(leaf)) {
      if (!removed[w]) {
        nb = w;
        break;
      }
    }
    RCC_CHECK(nb != kInvalidVertex);
    if (residual[nb] == 1) {
      // Isolated edge: both minimum covers are valid; apply the tie-break.
      const VertexId pick = (tie == ForestTieBreak::kHighId)
                                ? std::max(leaf, nb)
                                : std::min(leaf, nb);
      remove_into_cover(pick);
      // Mark the other endpoint as done so it is not revisited.
      const VertexId other = pick == leaf ? nb : leaf;
      removed[other] = true;
      residual[other] = 0;
    } else {
      // Taking the internal neighbor dominates taking the leaf.
      remove_into_cover(nb);
    }
  }

  // A forest has every edge consumed by the leaf process; a cycle would
  // leave residual degree-2 vertices behind.
  RCC_CHECK(processed_edges == simple.num_edges());
  RCC_CHECK(cover.covers(simple));
  return cover;
}

}  // namespace rcc
