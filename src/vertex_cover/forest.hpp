// Exact minimum vertex cover for forests, with a controllable tie-break.
//
// Needed by the R1d negative experiment: "send a minimum vertex cover of
// your piece" fails on star instances precisely because a one-edge component
// has two minimum covers and local information cannot distinguish the star
// center from the leaf. The tie-break parameter makes that adversarial
// choice explicit and reproducible.
#pragma once

#include "graph/edge_list.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

enum class ForestTieBreak {
  kLowId,   // prefer the lower-id endpoint where choices are equivalent
  kHighId,  // prefer the higher-id endpoint (picks leaves in star forests)
};

/// Minimum vertex cover of a forest via the classic leaf rule: while an edge
/// remains, take a leaf's unique neighbor into the cover (optimal for
/// forests); isolated edges (both endpoints degree 1) are resolved by the
/// tie-break. Aborts if the input contains a cycle.
VertexCover forest_min_vertex_cover(EdgeSpan edges, ForestTieBreak tie);

}  // namespace rcc
