#include "vertex_cover/peeling.hpp"

#include <cmath>
#include <functional>

#include "vertex_cover/approx.hpp"

namespace rcc {

std::vector<VertexId> PeelingResult::all_peeled() const {
  std::vector<VertexId> out;
  for (const auto& level : levels) out.insert(out.end(), level.begin(), level.end());
  return out;
}

namespace {

/// Shared peeling loop: round j (1-based) removes alive vertices with
/// residual degree >= threshold(j); stops when stop(j) or nothing changes
/// and thresholds have bottomed out.
///
/// The degree buffer and the shrinking edge set are double-buffered across
/// peeling rounds (one warmed pair of lists instead of a fresh allocation
/// per level) — the workspace discipline of util/workspace.hpp applied to
/// this module's own loop.
PeelingResult peel(const EdgeList& edges,
                   const std::function<double(int)>& threshold, int max_rounds) {
  PeelingResult result;
  const VertexId n = edges.num_vertices();
  std::vector<bool> removed(n, false);
  std::vector<VertexId> deg;
  EdgeList current = edges;
  EdgeList next(n);
  for (int j = 1; j <= max_rounds; ++j) {
    const double thr = threshold(j);
    EdgeSpan(current).degrees_into(deg);
    std::vector<VertexId> level;
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && static_cast<double>(deg[v]) >= thr) level.push_back(v);
    }
    for (VertexId v : level) removed[v] = true;
    next.assign_filtered(
        current, [&](const Edge& e) { return !removed[e.u] && !removed[e.v]; });
    std::swap(current, next);
    result.levels.push_back(std::move(level));
  }
  result.residual = std::move(current);
  return result;
}

}  // namespace

PeelingResult parnas_ron_peeling(const EdgeList& edges) {
  const double n = static_cast<double>(edges.num_vertices());
  if (n < 2) {
    PeelingResult r;
    r.residual = edges;
    return r;
  }
  const double floor_threshold = std::max(4.0 * std::log2(std::max(n, 2.0)), 1.0);
  int rounds = 0;
  while (n / std::exp2(rounds + 1) > floor_threshold) ++rounds;
  return peel(
      edges, [&](int j) { return n / std::exp2(j + 1); }, rounds);
}

VertexCover parnas_ron_vertex_cover(const EdgeList& edges, Rng& rng) {
  const PeelingResult peeled = parnas_ron_peeling(edges);
  VertexCover cover =
      VertexCover::from_vertices(edges.num_vertices(), peeled.all_peeled());
  const VertexCover residual_cover = vc_two_approximation(peeled.residual, rng);
  cover.merge(residual_cover);
  return cover;
}

std::vector<VertexId> HypotheticalPeeling::all_o() const {
  std::vector<VertexId> out;
  for (const auto& level : o_levels) out.insert(out.end(), level.begin(), level.end());
  return out;
}

std::vector<VertexId> HypotheticalPeeling::all_obar() const {
  std::vector<VertexId> out;
  for (const auto& level : obar_levels) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

std::size_t HypotheticalPeeling::total_size() const {
  std::size_t total = 0;
  for (const auto& level : o_levels) total += level.size();
  for (const auto& level : obar_levels) total += level.size();
  return total;
}

HypotheticalPeeling hypothetical_peeling(const EdgeList& edges,
                                         const std::vector<bool>& optimal_cover) {
  const VertexId n = edges.num_vertices();
  RCC_CHECK(optimal_cover.size() == n);
  HypotheticalPeeling result;

  // G_1: drop edges with both endpoints inside O* (the rest is bipartite
  // between O* and its complement because O* is a cover).
  EdgeList current = edges.filter([&](const Edge& e) {
    return !(optimal_cover[e.u] && optimal_cover[e.v]);
  });
  for (const Edge& e : current) {
    RCC_CHECK(optimal_cover[e.u] || optimal_cover[e.v]);
  }

  std::vector<bool> removed(n, false);
  const int t = static_cast<int>(
      std::ceil(std::log2(std::max<double>(n, 2))));
  for (int j = 1; j <= t; ++j) {
    const auto deg = current.degrees();
    const double thr_o = static_cast<double>(n) / std::exp2(j);
    const double thr_obar = static_cast<double>(n) / std::exp2(j + 2);
    std::vector<VertexId> o_level;
    std::vector<VertexId> obar_level;
    for (VertexId v = 0; v < n; ++v) {
      if (removed[v]) continue;
      const double d = deg[v];
      if (optimal_cover[v] && d >= thr_o) {
        o_level.push_back(v);
      } else if (!optimal_cover[v] && d >= thr_obar) {
        obar_level.push_back(v);
      }
    }
    for (VertexId v : o_level) removed[v] = true;
    for (VertexId v : obar_level) removed[v] = true;
    current = current.filter(
        [&](const Edge& e) { return !removed[e.u] && !removed[e.v]; });
    result.o_levels.push_back(std::move(o_level));
    result.obar_levels.push_back(std::move(obar_level));
  }
  return result;
}

}  // namespace rcc
