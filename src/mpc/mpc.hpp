// MapReduce / MPC computation model of Karloff-Suri-Vassilvitskii [42] as
// used by Lattanzi et al. [46] and by this paper's Section 1.1 application.
//
// The simulator tracks the two resources the model constrains:
//   * rounds   — number of map/shuffle/reduce super-steps;
//   * memory   — the maximum number of words resident on any single machine
//                in any round (edges cost 2 words, vertex ids 1).
// Machine computation is free in the model, so the simulator executes
// reducers directly; what it *enforces* is the memory cap: any round that
// would overfill a machine aborts the run (RCC_CHECK), exactly the
// constraint that forces multi-round algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

struct MpcConfig {
  std::size_t num_machines = 0;
  std::uint64_t memory_words = 0;  // per-machine cap

  /// The paper's parameterization: k = sqrt(n) machines with O~(n sqrt(n))
  /// memory each (c is the hidden constant; log factor included).
  static MpcConfig paper_default(VertexId n, double c = 4.0);
};

/// Resource ledger of one MPC execution.
class MpcLedger {
 public:
  explicit MpcLedger(MpcConfig config) : config_(config) {}

  const MpcConfig& config() const { return config_; }

  /// Declares a new round; per-machine residency resets.
  void begin_round(const std::string& label);

  /// Records `words` resident on `machine` this round; aborts if the cap is
  /// exceeded (the algorithm does not fit the model).
  void charge(std::size_t machine, std::uint64_t words);

  std::size_t rounds() const { return round_labels_.size(); }
  std::uint64_t max_memory_words() const { return max_memory_words_; }
  const std::vector<std::string>& round_labels() const { return round_labels_; }

  /// Peak single-machine residency of each declared round (parallel to
  /// round_labels()); the multi-round executor reports these against the
  /// per-machine budget.
  const std::vector<std::uint64_t>& round_peak_words() const {
    return round_peak_words_;
  }

 private:
  MpcConfig config_;
  std::vector<std::string> round_labels_;
  std::vector<std::uint64_t> round_peak_words_;
  std::vector<std::uint64_t> current_round_usage_;
  std::uint64_t max_memory_words_ = 0;
};

/// Splits edges across machines to model an arbitrary (adversarial) initial
/// placement: contiguous chunks, the worst case for locality.
std::vector<EdgeList> initial_adversarial_placement(const EdgeList& graph,
                                                    std::size_t num_machines);

/// The re-partition round that precedes coreset computation on adversarially
/// placed input (coreset_mpc.hpp, Round 1): every machine scatters its edges
/// uniformly at random, so the union each machine receives is a random
/// k-partitioning of G. Charges the ledger for both sides of the shuffle:
/// senders hold their chunks of the adversarial placement (sizes derived
/// from `num_edges`), receivers hold `delivered[j]` edges each — the shard
/// sizes of the random partition the next round actually processes, so the
/// accounting describes the realized shuffle, not a simulated one.
void mpc_reshuffle_round(std::size_t num_edges,
                         const std::vector<std::size_t>& delivered,
                         MpcLedger& ledger);

}  // namespace rcc
