#include "mpc/coreset_mpc.hpp"

#include <utility>
#include <vector>

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "matching/greedy.hpp"
#include "matching/max_matching.hpp"

namespace rcc {

namespace {

MpcEngineConfig single_round_config(const MpcConfig& mpc,
                                    bool input_already_random) {
  MpcEngineConfig config;
  config.mpc = mpc;
  config.max_rounds = 1;
  config.input_already_random = input_already_random;
  return config;
}

/// Streaming-shaped round-combiner of the iterated matching rounds: absorb
/// unions the coreset subgraphs as they land (in canonical order the union
/// is byte-identical to compose_matching_coresets' EdgeList::union_of), and
/// finish solves the union, extends the cumulative matching, and filters the
/// survivors. Absorb only appends to the coordinator's union — it touches
/// nothing the machine phase reads, so it is safe to overlap with builds.
///
/// All per-round state (the union list, the round matching) clears with
/// retained capacity, the solve runs on the coordinator scratch, and the
/// survivors fill the executor's double-buffer: steady-state rounds
/// allocate nothing here.
struct MatchingRoundFold {
  Matching& matched;
  VertexId left_size;
  EdgeList round_union;
  Matching round_matching;

  MatchingRoundFold(Matching& matched, VertexId num_vertices,
                    VertexId left_size)
      : matched(matched), left_size(left_size), round_union(num_vertices) {}

  void absorb(EdgeList& summary, std::size_t /*machine*/,
              MpcRoundContext& /*ctx*/) {
    round_union.append(summary);
  }

  EdgeList finish(std::vector<EdgeList>& /*summaries*/, MpcRoundContext& ctx,
                  Rng& /*coordinator_rng*/) {
    // Every round's input has both endpoints unmatched, so the round
    // matching is vertex-disjoint from the cumulative one and the extension
    // keeps all of it (round 0: the whole single-round solution). The solve
    // is compose_matching_coresets' kMaximum branch over the absorbed union.
    maximum_matching_into(round_matching, round_union, left_size,
                          &ctx.coordinator_scratch());
    greedy_extend(matched, round_matching);
    round_union.clear();
    ctx.survivors_out().assign_filtered(
        ctx.active_edges(), [&](const Edge& e) {
          return !matched.is_matched(e.u) && !matched.is_matched(e.v);
        });
    return std::move(ctx.survivors_out());
  }
};

/// Streaming-shaped VC round-combiner: absorb accumulates the peeled (fixed)
/// vertices per machine; finish either commits them and carries the edges
/// they leave uncovered, or — on the last round / a stalled intermediate one
/// — runs the full composition over the retained summaries.
struct VcRoundFold {
  VertexCover& cover;
  VertexId n;
  VertexCover round_fixed;

  VcRoundFold(VertexCover& cover, VertexId n)
      : cover(cover), n(n), round_fixed(n) {}

  void absorb(VcCoresetOutput& summary, std::size_t /*machine*/,
              MpcRoundContext& /*ctx*/) {
    for (VertexId v : summary.fixed_vertices) round_fixed.insert(v);
  }

  EdgeList finish(std::vector<VcCoresetOutput>& summaries,
                  MpcRoundContext& ctx, Rng& coordinator_rng) {
    if (!ctx.last_round() && round_fixed.size() > 0) {
      // Intermediate round: commit only the peeled vertices and carry the
      // edges they do not cover. If no machine peeled anything, another
      // identical round cannot make progress — fall through and finish now.
      cover.merge(round_fixed);
      round_fixed.reset(n);
      ctx.survivors_out().assign_filtered(
          ctx.active_edges(), [&](const Edge& e) {
            return !cover.contains(e.u) && !cover.contains(e.v);
          });
      return std::move(ctx.survivors_out());
    }
    // Final round: the full composition (fixed vertices + 2-approximation
    // of the residual union) covers everything still active.
    cover.merge(compose_vc_coresets(summaries, n, coordinator_rng));
    round_fixed.reset(n);
    ctx.request_stop();
    return std::move(ctx.survivors_out());  // reset by the executor: empty
  }
};

}  // namespace

CoresetMpcMatchingResult coreset_mpc_matching_rounds(
    EdgeSource graph, const MpcEngineConfig& config, VertexId left_size,
    Rng& rng, ThreadPool* pool, ProtocolWorkspace* workspace) {
  const MaximumMatchingCoreset coreset;
  Matching matched(graph.num_vertices());

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };
  MatchingRoundFold fold(matched, graph.num_vertices(), left_size);

  // The coreset build reads nothing but its shard and the machine rng, so
  // every shm round may be served by the one persistent worker pool.
  MpcEngineConfig exec = config;
  exec.round_invariant_build = true;

  CoresetMpcMatchingResult result;
  result.stats = run_mpc_rounds(graph, exec, left_size, rng, pool, build,
                                account, fold, workspace);
  result.matching = std::move(matched);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

CoresetMpcVcResult coreset_mpc_vertex_cover_rounds(
    EdgeSource graph, const MpcEngineConfig& config, Rng& rng,
    ThreadPool* pool, ProtocolWorkspace* workspace) {
  const VertexId n = graph.num_vertices();
  const PeelingVcCoreset coreset;
  VertexCover cover(n);

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const VcCoresetOutput& summary) {
    return MessageSize{summary.residual_edges.num_edges(),
                       summary.fixed_vertices.size()};
  };
  VcRoundFold fold(cover, n);

  // Same story as the matching driver: the peeling build is a pure function
  // of (piece, ctx, rng), so the persistent shm pool is safe.
  MpcEngineConfig exec = config;
  exec.round_invariant_build = true;

  CoresetMpcVcResult result;
  result.stats = run_mpc_rounds(graph, exec, /*left_size=*/0, rng, pool,
                                build, account, fold, workspace);
  result.cover = std::move(cover);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

CoresetMpcMatchingResult coreset_mpc_matching(EdgeSource graph,
                                              const MpcConfig& config,
                                              bool input_already_random,
                                              VertexId left_size, Rng& rng) {
  return coreset_mpc_matching_rounds(
      graph, single_round_config(config, input_already_random), left_size, rng);
}

CoresetMpcVcResult coreset_mpc_vertex_cover(EdgeSource graph,
                                            const MpcConfig& config,
                                            bool input_already_random,
                                            Rng& rng) {
  return coreset_mpc_vertex_cover_rounds(
      graph, single_round_config(config, input_already_random), rng);
}

}  // namespace rcc
