#include "mpc/coreset_mpc.hpp"

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "partition/sharded_partition.hpp"

namespace rcc {

namespace {

/// Shared round-1 logic: from an adversarial placement, every machine
/// scatters its edges uniformly at random; the union of what machine j
/// receives is then a random k-partitioning of G (each edge lands on a
/// uniform machine independently, regardless of where it started).
std::vector<EdgeList> reshuffle_round(const std::vector<EdgeList>& placed,
                                      MpcLedger& ledger, Rng& rng) {
  const std::size_t k = ledger.config().num_machines;
  const VertexId n = placed.front().num_vertices();
  ledger.begin_round("re-partition");
  std::vector<EdgeList> received(k, EdgeList(n));
  for (std::size_t src = 0; src < k; ++src) {
    // Sender must hold its input this round.
    ledger.charge(src, 2 * placed[src].num_edges());
    for (const Edge& e : placed[src]) {
      received[rng.next_below(k)].add(e);
    }
  }
  for (std::size_t dst = 0; dst < k; ++dst) {
    ledger.charge(dst, 2 * received[dst].num_edges());
  }
  return received;
}

/// Machine pieces for the coreset round. When the input is already randomly
/// partitioned, the pieces are zero-copy shards of one sharded-partition
/// arena; after an adversarial reshuffle they view the delivered per-machine
/// messages (which the shuffle round had to materialize anyway).
struct CoresetRoundInput {
  ShardedPartition<Edge> sharded;       // random-input case
  std::vector<EdgeList> received;       // reshuffle case

  static CoresetRoundInput make(const EdgeList& graph, const MpcConfig& config,
                                bool input_already_random, MpcLedger& ledger,
                                Rng& rng) {
    CoresetRoundInput input;
    if (input_already_random) {
      input.sharded = shard_random(graph, config.num_machines, rng);
    } else {
      input.received = reshuffle_round(
          initial_adversarial_placement(graph, config.num_machines), ledger, rng);
    }
    return input;
  }

  EdgeSpan piece(std::size_t i) const {
    if (received.empty()) return shard_span(sharded, i);
    return EdgeSpan(received[i]);
  }
};

}  // namespace

CoresetMpcMatchingResult coreset_mpc_matching(const EdgeList& graph,
                                              const MpcConfig& config,
                                              bool input_already_random,
                                              VertexId left_size, Rng& rng) {
  MpcLedger ledger(config);
  const std::size_t k = config.num_machines;
  const VertexId n = graph.num_vertices();

  const CoresetRoundInput input =
      CoresetRoundInput::make(graph, config, input_already_random, ledger, rng);

  // Coreset round: every machine sends its maximum matching to machine 0.
  ledger.begin_round("coreset-and-collect");
  const MaximumMatchingCoreset coreset;
  std::vector<EdgeList> summaries;
  summaries.reserve(k);
  std::uint64_t collected_words = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const EdgeSpan piece = input.piece(i);
    ledger.charge(i, 2 * piece.num_edges());
    PartitionContext ctx{n, k, i, left_size};
    summaries.push_back(coreset.build(piece, ctx, rng));
    collected_words += 2 * summaries.back().num_edges();
  }
  ledger.charge(0, collected_words);  // machine M stores all k coresets

  CoresetMpcMatchingResult result;
  result.matching = compose_matching_coresets(summaries, ComposeSolver::kMaximum,
                                              left_size, rng);
  result.rounds = ledger.rounds();
  result.max_memory_words = ledger.max_memory_words();
  return result;
}

CoresetMpcVcResult coreset_mpc_vertex_cover(const EdgeList& graph,
                                            const MpcConfig& config,
                                            bool input_already_random,
                                            Rng& rng) {
  MpcLedger ledger(config);
  const std::size_t k = config.num_machines;
  const VertexId n = graph.num_vertices();

  const CoresetRoundInput input =
      CoresetRoundInput::make(graph, config, input_already_random, ledger, rng);

  ledger.begin_round("coreset-and-collect");
  const PeelingVcCoreset coreset;
  std::vector<VcCoresetOutput> summaries;
  summaries.reserve(k);
  std::uint64_t collected_words = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const EdgeSpan piece = input.piece(i);
    ledger.charge(i, 2 * piece.num_edges());
    PartitionContext ctx{n, k, i, 0};
    summaries.push_back(coreset.build(piece, ctx, rng));
    collected_words += 2 * summaries.back().residual_edges.num_edges() +
                       summaries.back().fixed_vertices.size();
  }
  ledger.charge(0, collected_words);

  CoresetMpcVcResult result;
  result.cover = compose_vc_coresets(summaries, n, rng);
  result.rounds = ledger.rounds();
  result.max_memory_words = ledger.max_memory_words();
  return result;
}

}  // namespace rcc
