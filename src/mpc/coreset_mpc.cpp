#include "mpc/coreset_mpc.hpp"

#include <utility>

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "matching/greedy.hpp"

namespace rcc {

namespace {

MpcEngineConfig single_round_config(const MpcConfig& mpc,
                                    bool input_already_random) {
  MpcEngineConfig config;
  config.mpc = mpc;
  config.max_rounds = 1;
  config.input_already_random = input_already_random;
  return config;
}

}  // namespace

CoresetMpcMatchingResult coreset_mpc_matching_rounds(
    const EdgeList& graph, const MpcEngineConfig& config, VertexId left_size,
    Rng& rng, ThreadPool* pool) {
  const MaximumMatchingCoreset coreset;
  Matching matched(graph.num_vertices());

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };
  const auto fold = [&](std::vector<EdgeList>& summaries, MpcRoundContext& ctx,
                        Rng& coordinator_rng) {
    // Every round's input has both endpoints unmatched, so the round
    // matching is vertex-disjoint from the cumulative one and the extension
    // keeps all of it (round 0: the whole single-round solution).
    const Matching round_matching = compose_matching_coresets(
        summaries, ComposeSolver::kMaximum, left_size, coordinator_rng);
    greedy_extend(matched, round_matching.to_edge_list());
    return ctx.active_edges().filter([&](const Edge& e) {
      return !matched.is_matched(e.u) && !matched.is_matched(e.v);
    });
  };

  CoresetMpcMatchingResult result;
  result.stats =
      run_mpc_rounds(graph, config, left_size, rng, pool, build, account, fold);
  result.matching = std::move(matched);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

CoresetMpcVcResult coreset_mpc_vertex_cover_rounds(const EdgeList& graph,
                                                   const MpcEngineConfig& config,
                                                   Rng& rng, ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  const PeelingVcCoreset coreset;
  VertexCover cover(n);

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const VcCoresetOutput& summary) {
    return MessageSize{summary.residual_edges.num_edges(),
                       summary.fixed_vertices.size()};
  };
  const auto fold = [&](std::vector<VcCoresetOutput>& summaries,
                        MpcRoundContext& ctx, Rng& coordinator_rng) {
    if (!ctx.last_round()) {
      // Intermediate round: commit only the peeled (fixed) vertices and
      // carry the edges they do not cover. If no machine peeled anything,
      // another identical round cannot make progress — finish now instead.
      VertexCover fixed(n);
      for (const VcCoresetOutput& s : summaries) {
        for (VertexId v : s.fixed_vertices) fixed.insert(v);
      }
      if (fixed.size() > 0) {
        cover.merge(fixed);
        return ctx.active_edges().filter([&](const Edge& e) {
          return !cover.contains(e.u) && !cover.contains(e.v);
        });
      }
    }
    // Final round: the full composition (fixed vertices + 2-approximation
    // of the residual union) covers everything still active.
    cover.merge(compose_vc_coresets(summaries, n, coordinator_rng));
    ctx.request_stop();
    return EdgeList(n);
  };

  CoresetMpcVcResult result;
  result.stats = run_mpc_rounds(graph, config, /*left_size=*/0, rng, pool,
                                build, account, fold);
  result.cover = std::move(cover);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

CoresetMpcMatchingResult coreset_mpc_matching(const EdgeList& graph,
                                              const MpcConfig& config,
                                              bool input_already_random,
                                              VertexId left_size, Rng& rng) {
  return coreset_mpc_matching_rounds(
      graph, single_round_config(config, input_already_random), left_size, rng);
}

CoresetMpcVcResult coreset_mpc_vertex_cover(const EdgeList& graph,
                                            const MpcConfig& config,
                                            bool input_already_random,
                                            Rng& rng) {
  return coreset_mpc_vertex_cover_rounds(
      graph, single_round_config(config, input_already_random), rng);
}

}  // namespace rcc
