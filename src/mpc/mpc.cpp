#include "mpc/mpc.hpp"

#include <cmath>

#include "partition/partition.hpp"

namespace rcc {

MpcConfig MpcConfig::paper_default(VertexId n, double c) {
  MpcConfig cfg;
  cfg.num_machines = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(n)))));
  cfg.memory_words = static_cast<std::uint64_t>(
      c * static_cast<double>(n) * std::sqrt(static_cast<double>(n)) *
      std::log2(std::max<double>(n, 2.0)));
  return cfg;
}

void MpcLedger::begin_round(const std::string& label) {
  round_labels_.push_back(label);
  current_round_usage_.assign(config_.num_machines, 0);
}

void MpcLedger::charge(std::size_t machine, std::uint64_t words) {
  RCC_CHECK(machine < config_.num_machines);
  RCC_CHECK(!round_labels_.empty());
  current_round_usage_[machine] += words;
  RCC_CHECK(current_round_usage_[machine] <= config_.memory_words);
  max_memory_words_ = std::max(max_memory_words_, current_round_usage_[machine]);
}

std::vector<EdgeList> initial_adversarial_placement(const EdgeList& graph,
                                                    std::size_t num_machines) {
  return sorted_chunk_partition(graph, num_machines);
}

}  // namespace rcc
