#include "mpc/mpc.hpp"

#include <cmath>

#include "partition/partition.hpp"

namespace rcc {

MpcConfig MpcConfig::paper_default(VertexId n, double c) {
  MpcConfig cfg;
  cfg.num_machines = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(n)))));
  cfg.memory_words = static_cast<std::uint64_t>(
      c * static_cast<double>(n) * std::sqrt(static_cast<double>(n)) *
      std::log2(std::max<double>(n, 2.0)));
  return cfg;
}

void MpcLedger::begin_round(const std::string& label) {
  round_labels_.push_back(label);
  round_peak_words_.push_back(0);
  current_round_usage_.assign(config_.num_machines, 0);
}

void MpcLedger::charge(std::size_t machine, std::uint64_t words) {
  RCC_CHECK(machine < config_.num_machines);
  RCC_CHECK(!round_labels_.empty());
  current_round_usage_[machine] += words;
  RCC_CHECK(current_round_usage_[machine] <= config_.memory_words);
  round_peak_words_.back() =
      std::max(round_peak_words_.back(), current_round_usage_[machine]);
  max_memory_words_ = std::max(max_memory_words_, current_round_usage_[machine]);
}

std::vector<EdgeList> initial_adversarial_placement(const EdgeList& graph,
                                                    std::size_t num_machines) {
  return sorted_chunk_partition(graph, num_machines);
}

void mpc_reshuffle_round(std::size_t num_edges,
                         const std::vector<std::size_t>& delivered,
                         MpcLedger& ledger) {
  const std::size_t k = ledger.config().num_machines;
  RCC_CHECK(delivered.size() == k);
  ledger.begin_round("re-partition");
  // Sender side: each machine holds its chunk of the adversarial placement.
  // Only the chunk sizes matter for the charge, and sorted_chunk_partition
  // sends edge i to machine floor(i*k/m), so machine j's chunk is
  // [ceil(j*m/k), ceil((j+1)*m/k)) — no need to materialize the placement.
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t begin = (j * num_edges + k - 1) / k;
    const std::size_t end = ((j + 1) * num_edges + k - 1) / k;
    ledger.charge(j, 2 * (end - begin));
  }
  // Receiver side: what the shuffle actually delivered to each machine.
  for (std::size_t dst = 0; dst < k; ++dst) {
    ledger.charge(dst, 2 * delivered[dst]);
  }
}

}  // namespace rcc
