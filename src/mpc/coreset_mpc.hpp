// The paper's MapReduce algorithm (Section 1.1, "MapReduce Framework"):
//
//   Round 1: every machine re-partitions its locally held edges uniformly at
//            random across all k machines => the shuffle delivers a random
//            k-partitioning of G.
//   Round 2: every machine computes its randomized composable coreset and
//            sends it to the designated machine M, which solves the union.
//
// If the input is random-partitioned to begin with, Round 1 is skipped and
// the whole computation takes a single round.
//
// The *_rounds entry points iterate Round 2 on the multi-round executor
// (mpc_engine.hpp): each further round re-partitions the edges the current
// solution leaves open and composes coresets of the residual, which can only
// grow the matching (the round-iteration structure of "Coresets Meet EDCS",
// arXiv:1711.03076). The legacy single-round signatures are thin wrappers
// with max_rounds = 1. The greedy fold here never passes maximality; the
// (1+eps) sibling entry point, run_matching_rounds_augmenting, lives in
// mpc/augmenting_rounds.hpp.
#pragma once

#include "matching/matching.hpp"
#include "mpc/mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

struct CoresetMpcMatchingResult {
  Matching matching;
  std::size_t rounds = 0;
  std::uint64_t max_memory_words = 0;
  MpcExecutionStats stats;
};

struct CoresetMpcVcResult {
  VertexCover cover;
  std::size_t rounds = 0;
  std::uint64_t max_memory_words = 0;
  MpcExecutionStats stats;
};

/// Iterated coreset rounds for matching: round r composes maximum-matching
/// coresets of the edges both of whose endpoints the cumulative matching
/// leaves unmatched, and extends the matching with the result. Round 0 is
/// exactly the single-round protocol (seed-for-seed); every later round can
/// only add edges, so the approximation is monotone in config.max_rounds.
/// `left_size` > 0 enables the exact bipartite solver on machine M.
/// `workspace` (optional) makes the run's round-persistent buffers outlive
/// the call — repeated runs on one workspace stop allocating entirely.
CoresetMpcMatchingResult coreset_mpc_matching_rounds(
    EdgeSource graph, const MpcEngineConfig& config, VertexId left_size,
    Rng& rng, ThreadPool* pool = nullptr,
    ProtocolWorkspace* workspace = nullptr);

/// Iterated coreset rounds for vertex cover: intermediate rounds commit only
/// the machines' fixed (peeled) vertices and re-partition the edges they do
/// not cover; the final round closes the cover with the full composition
/// (fixed vertices + 2-approximation of the residual union), so the result
/// is always feasible. With max_rounds = 1 this is the single-round
/// protocol.
CoresetMpcVcResult coreset_mpc_vertex_cover_rounds(
    EdgeSource graph, const MpcEngineConfig& config, Rng& rng,
    ThreadPool* pool = nullptr, ProtocolWorkspace* workspace = nullptr);

/// O(1)-approximate maximum matching in <= 2 MPC rounds. `left_size` > 0
/// enables the exact bipartite solver on machine M.
CoresetMpcMatchingResult coreset_mpc_matching(EdgeSource graph,
                                              const MpcConfig& config,
                                              bool input_already_random,
                                              VertexId left_size, Rng& rng);

/// O(log n)-approximate vertex cover in <= 2 MPC rounds.
CoresetMpcVcResult coreset_mpc_vertex_cover(EdgeSource graph,
                                            const MpcConfig& config,
                                            bool input_already_random, Rng& rng);

}  // namespace rcc
