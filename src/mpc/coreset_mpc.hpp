// The paper's MapReduce algorithm (Section 1.1, "MapReduce Framework"):
//
//   Round 1: every machine re-partitions its locally held edges uniformly at
//            random across all k machines => the shuffle delivers a random
//            k-partitioning of G.
//   Round 2: every machine computes its randomized composable coreset and
//            sends it to the designated machine M, which solves the union.
//
// If the input is random-partitioned to begin with, Round 1 is skipped and
// the whole computation takes a single round.
#pragma once

#include "matching/matching.hpp"
#include "mpc/mpc.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

struct CoresetMpcMatchingResult {
  Matching matching;
  std::size_t rounds = 0;
  std::uint64_t max_memory_words = 0;
};

struct CoresetMpcVcResult {
  VertexCover cover;
  std::size_t rounds = 0;
  std::uint64_t max_memory_words = 0;
};

/// O(1)-approximate maximum matching in <= 2 MPC rounds. `left_size` > 0
/// enables the exact bipartite solver on machine M.
CoresetMpcMatchingResult coreset_mpc_matching(const EdgeList& graph,
                                              const MpcConfig& config,
                                              bool input_already_random,
                                              VertexId left_size, Rng& rng);

/// O(log n)-approximate vertex cover in <= 2 MPC rounds.
CoresetMpcVcResult coreset_mpc_vertex_cover(const EdgeList& graph,
                                            const MpcConfig& config,
                                            bool input_already_random, Rng& rng);

}  // namespace rcc
