// EDCS round-combiner: machines ship edge-degree-constrained subgraphs
// instead of maximum matchings.
//
// The greedy coreset fold (coreset_mpc.cpp) commits each round's maximum
// matching of the shipped UNION of machine matchings — but a machine
// matching is an adversarially thin summary: on trap families (P4 forests
// whose middle edges dominate the pieces, crown forests) the union can lock
// in a constant-factor loss that later rounds never repair, because the
// edges that would fix it were discarded on the machines. "Coresets Meet
// EDCS" (arXiv:1711.03076) replaces the per-machine summary with an EDCS
// (matching/edcs.hpp): a subgraph dense enough (invariant P2) that the union
// of the machines' EDCSs preserves an almost-3/2-approximate matching and an
// almost-3-approximate vertex cover of the round's graph, at beta * n / 2
// shipped words per machine (invariant P1; the communication trade-off is
// the Kapralov-Maystre-Tardos curve, arXiv:2011.06481 — larger beta buys
// quality with communication).
//
// Round shape on the multi-round executor (mpc_engine.hpp):
//
//   machines — machine i builds a (beta, beta - lambda)-EDCS of its shard
//              (IncrementalCsr + MachineScratch: warm rounds allocate
//              nothing) and ships it to machine M,
//   fold     — M unions the subgraphs as they land (streaming-shape absorb),
//              runs the exact matching solver on the union, extends the
//              cumulative matching (round inputs have both endpoints
//              unmatched, so the extension keeps the whole round matching),
//              and recirculates the still-both-unmatched edges,
//   stop     — when no edge survives, the cumulative matching is maximal in
//              G (edges only ever leave the survivor set by losing an
//              endpoint to the matching, and the matching never shrinks), so
//              the fold certifies the deterministic worst-case ratio 2 for
//              the matching AND for the cover made of its endpoints. On a
//              round-capped run, finish_maximal closes the gap with one
//              coordinator sweep over the survivors (charged 2 words per
//              edge on M) so the certificate still holds.
//
// The certificate is the honest integer-arithmetic bound; the almost-3/2
// EDCS quality is *measured*, not certified — the exact-oracle grid in
// tests/approximation_ratio_test.cpp pins it strictly above the greedy
// fold on the trap families.
#pragma once

#include <cstdint>

#include "matching/edcs.hpp"
#include "matching/matching.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

class Options;

/// Knobs of the EDCS combiner on top of MpcEngineConfig.
struct EdcsRoundsConfig {
  /// Degree parameters of every machine's summary: larger beta ships more
  /// edges per machine and lands closer to 3/2; lambda trades fixpoint work
  /// against density (P2 threshold beta - lambda).
  EdcsParams edcs;

  /// When true (default), a final round that would still leave survivors
  /// closes the matching to maximality with one coordinator sweep over the
  /// survivors, so the run always ends certified (ratio 2). Turning it off
  /// exposes the raw round-capped combiner to experiments.
  bool finish_maximal = true;
};

struct EdcsMpcResult {
  Matching matching;
  /// The endpoints of `matching`: a feasible vertex cover of G whenever the
  /// run certified (the matching is then maximal in G), with the same
  /// worst-case factor 2 against the optimum cover.
  VertexCover cover;
  std::size_t rounds = 0;  // ledger super-steps
  std::uint64_t max_memory_words = 0;
  /// True iff the final matching is maximal in G (always, unless
  /// finish_maximal was disabled AND the round cap cut the run short).
  bool certified = false;
  /// 2.0 when `certified`, else 0.0.
  double certified_ratio = 0.0;
  MpcExecutionStats stats;
};

/// Runs up to config.max_rounds EDCS rounds starting from the empty
/// matching. Every round with surviving edges grows the matching by at
/// least one edge (an EDCS of a non-empty piece is non-empty by P2), so the
/// run terminates within n/2 executor iterations regardless of the round
/// cap. `left_size` > 0 enables the exact bipartite solver on machine M.
EdcsMpcResult run_matching_rounds_edcs(EdgeSource graph,
                                       const MpcEngineConfig& config,
                                       const EdcsRoundsConfig& edcs,
                                       VertexId left_size, Rng& rng,
                                       ThreadPool* pool = nullptr,
                                       ProtocolWorkspace* workspace = nullptr);

/// Reads the EDCS knobs registered by add_mpc_engine_flags
/// (--mpc-edcs-beta, --mpc-edcs-lambda, --mpc-edcs-finish-maximal), with
/// the same exit(2) treatment for out-of-range values as the other flags.
EdcsRoundsConfig edcs_config_from_options(const Options& options);

}  // namespace rcc
