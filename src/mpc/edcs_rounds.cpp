#include "mpc/edcs_rounds.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "matching/greedy.hpp"
#include "matching/max_matching.hpp"
#include "util/options.hpp"
#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Streaming-shaped round-combiner: absorb unions the machines' EDCSs as
/// they land (append order does not matter — the exact solve below sees the
/// same edge set either way, and maximum_matching_into is a pure function of
/// it), finish solves the union exactly, extends the cumulative matching,
/// and recirculates the still-both-unmatched edges. Absorb only appends to
/// the coordinator's union, touching nothing the machine phase reads, so it
/// is safe to overlap with EDCS builds.
///
/// All per-round state clears with retained capacity and the survivors fill
/// the executor's double-buffer: steady-state rounds allocate nothing here.
struct EdcsRoundFold {
  Matching& matched;
  const EdcsRoundsConfig& cfg;
  bool& certified;
  VertexId left_size;
  EdgeList round_union;
  Matching round_matching;

  EdcsRoundFold(Matching& matched, const EdcsRoundsConfig& cfg,
                bool& certified, VertexId num_vertices, VertexId left_size)
      : matched(matched),
        cfg(cfg),
        certified(certified),
        left_size(left_size),
        round_union(num_vertices) {}

  void absorb(EdgeList& summary, std::size_t /*machine*/,
              MpcRoundContext& /*ctx*/) {
    round_union.append(summary);
  }

  EdgeList finish(std::vector<EdgeList>& /*summaries*/, MpcRoundContext& ctx,
                  Rng& /*coordinator_rng*/) {
    // Every round's input has both endpoints unmatched, so the union's
    // maximum matching is vertex-disjoint from the cumulative one and the
    // extension keeps all of it. This is where the EDCS quality cashes out:
    // the union preserves an almost-3/2-approximate matching of the round's
    // graph, where the greedy fold's union of machine matchings does not.
    maximum_matching_into(round_matching, round_union, left_size,
                          &ctx.coordinator_scratch());
    const std::size_t before = matched.size();
    greedy_extend(matched, round_matching);
    round_union.clear();

    EdgeList& survivors = ctx.survivors_out();
    survivors.assign_filtered(ctx.active_edges(), [&](const Edge& e) {
      return !matched.is_matched(e.u) && !matched.is_matched(e.v);
    });
    if (!survivors.empty() && ctx.last_round() && cfg.finish_maximal) {
      // Round cap reached with open edges: one coordinator sweep closes the
      // matching to maximality so the run still ends certified. The sweep
      // centralizes the survivors on machine M — charge their residency
      // first (2 words per edge), like the augmenting combiner's sweep.
      ctx.charge(0, 2 * static_cast<std::uint64_t>(survivors.num_edges()));
      for (const Edge& e : survivors) {
        if (!matched.is_matched(e.u) && !matched.is_matched(e.v)) {
          matched.match(e.u, e.v);
        }
      }
      survivors.clear();
    }
    ctx.note_progress(matched.size() - before);

    if (survivors.empty()) {
      // Edges only ever leave the survivor set by losing an endpoint to the
      // matching, and the matching never shrinks — so an empty survivor set
      // means every edge of G has a matched endpoint: the matching is
      // maximal in G (worst-case ratio 2) and its endpoint set is a
      // feasible vertex cover (ratio 2 against the optimum cover, which
      // must take one endpoint of every matched edge).
      certified = true;
      ctx.certify_ratio(2.0);
      ctx.request_stop();
    }
    return std::move(survivors);
  }
};

}  // namespace

EdcsMpcResult run_matching_rounds_edcs(EdgeSource graph,
                                       const MpcEngineConfig& config,
                                       const EdcsRoundsConfig& edcs,
                                       VertexId left_size, Rng& rng,
                                       ThreadPool* pool,
                                       ProtocolWorkspace* workspace) {
  edcs.edcs.validate();
  const VertexId n = graph.num_vertices();

  Matching matched(n);
  bool certified = false;

  MpcEngineConfig exec = config;
  exec.round_label = "edcs-round";
  // build_edcs reads only the shard and the const beta/lambda parameters —
  // round-invariant, so shm runs ride the persistent worker pool.
  exec.round_invariant_build = true;

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx, Rng&) {
    // Pure function of the shard's edge multiset (matching/edcs.hpp), so
    // thread schedule and arrival order cannot leak into the summary.
    return build_edcs(piece, edcs.edcs, ctx.scratch);
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };
  EdcsRoundFold fold(matched, edcs, certified, n, left_size);

  EdcsMpcResult result;
  result.stats = run_mpc_rounds(graph, exec, left_size, rng, pool, build,
                                account, fold, workspace);
  result.cover.reset(n);
  const VertexId* mate = matched.mate_data();
  for (VertexId v = 0; v < n; ++v) {
    if (mate[v] != kInvalidVertex) result.cover.insert(v);
  }
  result.matching = std::move(matched);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  result.certified = certified;
  result.certified_ratio = certified ? 2.0 : 0.0;
  return result;
}

EdcsRoundsConfig edcs_config_from_options(const Options& options) {
  const std::int64_t beta = options.get_int("mpc-edcs-beta");
  const std::int64_t lambda = options.get_int("mpc-edcs-lambda");
  if (beta < 2) {
    std::fprintf(stderr, "flag --mpc-edcs-beta: %lld must be >= 2\n",
                 static_cast<long long>(beta));
    std::exit(2);
  }
  if (lambda < 1 || lambda >= beta) {
    std::fprintf(stderr,
                 "flag --mpc-edcs-lambda: %lld must satisfy "
                 "1 <= lambda < beta (= %lld)\n",
                 static_cast<long long>(lambda),
                 static_cast<long long>(beta));
    std::exit(2);
  }
  EdcsRoundsConfig config;
  config.edcs.beta = static_cast<std::size_t>(beta);
  config.edcs.lambda = static_cast<std::size_t>(lambda);
  config.finish_maximal = options.get_bool("mpc-edcs-finish-maximal");
  return config;
}

}  // namespace rcc
