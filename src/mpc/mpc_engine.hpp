// Multi-round MPC executor: repeated ProtocolEngine rounds over a shrinking
// edge set.
//
// The paper's MapReduce application (Section 1.1) runs the coreset protocol
// as ONE round of an MPC computation; iterating that round on the edges the
// current solution leaves uncovered drives the approximation down (the
// round-iteration structure of Assadi et al., "Coresets Meet EDCS",
// arXiv:1711.03076). This executor is the generic driver for that loop:
//
//   per round:
//     partition — the surviving edges are scattered by the sharded
//                 single-arena partitioner (zero-copy shards),
//     machines  — one summary task per machine on the thread pool via
//                 run_protocol_on_pieces (forked RNG streams),
//     combine   — a pluggable ROUND-COMBINER folds the k summaries into the
//                 caller's cumulative solution and returns the edges that
//                 survive into the next round.
//
// Instantiating the executor is the engine's three-lambda pattern with the
// combine phase upgraded to a fold:
//
//   build(piece, ctx, rng)      -> Summary     (unchanged from the engine)
//   account(summary)            -> MessageSize (unchanged from the engine)
//   fold(summaries, round, rng) -> EdgeList    survivors for the next round;
//       `round` is an MpcRoundContext: the round's input edges, the round
//       index, and ledger access for protocols that model extra super-steps
//       (e.g. filtering's broadcast round).
//
// Resources are accounted like the single-round simulator: every super-step
// is declared on an MpcLedger, every machine's residency is charged against
// the configured per-machine budget (the paper's s = O~(n sqrt(n)) regime at
// k = sqrt(n) machines), and the run aborts if any machine overfills. The
// returned MpcExecutionStats carries per-round communication words, phase
// timings, and per-machine peak memory.
//
// coreset_mpc.cpp and filtering_mpc.cpp are the two in-tree instantiations;
// the legacy single-round entry points are thin wrappers over them.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "distributed/protocol_engine.hpp"
#include "graph/edge_list.hpp"
#include "graph/edge_source.hpp"
#include "mpc/mpc.hpp"
#include "partition/sharded_partition.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rcc {

class Options;

/// Knobs of a multi-round execution.
struct MpcEngineConfig {
  MpcConfig mpc;  // cluster shape: k machines x per-machine word budget

  /// Executor iterations allowed (>= 1); each runs one ProtocolEngine round
  /// on the surviving edges.
  std::size_t max_rounds = 1;

  /// When false, an extra "re-partition" super-step is charged up front:
  /// adversarially placed input must be shuffled before the first coreset
  /// round (coreset_mpc.hpp, Round 1).
  bool input_already_random = true;

  /// Stop as soon as an iteration leaves the surviving edge set unchanged
  /// AND the fold reported no progress units (combiners whose survivors
  /// never shrink — the augmenting-path fold recirculates every edge —
  /// report real progress via MpcRoundContext::note_progress and are not
  /// stopped by this check). Runs always stop when no edges survive or the
  /// fold requests it.
  bool early_stop = true;

  /// Stream summaries into the round-combiner as machines finish instead of
  /// folding after the collect barrier. Requires an absorb/finish fold (see
  /// run_mpc_rounds); ignored for plain callable folds. Canonical order
  /// preserves seed-for-seed equality with the barrier fold.
  bool streaming_fold = false;

  /// Absorb order + completion-queue capacity when streaming_fold is set,
  /// plus the machine-phase transport: EngineTransport::kSocket forks one
  /// worker process per machine each round and streams framed summaries
  /// over loopback (requires a streaming-capable fold; takes the streaming
  /// combine path even when streaming_fold is false).
  StreamingOptions streaming;

  /// Charge every machine 2*|shard| words for holding its piece of the
  /// round's input (the coreset algorithms' accounting). Protocols that
  /// model map-side residency themselves (filtering) turn this off.
  bool charge_input_residency = true;

  /// The build callable is a pure function of (piece, ctx, machine rng): it
  /// reads no captured state the round-combiner mutates between rounds.
  /// Round-invariant builds let the shm transport serve every round from ONE
  /// persistent worker pool (fork k processes at round 0 — the first round's
  /// shards ride the fork copy-on-write, later rounds ship pieces down the
  /// rings — worker_forks == k however many rounds run). Builds
  /// that read coordinator-evolving state (filtering's rate schedule,
  /// augmenting's current matching) must leave this false: each shm round
  /// then re-forks ephemeral workers whose copy-on-write snapshot sees the
  /// fresh state — the socket transport's correctness story, minus the
  /// socket. Drivers set this, not callers: it is a property of the build
  /// lambda, not of the run.
  bool round_invariant_build = false;

  /// Ledger label prefix for executor-declared super-steps.
  std::string round_label = "coreset-round";
};

/// What the round-combiner sees of one round: the input edge set it folds,
/// its position in the schedule, ledger access for extra super-steps, and
/// the run's round-persistent workspace (coordinator scratch + the reusable
/// survivor buffer).
class MpcRoundContext {
 public:
  MpcRoundContext(MpcLedger& ledger, EdgeSpan active, std::size_t round_index,
                  std::size_t max_rounds, ProtocolWorkspace* workspace = nullptr,
                  EdgeList* survivors_out = nullptr)
      : ledger_(ledger),
        active_(active),
        round_index_(round_index),
        max_rounds_(max_rounds),
        workspace_(workspace),
        survivors_out_(survivors_out) {}

  /// This round's input edges: a view of the partition arena (shards
  /// concatenated), valid only during the fold call.
  EdgeSpan active_edges() const { return active_; }

  std::size_t round_index() const { return round_index_; }  // 0-based
  bool last_round() const { return round_index_ + 1 == max_rounds_; }
  std::size_t num_machines() const { return ledger_.config().num_machines; }
  std::uint64_t memory_budget_words() const {
    return ledger_.config().memory_words;
  }

  /// Ledger passthroughs: a combiner that needs more than the collect step
  /// (e.g. filtering's broadcast-and-filter) declares its own super-steps
  /// and charges the residency they create.
  void begin_round(const std::string& label) { ledger_.begin_round(label); }
  void charge(std::size_t machine, std::uint64_t words) {
    ledger_.charge(machine, words);
  }
  void charge_all(std::uint64_t words) {
    for (std::size_t i = 0; i < num_machines(); ++i) ledger_.charge(i, words);
  }

  /// Ends the execution after this round even if survivors remain.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Progress accounting for folds whose survivors do not shrink (the
  /// augmenting-path combiner re-circulates every edge): the units land in
  /// this round's MpcRoundReport::augmentations, so per-round progress stays
  /// visible even though the surviving edge counts are flat.
  void note_progress(std::size_t units) { progress_units_ += units; }
  std::size_t progress_units() const { return progress_units_; }

  /// A fold that stops on a quality certificate (e.g. "no augmenting path of
  /// length <= 2k+1 anywhere" => a (1 + 1/(k+1))-approximation) records the
  /// certified worst-case ratio here; the executor copies it into
  /// MpcExecutionStats::certified_ratio.
  void certify_ratio(double ratio_bound) { certified_ratio_ = ratio_bound; }
  double certified_ratio() const { return certified_ratio_; }

  /// The run's round-persistent workspace (null only when a context is
  /// built stand-alone, e.g. in tests — the executor always provides one).
  ProtocolWorkspace* workspace() { return workspace_; }

  /// Coordinator-side scratch for the fold phase. Never shared with the
  /// machine scratches, so absorb/finish may use it while machines run.
  MachineScratch& coordinator_scratch() {
    RCC_CHECK(workspace_ != nullptr);
    return workspace_->coordinator();
  }

  /// The executor-owned survivor buffer for this round: cleared, capacity
  /// retained from two rounds ago (the buffers double-buffer through the
  /// executor). A fold fills it (assign_filtered / assign / add) and
  /// returns std::move(survivors_out()) from finish, making steady-state
  /// rounds allocation-free; folds may instead return any EdgeList they
  /// own — the executor accepts both shapes.
  EdgeList& survivors_out() {
    RCC_CHECK(survivors_out_ != nullptr);
    return *survivors_out_;
  }

 private:
  MpcLedger& ledger_;
  EdgeSpan active_;
  std::size_t round_index_;
  std::size_t max_rounds_;
  ProtocolWorkspace* workspace_ = nullptr;
  EdgeList* survivors_out_ = nullptr;
  bool stop_requested_ = false;
  std::size_t progress_units_ = 0;
  double certified_ratio_ = 0.0;
};

/// One executor iteration (one ProtocolEngine round; may span several ledger
/// super-steps when the fold declares more). Super-steps declared before the
/// first iteration — the re-partition round of adversarially placed input —
/// belong to no iteration: they appear only in MpcExecutionStats'
/// round_labels / round_peak_words ledger view, so the per-round peaks need
/// not reach max_memory_words on adversarial runs.
struct MpcRoundReport {
  std::size_t round_index = 0;
  std::size_t active_edges = 0;     // edges entering the iteration
  std::size_t surviving_edges = 0;  // edges carried into the next one
  std::uint64_t comm_words = 0;     // summary words collected by machine M
  std::uint64_t peak_machine_words = 0;  // peak residency across its steps
  /// Combiner-reported progress units (MpcRoundContext::note_progress); the
  /// augmenting combiner reports augmenting paths applied this round. Zero
  /// for folds that do not report.
  std::size_t augmentations = 0;
  /// Workspace buffer growths during this round (delta of the run
  /// workspace's WorkspaceStats). Rounds after the first are expected to
  /// report 0 — the allocation-discipline regression tested in
  /// tests/workspace_test.cpp.
  std::uint64_t workspace_allocations = 0;
  ProtocolTiming timing;
};

/// Cumulative resource story of one multi-round run.
struct MpcExecutionStats {
  std::size_t mpc_rounds = 0;     // ledger super-steps, incl. re-partition
  std::size_t engine_rounds = 0;  // executor iterations actually run
  std::uint64_t max_memory_words = 0;
  std::uint64_t total_comm_words = 0;
  /// Sum of the per-round combiner progress units (augmenting combiner:
  /// total augmenting paths applied across the run).
  std::size_t total_augmentations = 0;
  /// Worst-case approximation ratio the final round certified via
  /// MpcRoundContext::certify_ratio (augmenting combiner: 1 + 1/(k+1) when
  /// the no-augmenting-path early stop fired). 0.0 when no round certified.
  double certified_ratio = 0.0;
  /// Transport accounting of cross-process runs (zeros for inproc): worker
  /// processes forked over the whole run, uplink summary-frame bytes, and
  /// downlink piece-delivery bytes. The fork-amortization claim is read
  /// here: a persistent shm pool shows worker_forks == k no matter how many
  /// engine rounds ran, while the socket transport shows k per round.
  std::uint64_t worker_forks = 0;
  std::uint64_t transport_wire_bytes = 0;
  std::uint64_t transport_piece_bytes = 0;
  ProtocolTiming total_timing;
  std::vector<MpcRoundReport> per_round;
  std::vector<std::string> round_labels;        // one per ledger super-step
  std::vector<std::uint64_t> round_peak_words;  // parallel to round_labels
};

/// True for round-combiners written in the streaming shape: per-machine
/// absorb plus an end-of-round finish. Such a fold can run behind the
/// barrier (absorbed in index order after the collect — byte-identical to a
/// plain callable fold that loops the summaries in order) or streamed
/// through the engine's completion queue when config.streaming_fold is set.
template <typename Fold, typename Summary>
concept StreamingRoundFold =
    requires(Fold& f, Summary& s, std::vector<Summary>& all,
             MpcRoundContext& ctx, Rng& rng) {
      f.absorb(s, std::size_t{0}, ctx);
      { f.finish(all, ctx, rng) } -> std::convertible_to<EdgeList>;
    };

/// Drives up to config.max_rounds ProtocolEngine rounds. The caller's
/// cumulative solution lives in the fold's captures; the executor owns the
/// shrinking edge set, the ledger, and the per-round accounting. The input
/// is an EdgeSource (implicit from EdgeList or MappedGraph): round 0's
/// partition reads straight from the source — for a mapped pack the
/// counting and scatter passes stream the mapping — and survivors live in
/// the workspace double-buffers from round 1 on, so the source is never
/// materialized in RAM.
///
/// Two fold shapes are accepted:
///   fold(summaries, round, rng) -> EdgeList        the plain callable fold
///   fold.absorb(summary, machine, round)           streaming-capable fold;
///   fold.finish(summaries, round, rng) -> EdgeList absorbed per machine
/// Streaming-capable folds run through the engine's streaming combine path
/// when config.streaming_fold is set (machine M's collect words are then
/// charged per absorbed summary instead of all at once — same totals, same
/// peaks) and behind the barrier otherwise.
template <typename Build, typename Account, typename Fold>
MpcExecutionStats run_mpc_rounds(EdgeSource graph,
                                 const MpcEngineConfig& config,
                                 VertexId left_size, Rng& rng, ThreadPool* pool,
                                 const Build& build, const Account& account,
                                 Fold&& fold,
                                 ProtocolWorkspace* workspace = nullptr) {
  const std::size_t k = config.mpc.num_machines;
  RCC_CHECK(k >= 1);
  RCC_CHECK(config.max_rounds >= 1);
  const VertexId n = graph.num_vertices();

  MpcLedger ledger(config.mpc);
  MpcExecutionStats stats;

  // The run's round-persistent workspace: machine/coordinator scratches,
  // partition buffers, and the survivor double-buffer all reach their
  // high-water mark in round 0 and are reused afterwards. A caller-provided
  // workspace extends the reuse across runs (and exposes the counters).
  // One workspace serves one run at a time.
  ProtocolWorkspace local_workspace;
  ProtocolWorkspace& ws = workspace != nullptr ? *workspace : local_workspace;
  ws.ensure_machines(k);

  ShardedPartition<Edge> parts;  // persistent: the arena is grow-only
  // The survivor double-buffer rides the coordinator scratch so a warm
  // workspace carries its capacity across runs, not just across rounds.
  struct ExecutorEdgeBuffers {
    EdgeList survivors;  // owns the shrinking edge set after round 0
    EdgeList spare;      // next round's survivor buffer (double-buffered)
  };
  ExecutorEdgeBuffers& bufs =
      ws.coordinator().state<ExecutorEdgeBuffers>();
  EdgeList& survivors = bufs.survivors;
  EdgeList& spare = bufs.spare;
  survivors.reset(n);

  using Summary = std::decay_t<std::invoke_result_t<
      const Build&, EdgeSpan, const PartitionContext&, Rng&>>;
  constexpr bool streaming_capable =
      StreamingRoundFold<std::remove_reference_t<Fold>, Summary>;
  // The cross-process transports only exist behind the streaming combine
  // path (frames arrive one at a time — there is no barrier to fold
  // behind), so requesting one takes that path even without
  // --engine-streaming; a plain callable fold cannot ride them.
  const bool wants_socket =
      config.streaming.transport == EngineTransport::kSocket;
  const bool wants_shm = config.streaming.transport == EngineTransport::kShm;
  if constexpr (!streaming_capable) {
    RCC_CHECK(!(wants_socket || wants_shm) &&
              "cross-process engine transports require a streaming-capable "
              "round fold");
  }
  // Persistent ring workers: the shm transport forks the k machine
  // processes ONCE per run — inside round 0, just after the first partition,
  // so each worker's copy-on-write snapshot already holds its round-0 shard
  // and the round-0 frame carries only the rng stream (the socket
  // transport's free piece story, made persistent). Rounds >= 1 repartition
  // AFTER the fork, so their pieces ship down the rings. Fork amortization
  // is the point: the socket transport pays k forks per round, a pool pays
  // k per run. Only builds declared round-invariant may ride the pool: a
  // persistent worker's captures are frozen at fork time, so a build that
  // reads state the fold mutates between rounds (filtering's rate,
  // augmenting's matching) would silently compute against round-0 values —
  // those drivers fall through to the engine's ephemeral shm path, which
  // re-forks per round like the socket transport does.
  StreamingOptions streaming_opts = config.streaming;
  std::unique_ptr<ShmWorkerPool> shm_pool;

  for (std::size_t r = 0; r < config.max_rounds; ++r) {
    // Round 0 reads the source (for a mapped pack: straight off the mmap);
    // later rounds read the executor-owned survivor buffer.
    const EdgeSpan input = (r == 0) ? graph.edges() : EdgeSpan(survivors);
    const std::uint64_t allocations_before = ws.counters().allocations;

    // Partition phase: the engine's sharded single-arena partitioner over
    // the surviving edges.
    WallTimer timer;
    parts.repartition(std::span<const Edge>(input.data(), input.num_edges()),
                      n, k, rng, pool, &ws.partition());
    const double partition_seconds = timer.seconds();

    if (r == 0 && wants_shm && config.round_invariant_build) {
      if constexpr (streaming_capable && WireSerializable<Summary>) {
        const ShmTransportOptions& shm = config.streaming.shm;
        shm_pool = std::make_unique<ShmWorkerPool>(k, shm);
        shm_pool->spawn([&shm, &build, &ws, &parts, k, n, left_size](
                            std::size_t machine,
                            ShmWorkerEndpoint& endpoint) {
          std::uint32_t expected_round = 0;
          for (;;) {
            const ReadyFrame frame = endpoint.read_frame();
            if (frame.header.shape == SummaryShape::kShutdown) {
              if (static_cast<long>(machine) ==
                  shm.fault_ignore_shutdown_machine) {
                worker_sleep_forever();
              }
              break;
            }
            const PieceDeliveryView piece =
                decode_piece_frame_view(frame.header, frame.payload.data());
            if (piece.round != expected_round) {
              shm_fail("machine %zu expected a round-%u piece, got round %u",
                       machine, expected_round, piece.round);
            }
            Rng machine_rng = Rng::from_state(piece.rng_state);
            // Round 0's piece rode the fork: the frame is rng-only and the
            // shard sits in this worker's copy-on-write snapshot. Later
            // rounds read the piece the coordinator shipped (a borrowing
            // view into the frame payload — no copy).
            const EdgeSpan view =
                expected_round == 0
                    ? EdgeSpan(parts.shard(machine).data(),
                               parts.shard_size(machine), n)
                    : EdgeSpan(piece.edges, piece.num_edges,
                               piece.num_vertices);
            const PartitionContext ctx{view.num_vertices(), k, machine,
                                       left_size, &ws.machine(machine)};
            Summary summary = build(view, ctx, machine_rng);
            if (static_cast<long>(machine) == shm.fault_kill_machine &&
                static_cast<long>(expected_round) == shm.fault_kill_round) {
              worker_exit_silently();
            }
            const bool tear_this_frame =
                static_cast<long>(machine) == shm.fault_partial_frame_machine;
            if constexpr (std::is_same_v<Summary, EdgeList>) {
              // The summary IS an edge list (the coreset drivers' bulk
              // shape): stream a stack-built prefix + the summary's raw
              // edge bytes, skipping the frame-sized staging vector. The
              // torn-frame fault path keeps the staged encode below — it
              // needs the materialized frame to cut in half.
              if (!tear_this_frame) {
                std::array<std::uint8_t, kEdgeListFramePrefixBytes> prefix;
                encode_edge_list_frame_prefix(
                    summary, static_cast<std::uint32_t>(machine),
                    prefix.data());
                endpoint.write_frame(prefix.data(), prefix.size(),
                                     reinterpret_cast<const std::uint8_t*>(
                                         summary.edges().data()),
                                     summary.num_edges() * sizeof(Edge));
                ++expected_round;
                continue;
              }
            }
            const std::vector<std::uint8_t> out =
                encode_frame(summary, static_cast<std::uint32_t>(machine));
            if (tear_this_frame) {
              endpoint.write_raw(out.data(),
                                 kFrameHeaderBytes +
                                     (out.size() - kFrameHeaderBytes) / 2);
              worker_exit_silently();
            }
            endpoint.write_frame(out.data(), out.size());
            ++expected_round;
          }
        });
        streaming_opts.shm_pool = shm_pool.get();
      }
    }

    if (r == 0 && !config.input_already_random) {
      // Adversarially placed input pays the shuffle super-step first; the
      // receiver side is charged with the shard sizes round 0 actually
      // processes (the realized random k-partitioning).
      std::vector<std::size_t> delivered(k);
      for (std::size_t i = 0; i < k; ++i) delivered[i] = parts.shard_size(i);
      mpc_reshuffle_round(input.num_edges(), delivered, ledger);
    }

    const std::size_t first_step = ledger.rounds();
    ledger.begin_round(config.round_label + "-" + std::to_string(r));
    if (config.charge_input_residency) {
      for (std::size_t i = 0; i < k; ++i) {
        ledger.charge(i, 2 * parts.shard_size(i));
      }
    }

    // Machine + combine phases on the ProtocolEngine. Machine M is charged
    // for the collected summaries before the fold's processing runs (and
    // before any super-step the fold opens), mirroring the coreset round's
    // "send everything to M" collect; the streaming path charges each
    // summary as it is absorbed — same totals, same per-round peaks.
    spare.reset(n);  // cleared, capacity retained from two rounds ago
    MpcRoundContext round_ctx(
        ledger, EdgeSpan(parts.arena().data(), parts.num_edges(), n), r,
        config.max_rounds, &ws, &spare);
    const auto run_round = [&] {
      if constexpr (streaming_capable) {
        if (config.streaming_fold || wants_socket || wants_shm) {
          struct RoundStreamAdapter {
            std::remove_reference_t<Fold>& fold;
            MpcRoundContext& ctx;
            MpcLedger& ledger;
            void absorb(Summary& s, std::size_t machine,
                        const MessageSize& cost) {
              ledger.charge(0, cost.words());
              fold.absorb(s, machine, ctx);
            }
            EdgeList finish(std::vector<Summary>& all, Rng& rng) {
              return fold.finish(all, ctx, rng);
            }
          } adapter{fold, round_ctx, ledger};
          return run_protocol_streaming_on_pieces<Edge>(
              pieces_of(parts), n, left_size, rng, pool, build, account,
              adapter, streaming_opts, &ws);
        }
      }
      return run_protocol_on_pieces<Edge>(
          pieces_of(parts), n, left_size, rng, pool, build, account,
          [&](auto& summaries, Rng& coordinator_rng) {
            // account is a pure cost function (the engine already evaluated
            // it into comm.per_machine); re-summing here keeps the barrier
            // fold's contract independent of the engine result's layout.
            std::uint64_t collected = 0;
            for (const auto& s : summaries) collected += account(s).words();
            ledger.charge(0, collected);
            if constexpr (streaming_capable) {
              for (std::size_t i = 0; i < summaries.size(); ++i) {
                fold.absorb(summaries[i], i, round_ctx);
              }
              return fold.finish(summaries, round_ctx, coordinator_rng);
            } else {
              return fold(summaries, round_ctx, coordinator_rng);
            }
          },
          &ws);
    };
    auto result = run_round();
    result.timing.partition_seconds = partition_seconds;

    const std::size_t active = input.num_edges();
    // Double-buffer: the round's input storage becomes the NEXT round's
    // survivor buffer (spare), and the fold's output — typically the moved-
    // out spare — becomes the input. After two rounds both buffers sit at
    // their high-water capacity and the handoff allocates nothing (`input`
    // is dead past this point, so recycling its storage is safe; at r == 0
    // the swap hands a warm workspace's prior-run capacity back to spare).
    EdgeList produced = std::move(result.solution);
    std::swap(spare, survivors);
    survivors = std::move(produced);
    ++stats.engine_rounds;
    stats.total_comm_words += result.comm.total_words();
    stats.worker_forks += result.transport.forks;
    stats.transport_wire_bytes += result.transport.wire_bytes;
    stats.transport_piece_bytes += result.transport.piece_bytes;
    stats.total_timing.partition_seconds += result.timing.partition_seconds;
    stats.total_timing.summaries_seconds += result.timing.summaries_seconds;
    stats.total_timing.combine_seconds += result.timing.combine_seconds;

    MpcRoundReport report;
    report.round_index = r;
    report.active_edges = active;
    report.surviving_edges = survivors.num_edges();
    report.comm_words = result.comm.total_words();
    for (std::size_t s = first_step; s < ledger.rounds(); ++s) {
      report.peak_machine_words =
          std::max(report.peak_machine_words, ledger.round_peak_words()[s]);
    }
    report.augmentations = round_ctx.progress_units();
    report.workspace_allocations =
        ws.counters().allocations - allocations_before;
    stats.total_augmentations += round_ctx.progress_units();
    // The certificate is a statement about the solution as of THIS round: an
    // uncertified later round that keeps mutating the solution clears any
    // stale ratio a previous round attached (a fold that certifies and keeps
    // running must re-certify every round the bound still holds).
    stats.certified_ratio = round_ctx.certified_ratio();
    report.timing = result.timing;
    stats.per_round.push_back(report);

    if (round_ctx.stop_requested() || survivors.empty()) break;
    // Stagnation: nothing shrank AND the fold reported no progress units.
    // Edge-recirculating combiners keep survivors == active on purpose;
    // their note_progress calls are what distinguishes a working round from
    // a stalled one.
    if (config.early_stop && survivors.num_edges() == active &&
        round_ctx.progress_units() == 0) {
      break;
    }
  }

  if (shm_pool != nullptr) {
    // Exit handshake: a shutdown frame per worker, a bounded reap, and the
    // pool's forks land in the stats (per-round telemetry reported 0 — the
    // pool forked at spawn, which is the claim).
    shm_pool->shutdown_and_reap();
    stats.worker_forks += shm_pool->forks();
  }

  stats.mpc_rounds = ledger.rounds();
  stats.max_memory_words = ledger.max_memory_words();
  stats.round_labels = ledger.round_labels();
  stats.round_peak_words = ledger.round_peak_words();
  return stats;
}

/// Registers the executor's command-line knobs on an Options parser:
///   --mpc-machines       cluster size k (0 = paper default, sqrt(n))
///   --mpc-memory-budget  per-machine budget in words (0 = paper default,
///                        the O~(n sqrt(n)) regime)
///   --mpc-rounds         executor iterations (multi-round MPC)
///   --mpc-random-input   input already randomly partitioned (skips the
///                        re-partition round)
///   --mpc-early-stop     stop when a round makes no progress
/// plus the engine streaming knobs (add_streaming_flags):
///   --engine-streaming / --engine-streaming-order / --engine-queue-capacity
void add_mpc_engine_flags(Options& options);

/// Reads the knobs registered by add_mpc_engine_flags back into a config for
/// an n-vertex instance (zeros fall back to MpcConfig::paper_default(n)).
MpcEngineConfig mpc_engine_config_from_options(const Options& options,
                                               VertexId n);

}  // namespace rcc
