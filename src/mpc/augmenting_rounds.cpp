#include "mpc/augmenting_rounds.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "matching/augmenting_paths.hpp"
#include "util/options.hpp"
#include "util/workspace.hpp"

namespace rcc {

namespace {

std::uint64_t path_words(const std::vector<AugmentingPath>& paths) {
  std::uint64_t words = 0;
  for (const AugmentingPath& p : paths) words += p.words();
  return words;
}

/// Streaming-shaped round-combiner: absorb stages pointers into the
/// machines' path batches as they land (the batches live in the engine's
/// retained summary vector, which is pre-sized and stable, so the pointers
/// survive until finish), finish resolves conflicts and applies. Absorb
/// never touches the matching the machine phase searches against, so it is
/// safe to overlap with shard searches.
struct AugmentingRoundFold {
  Matching& matched;
  const AugmentingRoundsConfig& aug;
  bool& certified;
  VertexId num_vertices;
  /// Staged candidate: the first two vertex ids packed into one 64-bit sort
  /// key next to the path pointer. Canonicalized paths have >= 2 vertices
  /// and the key order is a prefix of canonical_less, so sorting by (key,
  /// full compare on ties) is the same order with almost every comparison
  /// resolved on one integer instead of two pointer-chased vectors.
  struct Candidate {
    std::uint64_t key;
    const AugmentingPath* path;
  };
  std::vector<Candidate> candidates;

  static std::uint64_t key_of(const AugmentingPath& p) {
    return (static_cast<std::uint64_t>(p.vertices[0]) << 32) | p.vertices[1];
  }

  void absorb(std::vector<AugmentingPath>& machine_paths,
              std::size_t /*machine*/, MpcRoundContext& /*ctx*/) {
    for (const AugmentingPath& p : machine_paths) {
      candidates.push_back({key_of(p), &p});
    }
  }

  EdgeList finish(std::vector<std::vector<AugmentingPath>>& /*summaries*/,
                  MpcRoundContext& ctx, Rng& /*coordinator_rng*/) {
    // The matching every machine searched against was broadcast at the top
    // of this super-step: charge each machine for holding it.
    ctx.charge_all(2 * static_cast<std::uint64_t>(matched.size()));

    // First-wins in canonical order: paths from different (disjoint) shards
    // can still collide on vertices, and the flat lexicographic order makes
    // the outcome independent of machine count, thread schedule, AND absorb
    // order (the sort erases arrival effects). A surviving path is
    // vertex-disjoint from every previously applied one, so it is still
    // augmenting for the updated M.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.key != b.key) return a.key < b.key;
                return canonical_less(*a.path, *b.path);
              });
    const EpochMarks::View touched =
        ctx.coordinator_scratch().vertex_marks(num_vertices).view();
    std::size_t applied = 0;
    for (const Candidate& c : candidates) {
      const AugmentingPath* p = c.path;
      bool conflict = false;
      for (VertexId v : p->vertices) conflict |= touched.test(v);
      if (conflict) continue;
      for (VertexId v : p->vertices) touched.set(v);
      apply_augmenting_path(matched, *p);
      ++applied;
    }
    candidates.clear();

    if (applied == 0) {
      // No shard held a whole path. The coordinator sweeps the round's full
      // edge set once: an empty sweep proves no augmenting path of length
      // <= 2k+1 exists anywhere — the (1 + 1/(k+1)) certificate — and a
      // non-empty one keeps the run progressing (its paths are already
      // mutually disjoint and are charged like any other path message).
      // The sweep centralizes the round's residual on machine M, so its
      // residency is charged first (2 words per edge) — a budget below the
      // residual size honestly aborts here instead of certifying for free.
      ctx.charge(0, 2 * static_cast<std::uint64_t>(
                        ctx.active_edges().num_edges()));
      const std::vector<AugmentingPath> sweep =
          find_augmenting_paths(ctx.active_edges(), matched,
                                aug.max_path_length,
                                &ctx.coordinator_scratch());
      if (sweep.empty()) {
        certified = true;
        ctx.certify_ratio(aug.certified_ratio());
        ctx.request_stop();
      } else {
        ctx.charge(0, path_words(sweep));
        for (const AugmentingPath& p : sweep) {
          apply_augmenting_path(matched, p);
          ++applied;
        }
      }
    }
    // Applied paths are the round's progress units: the survivors stay flat
    // on purpose (matched edges are future matched hops), so this is what
    // keeps the executor's stagnation check from firing on a working round.
    ctx.note_progress(applied);
    // Recirculate every edge through the executor's double-buffer instead
    // of materializing a fresh copy of the arena each round.
    ctx.survivors_out().assign(ctx.active_edges());
    return std::move(ctx.survivors_out());
  }
};

}  // namespace

AugmentingRoundsConfig AugmentingRoundsConfig::for_epsilon(double epsilon) {
  RCC_CHECK(epsilon > 0.0);
  // Smallest k with 1/(k+1) <= epsilon; nudge before ceil so that exact
  // reciprocals (0.5, 0.25, ...) do not round up a slot on fp noise. Clamp
  // before the cast: a vanishing epsilon would otherwise overflow size_t
  // (UB), and no graph needs a path cap anywhere near the clamp.
  constexpr double kMaxSlots = 1e9;
  const double slots =
      std::min(std::ceil(1.0 / epsilon - 1e-9), kMaxSlots);
  const std::size_t k_plus_1 =
      std::max<std::size_t>(1, static_cast<std::size_t>(slots));
  AugmentingRoundsConfig config;
  config.max_path_length = 2 * (k_plus_1 - 1) + 1;
  return config;
}

AugmentingMpcResult run_matching_rounds_augmenting(
    EdgeSource graph, const MpcEngineConfig& config,
    const AugmentingRoundsConfig& aug, VertexId left_size, Rng& rng,
    ThreadPool* pool, ProtocolWorkspace* workspace) {
  RCC_CHECK(aug.max_path_length % 2 == 1);

  Matching matched(graph.num_vertices());
  bool certified = false;

  // This combiner keeps the surviving edge counts flat on purpose (matched
  // edges are future matched hops), but it reports every applied path as a
  // progress unit, so the executor's progress-aware early stop is safe to
  // honor as configured; termination is normally the certificate below.
  MpcEngineConfig exec = config;
  exec.round_label = "augmenting-round";

  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx, Rng&) {
    // M is stable for the whole machine phase (the fold's absorb only stages
    // candidates; all writes happen in finish), so concurrent shard searches
    // against it are safe — including overlapped with streaming absorbs.
    // NOT round-invariant, though: finish rewrites M between rounds, so shm
    // runs must re-fork per round (the default) rather than ride the
    // persistent pool's fork-time snapshot.
    return find_augmenting_paths(piece, matched, aug.max_path_length,
                                 ctx.scratch);
  };
  const auto account = [](const std::vector<AugmentingPath>& paths) {
    return MessageSize{0, path_words(paths)};
  };
  AugmentingRoundFold fold{matched, aug, certified, graph.num_vertices(), {}};

  AugmentingMpcResult result;
  result.stats = run_mpc_rounds(graph, exec, left_size, rng, pool, build,
                                account, fold, workspace);
  result.matching = std::move(matched);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  result.certified = certified;
  result.certified_ratio = certified ? aug.certified_ratio() : 0.0;
  result.total_augmentations = result.stats.total_augmentations;
  return result;
}

AugmentingRoundsConfig augmenting_config_from_options(const Options& options) {
  const double epsilon = options.get_double("mpc-epsilon");
  if (epsilon > 0.0) return AugmentingRoundsConfig::for_epsilon(epsilon);
  const std::int64_t length = options.get_int("mpc-max-path-length");
  if (length < 1 || length % 2 == 0) {
    std::fprintf(stderr,
                 "flag --mpc-max-path-length: %lld must be an odd length "
                 ">= 1 (2k+1)\n",
                 static_cast<long long>(length));
    std::exit(2);
  }
  AugmentingRoundsConfig config;
  config.max_path_length = static_cast<std::size_t>(length);
  return config;
}

}  // namespace rcc
