// The filtering MapReduce algorithm of Lattanzi, Moseley, Suri,
// Vassilvitskii, "Filtering: a method for solving graph problems in
// MapReduce" (SPAA 2011) — the baseline this paper's Section 1.1 compares
// round counts against.
//
// Maximal matching by filtering:
//   while the active edge set exceeds one machine's memory:
//     (round) sample edges at rate memory/(2|E|) onto a central machine,
//             compute a maximal matching there, merge it into M;
//     (round) broadcast M; every machine drops local edges touching M.
//   (round) ship the residual edges to the central machine, finish the
//           maximal matching there.
//
// The final M is maximal on G, hence a 2-approximate maximum matching, and
// V(M) is a 2-approximate vertex cover. With memory n^{1+eps} the loop runs
// O(1/eps) times w.h.p.; at the paper's O~(n sqrt(n)) memory this comes to
// ~3 iterations = ~6 rounds, versus 2 rounds for the coreset algorithm.
#pragma once

#include "matching/matching.hpp"
#include "mpc/mpc.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

struct FilteringMpcResult {
  Matching maximal_matching;  // maximal on G: 2-approx matching
  VertexCover cover;          // V(M): 2-approx vertex cover
  std::size_t rounds = 0;
  std::size_t filter_iterations = 0;
  std::uint64_t max_memory_words = 0;
};

FilteringMpcResult filtering_mpc(const EdgeList& graph, const MpcConfig& config,
                                 Rng& rng);

}  // namespace rcc
