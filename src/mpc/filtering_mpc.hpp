// The filtering MapReduce algorithm of Lattanzi, Moseley, Suri,
// Vassilvitskii, "Filtering: a method for solving graph problems in
// MapReduce" (SPAA 2011) — the baseline this paper's Section 1.1 compares
// round counts against.
//
// Maximal matching by filtering:
//   while the active edge set exceeds one machine's memory:
//     (round) sample edges at rate memory/(2|E|) onto a central machine,
//             compute a maximal matching there, merge it into M;
//     (round) broadcast M; every machine drops local edges touching M.
//   (round) ship the residual edges to the central machine, finish the
//           maximal matching there.
//
// The final M is maximal on G, hence a 2-approximate maximum matching, and
// V(M) is a 2-approximate vertex cover. With memory n^{1+eps} the loop runs
// O(1/eps) times w.h.p.; at the paper's O~(n sqrt(n)) memory this comes to
// ~3 iterations = ~6 rounds, versus 2 rounds for the coreset algorithm.
//
// filtering_mpc_rounds runs the loop on the multi-round executor
// (mpc_engine.hpp): each filter iteration is one executor round whose
// machine phase draws the Bernoulli sample and whose round-combiner merges
// the sample, declares the broadcast-and-filter super-step, and carries the
// uncovered edges forward. The legacy filtering_mpc signature is a thin
// wrapper with an unbounded round cap.
#pragma once

#include "matching/matching.hpp"
#include "mpc/mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

struct FilteringMpcResult {
  Matching maximal_matching;  // maximal on G: 2-approx matching
  VertexCover cover;          // V(M): 2-approx vertex cover
  std::size_t rounds = 0;
  std::size_t filter_iterations = 0;
  std::uint64_t max_memory_words = 0;
  /// False only if config.max_rounds capped the loop before the residual fit
  /// on one machine; the matching is then valid but possibly not maximal.
  bool completed = true;
  MpcExecutionStats stats;
};

/// Filtering on the multi-round executor. config.max_rounds caps the filter
/// iterations (the finish step counts as one executor round too);
/// config.input_already_random and config.charge_input_residency are
/// overridden to the filtering model's accounting (no reshuffle; map-side
/// residency is charged by the broadcast step itself).
FilteringMpcResult filtering_mpc_rounds(EdgeSource graph,
                                        const MpcEngineConfig& config, Rng& rng,
                                        ThreadPool* pool = nullptr,
                                        ProtocolWorkspace* workspace = nullptr);

FilteringMpcResult filtering_mpc(EdgeSource graph, const MpcConfig& config,
                                 Rng& rng);

}  // namespace rcc
