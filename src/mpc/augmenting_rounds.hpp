// Augmenting-path round-combiner: (1+eps) multi-round matching on the MPC
// executor.
//
// The greedy combiner (coreset_mpc.cpp) folds machine matchings into the
// cumulative solution and can therefore never pass maximality — its fixed
// points are maximal matchings, a 2-approximation. This combiner iterates a
// different round shape (the subgraph-rounds + short-augmenting-paths recipe
// of "Coresets Meet EDCS", arXiv:1711.03076, and "Communication Efficient
// Coresets for Maximum Matching", arXiv:2011.06481):
//
//   broadcast — the cumulative matching M goes out to every machine (2|M|
//               words each, charged on the ledger),
//   machines  — each machine searches ITS shard for vertex-disjoint
//               augmenting paths of length <= 2k+1 relative to M
//               (matching/augmenting_paths.hpp; only the non-matching hops
//               must live in the shard, the matched hops ride on M),
//   fold      — machine M collects the candidate paths (one word per path
//               vertex), resolves conflicts first-wins in canonical
//               (lexicographic) order — vertex-disjoint survivors stay
//               augmenting no matter the apply order — and flips their
//               symmetric differences into M.
//
// Rounds re-partition the full edge set with fresh randomness, so a path
// whose hops straddled shards this round can land inside one shard later.
// When a round's machines all come up empty, the coordinator runs one exact
// sweep over the round's full edge set: if that also finds nothing, NO
// augmenting path of length <= 2k+1 exists anywhere, which certifies
//
//   |M*| / |M| <= 1 + 1/(k+1)
//
// by the standard short-augmenting-path bound — that is the early stop, and
// the certificate is recorded in MpcExecutionStats::certified_ratio. (If the
// sweep does find paths, they are applied and charged, so every non-final
// round augments at least once and the run terminates within |M*| rounds.)
#pragma once

#include <cstdint>

#include "matching/matching.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/thread_pool.hpp"

namespace rcc {

class Options;

/// Knobs of the augmenting combiner on top of MpcEngineConfig.
struct AugmentingRoundsConfig {
  /// Odd path-length cap 2k+1; the early-stop certificate is 1 + 1/(k+1).
  std::size_t max_path_length = 3;

  /// Smallest odd cap whose certificate 1 + 1/(k+1) is <= 1 + epsilon:
  /// k = ceil(1/epsilon) - 1. epsilon >= 1 degenerates to length-1 paths
  /// (greedy free-edge rounds, certificate 2).
  static AugmentingRoundsConfig for_epsilon(double epsilon);

  /// The ratio the no-augmenting-path early stop certifies: 1 + 2/(L+1)
  /// for cap L = 2k+1 (== 1 + 1/(k+1)).
  double certified_ratio() const {
    return 1.0 + 2.0 / static_cast<double>(max_path_length + 1);
  }
};

struct AugmentingMpcResult {
  Matching matching;
  std::size_t rounds = 0;  // ledger super-steps
  std::uint64_t max_memory_words = 0;
  /// True iff the run early-stopped on the no-augmenting-path certificate
  /// (always true when max_rounds is generous; false only when the round cap
  /// cut the run short).
  bool certified = false;
  /// The certified worst-case ratio when `certified`, else 0.0.
  double certified_ratio = 0.0;
  /// Augmenting paths applied across the run; each grows |M| by one, so this
  /// equals matching.size() (asserted by the mpc suite).
  std::size_t total_augmentations = 0;
  MpcExecutionStats stats;
};

/// Runs up to config.max_rounds augmenting rounds starting from the empty
/// matching (round 0's length-1 paths bootstrap it). `config.early_stop` is
/// ignored — the surviving edge set never shrinks, so the combiner stops via
/// its certificate instead of the executor's no-progress check. `left_size`
/// is accepted for signature symmetry with the greedy entry point; the path
/// search itself needs no bipartition.
AugmentingMpcResult run_matching_rounds_augmenting(
    EdgeSource graph, const MpcEngineConfig& config,
    const AugmentingRoundsConfig& aug, VertexId left_size, Rng& rng,
    ThreadPool* pool = nullptr, ProtocolWorkspace* workspace = nullptr);

/// Reads the augmenting knobs registered by add_mpc_engine_flags
/// (--mpc-max-path-length, --mpc-epsilon; a positive epsilon wins).
AugmentingRoundsConfig augmenting_config_from_options(const Options& options);

}  // namespace rcc
