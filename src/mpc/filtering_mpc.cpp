#include "mpc/filtering_mpc.hpp"

#include <limits>
#include <utility>

#include "matching/greedy.hpp"

namespace rcc {

namespace {

/// Streaming-shaped round-combiner of the filtering baseline: absorb greedily
/// extends the central matching with each machine's sample as it arrives
/// (canonical order replays the barrier fold's in-order loop draw-for-draw),
/// finish runs the broadcast-and-filter super-step. Absorb mutates only the
/// coordinator's matching, which the sampling build phase never reads, so
/// overlapping it with the machine phase is safe.
struct FilteringRoundFold {
  FilteringMpcResult& result;
  Matching& m;
  VertexId n;
  std::uint64_t memory_edges;
  /// The coordinator's plan for the next round, updated in finish (it rides
  /// the V(M) broadcast in the real protocol): ship everything once the
  /// residual fits on one machine, otherwise sample at a rate that lands an
  /// expected memory/2 words on the central machine. The build lambda reads
  /// these between rounds — never while a round's absorbs are in flight.
  bool finish_round = false;
  double rate = 1.0;

  void plan_for(std::size_t active_edges) {
    finish_round = active_edges <= memory_edges;
    rate = finish_round ? 1.0
                        : static_cast<double>(memory_edges) /
                              (2.0 * static_cast<double>(active_edges));
  }

  void absorb(EdgeList& sample, std::size_t /*machine*/,
              MpcRoundContext& ctx) {
    // Central machine: maximal matching of the collected sample, merged.
    // Newly matched edges are the round's progress units — the executor's
    // stagnation check must not stop a run whose survivors happen to be
    // flat while the matching is still growing.
    const std::size_t before = m.size();
    greedy_extend(m, sample);
    ctx.note_progress(m.size() - before);
  }

  EdgeList finish(std::vector<EdgeList>& /*samples*/, MpcRoundContext& ctx,
                  Rng& /*coordinator_rng*/) {
    if (finish_round) {
      result.completed = true;
      ctx.request_stop();
      return std::move(ctx.survivors_out());  // reset by the executor: empty
    }
    ++result.filter_iterations;

    // Second super-step of the iteration: broadcast V(M); every machine
    // keeps its residual shard plus the matched-vertex list resident and
    // drops covered edges.
    ctx.begin_round("broadcast-and-filter");
    EdgeList& survivors = ctx.survivors_out();
    survivors.assign_filtered(ctx.active_edges(), [&](const Edge& e) {
      return !m.is_matched(e.u) && !m.is_matched(e.v);
    });
    const std::uint64_t shard =
        (2 * survivors.num_edges()) / ctx.num_machines() + 2;
    ctx.charge_all(shard + 2 * m.size());
    if (survivors.empty()) {
      // Every edge of G is covered: m is already maximal, no finish needed.
      result.completed = true;
    } else {
      plan_for(survivors.num_edges());
    }
    return std::move(survivors);
  }
};

}  // namespace

FilteringMpcResult filtering_mpc_rounds(EdgeSource graph,
                                        const MpcEngineConfig& config, Rng& rng,
                                        ThreadPool* pool,
                                        ProtocolWorkspace* workspace) {
  const VertexId n = graph.num_vertices();
  const std::uint64_t memory_edges = config.mpc.memory_words / 2;
  RCC_CHECK(memory_edges > 0);

  MpcEngineConfig engine_config = config;
  // Filtering never reshuffles (sampling is oblivious to placement) and
  // models map-side residency in its own broadcast step. early_stop is
  // honored as configured: the fold reports every newly matched edge as
  // progress, so the executor only stops on a round that neither matched
  // nor filtered anything. The only such round is an all-empty sample draw
  // — survivors all have both endpoints unmatched, so any nonempty sample
  // matches at least one edge. P(all empty) = (1-rate)^survivors <=
  // e^(-memory_words/4) per round, negligible for any real budget; a
  // degenerate-budget caller that wants pure Las-Vegas resampling instead
  // can pass early_stop = false (the run is honestly marked incomplete
  // either way).
  engine_config.input_already_random = true;
  engine_config.charge_input_residency = false;
  engine_config.round_label = "sample-and-match";

  FilteringMpcResult result;
  result.completed = false;
  Matching m(n);

  FilteringRoundFold fold{result, m, n, memory_edges};
  fold.plan_for(graph.num_edges());

  // NOT round-invariant: the build reads fold.rate / fold.finish_round,
  // which the coordinator rewrites between rounds — shm runs must re-fork
  // per round (the default) so workers see the fresh schedule.
  const auto build = [&](EdgeSpan piece, const PartitionContext&,
                         Rng& machine_rng) {
    if (fold.finish_round) return piece.to_edge_list();  // residual fits
    return piece.filter(
        [&](const Edge&) { return machine_rng.bernoulli(fold.rate); });
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };

  result.stats = run_mpc_rounds(graph, engine_config, /*left_size=*/0, rng,
                                pool, build, account, fold, workspace);

  if (result.completed) {
    RCC_CHECK(m.maximal_in(graph.edges()));
  }
  result.cover = VertexCover(n);
  for (const Edge& e : m.to_edge_list()) {
    result.cover.insert(e.u);
    result.cover.insert(e.v);
  }
  if (result.completed) {
    RCC_CHECK(result.cover.covers(graph.edges()));
  }
  result.maximal_matching = std::move(m);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

FilteringMpcResult filtering_mpc(EdgeSource graph, const MpcConfig& config,
                                 Rng& rng) {
  MpcEngineConfig engine_config;
  engine_config.mpc = config;
  // The legacy loop runs until the residual fits on one machine.
  engine_config.max_rounds = std::numeric_limits<std::size_t>::max();
  return filtering_mpc_rounds(graph, engine_config, rng);
}

}  // namespace rcc
