#include "mpc/filtering_mpc.hpp"

#include <algorithm>

#include "matching/greedy.hpp"

namespace rcc {

FilteringMpcResult filtering_mpc(const EdgeList& graph, const MpcConfig& config,
                                 Rng& rng) {
  MpcLedger ledger(config);
  const VertexId n = graph.num_vertices();
  const std::uint64_t memory_edges = config.memory_words / 2;
  RCC_CHECK(memory_edges > 0);

  FilteringMpcResult result;
  Matching m(n);
  EdgeList active = graph;

  while (active.num_edges() > memory_edges) {
    ++result.filter_iterations;
    // Sample-and-match round: expected sample of memory_edges/2 edges lands
    // on the central machine (machine 0), leaving room for slack.
    const double p = static_cast<double>(memory_edges) /
                     (2.0 * static_cast<double>(active.num_edges()));
    ledger.begin_round("sample-and-match");
    const EdgeList sample = active.subsample(p, rng);
    ledger.charge(0, 2 * sample.num_edges());
    greedy_extend(m, sample);  // maximal matching of the sample, merged

    // Filter round: matched vertices are broadcast; machines drop covered
    // edges. Broadcast cost: |V(M)| words on every machine; the residency of
    // each machine's shard is charged too.
    ledger.begin_round("broadcast-and-filter");
    active = active.filter(
        [&](const Edge& e) { return !m.is_matched(e.u) && !m.is_matched(e.v); });
    const std::uint64_t shard =
        (2 * active.num_edges()) / config.num_machines + 2;
    for (std::size_t i = 0; i < config.num_machines; ++i) {
      ledger.charge(i, shard + 2 * m.size());
    }
  }

  // Finish round: residual fits in one machine; complete the matching there.
  ledger.begin_round("finish");
  ledger.charge(0, 2 * active.num_edges());
  greedy_extend(m, active);

  RCC_CHECK(m.maximal_in(graph));
  result.cover = VertexCover(n);
  for (const Edge& e : m.to_edge_list()) {
    result.cover.insert(e.u);
    result.cover.insert(e.v);
  }
  RCC_CHECK(result.cover.covers(graph));
  result.maximal_matching = std::move(m);
  result.rounds = ledger.rounds();
  result.max_memory_words = ledger.max_memory_words();
  return result;
}

}  // namespace rcc
