#include "mpc/filtering_mpc.hpp"

#include <limits>
#include <utility>

#include "matching/greedy.hpp"

namespace rcc {

FilteringMpcResult filtering_mpc_rounds(const EdgeList& graph,
                                        const MpcEngineConfig& config, Rng& rng,
                                        ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  const std::uint64_t memory_edges = config.mpc.memory_words / 2;
  RCC_CHECK(memory_edges > 0);

  MpcEngineConfig engine_config = config;
  // Filtering never reshuffles (sampling is oblivious to placement), models
  // map-side residency in its own broadcast step, and must keep resampling
  // even when an unlucky round makes no progress.
  engine_config.input_already_random = true;
  engine_config.charge_input_residency = false;
  engine_config.early_stop = false;
  engine_config.round_label = "sample-and-match";

  FilteringMpcResult result;
  result.completed = false;
  Matching m(n);

  // The coordinator's plan for the next round, updated in the fold (it rides
  // the V(M) broadcast in the real protocol): ship everything once the
  // residual fits on one machine, otherwise sample at a rate that lands an
  // expected memory/2 words on the central machine.
  bool finish = false;
  double rate = 1.0;
  const auto plan_for = [&](std::size_t active_edges) {
    finish = active_edges <= memory_edges;
    rate = finish ? 1.0
                  : static_cast<double>(memory_edges) /
                        (2.0 * static_cast<double>(active_edges));
  };
  plan_for(graph.num_edges());

  const auto build = [&](EdgeSpan piece, const PartitionContext&,
                         Rng& machine_rng) {
    if (finish) return piece.to_edge_list();  // residual fits: ship it all
    return piece.filter(
        [&](const Edge&) { return machine_rng.bernoulli(rate); });
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };
  const auto fold = [&](std::vector<EdgeList>& summaries, MpcRoundContext& ctx,
                        Rng&) {
    // Central machine: maximal matching of the collected sample, merged.
    for (const EdgeList& sample : summaries) greedy_extend(m, sample);
    if (finish) {
      result.completed = true;
      ctx.request_stop();
      return EdgeList(n);
    }
    ++result.filter_iterations;

    // Second super-step of the iteration: broadcast V(M); every machine
    // keeps its residual shard plus the matched-vertex list resident and
    // drops covered edges.
    ctx.begin_round("broadcast-and-filter");
    EdgeList survivors = ctx.active_edges().filter([&](const Edge& e) {
      return !m.is_matched(e.u) && !m.is_matched(e.v);
    });
    const std::uint64_t shard =
        (2 * survivors.num_edges()) / ctx.num_machines() + 2;
    ctx.charge_all(shard + 2 * m.size());
    if (survivors.empty()) {
      // Every edge of G is covered: m is already maximal, no finish needed.
      result.completed = true;
    } else {
      plan_for(survivors.num_edges());
    }
    return survivors;
  };

  result.stats = run_mpc_rounds(graph, engine_config, /*left_size=*/0, rng,
                                pool, build, account, fold);

  if (result.completed) {
    RCC_CHECK(m.maximal_in(graph));
  }
  result.cover = VertexCover(n);
  for (const Edge& e : m.to_edge_list()) {
    result.cover.insert(e.u);
    result.cover.insert(e.v);
  }
  if (result.completed) {
    RCC_CHECK(result.cover.covers(graph));
  }
  result.maximal_matching = std::move(m);
  result.rounds = result.stats.mpc_rounds;
  result.max_memory_words = result.stats.max_memory_words;
  return result;
}

FilteringMpcResult filtering_mpc(const EdgeList& graph, const MpcConfig& config,
                                 Rng& rng) {
  MpcEngineConfig engine_config;
  engine_config.mpc = config;
  // The legacy loop runs until the residual fits on one machine.
  engine_config.max_rounds = std::numeric_limits<std::size_t>::max();
  return filtering_mpc_rounds(graph, engine_config, rng);
}

}  // namespace rcc
