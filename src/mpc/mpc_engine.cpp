#include "mpc/mpc_engine.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/options.hpp"

namespace rcc {

namespace {

/// Flag values that parse but make no sense get the same friendly exit(2)
/// treatment as unparsable ones (Options philosophy: typos in experiment
/// parameters must not silently run the wrong configuration).
std::int64_t flag_at_least(const Options& options, const char* name,
                           std::int64_t minimum) {
  const std::int64_t value = options.get_int(name);
  if (value < minimum) {
    std::fprintf(stderr, "flag --%s: %lld is out of range (minimum %lld)\n",
                 name, static_cast<long long>(value),
                 static_cast<long long>(minimum));
    std::exit(2);
  }
  return value;
}

}  // namespace

void add_mpc_engine_flags(Options& options) {
  options
      .flag("mpc-machines", "0",
            "MPC cluster size k (0 = paper default, sqrt(n))")
      .flag("mpc-memory-budget", "0",
            "per-machine memory budget in words (0 = paper default)")
      .flag("mpc-rounds", "1", "multi-round executor iterations")
      .flag("mpc-random-input", "true",  // matches MpcEngineConfig's default
            "input is already randomly partitioned (skips the re-partition "
            "round)")
      .flag("mpc-early-stop", "true",
            "stop as soon as a round neither shrinks the survivors nor "
            "reports progress units")
      .flag("mpc-max-path-length", "3",
            "augmenting combiner: odd augmenting-path length cap 2k+1 "
            "(certifies a 1 + 1/(k+1) approximation at the early stop)")
      .flag("mpc-epsilon", "0",
            "augmenting combiner: target (1+eps) approximation; overrides "
            "--mpc-max-path-length when > 0")
      .flag("mpc-edcs-beta", "16",
            "EDCS combiner: degree-sum cap beta (P1); larger ships more "
            "edges per machine and lands closer to 3/2")
      .flag("mpc-edcs-lambda", "2",
            "EDCS combiner: density slack lambda (P2 threshold beta - "
            "lambda); 1 <= lambda < beta")
      .flag("mpc-edcs-finish-maximal", "true",
            "EDCS combiner: close a round-capped run's matching to "
            "maximality with one coordinator sweep (keeps the factor-2 "
            "certificate)");
  add_streaming_flags(options);
}

MpcEngineConfig mpc_engine_config_from_options(const Options& options,
                                               VertexId n) {
  const MpcConfig fallback = MpcConfig::paper_default(n);
  MpcEngineConfig config;
  const std::int64_t machines = flag_at_least(options, "mpc-machines", 0);
  const std::int64_t budget = flag_at_least(options, "mpc-memory-budget", 0);
  config.mpc.num_machines = machines > 0 ? static_cast<std::size_t>(machines)
                                         : fallback.num_machines;
  config.mpc.memory_words =
      budget > 0 ? static_cast<std::uint64_t>(budget) : fallback.memory_words;
  config.max_rounds =
      static_cast<std::size_t>(flag_at_least(options, "mpc-rounds", 1));
  config.input_already_random = options.get_bool("mpc-random-input");
  config.early_stop = options.get_bool("mpc-early-stop");
  config.streaming_fold = streaming_enabled_from_options(options);
  config.streaming = streaming_options_from_options(options);
  return config;
}

}  // namespace rcc
