// Worst-case maximal matchings for the hub-gadget instance (R1c).
//
// Theorem 1 is about *maximum* matchings; the paper observes (Section 1.2)
// that an *arbitrary maximal* matching coreset can be Omega(k)-approximate.
// "Arbitrary" means an adversary may pick, among all maximal matchings of a
// piece, the most destructive one. This class realizes that adversary for
// the hub gadget: in every piece it first matches the left vertices whose
// planted edge (a_i, b_i) landed in this very piece to hub vertices, so the
// planted edge is blocked and never enters the summary; the summaries then
// only contain edges incident on the Theta(n/k) hubs, capping the composed
// matching at Theta(n/k).
//
// This is still an honest maximal matching of the piece — the adversary
// only exploits the freedom the maximal-matching coreset definition grants.
#pragma once

#include "coreset/coreset.hpp"
#include "graph/generators.hpp"

namespace rcc {

class HubAdversarialMaximalCoreset final : public MatchingCoreset {
 public:
  /// `gadget` describes the instance layout (pair count n, hub count).
  explicit HubAdversarialMaximalCoreset(const HubGadget& gadget)
      : n_(gadget.n), hubs_(gadget.hubs) {}

  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "adversarial-maximal-matching"; }

 private:
  VertexId n_;
  VertexId hubs_;
};

}  // namespace rcc
