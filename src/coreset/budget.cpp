#include "coreset/budget.hpp"

#include <algorithm>
#include <numeric>

namespace rcc {

const char* budget_policy_name(BudgetPolicy p) {
  switch (p) {
    case BudgetPolicy::kRandom: return "random";
    case BudgetPolicy::kFirst: return "first";
    case BudgetPolicy::kLowDegreeFirst: return "low-degree";
    case BudgetPolicy::kHighDegreeFirst: return "high-degree";
  }
  return "?";
}

EdgeList truncate_to_budget(const EdgeList& summary, EdgeSpan piece,
                            std::size_t budget, BudgetPolicy policy, Rng& rng) {
  if (summary.num_edges() <= budget) return summary;
  switch (policy) {
    case BudgetPolicy::kRandom:
      return summary.sample_edges(budget, rng);
    case BudgetPolicy::kFirst: {
      EdgeList out(summary.num_vertices());
      out.reserve(budget);
      for (std::size_t i = 0; i < budget; ++i) out.add(summary[i]);
      return out;
    }
    case BudgetPolicy::kLowDegreeFirst:
    case BudgetPolicy::kHighDegreeFirst: {
      const auto deg = piece.degrees();
      std::vector<std::size_t> idx(summary.num_edges());
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      const bool low_first = policy == BudgetPolicy::kLowDegreeFirst;
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        const auto ka = deg[summary[a].u] + deg[summary[a].v];
        const auto kb = deg[summary[b].u] + deg[summary[b].v];
        return low_first ? ka < kb : ka > kb;
      });
      EdgeList out(summary.num_vertices());
      out.reserve(budget);
      for (std::size_t i = 0; i < budget; ++i) out.add(summary[idx[i]]);
      return out;
    }
  }
  return summary;  // unreachable
}

EdgeList BudgetedMatchingCoreset::build(EdgeSpan piece,
                                        const PartitionContext& ctx,
                                        Rng& rng) const {
  const EdgeList full = inner_->build(piece, ctx, rng);
  return truncate_to_budget(full, piece, budget_, policy_, rng);
}

std::string BudgetedMatchingCoreset::name() const {
  return inner_->name() + "/budget=" + std::to_string(budget_) + "/" +
         budget_policy_name(policy_);
}

}  // namespace rcc
