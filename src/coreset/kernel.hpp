// Degree-capped kernels: the "small opt" exact coreset of footnote 3.
//
// The paper assumes MM(G), VC(G) = omega(k log n) and notes that otherwise
// the sketches of Chitnis et al. [20] give *exact* coresets of size
// O~(k^2). The combinatorial core of that result is the classic
// parameterized kernel: keeping, for every vertex, an arbitrary set of up
// to `cap` incident edges preserves every matching of size <= cap exactly
// (an exchange argument: a lost matching edge (u,v) implies cap kept edges
// at u, not all of which can be blocked by the other cap-1 matching edges).
//
// KernelMatchingCoreset ships the capped kernel of the piece; with
// cap >= MM(G) the composition is exact, and the summary has at most
// cap * n / ... in general but O(cap^2) edges once the piece itself has a
// small matching (all edges concentrate around <= 2*cap vertex-disjoint
// matched vertices' neighborhoods).
#pragma once

#include "coreset/coreset.hpp"

namespace rcc {

class MachineScratch;

/// Keeps at most `cap` incident edges per vertex (first-seen order).
/// Preserves MM exactly when MM(G) <= cap; see kernel tests for the
/// property sweep. `scratch` (optional) supplies epoch-stamped degree
/// counters so repeated calls skip the O(n) counter allocation + zeroing.
EdgeList vertex_cap_kernel(EdgeSpan edges, VertexId cap,
                           MachineScratch* scratch = nullptr);

/// As above into a caller-reused output list (cleared first).
void vertex_cap_kernel_into(EdgeList& out, EdgeSpan edges, VertexId cap,
                            MachineScratch* scratch = nullptr);

/// Matching coreset that sends the degree-capped kernel of the piece.
class KernelMatchingCoreset final : public MatchingCoreset {
 public:
  explicit KernelMatchingCoreset(VertexId cap) : cap_(cap) {
    RCC_CHECK(cap >= 1);
  }

  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override;

 private:
  VertexId cap_;
};

}  // namespace rcc
