#include "coreset/vc_coreset.hpp"

#include <cmath>

namespace rcc {

int PeelingVcCoreset::num_levels(VertexId n, std::size_t k) {
  const double nn = std::max<double>(n, 2);
  const double floor_threshold = 4.0 * std::log2(nn);
  int delta = 1;
  while (nn / (static_cast<double>(k) * std::exp2(delta)) > floor_threshold) {
    ++delta;
  }
  return delta;
}

VcCoresetOutput PeelingVcCoreset::build(EdgeSpan piece,
                                        const PartitionContext& ctx,
                                        Rng& /*rng*/) const {
  const double n = std::max<double>(ctx.num_vertices, 2);
  const double k = static_cast<double>(ctx.k);
  const int delta = num_levels(ctx.num_vertices, ctx.k);

  VcCoresetOutput out;
  if (delta <= 1) {
    // No peeling levels: the whole piece is the residual summary.
    out.residual_edges = piece.to_edge_list();
    return out;
  }
  std::vector<bool> removed(piece.num_vertices(), false);
  // Level 1 reads the span in place; only the (shrinking) survivor set is
  // ever materialized, so the machine never copies its input piece.
  EdgeList current(piece.num_vertices());
  for (int j = 1; j <= delta - 1; ++j) {
    const double thr = n / (k * std::exp2(j + 1));
    const auto deg = j == 1 ? piece.degrees() : current.degrees();
    for (VertexId v = 0; v < piece.num_vertices(); ++v) {
      if (!removed[v] && static_cast<double>(deg[v]) >= thr) {
        removed[v] = true;
        out.fixed_vertices.push_back(v);
      }
    }
    const auto survives = [&](const Edge& e) {
      return !removed[e.u] && !removed[e.v];
    };
    current = j == 1 ? piece.filter(survives) : current.filter(survives);
  }
  out.residual_edges = std::move(current);
  return out;
}

VcCoresetOutput MinVcOfPieceCoreset::build(EdgeSpan piece,
                                           const PartitionContext& /*ctx*/,
                                           Rng& /*rng*/) const {
  VcCoresetOutput out;
  out.residual_edges = EdgeList(piece.num_vertices());
  out.fixed_vertices = forest_min_vertex_cover(piece, tie_).vertices();
  return out;
}

}  // namespace rcc
