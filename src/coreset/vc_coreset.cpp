#include "coreset/vc_coreset.hpp"

#include <cmath>

#include "util/workspace.hpp"

namespace rcc {

namespace {

/// Reusable buffers of the per-machine peeling build (stashed in the
/// machine's workspace slot; contents are garbage between calls).
struct PeelScratch {
  std::vector<VertexId> deg;
  EdgeList current;
  EdgeList next;
};

}  // namespace

int PeelingVcCoreset::num_levels(VertexId n, std::size_t k) {
  const double nn = std::max<double>(n, 2);
  const double floor_threshold = 4.0 * std::log2(nn);
  int delta = 1;
  while (nn / (static_cast<double>(k) * std::exp2(delta)) > floor_threshold) {
    ++delta;
  }
  return delta;
}

VcCoresetOutput PeelingVcCoreset::build(EdgeSpan piece,
                                        const PartitionContext& ctx,
                                        Rng& /*rng*/) const {
  const double n = std::max<double>(ctx.num_vertices, 2);
  const double k = static_cast<double>(ctx.k);
  const int delta = num_levels(ctx.num_vertices, ctx.k);

  VcCoresetOutput out;
  if (delta <= 1) {
    // No peeling levels: the whole piece is the residual summary.
    out.residual_edges = piece.to_edge_list();
    return out;
  }
  MachineScratch local;
  MachineScratch& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;
  PeelScratch& s = scratch.state<PeelScratch>();
  EpochMarks& removed = scratch.vertex_marks(piece.num_vertices());
  // Level 1 reads the span in place; only the (shrinking) survivor set is
  // ever materialized, so the machine never copies its input piece. The
  // degree buffer and the survivor lists double-buffer through the
  // machine's workspace across levels (and across rounds).
  s.current.reset(piece.num_vertices());
  s.next.reset(piece.num_vertices());
  for (int j = 1; j <= delta - 1; ++j) {
    const double thr = n / (k * std::exp2(j + 1));
    if (j == 1) {
      piece.degrees_into(s.deg);
    } else {
      EdgeSpan(s.current).degrees_into(s.deg);
    }
    for (VertexId v = 0; v < piece.num_vertices(); ++v) {
      if (!removed.test(v) && static_cast<double>(s.deg[v]) >= thr) {
        removed.set(v);
        out.fixed_vertices.push_back(v);
      }
    }
    const auto survives = [&](const Edge& e) {
      return !removed.test(e.u) && !removed.test(e.v);
    };
    s.next.assign_filtered(j == 1 ? EdgeSpan(piece) : EdgeSpan(s.current),
                           survives);
    std::swap(s.current, s.next);
  }
  // The summary owns its edges (the engine retains it past this call), so
  // the final survivor set is copied out rather than moved from the scratch.
  out.residual_edges.assign(s.current);
  return out;
}

VcCoresetOutput MinVcOfPieceCoreset::build(EdgeSpan piece,
                                           const PartitionContext& /*ctx*/,
                                           Rng& /*rng*/) const {
  VcCoresetOutput out;
  out.residual_edges = EdgeList(piece.num_vertices());
  out.fixed_vertices = forest_min_vertex_cover(piece, tie_).vertices();
  return out;
}

}  // namespace rcc
