// Randomized composable coreset interfaces (Definition in Section 1,
// following [52] with the paper's graph adaptation).
//
// A coreset algorithm maps a machine's piece G(i) of a random k-partitioning
// to a small summary. For matching the summary is a subgraph (an edge list);
// for vertex cover the paper augments the definition so the summary may also
// contain a *fixed solution*: vertices added directly to the final cover.
// Size is measured in edges plus fixed vertices (Section 1, "we further
// augment this definition...").
#pragma once

#include <memory>
#include <string>

#include "graph/edge_list.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace rcc {

/// Summary sent by one machine for the vertex cover problem.
struct VcCoresetOutput {
  EdgeList residual_edges;               // subgraph part of the summary
  std::vector<VertexId> fixed_vertices;  // joined directly into the cover

  /// Size in "items" (edges + fixed vertices), the coreset size measure.
  std::size_t size_items() const {
    return residual_edges.num_edges() + fixed_vertices.size();
  }
};

/// Strategy interface: matching coresets emit a subgraph. Pieces arrive as
/// EdgeSpan views — shards of the protocol engine's edge arena (or whole
/// EdgeLists via the implicit conversion) — so building a summary never
/// copies the machine's input.
class MatchingCoreset {
 public:
  virtual ~MatchingCoreset() = default;

  /// Builds the summary for one piece. `ctx` carries the only global
  /// knowledge machines have (n, k, own index, bipartition boundary).
  virtual EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                         Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

/// Strategy interface: vertex cover coresets emit a subgraph plus a fixed
/// partial solution.
class VertexCoverCoreset {
 public:
  virtual ~VertexCoverCoreset() = default;

  virtual VcCoresetOutput build(EdgeSpan piece, const PartitionContext& ctx,
                                Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace rcc
