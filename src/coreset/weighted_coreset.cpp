#include "coreset/weighted_coreset.hpp"

#include <algorithm>
#include <vector>

#include "matching/max_matching.hpp"
#include "util/workspace.hpp"

namespace rcc {

WeightedCoresetOutput crouch_stubbs_coreset(WeightedEdgeSpan piece,
                                            const PartitionContext& ctx,
                                            double class_base) {
  WeightedCoresetOutput out;
  out.edges.num_vertices = piece.num_vertices();

  // Weight lookup so matched class edges can be re-emitted with weights —
  // flat sorted array instead of a hash map: sort (edge, weight) pairs by
  // edge ascending / weight DESCENDING, so the first entry of an edge's run
  // is its maximum weight and lookup is one lower_bound. Bit-identical to
  // the former unordered_map max-merge.
  std::vector<WeightedEdge> weight_of(piece.begin(), piece.end());
  for (WeightedEdge& we : weight_of) {
    const Edge normalized = we.edge();
    we.u = normalized.u;
    we.v = normalized.v;
  }
  std::sort(weight_of.begin(), weight_of.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.weight > b.weight;
            });
  const auto max_weight = [&](const Edge& e) {
    const auto it = std::lower_bound(
        weight_of.begin(), weight_of.end(), e,
        [](const WeightedEdge& we, const Edge& key) {
          if (we.u != key.u) return we.u < key.u;
          return we.v < key.v;
        });
    RCC_CHECK(it != weight_of.end() && it->u == e.u && it->v == e.v);
    return it->weight;
  };

  const WeightClasses wc = split_weight_classes(piece, class_base);
  for (const EdgeList& cls : wc.classes) {
    if (cls.empty()) continue;
    EdgeList dedup_cls = cls;
    dedup_cls.dedup();
    const Matching m =
        maximum_matching(dedup_cls, ctx.left_size, ctx.scratch);
    for (const Edge& e : m.to_edge_list()) {
      out.edges.add(e.u, e.v, max_weight(e));
    }
  }
  return out;
}

Matching compose_weighted_coresets(
    const std::vector<WeightedCoresetOutput>& coresets, VertexId num_vertices,
    VertexId left_size, double class_base) {
  WeightedEdgeList all;
  all.num_vertices = num_vertices;
  for (const auto& c : coresets) {
    RCC_CHECK(c.edges.num_vertices == num_vertices);
    all.edges.insert(all.edges.end(), c.edges.edges.begin(), c.edges.edges.end());
  }
  return crouch_stubbs_matching(all, left_size, class_base);
}

}  // namespace rcc
