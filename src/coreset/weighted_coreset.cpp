#include "coreset/weighted_coreset.hpp"

#include <unordered_map>

#include "matching/max_matching.hpp"

namespace rcc {

WeightedCoresetOutput crouch_stubbs_coreset(WeightedEdgeSpan piece,
                                            const PartitionContext& ctx,
                                            double class_base) {
  WeightedCoresetOutput out;
  out.edges.num_vertices = piece.num_vertices();

  // Weight lookup so matched class edges can be re-emitted with weights.
  std::unordered_map<Edge, double, EdgeHash> weight_of;
  weight_of.reserve(piece.num_edges() * 2);
  for (const WeightedEdge& we : piece) {
    auto [it, inserted] = weight_of.try_emplace(we.edge(), we.weight);
    if (!inserted && we.weight > it->second) it->second = we.weight;
  }

  const WeightClasses wc = split_weight_classes(piece, class_base);
  for (const EdgeList& cls : wc.classes) {
    if (cls.empty()) continue;
    EdgeList dedup_cls = cls;
    dedup_cls.dedup();
    const Matching m = maximum_matching(dedup_cls, ctx.left_size);
    for (const Edge& e : m.to_edge_list()) {
      out.edges.add(e.u, e.v, weight_of.at(e));
    }
  }
  return out;
}

Matching compose_weighted_coresets(
    const std::vector<WeightedCoresetOutput>& coresets, VertexId num_vertices,
    VertexId left_size, double class_base) {
  WeightedEdgeList all;
  all.num_vertices = num_vertices;
  for (const auto& c : coresets) {
    RCC_CHECK(c.edges.num_vertices == num_vertices);
    all.edges.insert(all.edges.end(), c.edges.edges.begin(), c.edges.edges.end());
  }
  return crouch_stubbs_matching(all, left_size, class_base);
}

}  // namespace rcc
