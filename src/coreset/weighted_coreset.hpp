// Weighted matching coresets via the Crouch-Stubbs reduction (Section 1.1).
//
// Each machine splits its weighted piece into geometric weight classes and
// sends a maximum (unweighted) matching of every class — O(log n) classes,
// so the coreset grows by an O(log n) factor; the composition loses at most
// a further factor 2 from the greedy class merge, matching the paper's
// "factor 2 loss in approximation and extra O(log n) term in the space".
#pragma once

#include <vector>

#include "matching/weighted.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {

/// Summary for one machine: the union of per-class maximum matchings, kept
/// with their weights so the coordinator can run the weighted merge.
struct WeightedCoresetOutput {
  WeightedEdgeList edges;

  std::size_t size_items() const { return edges.edges.size(); }
};

/// Builds the Crouch-Stubbs coreset of one weighted piece (a shard of the
/// engine's weighted-edge arena, or a whole WeightedEdgeList — no copy).
WeightedCoresetOutput crouch_stubbs_coreset(WeightedEdgeSpan piece,
                                            const PartitionContext& ctx,
                                            double class_base = 2.0);

/// Coordinator side: unions the summaries and runs the Crouch-Stubbs merge.
Matching compose_weighted_coresets(
    const std::vector<WeightedCoresetOutput>& coresets, VertexId num_vertices,
    VertexId left_size = 0, double class_base = 2.0);

}  // namespace rcc
