// Concrete matching coresets.
//
//  * MaximumMatchingCoreset — the paper's Theorem 1: send any maximum
//    matching of the piece. O(1)-approximate under random partitioning.
//  * MaximalMatchingCoreset — the natural greedy idea the paper rejects
//    (Section 1.2): an arbitrary maximal matching per piece can lose a
//    factor Omega(k). Edge-order policies expose that adversarial freedom.
//  * SubsampledMatchingCoreset — Remark 5.2: maximum matching subsampled at
//    rate 1/alpha; alpha-approximate with O~(nk/alpha^2) total
//    communication, matching the Theorem 5 lower bound.
#pragma once

#include <functional>

#include "coreset/coreset.hpp"
#include "matching/greedy.hpp"

namespace rcc {

class MaximumMatchingCoreset final : public MatchingCoreset {
 public:
  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "maximum-matching"; }
};

/// Maximal matching under a configurable edge order. An edge-key function
/// (smaller key scanned first) makes the adversarial Omega(k) order of the
/// hub-gadget experiment expressible; without a key the scan order is
/// random or input order.
class MaximalMatchingCoreset final : public MatchingCoreset {
 public:
  explicit MaximalMatchingCoreset(GreedyOrder order = GreedyOrder::kRandom)
      : order_(order) {}
  explicit MaximalMatchingCoreset(std::function<double(const Edge&)> key)
      : key_(std::move(key)) {}

  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "maximal-matching"; }

 private:
  GreedyOrder order_ = GreedyOrder::kRandom;
  std::function<double(const Edge&)> key_;  // empty = use order_
};

/// Maximum matching with each matched edge kept independently w.p. 1/alpha.
class SubsampledMatchingCoreset final : public MatchingCoreset {
 public:
  explicit SubsampledMatchingCoreset(double alpha) : alpha_(alpha) {
    RCC_CHECK(alpha >= 1.0);
  }

  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "subsampled-maximum-matching"; }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

}  // namespace rcc
