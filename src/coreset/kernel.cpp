#include "coreset/kernel.hpp"

namespace rcc {

EdgeList vertex_cap_kernel(EdgeSpan edges, VertexId cap) {
  std::vector<VertexId> kept(edges.num_vertices(), 0);
  EdgeList out(edges.num_vertices());
  for (const Edge& e : edges) {
    if (kept[e.u] < cap && kept[e.v] < cap) {
      out.add(e);
      ++kept[e.u];
      ++kept[e.v];
    }
  }
  return out;
}

EdgeList KernelMatchingCoreset::build(EdgeSpan piece,
                                      const PartitionContext& /*ctx*/,
                                      Rng& /*rng*/) const {
  return vertex_cap_kernel(piece, cap_);
}

std::string KernelMatchingCoreset::name() const {
  return "kernel/cap=" + std::to_string(cap_);
}

}  // namespace rcc
