#include "coreset/kernel.hpp"

#include "util/workspace.hpp"

namespace rcc {

void vertex_cap_kernel_into(EdgeList& out, EdgeSpan edges, VertexId cap,
                            MachineScratch* scratch) {
  out.reset(edges.num_vertices());
  MachineScratch local;
  MachineScratch& s = scratch != nullptr ? *scratch : local;
  // Epoch-stamped counters: clearing is an epoch bump, not an O(n) zeroing.
  EpochMap<VertexId>& kept = s.vertex_counts(edges.num_vertices());
  for (const Edge& e : edges) {
    VertexId& ku = kept.ref(e.u);
    VertexId& kv = kept.ref(e.v);
    if (ku < cap && kv < cap) {
      out.add(e);
      ++ku;
      ++kv;
    }
  }
}

EdgeList vertex_cap_kernel(EdgeSpan edges, VertexId cap,
                           MachineScratch* scratch) {
  EdgeList out;
  vertex_cap_kernel_into(out, edges, cap, scratch);
  return out;
}

EdgeList KernelMatchingCoreset::build(EdgeSpan piece,
                                      const PartitionContext& ctx,
                                      Rng& /*rng*/) const {
  return vertex_cap_kernel(piece, cap_, ctx.scratch);
}

std::string KernelMatchingCoreset::name() const {
  return "kernel/cap=" + std::to_string(cap_);
}

}  // namespace rcc
