#include "coreset/matching_coresets.hpp"

#include "matching/max_matching.hpp"

namespace rcc {

EdgeList MaximumMatchingCoreset::build(EdgeSpan piece,
                                       const PartitionContext& ctx,
                                       Rng& /*rng*/) const {
  return maximum_matching(piece, ctx.left_size, ctx.scratch).to_edge_list();
}

EdgeList MaximalMatchingCoreset::build(EdgeSpan piece,
                                       const PartitionContext& ctx,
                                       Rng& rng) const {
  const Matching m =
      key_ ? greedy_maximal_matching_by(piece, key_, ctx.scratch)
           : greedy_maximal_matching(piece, order_, rng, ctx.scratch);
  return m.to_edge_list();
}

EdgeList SubsampledMatchingCoreset::build(EdgeSpan piece,
                                          const PartitionContext& ctx,
                                          Rng& rng) const {
  const EdgeList mm =
      maximum_matching(piece, ctx.left_size, ctx.scratch).to_edge_list();
  return mm.subsample(1.0 / alpha_, rng);
}

}  // namespace rcc
