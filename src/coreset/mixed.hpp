// Algorithm-independence ablation for Theorem 1.
//
// The paper stresses that its matching coreset "requires no prior
// coordination ... and in fact each machine can use a different algorithm
// for computing the maximum matching" (Section 1.2). This coreset makes
// that claim executable: machines rotate between three genuinely different
// maximum-matching computations (different algorithms and different edge
// orders, hence generally different — but all maximum — matchings). The
// EXP16 ablation checks the composed ratio is indistinguishable from the
// single-algorithm coreset.
#pragma once

#include "coreset/coreset.hpp"

namespace rcc {

class MixedMaximumMatchingCoreset final : public MatchingCoreset {
 public:
  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override { return "mixed-maximum-matching"; }
};

}  // namespace rcc
