// The paper's VC-Coreset (Section 3.2, Theorem 2) and the negative
// min-VC-as-summary baseline (Section 1.2).
#pragma once

#include "coreset/coreset.hpp"
#include "vertex_cover/forest.hpp"

namespace rcc {

/// VC-Coreset(G(i)), verbatim from the paper:
///
///   Delta := smallest integer with n / (k * 2^Delta) <= 4 log n
///   G_1 := G(i)
///   for j = 1 .. Delta-1:
///     V_j   := { v : deg_{G_j}(v) >= n / (k * 2^{j+1}) }
///     G_{j+1} := G_j \ V_j
///   return fixed = union V_j,  residual = G_Delta
///
/// The residual has max degree < n/(k*2^Delta) <= O(log n), so at most
/// O(n log n) edges; the fixed set unions to O(log n) * VC(G) across all
/// machines w.h.p. (Lemma 3.6). Logs are base 2 here; the paper's claims
/// are insensitive to the base.
class PeelingVcCoreset final : public VertexCoverCoreset {
 public:
  VcCoresetOutput build(EdgeSpan piece, const PartitionContext& ctx,
                        Rng& rng) const override;
  std::string name() const override { return "peeling-vc"; }

  /// Delta as defined above; exposed for tests and size accounting.
  static int num_levels(VertexId n, std::size_t k);
};

/// Negative baseline (Section 1.2): each machine sends a minimum vertex
/// cover of its own piece as the fixed solution (no residual edges). On a
/// star, pieces are single edges whose two minimum covers are locally
/// indistinguishable; with the adversarial tie-break the union degrades to
/// Omega(k) times the optimum. Exact on forest pieces (the paper's
/// instance); aborts on pieces with cycles.
class MinVcOfPieceCoreset final : public VertexCoverCoreset {
 public:
  explicit MinVcOfPieceCoreset(ForestTieBreak tie = ForestTieBreak::kHighId)
      : tie_(tie) {}

  VcCoresetOutput build(EdgeSpan piece, const PartitionContext& ctx,
                        Rng& rng) const override;
  std::string name() const override { return "min-vc-of-piece"; }

 private:
  ForestTieBreak tie_;
};

}  // namespace rcc
