// Size-budgeted coresets: the empirical probe behind the Theorem 3/4 lower
// bounds.
//
// The lower bounds say: *whatever* an s-item summary keeps, if s is small it
// cannot preferentially keep the edges that matter (the hidden perfect
// matching E_{A-bar,B-bar} in D_Matching; the hidden edge e* in D_VC),
// because those edges are statistically indistinguishable from decoys using
// only the machine's local view. The wrapper below truncates any coreset to
// a budget under several *local* selection policies; the experiments show
// the recovered-value curve is policy-independent, which is precisely the
// indistinguishability argument made quantitative.
#pragma once

#include <memory>

#include "coreset/coreset.hpp"

namespace rcc {

enum class BudgetPolicy {
  kRandom,           // keep a uniform subset of the summary
  kFirst,            // keep the first `budget` edges (scan order)
  kLowDegreeFirst,   // keep edges with the smallest local endpoint degrees
  kHighDegreeFirst,  // keep edges with the largest local endpoint degrees
};

const char* budget_policy_name(BudgetPolicy p);

/// Truncates `summary` to at most `budget` edges. Degree policies rank an
/// edge by deg(u) + deg(v) in the machine's *own piece* (local information
/// only, as the model demands).
EdgeList truncate_to_budget(const EdgeList& summary, EdgeSpan piece,
                            std::size_t budget, BudgetPolicy policy, Rng& rng);

/// A MatchingCoreset that wraps another and truncates its output.
class BudgetedMatchingCoreset final : public MatchingCoreset {
 public:
  BudgetedMatchingCoreset(std::shared_ptr<const MatchingCoreset> inner,
                          std::size_t budget, BudgetPolicy policy)
      : inner_(std::move(inner)), budget_(budget), policy_(policy) {}

  EdgeList build(EdgeSpan piece, const PartitionContext& ctx,
                 Rng& rng) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const MatchingCoreset> inner_;
  std::size_t budget_;
  BudgetPolicy policy_;
};

}  // namespace rcc
