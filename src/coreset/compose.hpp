// Coreset composition: what the coordinator does with the union of the
// machines' summaries.
#pragma once

#include <vector>

#include "coreset/coreset.hpp"
#include "matching/matching.hpp"
#include "vertex_cover/vertex_cover.hpp"

namespace rcc {

enum class ComposeSolver {
  kMaximum,  // exact maximum matching of the union (what the paper suggests)
  kGreedy,   // random-order maximal matching (cheaper, still 2-approx of union)
};

/// Matching: union the coreset subgraphs and run a matching algorithm on the
/// union. `left_size` > 0 enables the bipartite exact solver.
Matching compose_matching_coresets(const std::vector<EdgeList>& coresets,
                                   ComposeSolver solver, VertexId left_size,
                                   Rng& rng);

/// Vertex cover: union all fixed vertices, drop residual edges they already
/// cover, and 2-approximate the rest (Section 3.2: "compute a vertex cover
/// of union G_Delta^(i) and return it together with union V_cs^(i)").
VertexCover compose_vc_coresets(const std::vector<VcCoresetOutput>& coresets,
                                VertexId num_vertices, Rng& rng);

/// The GreedyMatch combiner of Section 3.1, used by the proof of Theorem 1:
/// scan machines in order; from each machine's *maximum matching*, add every
/// edge compatible with the matching built so far. Returns the matching and
/// the size after each step (step_sizes[i] = |M^(i+1)|), which EXP12 uses to
/// verify the Lemma 3.2 growth claim.
struct GreedyMatchTrace {
  Matching matching;
  std::vector<std::size_t> step_sizes;
};
GreedyMatchTrace greedy_match(const std::vector<EdgeList>& pieces,
                              const PartitionContext& base_ctx, Rng& rng);

}  // namespace rcc
