#include "coreset/compose.hpp"

#include "matching/greedy.hpp"
#include "matching/max_matching.hpp"
#include "vertex_cover/approx.hpp"

namespace rcc {

Matching compose_matching_coresets(const std::vector<EdgeList>& coresets,
                                   ComposeSolver solver, VertexId left_size,
                                   Rng& rng) {
  EdgeList all = EdgeList::union_of(coresets);
  if (solver == ComposeSolver::kMaximum) {
    return maximum_matching(all, left_size);
  }
  return greedy_maximal_matching(all, GreedyOrder::kRandom, rng);
}

VertexCover compose_vc_coresets(const std::vector<VcCoresetOutput>& coresets,
                                VertexId num_vertices, Rng& rng) {
  VertexCover cover(num_vertices);
  std::vector<EdgeList> residuals;
  residuals.reserve(coresets.size());
  for (const auto& c : coresets) {
    for (VertexId v : c.fixed_vertices) cover.insert(v);
    residuals.push_back(c.residual_edges);
  }
  EdgeList residual_union = EdgeList::union_of(residuals);
  // The coordinator knows the fixed sets; edges they already cover need no
  // further cover vertices.
  residual_union = residual_union.filter(
      [&](const Edge& e) { return !cover.contains(e.u) && !cover.contains(e.v); });
  cover.merge(vc_two_approximation(residual_union, rng));
  return cover;
}

GreedyMatchTrace greedy_match(const std::vector<EdgeList>& pieces,
                              const PartitionContext& base_ctx, Rng& rng) {
  GreedyMatchTrace trace;
  trace.matching = Matching(base_ctx.num_vertices);
  trace.step_sizes.reserve(pieces.size());
  for (const EdgeList& piece : pieces) {
    // "adding to M^(i-1) the edges in an arbitrary maximum matching of G(i)
    //  that do not violate the matching property" (Section 3.1). The paper
    // takes an arbitrary maximum matching; we take whatever the dispatcher
    // returns, scanned in random order so ties are not systematically biased.
    EdgeList mm = maximum_matching(piece, base_ctx.left_size).to_edge_list();
    std::vector<Edge> shuffled(mm.begin(), mm.end());
    rng.shuffle(shuffled);
    greedy_extend(trace.matching,
                  EdgeList(base_ctx.num_vertices, std::move(shuffled)));
    trace.step_sizes.push_back(trace.matching.size());
  }
  return trace;
}

}  // namespace rcc
