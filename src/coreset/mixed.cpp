#include "coreset/mixed.hpp"

#include "matching/blossom.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/max_matching.hpp"

namespace rcc {

EdgeList MixedMaximumMatchingCoreset::build(EdgeSpan piece,
                                            const PartitionContext& ctx,
                                            Rng& rng) const {
  switch (ctx.machine_index % 3) {
    case 0:
      // Dispatcher default (HK on bipartite, blossom otherwise).
      return maximum_matching(piece, ctx.left_size).to_edge_list();
    case 1: {
      // Same solver, shuffled edge order: ties broken differently, so a
      // different (still maximum) matching in general.
      std::vector<Edge> shuffled(piece.begin(), piece.end());
      rng.shuffle(shuffled);
      const EdgeList reordered(piece.num_vertices(), std::move(shuffled));
      return maximum_matching(reordered, ctx.left_size).to_edge_list();
    }
    default:
      // Force the general-graph solver even when a bipartition is known.
      return blossom_maximum_matching(Graph(piece)).to_edge_list();
  }
}

}  // namespace rcc
