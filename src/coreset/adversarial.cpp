#include "coreset/adversarial.hpp"

#include "matching/greedy.hpp"

namespace rcc {

EdgeList HubAdversarialMaximalCoreset::build(EdgeSpan piece,
                                             const PartitionContext& /*ctx*/,
                                             Rng& /*rng*/) const {
  // Locally visible: which planted pairs (a_i, b_i) live in this piece.
  std::vector<bool> pair_local(n_, false);
  for (const Edge& e : piece) {
    if (e.v == e.u + n_ && e.u < n_) pair_local[e.u] = true;
  }

  const VertexId hub_begin = 2 * n_;
  auto is_hub_edge = [&](const Edge& e) { return e.v >= hub_begin; };

  // Scan order: (0) hub edges of pair-local left vertices — consuming hubs
  // to block those pairs; (1) other hub edges; (2) planted pair edges.
  const Matching m = greedy_maximal_matching_by(piece, [&](const Edge& e) {
    if (is_hub_edge(e)) return pair_local[e.u] ? 0.0 : 1.0;
    return 2.0;
  });
  RCC_CHECK(m.maximal_in(piece));
  return m.to_edge_list();
}

}  // namespace rcc
