// EXP7 (Remark 5.2 / R4a): the subsampled-matching protocol trades
// approximation alpha for communication ~ nk/alpha^2 on D_Matching — tight
// against the Theorem 5 lower bound.
//
// Table: alpha sweep -> measured ratio (~alpha) and total communication
// (words), with the nk/alpha^2 prediction alongside.
#include "bench_common.hpp"
#include "distributed/protocols.hpp"
#include "lower_bounds/hard_instances.hpp"
#include "matching/max_matching.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP7/bench_subsampled_protocol",
      "Remark 5.2: subsampling the maximum-matching coreset at rate 1/alpha "
      "gives ~alpha-approximation with ~nk/alpha^2 words of communication");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(40000 * setup.scale);
  const std::size_t k = 50;
  const double inst_alpha = 10.0;
  const DMatchingInstance inst = make_d_matching(n, inst_alpha, k, rng);
  const std::size_t opt = maximum_matching_size(inst.edges, inst.left_size());
  std::printf("D_Matching: n=%u k=%zu MM(G)=%zu\n\n", n, k, opt);

  TablePrinter table({"alpha", "ratio", "comm(words)", "comm*alpha^2/(n*k)",
                      "ratio/alpha"});
  bool comm_shape = true;
  for (double alpha : {1.0, 2.0, 4.0, 8.0}) {
    const MatchingProtocolResult r = subsampled_matching_protocol(
        inst.edges, k, alpha, inst.left_size(), rng, nullptr);
    const double ratio = static_cast<double>(opt) /
                         static_cast<double>(std::max<std::size_t>(
                             r.solution.size(), 1));
    const double comm = static_cast<double>(r.comm.total_words());
    const double normalized = comm * alpha * alpha /
                              (static_cast<double>(n) * static_cast<double>(k));
    // Normalized communication should be ~constant across alpha (the
    // nk/alpha^2 law). Per-piece MM ~ n/alpha_inst + n/k edges.
    table.add_row({TablePrinter::fmt_ratio(alpha), TablePrinter::fmt_ratio(ratio),
                   TablePrinter::fmt(std::uint64_t{r.comm.total_words()}),
                   TablePrinter::fmt_ratio(normalized),
                   TablePrinter::fmt_ratio(ratio / alpha)});
    comm_shape &= ratio <= 9.0 * alpha;  // alpha times the Theorem 1 constant
  }
  table.print();
  bench::verdict(comm_shape,
                 "ratio grows ~linearly with alpha while communication falls "
                 "~quadratically: the nk/alpha^2 frontier of Theorem 5");
  return comm_shape ? 0 : 1;
}
