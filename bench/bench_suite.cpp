// Unified benchmark suite: one binary, one pinned scenario grid, one JSON
// schema — the perf trajectory every optimization PR diffs against.
//
// The grid is instance family (sparse / dense / bipartite / crown-forest)
// x protocol scenario (partition, single- and multi-round matching, VC,
// augmenting rounds, filtering) x cluster shape (k machines, round budget).
// Rows are pinned: adding a scenario appends a row; changing an existing
// row's parameters is a baseline reset and must re-check-in BENCH_PR5.json
// (see README "Performance playbook").
//
// Output: a table on stdout, and with --json a machine-readable file that
// tools/compare_bench.py diffs against the checked-in baseline (±10%
// threshold in CI, non-gating).
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/graph_pack.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/edcs_rounds.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "partition/sharded_partition.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rcc::bench {
namespace {

struct Family {
  std::string name;
  VertexId left_size = 0;  // 0 = not bipartite
  EdgeList edges;
};

/// gnm requires m <= n*(n-1)/2. Small --scale values shrink n (floored at 8)
/// faster than m — at scale 0.1 the dense family asks for 20000 edges on 200
/// vertices (universe 19900) — so every gnm family clamps m to its universe
/// instead of tripping the generator's invariant.
std::uint64_t clamp_to_universe(VertexId n, std::uint64_t m) {
  const std::uint64_t universe =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  return std::min(m, universe);
}

std::vector<Family> make_families(double scale, std::uint64_t seed) {
  const auto sz = [&](double base) {
    return static_cast<VertexId>(std::max(8.0, base * scale));
  };
  std::vector<Family> families;
  {
    Rng rng(seed);
    const VertexId n = sz(24000);
    families.push_back(
        {"sparse", 0, gnm(n, clamp_to_universe(n, sz(96000)), rng)});
  }
  {
    Rng rng(seed + 1);
    const VertexId n = sz(2000);
    families.push_back(
        {"dense", 0, gnm(n, clamp_to_universe(n, sz(200000)), rng)});
  }
  {
    Rng rng(seed + 2);
    const VertexId side = sz(10000);
    families.push_back({"bipartite", side,
                        random_bipartite(side, side, 6.0 / side, rng)});
  }
  {
    families.push_back({"crown_forest", 0, crown_forest(sz(1500), 5)});
  }
  return families;
}

struct Row {
  std::string scenario;
  std::string family;
  std::string transport = "inproc";  // where the machine phase ran
  std::size_t k = 0;
  std::size_t rounds = 0;  // round budget handed to the executor
  VertexId n = 0;
  std::size_t m = 0;
  std::size_t engine_rounds = 0;  // rounds actually run
  std::size_t processed_edges = 0;  // sum of per-round active edge sets
  std::size_t solution = 0;
  std::uint64_t comm_words = 0;  // ledger-charged communication (0 = n/a)
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  double edges_per_sec = 0.0;
  std::uint64_t file_bytes = 0;     // .rgp size on disk (packed rows only)
  std::uint64_t peak_rss_bytes = 0; // process high-water RSS after the row
  std::uint64_t worker_forks = 0;   // processes forked by the machine phase
};

/// Process peak resident set (high-water mark, monotone over the process
/// lifetime). Meaningful for out-of-core claims only when the packed rows
/// run alone (--family packed): the in-memory families would raise the mark
/// to their own working set first.
std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // Linux: KiB
}

struct RunOutcome {
  std::size_t engine_rounds = 1;
  std::size_t processed_edges = 0;
  std::size_t solution = 0;
  std::uint64_t comm_words = 0;
  std::uint64_t worker_forks = 0;
};

MpcEngineConfig engine_config(const Family& f, std::size_t k,
                              std::size_t rounds) {
  MpcEngineConfig config;
  config.mpc.num_machines = k;
  // Throughput benchmark, not a memory-model experiment: budget big enough
  // that the ledger never aborts on any pinned row.
  config.mpc.memory_words = 16 * static_cast<std::uint64_t>(f.edges.num_edges()) + 4096;
  config.max_rounds = rounds;
  return config;
}

RunOutcome processed_of(const MpcExecutionStats& stats) {
  RunOutcome out;
  out.engine_rounds = stats.engine_rounds;
  out.comm_words = stats.total_comm_words;
  out.worker_forks = stats.worker_forks;
  for (const auto& r : stats.per_round) out.processed_edges += r.active_edges;
  return out;
}

/// One pinned grid row: `run` executes the scenario once and reports what it
/// processed; the harness repeats it and keeps median/min wall time.
template <typename RunFn>
Row measure(const std::string& scenario, const std::string& family,
            std::size_t k, std::size_t rounds, VertexId n, std::size_t m,
            int reps, std::uint64_t seed, const RunFn& run) {
  Row row;
  row.scenario = scenario;
  row.family = family;
  row.k = k;
  row.rounds = rounds;
  row.n = n;
  row.m = m;
  std::vector<double> times;
  RunOutcome outcome;
  for (int rep = 0; rep < reps; ++rep) {
    Rng rng(seed + 1000 * static_cast<std::uint64_t>(rep));
    WallTimer timer;
    outcome = run(rng);
    times.push_back(timer.seconds());
  }
  std::sort(times.begin(), times.end());
  row.seconds_min = times.front();
  row.seconds_median = times[times.size() / 2];
  row.engine_rounds = outcome.engine_rounds;
  row.processed_edges = outcome.processed_edges;
  row.solution = outcome.solution;
  row.comm_words = outcome.comm_words;
  row.worker_forks = outcome.worker_forks;
  // High-water RSS is stamped on EVERY row (it was 0 for non-packed rows
  // before, which read as "unmeasured"); being process-monotone it is only
  // an out-of-core bound when the packed family runs alone.
  row.peak_rss_bytes = peak_rss_bytes();
  row.edges_per_sec =
      row.seconds_median > 0.0
          ? static_cast<double>(std::max(row.processed_edges, row.m)) /
                row.seconds_median
          : 0.0;
  return row;
}

template <typename RunFn>
Row measure(const std::string& scenario, const Family& f, std::size_t k,
            std::size_t rounds, int reps, std::uint64_t seed,
            const RunFn& run) {
  return measure(scenario, f.name, k, rounds, f.edges.num_vertices(),
                 f.edges.num_edges(), reps, seed, run);
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const ExperimentSetup& setup, std::size_t threads) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  RCC_CHECK(out != nullptr);
  std::fprintf(out, "{\n  \"suite\": \"bench_suite\",\n  \"version\": 1,\n");
  std::fprintf(out,
               "  \"seed\": %llu,\n  \"scale\": %.4f,\n  \"reps\": %d,\n"
               "  \"threads\": %zu,\n  \"rows\": [\n",
               static_cast<unsigned long long>(setup.seed), setup.scale,
               setup.reps, threads);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"family\": \"%s\", \"transport\": "
        "\"%s\", \"k\": %zu, "
        "\"rounds\": %zu, \"n\": %u, \"m\": %zu, \"engine_rounds\": %zu, "
        "\"processed_edges\": %zu, \"solution\": %zu, \"comm_words\": %llu, "
        "\"seconds_median\": %.6f, \"seconds_min\": %.6f, "
        "\"edges_per_sec\": %.1f, \"file_bytes\": %llu, "
        "\"peak_rss_bytes\": %llu, \"worker_forks\": %llu}%s\n",
        r.scenario.c_str(), r.family.c_str(), r.transport.c_str(), r.k,
        r.rounds, r.n, r.m,
        r.engine_rounds, r.processed_edges, r.solution,
        static_cast<unsigned long long>(r.comm_words), r.seconds_median,
        r.seconds_min, r.edges_per_sec,
        static_cast<unsigned long long>(r.file_bytes),
        static_cast<unsigned long long>(r.peak_rss_bytes),
        static_cast<unsigned long long>(r.worker_forks),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows.size());
}

int run_suite(int argc, char** argv) {
  Options opts(
      "bench_suite: the pinned scenario grid every perf PR diffs against");
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("scale", "1.0", "instance size multiplier");
  opts.flag("reps", "3", "repetitions per row (median reported)");
  opts.flag("json", "", "write machine-readable results to this path");
  opts.flag("scenario", "", "only run rows whose scenario contains this substring");
  opts.flag("family", "", "only run rows whose family contains this substring");
  opts.flag("threads", "0", "thread-pool size (0 = hardware concurrency, capped at 8)");
  opts.flag("packed-scale", "1.0",
            "size multiplier for the out-of-core packed family (independent "
            "of --scale: the pack is streamed to disk, so large values are "
            "disk-bound, not RAM-bound)");
  opts.flag("packed-path", "",
            "where the packed family writes its .rgp file (empty = "
            "bench_packed.rgp in the working directory, removed afterwards; "
            "an explicit path is kept)");
  opts.flag("pool-affinity", "false",
            "pin pool workers to cores (Linux; results are identical either way)");
  opts.parse(argc, argv);

  ExperimentSetup setup;
  setup.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  setup.scale = opts.get_double("scale");
  setup.reps = static_cast<int>(opts.get_int("reps"));
  const std::string json_path = opts.get_string("json");
  const std::string scenario_filter = opts.get_string("scenario");
  const std::string family_filter = opts.get_string("family");
  std::size_t threads = static_cast<std::size_t>(opts.get_int("threads"));
  if (threads == 0) {
    threads = std::min<std::size_t>(8, std::thread::hardware_concurrency());
    threads = std::max<std::size_t>(1, threads);
  }
  ThreadPoolOptions pool_options;
  pool_options.pin_affinity = opts.get_bool("pool-affinity");
  ThreadPool pool(threads, pool_options);

  std::printf(
      "=== bench_suite ===\n(seed=%llu scale=%.2f reps=%d threads=%zu "
      "affinity=%s)\n\n",
      static_cast<unsigned long long>(setup.seed), setup.scale, setup.reps,
      threads, pool_options.pin_affinity ? "on" : "off");

  const std::vector<Family> families = make_families(setup.scale, setup.seed);
  std::vector<Row> rows;

  const auto wanted = [&](const std::string& scenario, const Family& f) {
    return (scenario_filter.empty() ||
            scenario.find(scenario_filter) != std::string::npos) &&
           (family_filter.empty() ||
            f.name.find(family_filter) != std::string::npos);
  };

  for (const Family& f : families) {
    // Partitioner throughput: the shared front half of every protocol round.
    if (wanted("partition", f)) {
      rows.push_back(measure("partition", f, 8, 1, setup.reps, setup.seed,
                             [&](Rng& rng) {
                               const ShardedPartition<Edge> parts(
                                   std::span<const Edge>(f.edges.edges().data(),
                                                         f.edges.num_edges()),
                                   f.edges.num_vertices(), 8, rng, &pool);
                               RunOutcome out;
                               out.processed_edges = parts.num_edges();
                               out.solution = parts.num_machines();
                               return out;
                             }));
    }

    // Multi-round maximum-matching coreset rounds (the Theorem 1 protocol
    // iterated): THE headline perf scenario at k=8, 5 rounds.
    for (const auto [k, rounds] :
         {std::pair<std::size_t, std::size_t>{8, 1}, {8, 5}, {4, 5}}) {
      if (!wanted("multiround_matching", f)) continue;
      rows.push_back(measure(
          "multiround_matching", f, k, rounds, setup.reps, setup.seed,
          [&, k = k, rounds = rounds](Rng& rng) {
            const auto result = coreset_mpc_matching_rounds(
                f.edges, engine_config(f, k, rounds), f.left_size, rng, &pool);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.matching.size();
            return out;
          }));
    }

    if (wanted("multiround_vc", f)) {
      rows.push_back(measure(
          "multiround_vc", f, 8, 5, setup.reps, setup.seed, [&](Rng& rng) {
            const auto result = coreset_mpc_vertex_cover_rounds(
                f.edges, engine_config(f, 8, 5), rng, &pool);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.cover.size();
            return out;
          }));
    }

    if (wanted("augmenting", f)) {
      rows.push_back(measure(
          "augmenting", f, 8, 5, setup.reps, setup.seed, [&](Rng& rng) {
            AugmentingRoundsConfig aug;
            aug.max_path_length = 5;
            const auto result = run_matching_rounds_augmenting(
                f.edges, engine_config(f, 8, 5), aug, f.left_size, rng, &pool);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.matching.size();
            return out;
          }));
    }

    // EDCS round-combiner at three beta points (lambda = max(1, beta/8)).
    // Together with comm_words these rows trace the quality-vs-communication
    // frontier: larger beta ships more words per round and lands a larger
    // matching. Distinct scenario names keep compare_bench's
    // (scenario, family, k, rounds) row keys collision-free.
    for (const std::size_t beta :
         {std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
      const std::string scenario = "edcs_b" + std::to_string(beta);
      if (!wanted(scenario, f)) continue;
      rows.push_back(measure(
          scenario, f, 8, 5, setup.reps, setup.seed, [&, beta](Rng& rng) {
            EdcsRoundsConfig edcs;
            edcs.edcs.beta = beta;
            edcs.edcs.lambda = std::max<std::size_t>(1, beta / 8);
            const auto result = run_matching_rounds_edcs(
                f.edges, engine_config(f, 8, 5), edcs, f.left_size, rng,
                &pool);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.matching.size();
            return out;
          }));
    }

    // Transport head-to-head: the SAME single-round coreset workload through
    // the in-process engine, forked workers over loopback sockets, and
    // forked workers over shared-memory rings. All rows produce
    // seed-for-seed identical solutions (pinned by the distributed suite),
    // so any delta is pure transport cost — fork + serialize + pipe +
    // decode, where only the pipe differs between socket and shm.
    struct TransportCase {
      const char* name;
      EngineTransport transport;
    };
    constexpr TransportCase kTransports[] = {
        {"inproc", EngineTransport::kInproc},
        {"socket", EngineTransport::kSocket},
        {"shm", EngineTransport::kShm},
    };
    for (const TransportCase& tc : kTransports) {
      const std::string scenario = std::string("transport_") + tc.name;
      if (!wanted(scenario, f)) continue;
      const bool inproc = tc.transport == EngineTransport::kInproc;
      rows.push_back(measure(
          scenario, f, 8, 1, setup.reps, setup.seed, [&, tc, inproc](Rng& rng) {
            MpcEngineConfig config = engine_config(f, 8, 1);
            config.streaming.transport = tc.transport;
            const auto result = coreset_mpc_matching_rounds(
                f.edges, config, f.left_size, rng, inproc ? &pool : nullptr);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.matching.size();
            return out;
          }));
      rows.back().transport = tc.name;

      // Fork amortization at rounds=5: the production drivers converge in
      // 1-2 engine rounds, so the multi-round price is measured on a
      // recirculating harness (round-invariant build, every edge survives,
      // early stop off) that pins engine_rounds at 5 on every transport.
      // worker_forks in the JSON carries the claim: the persistent shm pool
      // forks k workers once per run, the socket path k per round.
      const std::string scenario5 = scenario + "_r5";
      if (!wanted(scenario5, f)) continue;
      rows.push_back(measure(
          scenario5, f, 8, 5, setup.reps, setup.seed, [&, tc, inproc](Rng& rng) {
            MpcEngineConfig config = engine_config(f, 8, 5);
            config.streaming.transport = tc.transport;
            config.early_stop = false;
            config.round_invariant_build = true;
            const auto build = [](EdgeSpan piece, const PartitionContext&,
                                  Rng&) { return piece.to_edge_list(); };
            const auto account = [](const EdgeList& s) {
              return MessageSize{s.num_edges(), 0};
            };
            struct RecirculatingFold {
              void absorb(EdgeList&, std::size_t, MpcRoundContext&) {}
              EdgeList finish(std::vector<EdgeList>&, MpcRoundContext& ctx,
                              Rng&) {
                ctx.note_progress(1);
                ctx.survivors_out().assign(ctx.active_edges());
                return std::move(ctx.survivors_out());
              }
            } fold;
            const MpcExecutionStats stats =
                run_mpc_rounds(f.edges, config, f.left_size, rng,
                               inproc ? &pool : nullptr, build, account, fold);
            RunOutcome out = processed_of(stats);
            out.solution = 0;  // harness row: there is no solution to size
            return out;
          }));
      rows.back().transport = tc.name;
    }

    if (wanted("filtering", f)) {
      rows.push_back(measure(
          "filtering", f, 8, 12, setup.reps, setup.seed, [&](Rng& rng) {
            MpcEngineConfig config = engine_config(f, 8, 12);
            // Filtering's sample rate derives from the budget; a budget that
            // swallows the graph whole would finish in one trivial round.
            config.mpc.memory_words = std::max<std::uint64_t>(
                512, static_cast<std::uint64_t>(f.edges.num_edges()) / 2);
            const auto result =
                filtering_mpc_rounds(f.edges, config, rng, &pool);
            RunOutcome out = processed_of(result.stats);
            out.solution = result.maximal_matching.size();
            return out;
          }));
    }
  }

  // Out-of-core packed family: the .rgp ingestion path end to end. The
  // instance never lives in memory as an EdgeList — packed_stream writes a
  // uniform random multigraph record by record through PackWriter's 1 MiB
  // buffer, packed_ingest maps + full-validates it with the windowed
  // residency drop, and packed_partition / packed_mpc run the protocol
  // stack straight off the mapping. --packed-scale sizes the instance
  // independently of --scale (the file is disk-bound); file_bytes and
  // peak_rss_bytes land in the JSON rows so the out-of-core claim — RSS
  // well below file size for stream/ingest — is measurable. For that claim
  // run the family alone (--family packed): RSS is a process-wide
  // high-water mark and the in-memory families would raise it first.
  {
    const Family packed{"packed", 0, EdgeList()};
    const bool any_packed =
        wanted("packed_stream", packed) || wanted("packed_ingest", packed) ||
        wanted("packed_partition", packed) || wanted("packed_mpc", packed);
    if (any_packed) {
      const double packed_scale = opts.get_double("packed-scale");
      const auto pn =
          static_cast<VertexId>(std::max(64.0, 100000.0 * packed_scale));
      const auto pm =
          static_cast<std::size_t>(std::max(512.0, 800000.0 * packed_scale));
      const std::uint64_t pack_bytes =
          kPackHeaderBytes + sizeof(Edge) * static_cast<std::uint64_t>(pm);
      const std::string packed_path_flag = opts.get_string("packed-path");
      const std::string packed_path =
          packed_path_flag.empty() ? "bench_packed.rgp" : packed_path_flag;
      const auto stream_pack = [&](Rng& rng) {
        PackWriter writer(packed_path, pn, /*weighted=*/false);
        for (std::size_t i = 0; i < pm; ++i) {
          const auto u = static_cast<VertexId>(rng.next_below(pn));
          auto v = static_cast<VertexId>(rng.next_below(pn - 1));
          if (v >= u) ++v;  // uniform over the pn - 1 non-loop partners
          writer.add(u, v);
        }
        writer.finish();
      };
      const auto stamp = [&](Row& row) {
        row.file_bytes = pack_bytes;
        row.peak_rss_bytes = peak_rss_bytes();
      };
      {
        // The file the mapping rows read must exist even when the stream
        // row itself is filtered out.
        Rng rng(setup.seed);
        stream_pack(rng);
      }

      if (wanted("packed_stream", packed)) {
        rows.push_back(measure("packed_stream", "packed", 1, 1, pn, pm,
                               setup.reps, setup.seed, [&](Rng& rng) {
                                 stream_pack(rng);
                                 RunOutcome out;
                                 out.processed_edges = pm;
                                 return out;
                               }));
        stamp(rows.back());
      }

      if (wanted("packed_ingest", packed)) {
        rows.push_back(measure("packed_ingest", "packed", 1, 1, pn, pm,
                               setup.reps, setup.seed, [&](Rng&) {
                                 const MappedGraph graph(packed_path);
                                 RunOutcome out;
                                 out.processed_edges = graph.num_edges();
                                 return out;
                               }));
        stamp(rows.back());
      }

      if (wanted("packed_partition", packed) || wanted("packed_mpc", packed)) {
        const MappedGraph graph(packed_path);
        if (wanted("packed_partition", packed)) {
          rows.push_back(measure(
              "packed_partition", "packed", 8, 1, pn, pm, setup.reps,
              setup.seed, [&](Rng& rng) {
                const ShardedPartition<Edge> parts(
                    std::span<const Edge>(graph.edges().data(),
                                          graph.num_edges()),
                    graph.num_vertices(), 8, rng, &pool);
                RunOutcome out;
                out.processed_edges = parts.num_edges();
                out.solution = parts.num_machines();
                return out;
              }));
          stamp(rows.back());
        }
        if (wanted("packed_mpc", packed)) {
          MpcEngineConfig config;
          config.mpc.num_machines = 8;
          config.mpc.memory_words =
              16 * static_cast<std::uint64_t>(graph.num_edges()) + 4096;
          config.max_rounds = 1;
          rows.push_back(measure(
              "packed_mpc", "packed", 8, 1, pn, pm, setup.reps, setup.seed,
              [&](Rng& rng) {
                const auto result =
                    coreset_mpc_matching_rounds(graph, config, 0, rng, &pool);
                RunOutcome out = processed_of(result.stats);
                out.solution = result.matching.size();
                return out;
              }));
          stamp(rows.back());
        }
      }
      if (packed_path_flag.empty()) std::remove(packed_path.c_str());
    }
  }

  std::printf(
      "%-22s %-13s %2s %6s %9s %10s %11s %9s %12s\n", "scenario", "family",
      "k", "rounds", "m", "ran", "median_s", "min_s", "edges/s");
  for (const Row& r : rows) {
    std::printf("%-22s %-13s %2zu %6zu %9zu %10zu %11.4f %9.4f %12.0f\n",
                r.scenario.c_str(), r.family.c_str(), r.k, r.rounds, r.m,
                r.engine_rounds, r.seconds_median, r.seconds_min,
                r.edges_per_sec);
  }

  if (!json_path.empty()) write_json(json_path, rows, setup, threads);
  return 0;
}

}  // namespace
}  // namespace rcc::bench

int main(int argc, char** argv) { return rcc::bench::run_suite(argc, argv); }
