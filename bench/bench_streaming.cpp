// EXP20: random arrival order helps streaming greedy — the single-machine
// analogue of the paper's random-partition insight (Section 1.3 cites the
// random-arrival stream results [38, 44] as kindred uses of randomness).
//
// Instance: a union of 4-vertex paths a-b-c-d (maximum matching = 2 per
// path). An adversarial stream offers the middle edge (b, c) first, locking
// greedy to 1 per path (ratio 2 — greedy's worst case); a uniformly random
// arrival order recovers most of the loss. The Crouch-Stubbs weighted
// streamer is measured on the same instances with weights.
#include "bench_common.hpp"
#include "graph/edge_list.hpp"
#include "matching/max_matching.hpp"
#include "streaming/streaming_matching.hpp"
#include "util/stats.hpp"

namespace {

using namespace rcc;

/// Union of `paths` disjoint 4-vertex paths; returns edges in adversarial
/// order: all middle edges first.
EdgeList path_gadget(VertexId paths, bool middle_first) {
  EdgeList out(4 * paths);
  if (middle_first) {
    for (VertexId i = 0; i < paths; ++i) out.add(4 * i + 1, 4 * i + 2);
    for (VertexId i = 0; i < paths; ++i) {
      out.add(4 * i, 4 * i + 1);
      out.add(4 * i + 2, 4 * i + 3);
    }
  } else {
    for (VertexId i = 0; i < paths; ++i) {
      out.add(4 * i, 4 * i + 1);
      out.add(4 * i + 1, 4 * i + 2);
      out.add(4 * i + 2, 4 * i + 3);
    }
  }
  return out;
}

double streamed_ratio(const EdgeList& stream, std::size_t opt) {
  StreamingMaximalMatching alg(stream.num_vertices());
  for (const Edge& e : stream) alg.offer(e.u, e.v);
  return static_cast<double>(opt) / static_cast<double>(alg.matching().size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP20/bench_streaming",
      "random arrival order rescues streaming greedy from its worst case — "
      "the single-machine analogue of random partitioning");
  Rng rng(setup.seed);
  const auto paths = static_cast<VertexId>(50000 * setup.scale);
  const std::size_t opt = 2 * static_cast<std::size_t>(paths);

  TablePrinter table({"arrival order", "greedy matching", "ratio"});
  const EdgeList adversarial = path_gadget(paths, /*middle_first=*/true);
  const double adv_ratio = streamed_ratio(adversarial, opt);
  table.add_row({"adversarial (middle edges first)",
                 TablePrinter::fmt(std::uint64_t{
                     static_cast<std::uint64_t>(opt / adv_ratio)}),
                 TablePrinter::fmt_ratio(adv_ratio)});

  RunningStat random_ratio;
  for (int rep = 0; rep < setup.reps; ++rep) {
    std::vector<Edge> shuffled(adversarial.begin(), adversarial.end());
    rng.shuffle(shuffled);
    const EdgeList stream(adversarial.num_vertices(), std::move(shuffled));
    random_ratio.add(streamed_ratio(stream, opt));
  }
  table.add_row({"uniformly random",
                 TablePrinter::fmt(std::uint64_t{static_cast<std::uint64_t>(
                     opt / random_ratio.mean())}),
                 TablePrinter::fmt_ratio(random_ratio.mean())});

  // Weighted streamer on the same topology with heavy outer edges: the
  // class structure must recover the heavy edges even in adversarial order.
  {
    StreamingWeightedMatching weighted(adversarial.num_vertices());
    double opt_weight = 0.0;
    for (VertexId i = 0; i < paths; ++i) {
      weighted.offer(4 * i + 1, 4 * i + 2, 1.0);  // light middle first
    }
    for (VertexId i = 0; i < paths; ++i) {
      weighted.offer(4 * i, 4 * i + 1, 16.0);
      weighted.offer(4 * i + 2, 4 * i + 3, 16.0);
      opt_weight += 32.0;
    }
    WeightedEdgeList wgraph;
    wgraph.num_vertices = adversarial.num_vertices();
    for (VertexId i = 0; i < paths; ++i) {
      wgraph.add(4 * i + 1, 4 * i + 2, 1.0);
      wgraph.add(4 * i, 4 * i + 1, 16.0);
      wgraph.add(4 * i + 2, 4 * i + 3, 16.0);
    }
    const double got = matching_weight(weighted.finalize(), wgraph);
    table.add_row({"weighted CS streamer (adversarial)",
                   TablePrinter::fmt(got, 0),
                   TablePrinter::fmt_ratio(opt_weight / got)});
  }
  table.print();

  const bool shape = adv_ratio > 1.9 && random_ratio.mean() < 1.5;
  bench::verdict(shape,
                 "adversarial arrival pins greedy at its worst-case ratio 2; "
                 "random arrival drops it to ~1.2-1.3, and the weighted "
                 "class structure neutralizes the order entirely");
  return shape ? 0 : 1;
}
