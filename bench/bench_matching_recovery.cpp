// EXP19 (Lemma 5.1 / Theorem 5 gadget): the MatchingRecovery game.
// Alice's s-word message describes at most s/2 matching edges; each lands
// in Bob's block w.p. 1/c = Theta(alpha/k), so E[recovered] =
// (s/2) * Theta(alpha/k) — the quantitative core of the Omega(nk/alpha^2)
// communication bound.
#include "bench_common.hpp"
#include "lower_bounds/matching_recovery.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP19/bench_matching_recovery",
      "MatchingRecovery: E[recovered edges] = (message edges) / c with "
      "c = Theta(k/alpha) blocks — Lemma 5.1 in game form");
  Rng rng(setup.seed);
  const auto t = static_cast<VertexId>(40000 * setup.scale);  // ~n/alpha
  const int trials = 60 * setup.reps;

  TablePrinter table({"blocks c", "budget (edges)", "E[recovered]",
                      "predicted budget/c", "rel-err"});
  bool ok = true;
  for (VertexId p : {200u, 800u}) {  // block size ~ Theta(n/k)
    const std::size_t c = t / p;
    for (std::size_t budget : {t / 100, t / 20, t / 5}) {
      RunningStat recovered;
      for (int rep = 0; rep < trials; ++rep) {
        const MatchingRecoveryInstance inst = make_matching_recovery(t, p, rng);
        recovered.add(static_cast<double>(
            run_budgeted_matching_recovery(inst, budget, rng).recovered_edges));
      }
      const double predicted = static_cast<double>(budget) / static_cast<double>(c);
      const double rel = std::abs(recovered.mean() - predicted) /
                         std::max(predicted, 1e-9);
      ok &= rel < 0.15;
      table.add_row({TablePrinter::fmt(std::uint64_t{c}),
                     TablePrinter::fmt(std::uint64_t{budget}),
                     TablePrinter::fmt(recovered.mean(), 2),
                     TablePrinter::fmt(predicted, 2),
                     TablePrinter::fmt(rel, 4)});
    }
  }
  table.print();
  bench::verdict(ok,
                 "recovery is exactly budget/c for every block structure and "
                 "budget: Alice's words convert to Bob-useful edges at rate "
                 "Theta(alpha/k), forcing s = Omega(n/alpha^2) per machine");
  return ok ? 0 : 1;
}
