// EXP8 (Remark 5.8 / R4b): grouping vertices into blocks of
// Theta(alpha/log n) before running the Theorem 2 coreset trades an alpha
// approximation factor for ~nk/alpha words of communication — tight against
// the Theorem 6 lower bound.
#include <cmath>

#include "bench_common.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "vertex_cover/konig.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP8/bench_grouping_protocol",
      "Remark 5.8: contracting vertex groups of size alpha/log n before the "
      "peeling coreset gives <= alpha-ish approximation with communication "
      "shrinking ~1/alpha");
  Rng rng(setup.seed);
  const auto side = static_cast<VertexId>(8000 * setup.scale);
  const VertexId n = 2 * side;
  const std::size_t k = 8;
  // Dense instance: average degree ~128 so the contracted multigraph still
  // exercises the peeling thresholds at every alpha in the sweep.
  const EdgeList el = random_bipartite(side, side, 128.0 / side, rng);
  const std::size_t opt = konig_vc_size(bipartite_graph(el, side));
  std::printf("n=%u m=%zu k=%zu VC(G)=%zu log2(n)=%.1f\n\n", n,
              el.num_edges(), k, opt, std::log2(static_cast<double>(n)));

  TablePrinter table({"alpha", "group size", "ratio", "ratio/alpha",
                      "comm(words)", "comm*alpha/(n*k*log n)"});
  bool monotone_comm = true;
  std::uint64_t prev_comm = ~std::uint64_t{0};
  const double log_n = std::log2(static_cast<double>(n));
  for (double alpha : {14.0, 28.0, 56.0, 112.0}) {
    const GroupedVcProtocolResult r = grouped_vc_protocol(el, k, alpha, rng, nullptr);
    if (!r.solution.covers(el)) {
      bench::verdict(false, "grouped cover infeasible");
      return 1;
    }
    const double ratio =
        static_cast<double>(r.solution.size()) / static_cast<double>(opt);
    const auto g = static_cast<VertexId>(std::max(1.0, std::floor(alpha / log_n)));
    const double normalized =
        static_cast<double>(r.comm.total_words()) * alpha /
        (static_cast<double>(n) * k * log_n);
    monotone_comm &= r.comm.total_words() <= prev_comm;
    prev_comm = r.comm.total_words();
    table.add_row({TablePrinter::fmt_ratio(alpha),
                   TablePrinter::fmt(std::uint64_t{g}),
                   TablePrinter::fmt_ratio(ratio),
                   TablePrinter::fmt_ratio(ratio / alpha),
                   TablePrinter::fmt(std::uint64_t{r.comm.total_words()}),
                   TablePrinter::fmt_ratio(normalized)});
  }
  table.print();
  bench::verdict(monotone_comm,
                 "communication decreases as alpha grows (the ~nk/alpha "
                 "frontier of Theorem 6) while the ratio stays <= alpha");
  return monotone_comm ? 0 : 1;
}
