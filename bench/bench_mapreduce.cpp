// EXP9 (Section 1.1 / R5): round complexity of MapReduce algorithms at the
// paper's memory regime. The coreset algorithm needs 2 rounds (1 if the
// input is already randomly partitioned); the filtering baseline of
// Lattanzi et al. [46] needs 2 rounds per filter iteration plus a finish —
// the paper quotes ~6 rounds end to end at O~(n sqrt n) memory.
#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP9/bench_mapreduce",
      "R5: coreset-MPC solves matching & VC in 2 rounds (1 round on random "
      "input); the filtering baseline needs more rounds when the graph "
      "exceeds one machine's memory");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(3000 * setup.scale);
  // Dense graph (p = 0.5): m exceeds one machine's memory so filtering must
  // iterate, and the per-piece degrees 2m/(nk) clear the peeling thresholds
  // n/(4k) so the vertex cover coreset actually compresses (m >= n^2/8 is
  // the regime where both conditions hold at k = sqrt n).
  const EdgeList el = gnp(n, 0.5, rng);
  const std::size_t opt = maximum_matching_size(el);
  MpcConfig cfg;
  // The paper sets k = sqrt(n); the round counts are k-independent, but the
  // peeling coreset needs n/k > 8 log2 n to have any peeling levels, which
  // at k = sqrt(n) requires n beyond bench scale (~2^16). k = 20 keeps every
  // algorithm inside its intended regime at this n.
  cfg.num_machines = 20;
  cfg.memory_words = static_cast<std::uint64_t>(
      static_cast<double>(el.num_edges()));  // < 2m: one machine can't hold G
  std::printf("n=%u m=%zu machines=%zu memory=%llu words MM(G)=%zu\n\n", n,
              el.num_edges(), cfg.num_machines,
              static_cast<unsigned long long>(cfg.memory_words), opt);

  TablePrinter table({"algorithm", "problem", "rounds", "peak-mem(words)",
                      "solution", "ratio"});
  const CoresetMpcMatchingResult cm =
      coreset_mpc_matching(el, cfg, /*input_already_random=*/false, 0, rng);
  table.add_row({"coreset (adversarial input)", "matching",
                 TablePrinter::fmt(std::uint64_t{cm.rounds}),
                 TablePrinter::fmt(cm.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{cm.matching.size()}),
                 TablePrinter::fmt_ratio(static_cast<double>(opt) /
                                         cm.matching.size())});
  const CoresetMpcMatchingResult cm1 =
      coreset_mpc_matching(el, cfg, /*input_already_random=*/true, 0, rng);
  table.add_row({"coreset (random input)", "matching",
                 TablePrinter::fmt(std::uint64_t{cm1.rounds}),
                 TablePrinter::fmt(cm1.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{cm1.matching.size()}),
                 TablePrinter::fmt_ratio(static_cast<double>(opt) /
                                         cm1.matching.size())});
  // Iterated coreset rounds on the multi-round executor: every extra round
  // re-partitions the still-open edges, so the matching can only grow.
  MpcEngineConfig multi_cfg;
  multi_cfg.mpc = cfg;
  multi_cfg.max_rounds = 3;
  multi_cfg.input_already_random = true;
  const CoresetMpcMatchingResult cm3 =
      coreset_mpc_matching_rounds(el, multi_cfg, 0, rng);
  table.add_row({"coreset x3 rounds (random input)", "matching",
                 TablePrinter::fmt(std::uint64_t{cm3.rounds}),
                 TablePrinter::fmt(cm3.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{cm3.matching.size()}),
                 TablePrinter::fmt_ratio(static_cast<double>(opt) /
                                         cm3.matching.size())});
  const CoresetMpcVcResult cv =
      coreset_mpc_vertex_cover(el, cfg, /*input_already_random=*/false, rng);
  table.add_row({"coreset (adversarial input)", "vertex cover",
                 TablePrinter::fmt(std::uint64_t{cv.rounds}),
                 TablePrinter::fmt(cv.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{cv.cover.size()}), "-"});
  const FilteringMpcResult fm = filtering_mpc(el, cfg, rng);
  table.add_row(
      {"filtering [46]", "matching + VC",
       TablePrinter::fmt(std::uint64_t{fm.rounds}),
       TablePrinter::fmt(fm.max_memory_words),
       TablePrinter::fmt(std::uint64_t{fm.maximal_matching.size()}),
       TablePrinter::fmt_ratio(static_cast<double>(opt) /
                               fm.maximal_matching.size())});
  table.print();
  std::printf("(filtering ran %zu filter iterations; each costs 2 rounds)\n",
              fm.filter_iterations);
  const bool shape = cm.rounds == 2 && cm1.rounds == 1 && fm.rounds > cm.rounds;
  bench::verdict(shape,
                 "coreset-MPC: 2 rounds (1 on random input) at a worse-but-"
                 "O(1) ratio; filtering: more rounds for its 2-approximation "
                 "— the round-vs-ratio trade of Section 1.1");
  return shape ? 0 : 1;
}
