// EXP3 (Theorem 2 / R1b): the peeling coreset composes to an O(log n)
// vertex cover approximation with O~(n) summaries, flat in k.
//
// Instances are bipartite so the exact optimum comes from Koenig's theorem.
#include "bench_common.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "vertex_cover/konig.hpp"
#include "util/stats.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP3/bench_vc_coreset",
      "Theorem 2: peeling coresets give an O(log n)-approximate vertex "
      "cover; ratio flat in k, coreset size O~(n)");
  Rng rng(setup.seed);

  TablePrinter table({"n", "k", "VC(G)", "ratio", "ratio/log2(n)",
                      "max-summary(items)"});
  bool within_log = true;
  for (const auto n_base : {8000, 32000}) {
    const auto side = static_cast<VertexId>(n_base * setup.scale / 2);
    const VertexId n = 2 * side;
    // Lopsided density: a small high-degree core plus sparse periphery makes
    // VC(G) << n, the regime where approximation quality is informative.
    EdgeList el = random_bipartite(side, side, 6.0 / side, rng);
    const std::size_t opt = konig_vc_size(bipartite_graph(el, side));
    for (std::size_t k : {4, 16, 64}) {
      RunningStat ratio_stat;
      std::uint64_t max_summary = 0;
      for (int rep = 0; rep < setup.reps; ++rep) {
        const VcProtocolResult r = coreset_vc_protocol(el, k, rng, nullptr);
        if (!r.solution.covers(el)) {
          bench::verdict(false, "returned cover infeasible");
          return 1;
        }
        ratio_stat.add(static_cast<double>(r.solution.size()) /
                       static_cast<double>(opt));
        for (const auto& m : r.comm.per_machine) {
          max_summary = std::max(max_summary, m.words());
        }
      }
      const double log_n = std::log2(static_cast<double>(n));
      within_log &= ratio_stat.mean() <= 4.0 * log_n;
      table.add_row({TablePrinter::fmt(std::uint64_t{n}),
                     TablePrinter::fmt(std::uint64_t{k}),
                     TablePrinter::fmt(std::uint64_t{opt}),
                     TablePrinter::fmt_ratio(ratio_stat.mean()),
                     TablePrinter::fmt_ratio(ratio_stat.mean() / log_n),
                     TablePrinter::fmt(max_summary)});
    }
  }
  table.print();
  bench::verdict(within_log,
                 "all ratios <= O(log n) (ratio/log2 n column stays below a "
                 "small constant, flat in k)");
  return within_log ? 0 : 1;
}
