// EXP: barrier vs streaming coordinator folds on skewed shards.
//
// The paper's protocol is one simultaneous round: k machines send summaries
// to a coordinator. The barrier fold cannot start until the SLOWEST machine
// finishes, so its wall-clock is gated by the worst shard even though
// greedy/coreset folds are naturally incremental. This bench builds a
// deliberately skewed partition — k-1 small shards plus one shard holding
// `--skew` times their edges, placed LAST so the canonical reorder buffer is
// the worst case that still overlaps — and measures:
//
//   * wall seconds of the barrier fold vs streaming canonical vs arrival,
//   * the overlap telemetry: how many summaries the coordinator absorbed
//     while at least one machine was still building (0 for the barrier path;
//     streaming exists to make this > 0),
//   * that canonical streaming returns the exact barrier matching.
//
// --json <path> additionally dumps the table as one JSON object (the CI
// job archives it as BENCH_streaming_fold.json; non-gating).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "distributed/protocol_engine.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/matching.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

struct Row {
  std::string mode;
  double seconds = 0.0;
  std::size_t overlap = 0;  // absorbed_while_machines_ran
  std::size_t matching = 0;
  std::uint64_t comm = 0;
};

/// Greedy-merge fold: absorb extends the coordinator matching with each
/// machine's local maximal matching as it lands; finish returns it. The
/// absorb work is what the streaming path amortizes under the big shard.
struct GreedyMergeFold {
  Matching m;
  explicit GreedyMergeFold(VertexId n) : m(n) {}
  void absorb(EdgeList& summary, std::size_t /*machine*/) {
    greedy_extend(m, summary);
  }
  Matching finish(std::vector<EdgeList>& /*summaries*/, Rng& /*rng*/) {
    return std::move(m);
  }
};

}  // namespace
}  // namespace rcc

int main(int argc, char** argv) {
  using namespace rcc;

  Options opts(
      "bench_streaming_fold: barrier vs streaming coordinator folds on "
      "skewed shards (the streaming path overlaps machine and combine "
      "phases; canonical order stays seed-for-seed exact)");
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("scale", "1.0", "instance size multiplier");
  opts.flag("reps", "3", "repetitions per mode (min wall time is reported)");
  opts.flag("machines", "8", "number of machines k");
  opts.flag("skew", "8", "big-shard size as a multiple of a small shard");
  opts.flag("json", "", "also write the results as JSON to this path");
  opts.parse(argc, argv);

  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const double scale = opts.get_double("scale");
  const int reps = static_cast<int>(opts.get_int("reps"));
  const auto k = static_cast<std::size_t>(opts.get_int("machines"));
  const auto skew = static_cast<std::size_t>(opts.get_int("skew"));
  const std::string json_path = opts.get_string("json");

  const auto n = static_cast<VertexId>(40000 * scale);
  const std::size_t small_edges = static_cast<std::size_t>(60000 * scale);

  std::printf("=== bench_streaming_fold ===\n");
  std::printf(
      "k=%zu machines, %zu small shards of %zu edges + 1 big shard of %zu "
      "edges (skew %zux), n=%u\n(seed=%llu scale=%.2f reps=%d)\n\n",
      k, k - 1, small_edges, skew * small_edges, skew, n,
      static_cast<unsigned long long>(seed), scale, reps);

  // Skewed pieces over one vertex universe; the big shard is machine k-1 so
  // canonical absorption of machines 0..k-2 can proceed while it builds.
  Rng gen(seed);
  std::vector<EdgeList> pieces;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    pieces.push_back(gnm(n, small_edges, gen));
  }
  pieces.push_back(gnm(n, skew * small_edges, gen));

  const auto build = [](EdgeSpan piece, const PartitionContext&, Rng& rng) {
    // Local maximal matching in random order: linear in the shard, so the
    // big shard dominates the machine phase.
    return greedy_maximal_matching(piece, GreedyOrder::kRandom, rng)
        .to_edge_list();
  };
  const auto account = [](const EdgeList& s) {
    return MessageSize{s.num_edges(), 0};
  };
  const auto combine = [&](std::vector<EdgeList>& summaries, Rng& rng) {
    GreedyMergeFold fold(n);
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      fold.absorb(summaries[i], i);
    }
    return fold.finish(summaries, rng);
  };

  ThreadPool pool;
  std::vector<Row> rows;
  std::size_t barrier_size = 0;
  std::size_t canonical_size = 0;

  const auto run_mode = [&](const std::string& mode) {
    Row row;
    row.mode = mode;
    row.seconds = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(seed);
      WallTimer timer;
      Row sample;
      sample.mode = mode;
      if (mode == "barrier") {
        auto r = run_protocol_on_pieces<Edge>(pieces_of(pieces), n, 0, rng,
                                              &pool, build, account, combine);
        sample.seconds = timer.seconds();
        sample.overlap = r.streaming.absorbed_while_machines_ran;
        sample.matching = r.solution.size();
        sample.comm = r.comm.total_words();
      } else {
        StreamingOptions sopts;
        sopts.order = mode == "arrival" ? StreamingOrder::kArrival
                                        : StreamingOrder::kCanonical;
        GreedyMergeFold fold(n);
        auto r = run_protocol_streaming_on_pieces<Edge>(
            pieces_of(pieces), n, 0, rng, &pool, build, account, fold, sopts);
        sample.seconds = timer.seconds();
        sample.overlap = r.streaming.absorbed_while_machines_ran;
        sample.matching = r.solution.size();
        sample.comm = r.comm.total_words();
      }
      // Keep the whole fastest rep: its overlap is the one that explains
      // its wall time (overlap varies with scheduling in arrival mode).
      if (sample.seconds < row.seconds) row = sample;
    }
    rows.push_back(row);
    return row;
  };

  const Row barrier = run_mode("barrier");
  barrier_size = barrier.matching;
  const Row canonical = run_mode("canonical");
  canonical_size = canonical.matching;
  const Row arrival = run_mode("arrival");

  TablePrinter table({"mode", "wall_s", "overlap", "matching", "comm_words"});
  for (const Row& row : rows) {
    table.add_row({row.mode, TablePrinter::fmt(row.seconds, 4),
                   TablePrinter::fmt(std::uint64_t{row.overlap}),
                   TablePrinter::fmt(std::uint64_t{row.matching}),
                   TablePrinter::fmt(row.comm)});
  }
  table.print();

  // The claims this bench pins: the coordinator starts absorbing before the
  // last machine finishes (overlap > 0 in both streaming modes), and
  // canonical order pays for its determinism with zero result drift.
  const bool overlap_ok = canonical.overlap > 0 && arrival.overlap > 0;
  const bool exact_ok = canonical_size == barrier_size;
  const bool shape_ok = overlap_ok && exact_ok;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"experiment\": \"bench_streaming_fold\",\n"
                 "  \"seed\": %llu,\n  \"scale\": %.3f,\n  \"machines\": %zu,\n"
                 "  \"skew\": %zu,\n  \"modes\": [\n",
                 static_cast<unsigned long long>(seed), scale, k, skew);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"wall_seconds\": %.6f, "
                   "\"overlap\": %zu, \"matching\": %zu, "
                   "\"comm_words\": %llu}%s\n",
                   row.mode.c_str(), row.seconds, row.overlap, row.matching,
                   static_cast<unsigned long long>(row.comm),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"shape_ok\": %s\n}\n",
                 shape_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  bench::verdict(shape_ok,
                 "streaming folds absorb summaries while the skewed shard is "
                 "still building, and canonical order reproduces the barrier "
                 "matching exactly");
  return shape_ok ? 0 : 1;
}
