// EXP1 (Theorem 1 / R1a): the maximum-matching coreset composes to an O(1)
// approximation under random partitioning, flat in k. The paper proves a
// factor <= 9; empirically it hovers near 1.
//
// Table: per instance family and k, the measured approximation ratio
// MM(G) / MM(union of coresets) and the per-machine summary size.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/compose.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/stats.hpp"

namespace {

using namespace rcc;

struct Family {
  std::string name;
  VertexId left_size;  // 0 = general graph
  EdgeList edges;
};

std::vector<Family> make_families(VertexId n, Rng& rng) {
  std::vector<Family> out;
  out.push_back({"G(n,5/n)", 0, gnp(n, 5.0 / n, rng)});
  out.push_back({"bipartite(n/2,n/2,8/n)", n / 2,
                 random_bipartite(n / 2, n / 2, 8.0 / n, rng)});
  {
    // Planted: perfect matching plus G(n, 2/n) noise — a near-perfect optimum.
    EdgeList planted = random_perfect_matching(n / 2, rng);
    planted.append(gnp(n, 2.0 / n, rng));
    out.push_back({"planted+noise", 0, std::move(planted)});
  }
  out.push_back({"power-law(beta=2.5)", 0, chung_lu_power_law(n, 2.5, 6.0, rng)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP1/bench_matching_coreset",
      "Theorem 1: maximum-matching coresets give an O(1)-approximation "
      "(paper bound 9); ratio should stay flat as k grows");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(12000 * setup.scale);

  TablePrinter table({"family", "k", "MM(G)", "ratio", "max-summary(edges)",
                      "total-comm(words)"});
  double worst_ratio = 0.0;
  for (auto& family : make_families(n, rng)) {
    const std::size_t opt = maximum_matching_size(family.edges, family.left_size);
    for (std::size_t k : {2, 4, 8, 16, 32, 64}) {
      RunningStat ratio_stat;
      std::uint64_t max_summary = 0;
      std::uint64_t comm = 0;
      for (int rep = 0; rep < setup.reps; ++rep) {
        const MatchingProtocolResult r = coreset_matching_protocol(
            family.edges, k, family.left_size, rng, nullptr);
        ratio_stat.add(static_cast<double>(opt) /
                       static_cast<double>(r.solution.size()));
        for (const auto& s : r.summaries) {
          max_summary = std::max<std::uint64_t>(max_summary, s.num_edges());
        }
        comm = r.comm.total_words();
      }
      worst_ratio = std::max(worst_ratio, ratio_stat.mean());
      table.add_row({family.name, TablePrinter::fmt(std::uint64_t{k}),
                     TablePrinter::fmt(std::uint64_t{opt}),
                     TablePrinter::fmt_ratio(ratio_stat.mean()),
                     TablePrinter::fmt(max_summary), TablePrinter::fmt(comm)});
    }
  }
  table.print();
  bench::verdict(worst_ratio <= 9.0,
                 "all measured ratios within the paper's factor-9 bound "
                 "(empirically expected ~1-2, flat in k)");
  return worst_ratio <= 9.0 ? 0 : 1;
}
