// EXP15 (Section 1.1 / R6b): weighted vertex cover by weight grouping.
// The paper promises the Theorem 2 coreset extends to weighted VC with an
// O(log n) factor loss in approximation and space (details omitted; see
// distributed/weighted_vc_protocol.hpp for our reconstruction).
//
// Table: weight range sweep -> protocol cost vs the centralized local-ratio
// cost and its dual lower bound; summary growth vs the class count.
#include "bench_common.hpp"
#include "distributed/weighted_vc_protocol.hpp"
#include "graph/generators.hpp"
#include "vertex_cover/weighted_vc.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP15/bench_weighted_vc",
      "Weighted VC via weight-grouped peeling coresets: cost within a small "
      "factor of the centralized 2-approx; summaries grow only with log W");
  Rng rng(setup.seed);
  const auto side = static_cast<VertexId>(4000 * setup.scale);
  const VertexId n = 2 * side;
  const std::size_t k = 8;
  const EdgeList el = random_bipartite(side, side, 6.0 / side, rng);

  TablePrinter table({"wmax", "classes", "protocol cost", "central LR cost",
                      "dual LB", "cost/LB", "comm(words)"});
  bool ok = true;
  for (double wmax : {1.0, 8.0, 64.0, 512.0}) {
    VertexWeights w(n);
    for (auto& x : w) x = rng.uniform_real(1.0, wmax + 1e-9);
    const WeightedVcProtocolResult r = weighted_vc_protocol(el, w, k, rng);
    if (!r.solution.covers(el)) {
      bench::verdict(false, "infeasible cover");
      return 1;
    }
    const WeightedVcResult central = local_ratio_weighted_vc(el, w);
    const double central_cost = cover_weight(central.cover, w);
    const double vs_lb = r.cover_cost / std::max(central.lower_bound, 1e-9);
    ok &= r.cover_cost <= 8.0 * central_cost;
    table.add_row({TablePrinter::fmt(wmax, 0),
                   TablePrinter::fmt(std::uint64_t{r.weight_classes}),
                   TablePrinter::fmt(r.cover_cost, 0),
                   TablePrinter::fmt(central_cost, 0),
                   TablePrinter::fmt(central.lower_bound, 0),
                   TablePrinter::fmt_ratio(vs_lb),
                   TablePrinter::fmt(r.comm.total_words())});
  }
  table.print();
  bench::verdict(ok,
                 "grouped-coreset cost stays within a small constant of the "
                 "centralized local-ratio across a 512x weight range, with "
                 "O(log W) summary classes — the promised shape");
  return ok ? 0 : 1;
}
