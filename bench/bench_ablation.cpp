// EXP16 (ablations of Theorem 1's design freedoms):
//  (a) algorithm independence — machines running *different* maximum
//      matching algorithms compose identically well ("no prior coordination
//      ... each machine can use a different algorithm", Section 1.2);
//  (b) coordinator solver — exact maximum vs greedy 2-approx on the union;
//  (c) kernel coreset (footnote 3) — exact composition once the degree cap
//      clears MM(G), at a size that shrinks with the cap.
#include "bench_common.hpp"
#include "coreset/compose.hpp"
#include "coreset/kernel.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/mixed.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP16/bench_ablation",
      "Theorem 1 design freedoms: per-machine algorithm choice and "
      "coordinator solver do not change the O(1) quality; footnote-3 "
      "kernels are exact once cap >= MM");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(8000 * setup.scale);
  const std::size_t k = 12;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const auto pieces = random_partition(el, k, rng);
  std::printf("n=%u m=%zu k=%zu MM(G)=%zu\n\n", n, el.num_edges(), k, opt);

  auto run = [&](const MatchingCoreset& coreset, ComposeSolver solver) {
    std::vector<EdgeList> summaries;
    std::uint64_t words = 0;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{n, k, i, 0};
      summaries.push_back(coreset.build(pieces[i], ctx, rng));
      words += 2 * summaries.back().num_edges();
    }
    const Matching m = compose_matching_coresets(summaries, solver, 0, rng);
    return std::pair<std::size_t, std::uint64_t>{m.size(), words};
  };

  TablePrinter table({"coreset", "coordinator", "matching", "ratio",
                      "comm(words)"});
  bool ok = true;
  const MaximumMatchingCoreset uniform;
  const MixedMaximumMatchingCoreset mixed;
  struct Row {
    const MatchingCoreset* coreset;
    ComposeSolver solver;
    const char* cname;
    const char* sname;
  };
  const Row rows[] = {
      {&uniform, ComposeSolver::kMaximum, "maximum (uniform alg)", "exact"},
      {&mixed, ComposeSolver::kMaximum, "maximum (mixed algs)", "exact"},
      {&uniform, ComposeSolver::kGreedy, "maximum (uniform alg)", "greedy"},
  };
  std::size_t uniform_exact = 0;
  for (const Row& row : rows) {
    const auto [size, words] = run(*row.coreset, row.solver);
    if (row.coreset == &uniform && row.solver == ComposeSolver::kMaximum) {
      uniform_exact = size;
    }
    const double ratio = static_cast<double>(opt) / size;
    ok &= ratio <= 9.0;
    table.add_row({row.cname, row.sname, TablePrinter::fmt(std::uint64_t{size}),
                   TablePrinter::fmt_ratio(ratio), TablePrinter::fmt(words)});
  }

  // Kernel ablation: cap sweep on a small-opt instance.
  {
    EdgeList small_opt(n);
    // 20 bicliques of 8x8 => MM = 160 << n.
    for (VertexId b = 0; b < 20; ++b) {
      const VertexId base = b * 40;
      for (VertexId i = 0; i < 8; ++i) {
        for (VertexId j = 0; j < 8; ++j) small_opt.add(base + i, base + 20 + j);
      }
    }
    const std::size_t mm = maximum_matching_size(small_opt);
    const auto kp = random_partition(small_opt, k, rng);
    for (VertexId cap : {2u, 8u, 32u, 256u}) {
      const KernelMatchingCoreset coreset(cap);
      std::vector<EdgeList> summaries;
      std::uint64_t words = 0;
      for (std::size_t i = 0; i < k; ++i) {
        PartitionContext ctx{n, k, i, 0};
        summaries.push_back(coreset.build(kp[i], ctx, rng));
        words += 2 * summaries.back().num_edges();
      }
      const Matching m =
          compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng);
      const bool exact = m.size() == mm;
      ok &= (cap < mm) || exact;  // exactness once cap >= MM
      table.add_row({coreset.name().c_str(), "exact",
                     TablePrinter::fmt(std::uint64_t{m.size()}),
                     exact ? "exact" : TablePrinter::fmt_ratio(
                                           static_cast<double>(mm) / m.size()),
                     TablePrinter::fmt(words)});
    }
    std::printf("(small-opt instance for kernel rows: MM = %zu)\n", mm);
  }
  table.print();
  (void)uniform_exact;
  bench::verdict(ok,
                 "mixed-algorithm machines match the uniform coreset; greedy "
                 "coordinator loses <= 2x; kernel composition turns exact at "
                 "cap >= MM — all three freedoms behave as the paper claims");
  return ok ? 0 : 1;
}
