// BENCH_augmenting: the augmenting-path round-combiner vs the PR-2 greedy
// combiner (mpc/coreset_mpc.cpp) on the multi-round MPC executor.
//
// Two sweeps:
//   * ratio-vs-rounds — both combiners on the same sparse bipartite
//     instance under a growing round budget; the greedy fold reaches its
//     maximal-matching fixed point in a round or two (on random instances
//     an excellent one — the maximum-coreset compose is hard to trap; see
//     tests/approximation_ratio_test.cpp for the families where only the
//     augmenting fold reaches the optimum) while the augmenting fold
//     converges monotonically until its (1+eps) certificate fires,
//   * comm-vs-epsilon — the augmenting combiner at the (1+eps) targets;
//     smaller eps means a longer path cap 2k+1, more rounds to certify,
//     and more path words on the wire.
//
// --json <path> additionally dumps both tables as one JSON object (the CI
// trajectory artifact; non-gating there).
#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts(
      "BENCH_augmenting: augmenting-path round-combiner vs the PR-2 greedy "
      "combiner (ratio-vs-rounds, comm-vs-epsilon)");
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("scale", "1.0", "instance size multiplier");
  opts.flag("json", "", "also write the results as JSON to this path");
  opts.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const double scale = opts.get_double("scale");
  const std::string json_path = opts.get_string("json");
  std::printf("=== BENCH_augmenting ===\n(seed=%llu scale=%.2f)\n\n",
              static_cast<unsigned long long>(seed), scale);

  Rng gen_rng(seed);
  const auto half = static_cast<VertexId>(1200 * scale);
  const EdgeList graph =
      random_bipartite(half, half, 2.5 / static_cast<double>(half), gen_rng);
  const std::size_t opt =
      hopcroft_karp(bipartite_graph(graph, half)).size();
  std::printf("instance: random bipartite n=%u+%u m=%zu nu(G)=%zu\n\n", half,
              half, graph.num_edges(), opt);

  const auto ratio_of = [&](std::size_t size) {
    return static_cast<double>(opt) /
           static_cast<double>(std::max<std::size_t>(size, 1));
  };
  MpcEngineConfig base;
  base.mpc = MpcConfig::paper_default(graph.num_vertices());

  struct RoundsRow {
    std::size_t rounds, greedy_size, aug_size;
    double greedy_ratio, aug_ratio;
    std::uint64_t greedy_comm, aug_comm;
  };
  std::vector<RoundsRow> rounds_rows;
  TablePrinter rounds_table({"rounds", "greedy", "ratio", "augment", "ratio",
                             "greedy comm", "augment comm"});
  bool shape_ok = true;
  for (std::size_t rounds : {1u, 2u, 4u, 8u, 16u, 24u}) {
    MpcEngineConfig config = base;
    config.max_rounds = rounds;
    Rng greedy_rng(seed);
    const CoresetMpcMatchingResult greedy =
        coreset_mpc_matching_rounds(graph, config, half, greedy_rng);
    AugmentingRoundsConfig aug;  // length cap 3: the 1.5-certificate regime
    Rng aug_rng(seed);
    const AugmentingMpcResult augmented =
        run_matching_rounds_augmenting(graph, config, aug, half, aug_rng);
    RoundsRow row{rounds,
                  greedy.matching.size(),
                  augmented.matching.size(),
                  ratio_of(greedy.matching.size()),
                  ratio_of(augmented.matching.size()),
                  greedy.stats.total_comm_words,
                  augmented.stats.total_comm_words};
    rounds_rows.push_back(row);
    rounds_table.add_row({TablePrinter::fmt(std::uint64_t{rounds}),
                          TablePrinter::fmt(std::uint64_t{row.greedy_size}),
                          TablePrinter::fmt_ratio(row.greedy_ratio),
                          TablePrinter::fmt(std::uint64_t{row.aug_size}),
                          TablePrinter::fmt_ratio(row.aug_ratio),
                          TablePrinter::fmt(row.greedy_comm),
                          TablePrinter::fmt(row.aug_comm)});
  }
  rounds_table.print();
  // Round-budget monotonicity and, at the full budget, the length-3
  // certificate against the exact oracle.
  for (std::size_t i = 1; i < rounds_rows.size(); ++i) {
    shape_ok &= rounds_rows[i].aug_size >= rounds_rows[i - 1].aug_size;
  }
  shape_ok &= rounds_rows.back().aug_ratio <= 1.5 + 1e-9;

  std::printf("\n");
  struct EpsRow {
    double epsilon, certified, realized;
    std::size_t path_cap, rounds, size;
    std::uint64_t comm;
    bool certified_stop;
  };
  std::vector<EpsRow> eps_rows;
  TablePrinter eps_table({"epsilon", "path cap", "certified", "realized",
                          "rounds", "comm(words)"});
  for (double epsilon : {1.0, 0.5, 1.0 / 3.0, 0.25}) {
    const AugmentingRoundsConfig aug =
        AugmentingRoundsConfig::for_epsilon(epsilon);
    MpcEngineConfig config = base;
    config.max_rounds = 256;  // generous: run to the certificate
    Rng rng(seed);
    const AugmentingMpcResult r =
        run_matching_rounds_augmenting(graph, config, aug, half, rng);
    EpsRow row{epsilon,
               aug.certified_ratio(),
               ratio_of(r.matching.size()),
               aug.max_path_length,
               r.stats.engine_rounds,
               r.matching.size(),
               r.stats.total_comm_words,
               r.certified};
    eps_rows.push_back(row);
    eps_table.add_row({TablePrinter::fmt_ratio(epsilon),
                       TablePrinter::fmt(std::uint64_t{row.path_cap}),
                       TablePrinter::fmt_ratio(row.certified),
                       TablePrinter::fmt_ratio(row.realized),
                       TablePrinter::fmt(std::uint64_t{row.rounds}),
                       TablePrinter::fmt(row.comm)});
    shape_ok &= row.certified_stop && row.realized <= row.certified + 1e-9;
  }
  eps_table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"experiment\": \"bench_augmenting_rounds\",\n"
                 "  \"seed\": %llu,\n  \"scale\": %.3f,\n"
                 "  \"vertices\": %u,\n  \"edges\": %zu,\n  \"optimum\": %zu,\n",
                 static_cast<unsigned long long>(seed), scale,
                 graph.num_vertices(), graph.num_edges(), opt);
    std::fprintf(f, "  \"ratio_vs_rounds\": [\n");
    for (std::size_t i = 0; i < rounds_rows.size(); ++i) {
      const RoundsRow& r = rounds_rows[i];
      std::fprintf(f,
                   "    {\"rounds\": %zu, \"greedy_size\": %zu, "
                   "\"greedy_ratio\": %.4f, \"augmenting_size\": %zu, "
                   "\"augmenting_ratio\": %.4f, \"greedy_comm_words\": %llu, "
                   "\"augmenting_comm_words\": %llu}%s\n",
                   r.rounds, r.greedy_size, r.greedy_ratio, r.aug_size,
                   r.aug_ratio, static_cast<unsigned long long>(r.greedy_comm),
                   static_cast<unsigned long long>(r.aug_comm),
                   i + 1 < rounds_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"comm_vs_epsilon\": [\n");
    for (std::size_t i = 0; i < eps_rows.size(); ++i) {
      const EpsRow& r = eps_rows[i];
      std::fprintf(
          f,
          "    {\"epsilon\": %.4f, \"path_cap\": %zu, \"certified_ratio\": "
          "%.4f, \"realized_ratio\": %.4f, \"rounds\": %zu, \"size\": %zu, "
          "\"comm_words\": %llu, \"certified_stop\": %s}%s\n",
          r.epsilon, r.path_cap, r.certified, r.realized, r.rounds, r.size,
          static_cast<unsigned long long>(r.comm),
          r.certified_stop ? "true" : "false",
          i + 1 < eps_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"shape_ok\": %s\n}\n",
                 shape_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\n[%s] %s\n", shape_ok ? "SHAPE-OK" : "SHAPE-MISMATCH",
              "augmenting rounds converge monotonically in the round budget "
              "and every (1+eps) run stops on a certificate it satisfies");
  return shape_ok ? 0 : 1;
}
