// EXP10 (Results 1 & 3 / R3): total communication of the coreset protocols
// scales as O~(n k): linear in k at fixed n and linear in n at fixed k, with
// every machine sending O~(n) words. (The matching lower bounds say no
// simultaneous protocol does better by more than polylog factors at O(1)
// approximation.)
#include "bench_common.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP10/bench_communication",
      "Results 1+3: coreset protocols use O~(nk) total communication — "
      "linear in k and in n; per-machine messages are O~(n)");
  Rng rng(setup.seed);

  TablePrinter table({"problem", "n", "k", "total(words)", "words/(n*k)",
                      "max-machine(words)", "max/n"});
  bool nk_shape = true;
  for (const std::size_t k : {8, 16, 32, 64}) {
    const auto n = static_cast<VertexId>(20000 * setup.scale);
    const EdgeList el = gnp(n, 6.0 / n, rng);
    const MatchingProtocolResult m =
        coreset_matching_protocol(el, k, 0, rng, nullptr);
    const double per_nk = static_cast<double>(m.comm.total_words()) /
                          (static_cast<double>(n) * k);
    nk_shape &= per_nk < 2.0;  // <= 2 words/edge * (n/2 edges)/n = 1
    table.add_row({"matching", TablePrinter::fmt(std::uint64_t{n}),
                   TablePrinter::fmt(std::uint64_t{k}),
                   TablePrinter::fmt(m.comm.total_words()),
                   TablePrinter::fmt_ratio(per_nk),
                   TablePrinter::fmt(m.comm.max_machine_words()),
                   TablePrinter::fmt_ratio(
                       static_cast<double>(m.comm.max_machine_words()) / n)});
  }
  for (const VertexId n_base : {5000, 10000, 20000, 40000}) {
    const auto n = static_cast<VertexId>(n_base * setup.scale);
    const std::size_t k = 16;
    const EdgeList el = gnp(n, 6.0 / n, rng);
    const VcProtocolResult v = coreset_vc_protocol(el, k, rng, nullptr);
    const double per_nk = static_cast<double>(v.comm.total_words()) /
                          (static_cast<double>(n) * k);
    table.add_row({"vertex cover", TablePrinter::fmt(std::uint64_t{n}),
                   TablePrinter::fmt(std::uint64_t{k}),
                   TablePrinter::fmt(v.comm.total_words()),
                   TablePrinter::fmt_ratio(per_nk),
                   TablePrinter::fmt(v.comm.max_machine_words()),
                   TablePrinter::fmt_ratio(
                       static_cast<double>(v.comm.max_machine_words()) / n)});
  }
  table.print();
  bench::verdict(nk_shape,
                 "words/(n*k) stays O(1)-ish across the k sweep and the n "
                 "sweep: the O~(nk) law (per-machine O~(n))");
  return nk_shape ? 0 : 1;
}
