// EXP6 (Theorem 4 / R2b): on D_VC, a budget-s summary contains the hidden
// edge e* w.p. ~ s / |piece of e*'s machine| ~ 2 s alpha / n, so covering e*
// (and hence feasibility) requires s = Omega(n/alpha).
//
// Table: budget sweep -> empirical P[e* in some summary], P[composed cover
// feasible], and the cover size.
#include "bench_common.hpp"
#include "lower_bounds/hard_instances.hpp"
#include "lower_bounds/probes.hpp"
#include "partition/partition.hpp"
#include "vertex_cover/approx.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP6/bench_lb_vc",
      "Theorem 4: budget-s summaries on D_VC miss the hidden edge e* unless "
      "s = Omega(n/alpha); feasibility probability ~ min(1, 2 s alpha / n)");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(20000 * setup.scale);
  const double alpha = 10.0;
  const std::size_t k = 40;
  const int trials = 12 * setup.reps;

  TablePrinter table({"budget s", "s/(n/alpha)", "P[e* in summary]",
                      "P[cover feasible]", "predicted", "avg cover size"});
  bool shape_ok = true;
  const double n_over_alpha = n / alpha;
  for (double frac : {0.05, 0.15, 0.4, 1.0, 3.0}) {
    const auto budget = static_cast<std::size_t>(frac * n_over_alpha);
    int has_e_star = 0, feasible = 0;
    double cover_total = 0.0;
    for (int t = 0; t < trials; ++t) {
      const DVcInstance inst = make_d_vc(n, alpha, k, rng);
      const auto pieces = random_partition(inst.edges, k, rng);
      // The machines send s arbitrary (here: random) edges plus nothing
      // fixed; the coordinator 2-approximates the union.
      std::vector<EdgeList> summaries;
      for (const auto& piece : pieces) {
        summaries.push_back(piece.sample_edges(budget, rng));
      }
      EdgeList summary_union = EdgeList::union_of(summaries);
      for (const Edge& e : summary_union) {
        if (e == inst.e_star) {
          ++has_e_star;
          break;
        }
      }
      const VertexCover cover = vc_two_approximation(summary_union, rng);
      cover_total += static_cast<double>(cover.size());
      if (cover.covers(inst.edges)) ++feasible;
    }
    // e*'s machine holds ~|E_A|/k + 1 ~ n/(2 alpha) edges; keeping s of them
    // at random retains e* w.p. ~ min(1, 2 s alpha / n).
    const double predicted = std::min(1.0, 2.0 * budget * alpha / n);
    const double p_e_star = static_cast<double>(has_e_star) / trials;
    const double p_feasible = static_cast<double>(feasible) / trials;
    shape_ok &= std::abs(p_e_star - predicted) < 0.3;
    shape_ok &= p_feasible <= p_e_star + 1e-9;  // can't cover what you missed*
    table.add_row({TablePrinter::fmt(std::uint64_t{budget}),
                   TablePrinter::fmt_ratio(frac),
                   TablePrinter::fmt_ratio(p_e_star),
                   TablePrinter::fmt_ratio(p_feasible),
                   TablePrinter::fmt_ratio(predicted),
                   TablePrinter::fmt(cover_total / trials, 0)});
  }
  table.print();
  std::printf(
      "(*) feasibility also requires covering every E_A edge; with e* present "
      "it still may fail, so P[feasible] <= P[e* in summary].\n");
  bench::verdict(shape_ok,
                 "P[e* in summary] tracks min(1, 2 s alpha / n): feasibility "
                 "needs budgets of order n/alpha, matching Omega(n/alpha)");
  return shape_ok ? 0 : 1;
}
