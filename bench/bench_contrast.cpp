// EXP18 (Section 1 framing): problems with *deterministic* composable
// coresets vs the random-partition-only guarantees of matching.
//
// The spanning-forest coreset recovers connectivity EXACTLY under every
// partitioner — random, sorted chunks, by-vertex — while the
// maximal-matching coreset's quality is partition- and adversary-dependent
// (EXP2's hub adversary realizes the Omega(k) gap under random
// partitioning already; adversarial partitioning is what makes matching
// require n^{2-o(1)} summaries per [10]).
#include "bench_common.hpp"
#include "contrast/connectivity_coreset.hpp"
#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP18/bench_contrast",
      "Intro framing: connectivity has a composable coreset under ANY "
      "partition; matching's O(1) guarantee is specific to random "
      "partitioning");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(20000 * setup.scale);
  const EdgeList el = gnp(n, 1.6 / n, rng);  // rich component structure
  const std::size_t true_components = connected_components(Graph(el));
  const std::size_t mm = maximum_matching_size(el);
  const std::size_t k = 12;
  std::printf("n=%u m=%zu components=%zu MM=%zu k=%zu\n\n", n, el.num_edges(),
              true_components, mm, k);

  struct Partitioner {
    const char* name;
    std::vector<EdgeList> pieces;
  };
  std::vector<Partitioner> partitioners;
  partitioners.push_back({"random (the paper's model)",
                          random_partition(el, k, rng)});
  partitioners.push_back({"sorted chunks (adversarial)",
                          sorted_chunk_partition(el, k)});
  partitioners.push_back({"by-vertex (adversarial)",
                          by_vertex_partition(el, k)});
  partitioners.push_back({"vertex-partition model of [10]",
                          random_vertex_partition(el, k, rng)});

  TablePrinter table({"partitioner", "connectivity: components",
                      "exact?", "matching ratio"});
  bool connectivity_always_exact = true;
  const SpanningForestCoreset forest_coreset;
  const MaximumMatchingCoreset matching_coreset;
  for (auto& p : partitioners) {
    std::vector<EdgeList> forest_summaries, matching_summaries;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{n, k, i, 0};
      forest_summaries.push_back(forest_coreset.build(p.pieces[i], ctx, rng));
      matching_summaries.push_back(
          matching_coreset.build(p.pieces[i], ctx, rng));
    }
    const std::size_t comp = connected_components(
        Graph(spanning_forest(EdgeList::union_of(forest_summaries))));
    const bool exact = comp == true_components;
    connectivity_always_exact &= exact;
    const Matching composed = compose_matching_coresets(
        matching_summaries, ComposeSolver::kMaximum, 0, rng);
    table.add_row({p.name, TablePrinter::fmt(std::uint64_t{comp}),
                   exact ? "yes" : "NO",
                   TablePrinter::fmt_ratio(static_cast<double>(mm) /
                                           composed.size())});
  }
  table.print();
  std::printf(
      "\n(matching ratios stay small on THIS instance for all partitioners — "
      "the adversarial-partition hardness of [10] needs RS-graph "
      "constructions; the gap the paper proves for random partitioning is "
      "realized by EXP2's hub adversary.)\n");
  bench::verdict(connectivity_always_exact,
                 "spanning-forest coresets are exact under every partitioner "
                 "— the deterministic composability the intro contrasts "
                 "matching against");
  return connectivity_always_exact ? 0 : 1;
}
