// EXP2 (Section 1.2 / R1c): an arbitrary (adversarial) maximal-matching
// coreset degrades as Omega(k) on the hub gadget while the maximum-matching
// coreset stays O(1). The table sweeps k and reports both ratios.
#include <vector>

#include "bench_common.hpp"
#include "coreset/adversarial.hpp"
#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP2/bench_greedy_gap",
      "R1c: adversarial maximal matching coreset is Omega(k)-approximate on "
      "the hub gadget; maximum matching coreset stays ~1");
  Rng rng(setup.seed);
  const auto pairs = static_cast<VertexId>(8192 * setup.scale);

  TablePrinter table({"k", "hubs", "adversarial-ratio", "random-greedy-ratio",
                      "maximum-ratio", "adversarial/k"});
  bool grows_linearly = true;
  bool maximum_stays_constant = true;
  for (std::size_t k : {4, 8, 16, 32, 64}) {
    const auto hubs = static_cast<VertexId>(2 * pairs / k);
    const HubGadget gadget = hub_gadget(pairs, hubs);
    const auto pieces = random_partition(gadget.edges, k, rng);

    auto ratio_with = [&](const MatchingCoreset& coreset) {
      std::vector<EdgeList> summaries;
      for (std::size_t i = 0; i < k; ++i) {
        PartitionContext ctx{gadget.edges.num_vertices(), k, i,
                             gadget.left_size};
        summaries.push_back(coreset.build(pieces[i], ctx, rng));
      }
      const Matching composed = compose_matching_coresets(
          summaries, ComposeSolver::kMaximum, gadget.left_size, rng);
      return static_cast<double>(pairs) / static_cast<double>(composed.size());
    };

    const HubAdversarialMaximalCoreset bad(gadget);
    // The failure is about the *adversarial freedom* in "arbitrary maximal
    // matching": an oblivious random-order greedy does not realize it.
    const MaximalMatchingCoreset oblivious(GreedyOrder::kRandom);
    const MaximumMatchingCoreset good;
    const double bad_ratio = ratio_with(bad);
    const double oblivious_ratio = ratio_with(oblivious);
    const double good_ratio = ratio_with(good);
    grows_linearly &= bad_ratio >= static_cast<double>(k) / 6.0;
    maximum_stays_constant &= good_ratio <= 2.0;
    table.add_row({TablePrinter::fmt(std::uint64_t{k}),
                   TablePrinter::fmt(std::uint64_t{hubs}),
                   TablePrinter::fmt_ratio(bad_ratio),
                   TablePrinter::fmt_ratio(oblivious_ratio),
                   TablePrinter::fmt_ratio(good_ratio),
                   TablePrinter::fmt_ratio(bad_ratio / k)});
  }
  table.print();
  bench::verdict(grows_linearly && maximum_stays_constant,
                 "adversarial ratio grows ~linearly in k (roughly k/2) while "
                 "the maximum-matching coreset stays near 1 (random-order "
                 "greedy sits in between: the failure needs the adversary)");
  return (grows_linearly && maximum_stays_constant) ? 0 : 1;
}
