// EXP4 (Section 1.2 / R1d): sending a minimum vertex cover of each piece is
// an Omega(k)-approximate "coreset" on star instances — a one-edge piece
// cannot tell the star's center from its leaf — while the peeling coreset
// stays constant-factor.
#include "bench_common.hpp"
#include "coreset/vc_coreset.hpp"
#include "coreset/compose.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP4/bench_vc_negative",
      "R1d: min-VC-of-piece union is Omega(k)-approximate on star forests "
      "(expected ~k/e); the peeling coreset stays ~2");
  Rng rng(setup.seed);
  const auto stars = static_cast<VertexId>(600 * setup.scale);

  TablePrinter table({"k", "OPT", "min-vc-union", "min-vc-ratio",
                      "peeling-ratio", "min-vc-ratio/k"});
  bool min_vc_fails = true;
  bool peeling_fine = true;
  for (std::size_t k : {8, 16, 32, 64}) {
    const EdgeList el = star_forest(stars, static_cast<VertexId>(k));
    const VertexId n = el.num_vertices();
    const std::size_t opt = stars;
    const auto pieces = random_partition(el, k, rng);

    auto cover_with = [&](const VertexCoverCoreset& coreset) {
      std::vector<VcCoresetOutput> summaries;
      for (std::size_t i = 0; i < k; ++i) {
        PartitionContext ctx{n, k, i, 0};
        summaries.push_back(coreset.build(pieces[i], ctx, rng));
      }
      return compose_vc_coresets(summaries, n, rng);
    };

    const MinVcOfPieceCoreset bad(ForestTieBreak::kHighId);
    const PeelingVcCoreset good;
    const VertexCover bad_cover = cover_with(bad);
    const VertexCover good_cover = cover_with(good);
    const double bad_ratio = static_cast<double>(bad_cover.size()) / opt;
    const double good_ratio = static_cast<double>(good_cover.size()) / opt;
    min_vc_fails &= bad_ratio >= static_cast<double>(k) / 8.0;
    peeling_fine &= good_ratio <= 3.0;
    table.add_row({TablePrinter::fmt(std::uint64_t{k}),
                   TablePrinter::fmt(std::uint64_t{opt}),
                   TablePrinter::fmt(std::uint64_t{bad_cover.size()}),
                   TablePrinter::fmt_ratio(bad_ratio),
                   TablePrinter::fmt_ratio(good_ratio),
                   TablePrinter::fmt_ratio(bad_ratio / k)});
  }
  table.print();
  bench::verdict(min_vc_fails && peeling_fine,
                 "min-vc-of-piece ratio grows ~k/e with k; peeling coreset "
                 "stays ~2 (the 2-approx of the residual union)");
  return (min_vc_fails && peeling_fine) ? 0 : 1;
}
