// EXP12 (Lemmas 3.1/3.2 / C1): step-by-step growth of the GreedyMatch
// combiner. While the running matching is small, every one of the first k/3
// steps adds ~MM(G)/k edges; the curve then saturates at a constant
// fraction of MM(G) (>= 1/9 per Lemma 3.1, empirically much higher).
#include "bench_common.hpp"
#include "coreset/compose.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP12/bench_greedymatch_growth",
      "Lemma 3.2: GreedyMatch adds ~MM/k edges per early step; Lemma 3.1: "
      "the final matching is >= MM/9 (empirically ~0.6 MM)");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(30000 * setup.scale);
  const std::size_t k = 24;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  std::printf("n=%u k=%zu MM(G)=%zu MM/k=%.0f\n\n", n, k, opt,
              static_cast<double>(opt) / k);

  const auto pieces = random_partition(el, k, rng);
  PartitionContext ctx{n, k, 0, 0};
  const GreedyMatchTrace trace = greedy_match(pieces, ctx, rng);

  TablePrinter table({"step i", "|M(i)|", "|M(i)|/MM", "increment",
                      "increment/(MM/k)"});
  std::size_t prev = 0;
  bool early_growth = true;
  const double mm_over_k = static_cast<double>(opt) / k;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t size = trace.step_sizes[i];
    const std::size_t inc = size - prev;
    if (i < k / 3 && static_cast<double>(prev) < opt / 9.0) {
      early_growth &= static_cast<double>(inc) >= 0.15 * mm_over_k;
    }
    table.add_row({TablePrinter::fmt(std::uint64_t{i + 1}),
                   TablePrinter::fmt(std::uint64_t{size}),
                   TablePrinter::fmt_ratio(static_cast<double>(size) / opt),
                   TablePrinter::fmt(std::uint64_t{inc}),
                   TablePrinter::fmt_ratio(static_cast<double>(inc) / mm_over_k)});
    prev = size;
  }
  table.print();
  const bool final_ok =
      static_cast<double>(trace.matching.size()) >= static_cast<double>(opt) / 9.0;
  bench::verdict(early_growth && final_ok,
                 "early steps add Theta(MM/k) edges each; the final matching "
                 "clears the MM/9 bound of Lemma 3.1 with a wide margin");
  return (early_growth && final_ok) ? 0 : 1;
}
