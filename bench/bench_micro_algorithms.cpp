// Micro-benchmarks (google-benchmark) of the algorithmic kernels the
// experiments are built on: matching solvers, partitioner, coreset builds.
// These feed EXP14's scalability narrative with per-kernel numbers.
#include <benchmark/benchmark.h>

#include "coreset/matching_coresets.hpp"
#include "coreset/vc_coreset.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcc;

void BM_HopcroftKarp(benchmark::State& state) {
  const auto side = static_cast<VertexId>(state.range(0));
  Rng rng(1);
  const EdgeList el = random_bipartite(side, side, 6.0 / side, rng);
  const Graph g = bipartite_graph(el, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g).size());
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_Blossom(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng rng(2);
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const Graph g(el);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_maximum_matching(g).size());
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
}
BENCHMARK(BM_Blossom)->Arg(1 << 10)->Arg(1 << 12);

void BM_GreedyMaximal(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng rng(3);
  const EdgeList el = gnp(n, 8.0 / n, rng);
  for (auto _ : state) {
    Rng inner(4);
    benchmark::DoNotOptimize(
        greedy_maximal_matching(el, GreedyOrder::kGiven, inner).size());
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
}
BENCHMARK(BM_GreedyMaximal)->Arg(1 << 14)->Arg(1 << 17);

void BM_RandomPartition(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng rng(5);
  const EdgeList el = gnp(n, 8.0 / n, rng);
  for (auto _ : state) {
    Rng inner(6);
    benchmark::DoNotOptimize(random_partition(el, 32, inner).size());
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
}
BENCHMARK(BM_RandomPartition)->Arg(1 << 14)->Arg(1 << 17);

void BM_PeelingVcCoreset(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng rng(7);
  const EdgeList el = gnp(n, 12.0 / n, rng);
  const auto pieces = random_partition(el, 8, rng);
  const PeelingVcCoreset coreset;
  PartitionContext ctx{n, 8, 0, 0};
  for (auto _ : state) {
    Rng inner(8);
    benchmark::DoNotOptimize(coreset.build(pieces[0], ctx, inner).size_items());
  }
}
BENCHMARK(BM_PeelingVcCoreset)->Arg(1 << 14)->Arg(1 << 16);

void BM_MaximumMatchingCoreset(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  Rng rng(9);
  const EdgeList el = gnp(n, 8.0 / n, rng);
  const auto pieces = random_partition(el, 8, rng);
  const MaximumMatchingCoreset coreset;
  PartitionContext ctx{n, 8, 0, 0};
  for (auto _ : state) {
    Rng inner(10);
    benchmark::DoNotOptimize(coreset.build(pieces[0], ctx, inner).num_edges());
  }
}
BENCHMARK(BM_MaximumMatchingCoreset)->Arg(1 << 14)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
