// EXP13 (Section 1.1 / R6): the Crouch-Stubbs weighted extension. The
// distributed weighted coreset (per-class maximum matchings) should land
// within a small constant of the centralized greedy weighted matching,
// paying the factor-2-ish merge loss and an O(log W) space blowup.
#include "bench_common.hpp"
#include "coreset/weighted_coreset.hpp"
#include "distributed/weighted_matching_protocol.hpp"
#include "matching/weighted.hpp"
#include "partition/partition.hpp"

namespace {

using namespace rcc;

WeightedEdgeList weighted_bipartite(VertexId side, double avg_deg, double wmax,
                                    Rng& rng) {
  WeightedEdgeList w;
  w.num_vertices = 2 * side;
  const double p = avg_deg / side;
  for (VertexId u = 0; u < side; ++u) {
    VertexId v = side + static_cast<VertexId>(rng.geometric_skip(p));
    while (v < 2 * side) {
      w.add(u, v, rng.uniform_real(1.0, wmax));
      const auto skip = rng.geometric_skip(p);
      if (skip >= 2u * side - v - 1) break;
      v += 1 + static_cast<VertexId>(skip);
    }
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP13/bench_weighted",
      "R6 (Crouch-Stubbs): weighted matching coresets lose <= ~2x vs the "
      "centralized baseline and the summary grows by O(log W) classes");
  Rng rng(setup.seed);
  const auto side = static_cast<VertexId>(10000 * setup.scale);
  const std::size_t k = 16;

  TablePrinter table({"wmax", "classes", "central-greedy-W", "coreset-W",
                      "coreset/central", "comm(words)"});
  bool within_loss = true;
  for (double wmax : {2.0, 16.0, 256.0, 4096.0}) {
    const WeightedEdgeList graph = weighted_bipartite(side, 8.0, wmax, rng);
    const double central =
        matching_weight(greedy_weighted_matching(graph), graph);

    const WeightedMatchingProtocolResult r =
        weighted_matching_protocol(graph, k, side, rng);
    const double rel = r.matching_weight / central;
    within_loss &= rel >= 0.4;  // within ~2.5x of the centralized baseline
    const int classes =
        static_cast<int>(split_weight_classes(graph).classes.size());
    table.add_row({TablePrinter::fmt(wmax, 0),
                   TablePrinter::fmt(std::int64_t{classes}),
                   TablePrinter::fmt(central, 0),
                   TablePrinter::fmt(r.matching_weight, 0),
                   TablePrinter::fmt_ratio(rel),
                   TablePrinter::fmt(r.comm.total_words())});
  }
  table.print();
  bench::verdict(within_loss,
                 "distributed weighted matching stays within the promised "
                 "constant factor of the centralized baseline across weight "
                 "ranges; summary size grows only with log(wmax)");
  return within_loss ? 0 : 1;
}
