// EXP5 (Theorem 3 / R2a): on D_Matching, an s-item coreset recovers only
// ~s * Theta(alpha/k) planted edges per machine regardless of its local
// selection policy, so alpha-approximation needs s = Omega(n/alpha^2)...
// while the unbudgeted maximum-matching coreset (s ~ n/alpha + n/k) recovers
// a constant fraction.
//
// Table: budget sweep x policy -> recovered planted edges and composed
// matching size. The paper's shape: recovery linear in s, flat across
// policies (indistinguishability), approximation stuck at ~alpha until
// s ~ n/alpha.
#include <memory>

#include "bench_common.hpp"
#include "coreset/budget.hpp"
#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "distributed/protocol.hpp"
#include "lower_bounds/hard_instances.hpp"
#include "lower_bounds/probes.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP5/bench_lb_matching",
      "Theorem 3: budget-s coresets on D_Matching recover ~s*alpha/k planted "
      "edges per machine under ANY local policy; alpha-approx needs "
      "s = Omega(n/alpha^2)");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(40000 * setup.scale);
  const double alpha = 10.0;
  const std::size_t k = 50;
  const DMatchingInstance inst = make_d_matching(n, alpha, k, rng);
  const std::size_t opt = maximum_matching_size(inst.edges, inst.left_size());
  const auto pieces = random_partition(inst.edges, k, rng);

  std::printf("n=%u alpha=%.0f k=%zu MM(G)=%zu planted=%zu n/alpha^2=%.0f\n\n",
              n, alpha, k, opt, inst.planted_matching_size(),
              n / (alpha * alpha));

  TablePrinter table({"budget s", "policy", "recovered-planted",
                      "recovered/(s*k*alpha/k)", "composed-MM", "ratio"});
  bool linear_in_s = true;
  std::size_t recovered_at_min_budget = 0;
  const std::size_t s_unit = static_cast<std::size_t>(n / (alpha * alpha));
  for (std::size_t mult : {1, 2, 4, 8}) {
    const std::size_t budget = mult * s_unit;
    for (BudgetPolicy policy :
         {BudgetPolicy::kRandom, BudgetPolicy::kLowDegreeFirst,
          BudgetPolicy::kHighDegreeFirst}) {
      auto inner = std::make_shared<MaximumMatchingCoreset>();
      const BudgetedMatchingCoreset coreset(inner, budget, policy);
      const MatchingProtocolResult r = run_matching_protocol_on_partition(
          pieces, coreset, ComposeSolver::kMaximum, inst.left_size(), rng,
          nullptr);
      std::size_t recovered = 0;
      for (const auto& s : r.summaries) recovered += hidden_edges_in(s, inst);
      if (mult == 1 && policy == BudgetPolicy::kRandom) {
        recovered_at_min_budget = recovered;
      }
      if (mult == 8 && policy == BudgetPolicy::kRandom) {
        const double growth = static_cast<double>(recovered) /
                              std::max<std::size_t>(recovered_at_min_budget, 1);
        linear_in_s &= growth > 4.0 && growth < 16.0;  // ~8x for 8x budget
      }
      const double normalized = static_cast<double>(recovered) /
                                (static_cast<double>(budget) * alpha);
      table.add_row(
          {TablePrinter::fmt(std::uint64_t{budget}), budget_policy_name(policy),
           TablePrinter::fmt(std::uint64_t{recovered}),
           TablePrinter::fmt_ratio(normalized),
           TablePrinter::fmt(std::uint64_t{r.solution.size()}),
           TablePrinter::fmt_ratio(static_cast<double>(opt) /
                                   static_cast<double>(r.solution.size()))});
    }
  }
  // Reference row: the unbudgeted Theorem 1 coreset.
  {
    const MaximumMatchingCoreset full;
    const MatchingProtocolResult r = run_matching_protocol_on_partition(
        pieces, full, ComposeSolver::kMaximum, inst.left_size(), rng, nullptr);
    std::size_t recovered = 0;
    for (const auto& s : r.summaries) recovered += hidden_edges_in(s, inst);
    table.add_row({"unbudgeted", "maximum-matching",
                   TablePrinter::fmt(std::uint64_t{recovered}), "-",
                   TablePrinter::fmt(std::uint64_t{r.solution.size()}),
                   TablePrinter::fmt_ratio(static_cast<double>(opt) /
                                           static_cast<double>(r.solution.size()))});
  }
  table.print();
  bench::verdict(linear_in_s,
                 "planted-edge recovery is linear in the budget and capped by "
                 "the alpha/k indistinguishability rate for every policy; "
                 "only the unbudgeted coreset reaches a constant ratio");
  return linear_in_s ? 0 : 1;
}
