// EXP-PE1: throughput of the random k-partitioning hot path — the legacy
// copy-based partitioner (k per-machine EdgeLists, one normalizing
// push_back per edge) vs the sharded single-arena partitioner that now
// feeds the protocol engine, sequential and on the thread pool.
//
// Claim: the sharded partitioner moves >= 1.5x the edges/sec of the
// copy-based baseline at k >= 8 on a 1M-edge random graph.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "partition/sharded_partition.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rcc;

/// The pre-engine partitioner, verbatim: reserve k lists, push every edge
/// through the normalizing EdgeList::add.
std::vector<EdgeList> copy_based_partition(const EdgeList& edges,
                                           std::size_t k, Rng& rng) {
  std::vector<EdgeList> parts(k, EdgeList(edges.num_vertices()));
  const std::size_t expected = edges.num_edges() / k + 1;
  for (auto& p : parts) p.reserve(expected + expected / 2);
  for (const Edge& e : edges) {
    parts[rng.next_below(k)].add(e);
  }
  return parts;
}

/// Best-of-reps wall seconds of fn() (first call warms the page cache).
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using rcc::bench::standard_setup;
  const auto setup = standard_setup(
      argc, argv, "EXP-PE1",
      "sharded arena partitioner >= 1.5x copy-based baseline at k >= 8");

  const auto n = static_cast<VertexId>(250000 * setup.scale);
  const double target_edges = 1e6 * setup.scale;
  Rng gen(setup.seed);
  const EdgeList graph = gnp(n, 2.0 * target_edges / n / (n - 1), gen);
  const double m = static_cast<double>(graph.num_edges());
  std::printf("graph: n=%u m=%zu\n\n", n, graph.num_edges());

  ThreadPool pool;

  TablePrinter table({"k", "copy ME/s", "shard ME/s", "shard+pool ME/s",
                      "speedup", "speedup(pool)"});
  bool claim_holds = true;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    Rng rng(setup.seed + k);
    // Guard against dead-code elimination by accumulating shard sizes.
    std::size_t sink = 0;
    const double copy_s = best_seconds(setup.reps, [&] {
      const auto parts = copy_based_partition(graph, k, rng);
      sink += parts.front().num_edges();
    });
    const double shard_s = best_seconds(setup.reps, [&] {
      const ShardedPartition<Edge> parts = shard_random(graph, k, rng);
      sink += parts.shard_size(0);
    });
    const double pool_s = best_seconds(setup.reps, [&] {
      const ShardedPartition<Edge> parts = shard_random(graph, k, rng, &pool);
      sink += parts.shard_size(0);
    });
    if (sink == 0xdead) std::printf("(unreachable)\n");

    const double speedup = copy_s / shard_s;
    const double speedup_pool = copy_s / pool_s;
    table.add_row({TablePrinter::fmt(std::uint64_t{k}),
                   TablePrinter::fmt(m / copy_s / 1e6, 1),
                   TablePrinter::fmt(m / shard_s / 1e6, 1),
                   TablePrinter::fmt(m / pool_s / 1e6, 1),
                   TablePrinter::fmt_ratio(speedup),
                   TablePrinter::fmt_ratio(speedup_pool)});
    if (k >= 8 && std::max(speedup, speedup_pool) < 1.5) claim_holds = false;
  }
  table.print();

  rcc::bench::verdict(claim_holds,
                      "sharded partitioner >= 1.5x copy-based at every k >= 8");
  return claim_holds ? 0 : 1;
}
