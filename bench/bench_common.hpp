// Shared scaffolding for the experiment binaries in bench/.
//
// Every binary regenerates one experiment from DESIGN.md's index and prints
// a paper-style table plus a one-line verdict tying the measurement back to
// the claim it reproduces. Binaries accept --seed and --scale (0.25..4) so
// CI can run them fast and a workstation can run them big.
#pragma once

#include <cstdio>
#include <string>

#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace rcc::bench {

struct ExperimentSetup {
  std::uint64_t seed = 42;
  double scale = 1.0;
  int reps = 3;
};

/// Parses the standard flags and prints the experiment banner.
inline ExperimentSetup standard_setup(int argc, char** argv, const char* exp_id,
                                      const char* claim) {
  Options opts(std::string(exp_id) + ": " + claim);
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("scale", "1.0", "instance size multiplier");
  opts.flag("reps", "3", "repetitions per configuration");
  opts.parse(argc, argv);
  ExperimentSetup setup;
  setup.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  setup.scale = opts.get_double("scale");
  setup.reps = static_cast<int>(opts.get_int("reps"));
  std::printf("=== %s ===\n%s\n(seed=%llu scale=%.2f reps=%d)\n\n", exp_id,
              claim, static_cast<unsigned long long>(setup.seed), setup.scale,
              setup.reps);
  return setup;
}

inline void verdict(bool ok, const char* message) {
  std::printf("\n[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", message);
}

}  // namespace rcc::bench
