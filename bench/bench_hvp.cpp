// EXP17 (Lemma 5.7 / Theorem 6 gadget): the Hidden Vertex Problem game.
// Success at sublinear output size requires a message of Omega(m) elements:
// the budget-b protocol succeeds w.p. ~ b/m + fallback/(|U| - m), so the
// curve crosses 2/3 only when b ~ 2m/3 (for small fallback).
#include "bench_common.hpp"
#include "lower_bounds/hvp.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP17/bench_hvp",
      "Hidden Vertex Problem: success probability is ~budget/m unless the "
      "output blows up to Omega(|U|) — the Omega(n/alpha) message bound of "
      "Theorem 6 in game form");
  Rng rng(setup.seed);
  const std::uint64_t universe = static_cast<std::uint64_t>(40000 * setup.scale);
  const std::size_t m = static_cast<std::size_t>(universe / 10);  // n/alpha
  const int trials = 120 * setup.reps;

  TablePrinter table({"budget/m", "fallback/|U\\T|", "P[success]", "predicted",
                      "avg output size"});
  bool shape = true;
  for (double bfrac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (double ffrac : {0.0, 0.25}) {
      const auto budget = static_cast<std::size_t>(bfrac * m);
      const auto fallback =
          static_cast<std::size_t>(ffrac * (universe - m));
      int successes = 0;
      double output = 0.0;
      for (int t = 0; t < trials; ++t) {
        const HvpInstance inst = make_hvp(universe, m, rng);
        const HvpOutcome out = run_budgeted_hvp(inst, budget, fallback, rng);
        successes += out.success ? 1 : 0;
        output += static_cast<double>(out.output_size);
      }
      const double p = static_cast<double>(successes) / trials;
      const double predicted = bfrac + (1.0 - bfrac) * ffrac;
      shape &= std::abs(p - predicted) < 0.1;
      table.add_row({TablePrinter::fmt_ratio(bfrac), TablePrinter::fmt_ratio(ffrac),
                     TablePrinter::fmt_ratio(p), TablePrinter::fmt_ratio(predicted),
                     TablePrinter::fmt(output / trials, 1)});
    }
  }
  table.print();
  bench::verdict(shape,
                 "success tracks budget/m + (1-budget/m)*fallback-fraction: "
                 "constant success needs either Omega(m) message words or "
                 "Omega(|U|) output — Lemma 5.7's frontier");
  return shape ? 0 : 1;
}
