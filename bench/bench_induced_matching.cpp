// EXP11 (Appendix A / A1): structural constants of random bipartite graphs
// G(n, n, 1/n): degree-1 left vertices ~ n/e (Prop A.2a), right vertices
// untouched by L\S ~ n/e (Prop A.2b), induced matching >= n/e^3 (Lemma A.3,
// with the exact expectation n/e^2), and the balls-in-bins singleton law
// (Prop A.1).
#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP11/bench_induced_matching",
      "Appendix A: G(n,n,1/n) has ~n/e degree-1 left vertices and an induced "
      "matching of ~n/e^2 >= n/e^3; balls-in-bins singletons follow "
      "(B/M)*N*e^{-N/M}");
  Rng rng(setup.seed);
  const auto n = static_cast<VertexId>(40000 * setup.scale);

  TablePrinter table({"quantity", "measured/n", "predicted/n", "rel-err"});
  bool ok = true;
  auto add = [&](const char* name, double measured, double predicted) {
    const double rel = std::abs(measured - predicted) / predicted;
    ok &= rel < 0.05;
    table.add_row({name, TablePrinter::fmt(measured, 4),
                   TablePrinter::fmt(predicted, 4), TablePrinter::fmt(rel, 4)});
  };

  RunningStat deg1, induced;
  for (int rep = 0; rep < setup.reps; ++rep) {
    const EdgeList el = random_bipartite(n, n, 1.0 / n, rng);
    deg1.add(static_cast<double>(degree_one_count(el, n)) / n);
    induced.add(static_cast<double>(induced_matching(el).num_edges()) / n);
  }
  add("degree-1 left vertices (Prop A.2a)", deg1.mean(), std::exp(-1.0));
  add("induced matching (exact E ~ n/e^2)", induced.mean(), std::exp(-2.0));
  // Lemma A.3's guarantee is one-sided.
  ok &= induced.mean() >= std::exp(-3.0);
  table.add_row({"induced matching >= n/e^3 (Lemma A.3)",
                 TablePrinter::fmt(induced.mean(), 4),
                 TablePrinter::fmt(std::exp(-3.0), 4),
                 induced.mean() >= std::exp(-3.0) ? "holds" : "VIOLATED"});

  // Balls in bins (Prop A.1): N balls, M bins, subset B.
  {
    const std::uint64_t M = n, N = n / 2, B = n / 4;
    RunningStat singles;
    for (int rep = 0; rep < setup.reps; ++rep) {
      std::vector<std::uint32_t> load(M, 0);
      for (std::uint64_t b = 0; b < N; ++b) ++load[rng.next_below(M)];
      std::uint64_t count = 0;
      for (std::uint64_t i = 0; i < B; ++i) count += (load[i] == 1) ? 1 : 0;
      singles.add(static_cast<double>(count) / static_cast<double>(n));
    }
    const double predicted = (static_cast<double>(B) / M) *
                             (static_cast<double>(N) / n) *
                             std::exp(-static_cast<double>(N) / M);
    add("balls-in-bins singletons in B (Prop A.1)", singles.mean(), predicted);
  }
  table.print();
  bench::verdict(ok, "all Appendix A constants within 5% of prediction");
  return ok ? 0 : 1;
}
