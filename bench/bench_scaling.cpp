// EXP14: throughput/scalability of the simulation substrate itself —
// coreset-construction wall time vs n, and thread-pool speedup of the
// simultaneous machine phase. Not a paper claim; a sanity check that the
// HPC substrate behaves (near-linear build times, real parallel speedup).
#include "bench_common.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  auto setup = bench::standard_setup(
      argc, argv, "EXP14/bench_scaling",
      "substrate sanity: near-linear scaling of the protocol in n; parallel "
      "machine phase speeds up with threads");
  Rng rng(setup.seed);

  TablePrinter table({"n", "m", "threads", "summaries(ms)", "total(ms)",
                      "speedup"});
  double base_ms = 0.0;
  bool speedup_ok = true;
  const std::size_t k = 32;
  for (const VertexId n_base : {20000, 40000, 80000}) {
    const auto n = static_cast<VertexId>(n_base * setup.scale);
    const VertexId side = n / 2;
    const EdgeList el = random_bipartite(side, side, 8.0 / side, rng);
    for (const std::size_t threads : {1, 4}) {
      ThreadPool pool(threads);
      WallTimer timer;
      Rng run_rng(setup.seed + n);
      const MatchingProtocolResult r =
          coreset_matching_protocol(el, k, side, run_rng, &pool);
      const double total_ms = timer.millis();
      if (threads == 1) base_ms = r.timing.summaries_seconds * 1e3;
      const double speedup =
          threads == 1 ? 1.0
                       : base_ms / std::max(1e-6, r.timing.summaries_seconds * 1e3);
      if (threads == 4 && n == static_cast<VertexId>(80000 * setup.scale)) {
        speedup_ok = speedup > 1.3;  // modest bar: scheduling noise happens
      }
      table.add_row({TablePrinter::fmt(std::uint64_t{n}),
                     TablePrinter::fmt(std::uint64_t{el.num_edges()}),
                     TablePrinter::fmt(std::uint64_t{threads}),
                     TablePrinter::fmt(r.timing.summaries_seconds * 1e3, 1),
                     TablePrinter::fmt(total_ms, 1),
                     TablePrinter::fmt_ratio(speedup)});
    }
  }
  table.print();
  bench::verdict(speedup_ok,
                 "machine phase parallelizes (speedup > 1.3x at 4 threads on "
                 "the largest instance); build time grows ~linearly in m");
  return speedup_ok ? 0 : 1;
}
