// Quickstart: the 30-second tour of the library.
//
//   1. Build (or load) a graph as an EdgeList.
//   2. Run the simultaneous coreset protocol for maximum matching: the
//      engine randomly partitions the edges over k simulated machines, each
//      machine sends a maximum matching of its piece (Theorem 1), and the
//      coordinator solves the union.
//   3. Do the same for minimum vertex cover with the peeling coreset
//      (Theorem 2).
//
// Run:  ./quickstart --n 100000 --k 32 --seed 7
#include <cstdio>

#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("quickstart: coreset protocols on a random graph");
  opts.flag("n", "50000", "number of vertices");
  opts.flag("k", "32", "number of machines");
  opts.flag("avg-degree", "6", "average degree of the random graph");
  opts.flag("seed", "7", "PRNG seed");
  opts.parse(argc, argv);

  const auto n = static_cast<VertexId>(opts.get_int("n"));
  const auto k = static_cast<std::size_t>(opts.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));

  // 1. A graph. Any EdgeList works: generators, io::read_edge_list, or your
  //    own construction.
  const EdgeList graph = gnp(n, opts.get_double("avg-degree") / n, rng);
  std::printf("graph: n=%u m=%zu\n", n, graph.num_edges());

  // 2. Maximum matching via randomized composable coresets (Theorem 1).
  ThreadPool pool;  // machines run concurrently
  const MatchingProtocolResult mm =
      coreset_matching_protocol(graph, k, /*left_size=*/0, rng, &pool);
  std::printf("matching: %zu edges, %llu words communicated (%.2f MiB), "
              "%.0f ms machine phase\n",
              mm.solution.size(),
              static_cast<unsigned long long>(mm.comm.total_words()),
              mm.comm.total_megabytes(n), mm.timing.summaries_seconds * 1e3);

  // Compare against the centralized optimum (feasible at this scale).
  const std::size_t opt = maximum_matching_size(graph);
  std::printf("centralized optimum: %zu  -> protocol ratio %.3f "
              "(Theorem 1 guarantees <= 9)\n",
              opt, static_cast<double>(opt) / mm.solution.size());

  // 3. Minimum vertex cover via peeling coresets (Theorem 2).
  const VcProtocolResult vc = coreset_vc_protocol(graph, k, rng, &pool);
  std::printf("vertex cover: %zu vertices, feasible=%s, %llu words "
              "communicated\n",
              vc.solution.size(), vc.solution.covers(graph) ? "yes" : "NO",
              static_cast<unsigned long long>(vc.comm.total_words()));
  return 0;
}
