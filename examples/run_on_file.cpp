// Run the coreset protocols on a graph loaded from disk.
//
// The edge-list format is documented in src/graph/io.hpp ("n m" header
// followed by "u v" lines; '#' comments). This is the adoption path for
// users with their own graphs:
//
//   ./run_on_file --graph my_graph.txt --problem matching --k 32
//   ./run_on_file --graph my_graph.txt --problem vc --k 16 --seed 7
//
// With --graph "" (default) a demo graph is generated, written to a temp
// file, and loaded back — exercising the full I/O path.
#include <cstdio>
#include <string>

#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("run_on_file: coreset protocols over an edge-list file");
  opts.flag("graph", "", "path to an edge-list file (empty = demo graph)");
  opts.flag("problem", "matching", "matching | vc | both");
  opts.flag("k", "16", "number of machines");
  opts.flag("left-size", "0", "bipartition boundary (0 = general graph)");
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("threads", "0", "worker threads (0 = hardware)");
  opts.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  std::string path = opts.get_string("graph");
  if (path.empty()) {
    path = "/tmp/rcc_demo_graph.txt";
    const EdgeList demo = gnp(20000, 6.0 / 20000, rng);
    write_edge_list(demo, path);
    std::printf("(no --graph given: wrote a demo graph to %s)\n", path.c_str());
  }

  WallTimer load_timer;
  const EdgeList graph = read_edge_list(path);
  std::printf("loaded %s: n=%u m=%zu (%.0f ms)\n", path.c_str(),
              graph.num_vertices(), graph.num_edges(), load_timer.millis());

  const auto k = static_cast<std::size_t>(opts.get_int("k"));
  const auto left_size = static_cast<VertexId>(opts.get_int("left-size"));
  ThreadPool pool(static_cast<std::size_t>(opts.get_int("threads")));
  const std::string problem = opts.get_string("problem");

  if (problem == "matching" || problem == "both") {
    const MatchingProtocolResult r =
        coreset_matching_protocol(graph, k, left_size, rng, &pool);
    std::printf(
        "matching: %zu edges | comm %llu words (%.2f MiB) | machines %.0f ms, "
        "coordinator %.0f ms\n",
        r.solution.size(),
        static_cast<unsigned long long>(r.comm.total_words()),
        r.comm.total_megabytes(graph.num_vertices()),
        r.timing.summaries_seconds * 1e3, r.timing.combine_seconds * 1e3);
  }
  if (problem == "vc" || problem == "both") {
    const VcProtocolResult r = coreset_vc_protocol(graph, k, rng, &pool);
    std::printf(
        "vertex cover: %zu vertices (feasible=%s) | comm %llu words | "
        "machines %.0f ms, coordinator %.0f ms\n",
        r.solution.size(), r.solution.covers(graph) ? "yes" : "NO",
        static_cast<unsigned long long>(r.comm.total_words()),
        r.timing.summaries_seconds * 1e3, r.timing.combine_seconds * 1e3);
  }
  if (problem != "matching" && problem != "vc" && problem != "both") {
    std::fprintf(stderr, "unknown --problem %s\n", problem.c_str());
    return 2;
  }
  return 0;
}
