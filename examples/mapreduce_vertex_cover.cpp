// MapReduce vertex cover for record deduplication.
//
// Scenario from the paper's Section 1.1: a dense pairwise-similarity graph
// over n records (dedup candidates) does not fit on one machine. A vertex
// cover is the smallest set of records whose manual review touches every
// duplicate link. The 2-round coreset algorithm is compared against the
// multi-round filtering baseline of Lattanzi et al. [46] — fewer rounds is
// the paper's headline, since round transitions dominate MapReduce cost.
//
// The instance is dense (m ~ n^2/4) on purpose: that is the regime where
// the graph exceeds one machine's memory (so filtering must iterate) and
// where the peeling coreset compresses (piece degrees clear the
// n/(4k) thresholds).
//
// Run:  ./mapreduce_vertex_cover --n 3000 --mpc-rounds 2
#include <cmath>
#include <cstdio>

#include "distributed/message.hpp"
#include "graph/generators.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "mpc/mpc_engine.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("mapreduce_vertex_cover: 2-round coreset MPC vs filtering");
  opts.flag("n", "3000", "number of records");
  opts.flag("p", "0.5", "pairwise similarity probability");
  opts.flag("seed", "33", "PRNG seed");
  add_mpc_engine_flags(opts);  // --mpc-machines / -memory-budget / -rounds ...
  opts.parse(argc, argv);

  const auto n = static_cast<VertexId>(opts.get_int("n"));
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const EdgeList similarity = gnp(n, opts.get_double("p"), rng);

  MpcEngineConfig engine_cfg = mpc_engine_config_from_options(opts, n);
  // The dedup scenario's records arrive wherever they were crawled: the
  // placement is adversarial, so the multi-round row pays the shuffle too.
  engine_cfg.input_already_random = false;
  if (opts.get_int("mpc-machines") == 0) engine_cfg.mpc.num_machines = 20;
  if (opts.get_int("mpc-memory-budget") == 0) {
    // One machine's memory is below the graph size: the whole point of MPC.
    engine_cfg.mpc.memory_words = similarity.num_edges();
  }
  const MpcConfig cfg = engine_cfg.mpc;
  std::printf(
      "dedup graph: n=%u m=%zu (%.1f MiB) | cluster: %zu machines x %llu "
      "words (each < the graph)\n\n",
      n, similarity.num_edges(),
      static_cast<double>(similarity.num_edges()) * 2 * word_bits(n) / 8.0 /
          1024.0 / 1024.0,
      cfg.num_machines, static_cast<unsigned long long>(cfg.memory_words));

  const CoresetMpcVcResult coreset = coreset_mpc_vertex_cover(
      similarity, cfg, /*input_already_random=*/false, rng);
  const FilteringMpcResult filtering = filtering_mpc(similarity, cfg, rng);

  TablePrinter table({"algorithm", "rounds", "peak memory (words)",
                      "cover size", "feasible"});
  table.add_row({"coreset MPC (this paper)",
                 TablePrinter::fmt(std::uint64_t{coreset.rounds}),
                 TablePrinter::fmt(coreset.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{coreset.cover.size()}),
                 coreset.cover.covers(similarity) ? "yes" : "NO"});
  if (engine_cfg.max_rounds > 1) {
    // The multi-round executor: intermediate rounds commit only the peeled
    // vertices, the final round closes the cover (mpc/mpc_engine.hpp).
    const CoresetMpcVcResult iterated =
        coreset_mpc_vertex_cover_rounds(similarity, engine_cfg, rng);
    table.add_row({"coreset MPC (multi-round)",
                   TablePrinter::fmt(std::uint64_t{iterated.rounds}),
                   TablePrinter::fmt(iterated.max_memory_words),
                   TablePrinter::fmt(std::uint64_t{iterated.cover.size()}),
                   iterated.cover.covers(similarity) ? "yes" : "NO"});
  }
  table.add_row({"filtering [LMSV'11]",
                 TablePrinter::fmt(std::uint64_t{filtering.rounds}),
                 TablePrinter::fmt(filtering.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{filtering.cover.size()}),
                 filtering.cover.covers(similarity) ? "yes" : "NO"});
  table.print();

  std::printf(
      "\ncoreset MPC: O(log n)-approx in %zu rounds (1 round if the shards "
      "were already random).\nfiltering: 2-approx but %zu rounds (%zu filter "
      "iterations x 2 + finish) — the trade the paper's Section 1.1 "
      "describes.\n",
      coreset.rounds, filtering.rounds, filtering.filter_iterations);
  return 0;
}
