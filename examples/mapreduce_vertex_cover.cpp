// MapReduce vertex cover for record deduplication.
//
// Scenario from the paper's Section 1.1: a dense pairwise-similarity graph
// over n records (dedup candidates) does not fit on one machine. A vertex
// cover is the smallest set of records whose manual review touches every
// duplicate link. The 2-round coreset algorithm is compared against the
// multi-round filtering baseline of Lattanzi et al. [46] — fewer rounds is
// the paper's headline, since round transitions dominate MapReduce cost.
//
// The instance is dense (m ~ n^2/4) on purpose: that is the regime where
// the graph exceeds one machine's memory (so filtering must iterate) and
// where the peeling coreset compresses (piece degrees clear the
// n/(4k) thresholds).
//
// Run:  ./mapreduce_vertex_cover --n 3000
#include <cmath>
#include <cstdio>

#include "distributed/message.hpp"
#include "graph/generators.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("mapreduce_vertex_cover: 2-round coreset MPC vs filtering");
  opts.flag("n", "3000", "number of records");
  opts.flag("p", "0.5", "pairwise similarity probability");
  opts.flag("machines", "20", "MPC cluster size");
  opts.flag("seed", "33", "PRNG seed");
  opts.parse(argc, argv);

  const auto n = static_cast<VertexId>(opts.get_int("n"));
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const EdgeList similarity = gnp(n, opts.get_double("p"), rng);

  MpcConfig cfg;
  cfg.num_machines = static_cast<std::size_t>(opts.get_int("machines"));
  // One machine's memory is below the graph size: the whole point of MPC.
  cfg.memory_words = similarity.num_edges();
  std::printf(
      "dedup graph: n=%u m=%zu (%.1f MiB) | cluster: %zu machines x %llu "
      "words (each < the graph)\n\n",
      n, similarity.num_edges(),
      static_cast<double>(similarity.num_edges()) * 2 * word_bits(n) / 8.0 /
          1024.0 / 1024.0,
      cfg.num_machines, static_cast<unsigned long long>(cfg.memory_words));

  const CoresetMpcVcResult coreset = coreset_mpc_vertex_cover(
      similarity, cfg, /*input_already_random=*/false, rng);
  const FilteringMpcResult filtering = filtering_mpc(similarity, cfg, rng);

  TablePrinter table({"algorithm", "rounds", "peak memory (words)",
                      "cover size", "feasible"});
  table.add_row({"coreset MPC (this paper)",
                 TablePrinter::fmt(std::uint64_t{coreset.rounds}),
                 TablePrinter::fmt(coreset.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{coreset.cover.size()}),
                 coreset.cover.covers(similarity) ? "yes" : "NO"});
  table.add_row({"filtering [LMSV'11]",
                 TablePrinter::fmt(std::uint64_t{filtering.rounds}),
                 TablePrinter::fmt(filtering.max_memory_words),
                 TablePrinter::fmt(std::uint64_t{filtering.cover.size()}),
                 filtering.cover.covers(similarity) ? "yes" : "NO"});
  table.print();

  std::printf(
      "\ncoreset MPC: O(log n)-approx in %zu rounds (1 round if the shards "
      "were already random).\nfiltering: 2-approx but %zu rounds (%zu filter "
      "iterations x 2 + finish) — the trade the paper's Section 1.1 "
      "describes.\n",
      coreset.rounds, filtering.rounds, filtering.filter_iterations);
  return 0;
}
