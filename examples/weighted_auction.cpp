// Weighted matching for a distributed auction market.
//
// Scenario: bidders (left) place weighted bids on items (right); bid records
// are sharded randomly across k ingestion servers. We want a near-maximum-
// weight assignment without centralizing all bids. The Crouch-Stubbs
// weighted coreset (Section 1.1's weighted extension) ships one maximum
// matching per geometric price band per server.
//
// Run:  ./weighted_auction --bidders 20000 --items 20000
#include <cstdio>

#include "coreset/weighted_coreset.hpp"
#include "matching/weighted.hpp"
#include "partition/partition.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("weighted_auction: distributed max-weight assignment");
  opts.flag("bidders", "5000", "left side size");
  opts.flag("items", "5000", "right side size");
  opts.flag("bids-per-bidder", "100", "average bids per bidder (dense book)");
  opts.flag("max-price", "1000", "price range upper bound");
  opts.flag("servers", "8", "ingestion servers (k)");
  opts.flag("seed", "55", "PRNG seed");
  opts.parse(argc, argv);

  const auto bidders = static_cast<VertexId>(opts.get_int("bidders"));
  const auto items = static_cast<VertexId>(opts.get_int("items"));
  const auto k = static_cast<std::size_t>(opts.get_int("servers"));
  const double max_price = opts.get_double("max-price");
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));

  // Build the bid graph: heavy-tailed prices in [1, max_price].
  WeightedEdgeList bids;
  bids.num_vertices = bidders + items;
  const double p = opts.get_double("bids-per-bidder") / items;
  for (VertexId b = 0; b < bidders; ++b) {
    VertexId item = bidders + static_cast<VertexId>(rng.geometric_skip(p));
    while (item < bidders + items) {
      const double u = rng.uniform01();
      bids.add(b, item, 1.0 + (max_price - 1.0) * u * u * u);  // skewed
      const auto skip = rng.geometric_skip(p);
      if (skip >= static_cast<std::uint64_t>(bidders + items - item - 1)) break;
      item += 1 + static_cast<VertexId>(skip);
    }
  }
  std::printf("market: %u bidders, %u items, %zu bids on %zu servers\n\n",
              bidders, items, bids.edges.size(), k);

  // Shard, build per-server Crouch-Stubbs coresets, compose.
  const auto shards = random_partition_weighted(bids, k, rng);
  std::vector<WeightedCoresetOutput> summaries;
  std::size_t summary_items = 0;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{bids.num_vertices, k, i, bidders};
    summaries.push_back(crouch_stubbs_coreset(shards[i], ctx));
    summary_items += summaries.back().size_items();
  }
  const Matching assignment =
      compose_weighted_coresets(summaries, bids.num_vertices, bidders);
  const double coreset_value = matching_weight(assignment, bids);

  // Centralized baseline: greedy heaviest-first over ALL bids.
  const double central_value =
      matching_weight(greedy_weighted_matching(bids), bids);

  TablePrinter table({"approach", "assignment value", "records shipped"});
  table.add_row({"Crouch-Stubbs coresets (distributed)",
                 TablePrinter::fmt(coreset_value, 0),
                 TablePrinter::fmt(std::uint64_t{summary_items})});
  table.add_row({"greedy on all bids (centralized)",
                 TablePrinter::fmt(central_value, 0),
                 TablePrinter::fmt(std::uint64_t{bids.edges.size()})});
  table.print();
  std::printf("\nvalue ratio %.3f at %.1fx fewer records shipped\n",
              coreset_value / central_value,
              static_cast<double>(bids.edges.size()) /
                  static_cast<double>(summary_items));
  return 0;
}
