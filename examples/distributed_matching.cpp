// Simulated cluster for distributed maximum matching.
//
// Scenario: a 16-machine cluster holds a randomly partitioned edge stream of
// a large user-resource graph (think: a day's worth of interaction edges
// sharded by a load balancer — which is exactly the random-partition model).
// Each machine ships only a maximum matching of its shard to the
// coordinator. The ledger shows the headline of the paper: O~(n) words per
// machine instead of shipping all m = 80n/2 edges, at an O(1) loss in
// matching size.
//
// Run:  ./distributed_matching --n 100000 --machines 16
#include <cstdio>

#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rcc;
  Options opts("distributed_matching: a 16-machine matching cluster in vitro");
  opts.flag("n", "100000", "vertices");
  opts.flag("avg-degree", "80", "average degree (dense: coresets compress)");
  opts.flag("machines", "16", "cluster size k");
  opts.flag("seed", "21", "PRNG seed");
  opts.parse(argc, argv);

  const auto n = static_cast<VertexId>(opts.get_int("n"));
  const VertexId side = n / 2;  // users x resources: bipartite
  const auto k = static_cast<std::size_t>(opts.get_int("machines"));
  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const EdgeList graph =
      random_bipartite(side, side, opts.get_double("avg-degree") / side, rng);

  std::printf("cluster: %zu machines; graph: n=%u, m=%zu (%.1f MiB raw)\n\n",
              k, n, graph.num_edges(),
              static_cast<double>(graph.num_edges()) * 2 *
                  word_bits(n) / 8.0 / 1024.0 / 1024.0);

  ThreadPool pool;
  const MatchingProtocolResult r =
      coreset_matching_protocol(graph, k, side, rng, &pool);

  // Per-machine ledger (first few machines).
  TablePrinter ledger({"machine", "summary edges", "message (words)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(k, 8); ++i) {
    ledger.add_row({TablePrinter::fmt(std::uint64_t{i}),
                    TablePrinter::fmt(r.comm.per_machine[i].edges),
                    TablePrinter::fmt(r.comm.per_machine[i].words())});
  }
  ledger.add_row({"...", "...", "..."});
  ledger.print();

  const std::size_t opt = maximum_matching_size(graph, side);
  const double naive_words = static_cast<double>(graph.num_edges()) * 2;
  std::printf(
      "\ncoordinator matched %zu pairs (centralized optimum %zu, ratio "
      "%.3f)\n"
      "total communication: %llu words = %.2f MiB (naive ship-everything: "
      "%.2f MiB, %.1fx more)\n"
      "wall time: partition %.0f ms | machines (parallel) %.0f ms | "
      "coordinator %.0f ms\n",
      r.solution.size(), opt, static_cast<double>(opt) / r.solution.size(),
      static_cast<unsigned long long>(r.comm.total_words()),
      r.comm.total_megabytes(n),
      naive_words * word_bits(n) / 8.0 / 1024.0 / 1024.0,
      naive_words / static_cast<double>(r.comm.total_words()),
      r.timing.partition_seconds * 1e3, r.timing.summaries_seconds * 1e3,
      r.timing.combine_seconds * 1e3);
  return 0;
}
