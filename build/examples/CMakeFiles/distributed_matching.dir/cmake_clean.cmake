file(REMOVE_RECURSE
  "CMakeFiles/distributed_matching.dir/distributed_matching.cpp.o"
  "CMakeFiles/distributed_matching.dir/distributed_matching.cpp.o.d"
  "distributed_matching"
  "distributed_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
