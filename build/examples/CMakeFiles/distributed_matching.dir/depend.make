# Empty dependencies file for distributed_matching.
# This may be replaced when dependencies are built.
