# Empty dependencies file for weighted_auction.
# This may be replaced when dependencies are built.
