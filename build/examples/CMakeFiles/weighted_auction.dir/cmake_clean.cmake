file(REMOVE_RECURSE
  "CMakeFiles/weighted_auction.dir/weighted_auction.cpp.o"
  "CMakeFiles/weighted_auction.dir/weighted_auction.cpp.o.d"
  "weighted_auction"
  "weighted_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
