file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_vertex_cover.dir/mapreduce_vertex_cover.cpp.o"
  "CMakeFiles/mapreduce_vertex_cover.dir/mapreduce_vertex_cover.cpp.o.d"
  "mapreduce_vertex_cover"
  "mapreduce_vertex_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_vertex_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
