# Empty dependencies file for mapreduce_vertex_cover.
# This may be replaced when dependencies are built.
