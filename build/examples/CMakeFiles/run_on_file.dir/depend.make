# Empty dependencies file for run_on_file.
# This may be replaced when dependencies are built.
