file(REMOVE_RECURSE
  "CMakeFiles/run_on_file.dir/run_on_file.cpp.o"
  "CMakeFiles/run_on_file.dir/run_on_file.cpp.o.d"
  "run_on_file"
  "run_on_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_on_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
