file(REMOVE_RECURSE
  "CMakeFiles/bench_subsampled_protocol.dir/bench_subsampled_protocol.cpp.o"
  "CMakeFiles/bench_subsampled_protocol.dir/bench_subsampled_protocol.cpp.o.d"
  "bench_subsampled_protocol"
  "bench_subsampled_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subsampled_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
