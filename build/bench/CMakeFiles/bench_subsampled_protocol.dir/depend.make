# Empty dependencies file for bench_subsampled_protocol.
# This may be replaced when dependencies are built.
