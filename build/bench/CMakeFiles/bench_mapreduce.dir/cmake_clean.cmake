file(REMOVE_RECURSE
  "CMakeFiles/bench_mapreduce.dir/bench_mapreduce.cpp.o"
  "CMakeFiles/bench_mapreduce.dir/bench_mapreduce.cpp.o.d"
  "bench_mapreduce"
  "bench_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
