# Empty dependencies file for bench_hvp.
# This may be replaced when dependencies are built.
