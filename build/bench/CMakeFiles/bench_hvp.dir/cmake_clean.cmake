file(REMOVE_RECURSE
  "CMakeFiles/bench_hvp.dir/bench_hvp.cpp.o"
  "CMakeFiles/bench_hvp.dir/bench_hvp.cpp.o.d"
  "bench_hvp"
  "bench_hvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
