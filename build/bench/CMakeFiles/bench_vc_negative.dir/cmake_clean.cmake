file(REMOVE_RECURSE
  "CMakeFiles/bench_vc_negative.dir/bench_vc_negative.cpp.o"
  "CMakeFiles/bench_vc_negative.dir/bench_vc_negative.cpp.o.d"
  "bench_vc_negative"
  "bench_vc_negative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
