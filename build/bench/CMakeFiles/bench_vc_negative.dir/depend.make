# Empty dependencies file for bench_vc_negative.
# This may be replaced when dependencies are built.
