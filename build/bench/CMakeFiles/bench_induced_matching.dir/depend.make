# Empty dependencies file for bench_induced_matching.
# This may be replaced when dependencies are built.
