file(REMOVE_RECURSE
  "CMakeFiles/bench_induced_matching.dir/bench_induced_matching.cpp.o"
  "CMakeFiles/bench_induced_matching.dir/bench_induced_matching.cpp.o.d"
  "bench_induced_matching"
  "bench_induced_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_induced_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
