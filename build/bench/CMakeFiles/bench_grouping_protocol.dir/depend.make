# Empty dependencies file for bench_grouping_protocol.
# This may be replaced when dependencies are built.
