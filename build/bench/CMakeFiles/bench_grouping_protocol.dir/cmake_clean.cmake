file(REMOVE_RECURSE
  "CMakeFiles/bench_grouping_protocol.dir/bench_grouping_protocol.cpp.o"
  "CMakeFiles/bench_grouping_protocol.dir/bench_grouping_protocol.cpp.o.d"
  "bench_grouping_protocol"
  "bench_grouping_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouping_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
