# Empty dependencies file for bench_matching_coreset.
# This may be replaced when dependencies are built.
