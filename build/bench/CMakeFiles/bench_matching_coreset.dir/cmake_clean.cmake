file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_coreset.dir/bench_matching_coreset.cpp.o"
  "CMakeFiles/bench_matching_coreset.dir/bench_matching_coreset.cpp.o.d"
  "bench_matching_coreset"
  "bench_matching_coreset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_coreset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
