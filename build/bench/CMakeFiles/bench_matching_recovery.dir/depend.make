# Empty dependencies file for bench_matching_recovery.
# This may be replaced when dependencies are built.
