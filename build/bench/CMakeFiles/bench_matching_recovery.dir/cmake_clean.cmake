file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_recovery.dir/bench_matching_recovery.cpp.o"
  "CMakeFiles/bench_matching_recovery.dir/bench_matching_recovery.cpp.o.d"
  "bench_matching_recovery"
  "bench_matching_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
