# Empty dependencies file for bench_lb_vc.
# This may be replaced when dependencies are built.
