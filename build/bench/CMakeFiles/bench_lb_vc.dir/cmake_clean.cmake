file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_vc.dir/bench_lb_vc.cpp.o"
  "CMakeFiles/bench_lb_vc.dir/bench_lb_vc.cpp.o.d"
  "bench_lb_vc"
  "bench_lb_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
