file(REMOVE_RECURSE
  "CMakeFiles/bench_weighted.dir/bench_weighted.cpp.o"
  "CMakeFiles/bench_weighted.dir/bench_weighted.cpp.o.d"
  "bench_weighted"
  "bench_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
