# Empty dependencies file for bench_weighted.
# This may be replaced when dependencies are built.
