# Empty dependencies file for bench_lb_matching.
# This may be replaced when dependencies are built.
