file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_matching.dir/bench_lb_matching.cpp.o"
  "CMakeFiles/bench_lb_matching.dir/bench_lb_matching.cpp.o.d"
  "bench_lb_matching"
  "bench_lb_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
