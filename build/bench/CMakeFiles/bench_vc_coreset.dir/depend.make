# Empty dependencies file for bench_vc_coreset.
# This may be replaced when dependencies are built.
