file(REMOVE_RECURSE
  "CMakeFiles/bench_vc_coreset.dir/bench_vc_coreset.cpp.o"
  "CMakeFiles/bench_vc_coreset.dir/bench_vc_coreset.cpp.o.d"
  "bench_vc_coreset"
  "bench_vc_coreset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vc_coreset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
