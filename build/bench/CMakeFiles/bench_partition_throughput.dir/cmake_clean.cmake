file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_throughput.dir/bench_partition_throughput.cpp.o"
  "CMakeFiles/bench_partition_throughput.dir/bench_partition_throughput.cpp.o.d"
  "bench_partition_throughput"
  "bench_partition_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
