# Empty dependencies file for bench_partition_throughput.
# This may be replaced when dependencies are built.
