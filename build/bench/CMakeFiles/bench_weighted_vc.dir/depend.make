# Empty dependencies file for bench_weighted_vc.
# This may be replaced when dependencies are built.
