file(REMOVE_RECURSE
  "CMakeFiles/bench_weighted_vc.dir/bench_weighted_vc.cpp.o"
  "CMakeFiles/bench_weighted_vc.dir/bench_weighted_vc.cpp.o.d"
  "bench_weighted_vc"
  "bench_weighted_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
