file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_gap.dir/bench_greedy_gap.cpp.o"
  "CMakeFiles/bench_greedy_gap.dir/bench_greedy_gap.cpp.o.d"
  "bench_greedy_gap"
  "bench_greedy_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
