# Empty dependencies file for bench_greedy_gap.
# This may be replaced when dependencies are built.
