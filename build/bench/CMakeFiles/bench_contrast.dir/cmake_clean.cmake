file(REMOVE_RECURSE
  "CMakeFiles/bench_contrast.dir/bench_contrast.cpp.o"
  "CMakeFiles/bench_contrast.dir/bench_contrast.cpp.o.d"
  "bench_contrast"
  "bench_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
