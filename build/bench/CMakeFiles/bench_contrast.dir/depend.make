# Empty dependencies file for bench_contrast.
# This may be replaced when dependencies are built.
