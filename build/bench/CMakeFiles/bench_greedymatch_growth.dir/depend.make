# Empty dependencies file for bench_greedymatch_growth.
# This may be replaced when dependencies are built.
