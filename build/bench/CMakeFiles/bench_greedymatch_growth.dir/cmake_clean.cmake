file(REMOVE_RECURSE
  "CMakeFiles/bench_greedymatch_growth.dir/bench_greedymatch_growth.cpp.o"
  "CMakeFiles/bench_greedymatch_growth.dir/bench_greedymatch_growth.cpp.o.d"
  "bench_greedymatch_growth"
  "bench_greedymatch_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedymatch_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
