file(REMOVE_RECURSE
  "CMakeFiles/matching_recovery_test.dir/matching_recovery_test.cpp.o"
  "CMakeFiles/matching_recovery_test.dir/matching_recovery_test.cpp.o.d"
  "matching_recovery_test"
  "matching_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
