# Empty dependencies file for matching_recovery_test.
# This may be replaced when dependencies are built.
