file(REMOVE_RECURSE
  "CMakeFiles/table_options_test.dir/table_options_test.cpp.o"
  "CMakeFiles/table_options_test.dir/table_options_test.cpp.o.d"
  "table_options_test"
  "table_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
