# Empty dependencies file for table_options_test.
# This may be replaced when dependencies are built.
