file(REMOVE_RECURSE
  "CMakeFiles/matching_type_test.dir/matching_type_test.cpp.o"
  "CMakeFiles/matching_type_test.dir/matching_type_test.cpp.o.d"
  "matching_type_test"
  "matching_type_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
