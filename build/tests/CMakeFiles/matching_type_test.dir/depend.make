# Empty dependencies file for matching_type_test.
# This may be replaced when dependencies are built.
