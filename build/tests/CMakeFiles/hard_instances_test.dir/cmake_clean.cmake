file(REMOVE_RECURSE
  "CMakeFiles/hard_instances_test.dir/hard_instances_test.cpp.o"
  "CMakeFiles/hard_instances_test.dir/hard_instances_test.cpp.o.d"
  "hard_instances_test"
  "hard_instances_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
