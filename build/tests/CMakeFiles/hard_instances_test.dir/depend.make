# Empty dependencies file for hard_instances_test.
# This may be replaced when dependencies are built.
