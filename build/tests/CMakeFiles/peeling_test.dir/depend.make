# Empty dependencies file for peeling_test.
# This may be replaced when dependencies are built.
