file(REMOVE_RECURSE
  "CMakeFiles/peeling_test.dir/peeling_test.cpp.o"
  "CMakeFiles/peeling_test.dir/peeling_test.cpp.o.d"
  "peeling_test"
  "peeling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
