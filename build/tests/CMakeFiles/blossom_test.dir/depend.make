# Empty dependencies file for blossom_test.
# This may be replaced when dependencies are built.
