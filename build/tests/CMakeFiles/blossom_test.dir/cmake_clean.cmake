file(REMOVE_RECURSE
  "CMakeFiles/blossom_test.dir/blossom_test.cpp.o"
  "CMakeFiles/blossom_test.dir/blossom_test.cpp.o.d"
  "blossom_test"
  "blossom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blossom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
