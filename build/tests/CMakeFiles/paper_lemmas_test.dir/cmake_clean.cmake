file(REMOVE_RECURSE
  "CMakeFiles/paper_lemmas_test.dir/paper_lemmas_test.cpp.o"
  "CMakeFiles/paper_lemmas_test.dir/paper_lemmas_test.cpp.o.d"
  "paper_lemmas_test"
  "paper_lemmas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_lemmas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
