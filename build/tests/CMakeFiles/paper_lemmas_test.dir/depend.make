# Empty dependencies file for paper_lemmas_test.
# This may be replaced when dependencies are built.
