file(REMOVE_RECURSE
  "CMakeFiles/coreset_vc_test.dir/coreset_vc_test.cpp.o"
  "CMakeFiles/coreset_vc_test.dir/coreset_vc_test.cpp.o.d"
  "coreset_vc_test"
  "coreset_vc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreset_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
