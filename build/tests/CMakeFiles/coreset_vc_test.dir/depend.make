# Empty dependencies file for coreset_vc_test.
# This may be replaced when dependencies are built.
