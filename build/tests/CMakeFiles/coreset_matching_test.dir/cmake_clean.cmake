file(REMOVE_RECURSE
  "CMakeFiles/coreset_matching_test.dir/coreset_matching_test.cpp.o"
  "CMakeFiles/coreset_matching_test.dir/coreset_matching_test.cpp.o.d"
  "coreset_matching_test"
  "coreset_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreset_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
