# Empty dependencies file for coreset_matching_test.
# This may be replaced when dependencies are built.
