file(REMOVE_RECURSE
  "CMakeFiles/mpc_test.dir/mpc_test.cpp.o"
  "CMakeFiles/mpc_test.dir/mpc_test.cpp.o.d"
  "mpc_test"
  "mpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
