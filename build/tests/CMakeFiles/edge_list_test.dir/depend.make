# Empty dependencies file for edge_list_test.
# This may be replaced when dependencies are built.
