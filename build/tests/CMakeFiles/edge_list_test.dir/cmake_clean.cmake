file(REMOVE_RECURSE
  "CMakeFiles/edge_list_test.dir/edge_list_test.cpp.o"
  "CMakeFiles/edge_list_test.dir/edge_list_test.cpp.o.d"
  "edge_list_test"
  "edge_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
