file(REMOVE_RECURSE
  "CMakeFiles/protocol_engine_test.dir/protocol_engine_test.cpp.o"
  "CMakeFiles/protocol_engine_test.dir/protocol_engine_test.cpp.o.d"
  "protocol_engine_test"
  "protocol_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
