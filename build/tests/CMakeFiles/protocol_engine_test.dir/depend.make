# Empty dependencies file for protocol_engine_test.
# This may be replaced when dependencies are built.
