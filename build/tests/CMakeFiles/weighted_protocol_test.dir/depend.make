# Empty dependencies file for weighted_protocol_test.
# This may be replaced when dependencies are built.
