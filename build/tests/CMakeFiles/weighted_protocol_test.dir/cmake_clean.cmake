file(REMOVE_RECURSE
  "CMakeFiles/weighted_protocol_test.dir/weighted_protocol_test.cpp.o"
  "CMakeFiles/weighted_protocol_test.dir/weighted_protocol_test.cpp.o.d"
  "weighted_protocol_test"
  "weighted_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
