file(REMOVE_RECURSE
  "CMakeFiles/weighted_vc_test.dir/weighted_vc_test.cpp.o"
  "CMakeFiles/weighted_vc_test.dir/weighted_vc_test.cpp.o.d"
  "weighted_vc_test"
  "weighted_vc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
