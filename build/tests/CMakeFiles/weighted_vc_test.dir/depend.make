# Empty dependencies file for weighted_vc_test.
# This may be replaced when dependencies are built.
