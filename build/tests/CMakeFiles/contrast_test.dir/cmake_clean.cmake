file(REMOVE_RECURSE
  "CMakeFiles/contrast_test.dir/contrast_test.cpp.o"
  "CMakeFiles/contrast_test.dir/contrast_test.cpp.o.d"
  "contrast_test"
  "contrast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contrast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
