# Empty dependencies file for contrast_test.
# This may be replaced when dependencies are built.
