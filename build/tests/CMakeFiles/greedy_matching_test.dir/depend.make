# Empty dependencies file for greedy_matching_test.
# This may be replaced when dependencies are built.
