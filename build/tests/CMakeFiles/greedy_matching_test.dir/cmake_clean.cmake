file(REMOVE_RECURSE
  "CMakeFiles/greedy_matching_test.dir/greedy_matching_test.cpp.o"
  "CMakeFiles/greedy_matching_test.dir/greedy_matching_test.cpp.o.d"
  "greedy_matching_test"
  "greedy_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
