file(REMOVE_RECURSE
  "CMakeFiles/hvp_test.dir/hvp_test.cpp.o"
  "CMakeFiles/hvp_test.dir/hvp_test.cpp.o.d"
  "hvp_test"
  "hvp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
