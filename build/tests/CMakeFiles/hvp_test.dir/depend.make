# Empty dependencies file for hvp_test.
# This may be replaced when dependencies are built.
