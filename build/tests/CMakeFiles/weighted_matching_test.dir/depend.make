# Empty dependencies file for weighted_matching_test.
# This may be replaced when dependencies are built.
