file(REMOVE_RECURSE
  "CMakeFiles/weighted_matching_test.dir/weighted_matching_test.cpp.o"
  "CMakeFiles/weighted_matching_test.dir/weighted_matching_test.cpp.o.d"
  "weighted_matching_test"
  "weighted_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
