file(REMOVE_RECURSE
  "CMakeFiles/vc_coreset_structure_test.dir/vc_coreset_structure_test.cpp.o"
  "CMakeFiles/vc_coreset_structure_test.dir/vc_coreset_structure_test.cpp.o.d"
  "vc_coreset_structure_test"
  "vc_coreset_structure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_coreset_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
