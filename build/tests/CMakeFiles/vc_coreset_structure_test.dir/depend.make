# Empty dependencies file for vc_coreset_structure_test.
# This may be replaced when dependencies are built.
