file(REMOVE_RECURSE
  "CMakeFiles/protocol_grid_test.dir/protocol_grid_test.cpp.o"
  "CMakeFiles/protocol_grid_test.dir/protocol_grid_test.cpp.o.d"
  "protocol_grid_test"
  "protocol_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
