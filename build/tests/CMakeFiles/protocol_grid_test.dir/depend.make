# Empty dependencies file for protocol_grid_test.
# This may be replaced when dependencies are built.
