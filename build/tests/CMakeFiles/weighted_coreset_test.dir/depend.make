# Empty dependencies file for weighted_coreset_test.
# This may be replaced when dependencies are built.
