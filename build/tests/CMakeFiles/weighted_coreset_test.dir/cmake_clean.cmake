file(REMOVE_RECURSE
  "CMakeFiles/weighted_coreset_test.dir/weighted_coreset_test.cpp.o"
  "CMakeFiles/weighted_coreset_test.dir/weighted_coreset_test.cpp.o.d"
  "weighted_coreset_test"
  "weighted_coreset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_coreset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
