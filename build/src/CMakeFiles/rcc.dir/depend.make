# Empty dependencies file for rcc.
# This may be replaced when dependencies are built.
