
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contrast/connectivity_coreset.cpp" "src/CMakeFiles/rcc.dir/contrast/connectivity_coreset.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/contrast/connectivity_coreset.cpp.o.d"
  "/root/repo/src/coreset/adversarial.cpp" "src/CMakeFiles/rcc.dir/coreset/adversarial.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/adversarial.cpp.o.d"
  "/root/repo/src/coreset/budget.cpp" "src/CMakeFiles/rcc.dir/coreset/budget.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/budget.cpp.o.d"
  "/root/repo/src/coreset/compose.cpp" "src/CMakeFiles/rcc.dir/coreset/compose.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/compose.cpp.o.d"
  "/root/repo/src/coreset/kernel.cpp" "src/CMakeFiles/rcc.dir/coreset/kernel.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/kernel.cpp.o.d"
  "/root/repo/src/coreset/matching_coresets.cpp" "src/CMakeFiles/rcc.dir/coreset/matching_coresets.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/matching_coresets.cpp.o.d"
  "/root/repo/src/coreset/mixed.cpp" "src/CMakeFiles/rcc.dir/coreset/mixed.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/mixed.cpp.o.d"
  "/root/repo/src/coreset/vc_coreset.cpp" "src/CMakeFiles/rcc.dir/coreset/vc_coreset.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/vc_coreset.cpp.o.d"
  "/root/repo/src/coreset/weighted_coreset.cpp" "src/CMakeFiles/rcc.dir/coreset/weighted_coreset.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/coreset/weighted_coreset.cpp.o.d"
  "/root/repo/src/distributed/protocol.cpp" "src/CMakeFiles/rcc.dir/distributed/protocol.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/distributed/protocol.cpp.o.d"
  "/root/repo/src/distributed/protocols.cpp" "src/CMakeFiles/rcc.dir/distributed/protocols.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/distributed/protocols.cpp.o.d"
  "/root/repo/src/distributed/weighted_matching_protocol.cpp" "src/CMakeFiles/rcc.dir/distributed/weighted_matching_protocol.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/distributed/weighted_matching_protocol.cpp.o.d"
  "/root/repo/src/distributed/weighted_vc_protocol.cpp" "src/CMakeFiles/rcc.dir/distributed/weighted_vc_protocol.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/distributed/weighted_vc_protocol.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/rcc.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/rcc.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/rcc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/rcc.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/rcc.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/graph/properties.cpp.o.d"
  "/root/repo/src/lower_bounds/hard_instances.cpp" "src/CMakeFiles/rcc.dir/lower_bounds/hard_instances.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/lower_bounds/hard_instances.cpp.o.d"
  "/root/repo/src/lower_bounds/hvp.cpp" "src/CMakeFiles/rcc.dir/lower_bounds/hvp.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/lower_bounds/hvp.cpp.o.d"
  "/root/repo/src/lower_bounds/matching_recovery.cpp" "src/CMakeFiles/rcc.dir/lower_bounds/matching_recovery.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/lower_bounds/matching_recovery.cpp.o.d"
  "/root/repo/src/lower_bounds/probes.cpp" "src/CMakeFiles/rcc.dir/lower_bounds/probes.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/lower_bounds/probes.cpp.o.d"
  "/root/repo/src/matching/blossom.cpp" "src/CMakeFiles/rcc.dir/matching/blossom.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/blossom.cpp.o.d"
  "/root/repo/src/matching/greedy.cpp" "src/CMakeFiles/rcc.dir/matching/greedy.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/greedy.cpp.o.d"
  "/root/repo/src/matching/hopcroft_karp.cpp" "src/CMakeFiles/rcc.dir/matching/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/hopcroft_karp.cpp.o.d"
  "/root/repo/src/matching/matching.cpp" "src/CMakeFiles/rcc.dir/matching/matching.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/matching.cpp.o.d"
  "/root/repo/src/matching/max_matching.cpp" "src/CMakeFiles/rcc.dir/matching/max_matching.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/max_matching.cpp.o.d"
  "/root/repo/src/matching/weighted.cpp" "src/CMakeFiles/rcc.dir/matching/weighted.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/matching/weighted.cpp.o.d"
  "/root/repo/src/mpc/coreset_mpc.cpp" "src/CMakeFiles/rcc.dir/mpc/coreset_mpc.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/mpc/coreset_mpc.cpp.o.d"
  "/root/repo/src/mpc/filtering_mpc.cpp" "src/CMakeFiles/rcc.dir/mpc/filtering_mpc.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/mpc/filtering_mpc.cpp.o.d"
  "/root/repo/src/mpc/mpc.cpp" "src/CMakeFiles/rcc.dir/mpc/mpc.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/mpc/mpc.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/rcc.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/partition/partition.cpp.o.d"
  "/root/repo/src/streaming/streaming_matching.cpp" "src/CMakeFiles/rcc.dir/streaming/streaming_matching.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/streaming/streaming_matching.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/rcc.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/log.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/rcc.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rcc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rcc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rcc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/rcc.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/vertex_cover/approx.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/approx.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/approx.cpp.o.d"
  "/root/repo/src/vertex_cover/exact.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/exact.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/exact.cpp.o.d"
  "/root/repo/src/vertex_cover/forest.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/forest.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/forest.cpp.o.d"
  "/root/repo/src/vertex_cover/konig.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/konig.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/konig.cpp.o.d"
  "/root/repo/src/vertex_cover/peeling.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/peeling.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/peeling.cpp.o.d"
  "/root/repo/src/vertex_cover/vertex_cover.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/vertex_cover.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/vertex_cover.cpp.o.d"
  "/root/repo/src/vertex_cover/weighted_vc.cpp" "src/CMakeFiles/rcc.dir/vertex_cover/weighted_vc.cpp.o" "gcc" "src/CMakeFiles/rcc.dir/vertex_cover/weighted_vc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
