file(REMOVE_RECURSE
  "librcc.a"
)
