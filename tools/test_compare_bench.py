#!/usr/bin/env python3
"""Self-test for compare_bench.py, run by CTest (compare_bench_selftest).

Drives the real CLI through subprocess on synthetic bench_suite JSON
fixtures, pinning the behaviors CI leans on:

  * the ±threshold band: a row exactly AT the threshold stays steady, one
    just past it counts (regression or improvement),
  * --fail-on-regression: exit 1 on a trusted regression, exit 0 otherwise,
  * the scale-mismatch guard refuses to compare baselines across scales,
  * the load-average gate: an untrusted comparison tags rows UNTRUSTED and
    suppresses --fail-on-regression. The machine's real load is whatever it
    is, so the fixtures force each side: --load-threshold -1 makes any load
    untrusted, 1e9 makes any load trusted.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "compare_bench.py")

TRUSTED = ["--load-threshold", "1e9"]
UNTRUSTED = ["--load-threshold", "-1"]


def suite(scale, seconds_by_row):
    return {
        "scale": scale,
        "rows": [
            {"scenario": s, "family": f, "k": k, "rounds": r,
             "seconds_median": sec}
            for (s, f, k, r), sec in seconds_by_row.items()
        ],
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, data):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as fh:
            json.dump(data, fh)
        return path

    def run_tool(self, *args):
        return subprocess.run(
            [sys.executable, TOOL, *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    ROW = ("matching", "coreset", 8, 1)

    def compare(self, base_sec, cur_sec, *args):
        base = self.write("base.json", suite(1.0, {self.ROW: base_sec}))
        cur = self.write("cur.json", suite(1.0, {self.ROW: cur_sec}))
        return self.run_tool(base, cur, *args)

    def test_row_at_the_threshold_stays_steady(self):
        # A row exactly AT the threshold is NOT a regression (strict >); with
        # --fail-on-regression the run still exits 0. Uses ±25% — 1.25 is
        # exact in binary, so "exactly at" means exactly at (1.1 at ±10%
        # would sit one ulp past the band).
        result = self.compare(1.0, 1.25, "--threshold", "0.25",
                              "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertNotIn("REGRESSIONS", result.stdout)
        self.assertIn("within threshold: 1 rows", result.stdout)

    def test_row_past_the_threshold_regresses(self):
        result = self.compare(1.0, 1.11, "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSIONS", result.stdout)

    def test_regression_without_fail_flag_exits_zero(self):
        result = self.compare(1.0, 2.0, *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("REGRESSIONS", result.stdout)

    def test_improvement_past_the_threshold_is_reported(self):
        result = self.compare(1.0, 0.89, "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("improvements", result.stdout)
        self.assertNotIn("REGRESSIONS", result.stdout)

    def test_custom_threshold_band(self):
        # At ±50%, a 40% slowdown is steady; a 60% slowdown regresses.
        result = self.compare(1.0, 1.4, "--threshold", "0.5",
                              "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        result = self.compare(1.0, 1.6, "--threshold", "0.5",
                              "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_scale_mismatch_refuses_to_compare(self):
        base = self.write("base.json", suite(1.0, {self.ROW: 1.0}))
        cur = self.write("cur.json", suite(0.25, {self.ROW: 1.0}))
        result = self.run_tool(base, cur, *TRUSTED)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("scale mismatch", result.stdout)

    def test_missing_rows_never_fail(self):
        base = self.write("base.json", suite(1.0, {
            self.ROW: 1.0, ("vc", "peeling", 4, 1): 2.0}))
        cur = self.write("cur.json", suite(1.0, {
            self.ROW: 1.0, ("vc", "peeling", 16, 1): 2.0}))
        result = self.run_tool(base, cur, "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("REMOVED ROW vc/peeling k=4 rounds=1", result.stdout)
        self.assertIn("NEW ROW vc/peeling k=16 rounds=1", result.stdout)

    def test_new_row_reports_its_median_and_is_not_a_regression(self):
        # A brand-new scenario (the packed family, say) has no baseline: it
        # must be announced with its own timing, not silently skipped, and
        # must not count toward the regression verdict.
        base = self.write("base.json", suite(1.0, {self.ROW: 1.0}))
        cur = self.write("cur.json", suite(1.0, {
            self.ROW: 1.0, ("packed_ingest", "packed", 1, 1): 0.1832}))
        result = self.run_tool(base, cur, "--fail-on-regression", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("new rows (no baseline yet):", result.stdout)
        self.assertIn("NEW ROW packed_ingest/packed k=1 rounds=1 "
                      "median 0.1832s", result.stdout)
        self.assertNotIn("REGRESSIONS", result.stdout)

    def test_one_sided_rows_reach_github_annotations(self):
        base = self.write("base.json", suite(1.0, {
            self.ROW: 1.0, ("vc", "peeling", 4, 1): 2.0}))
        cur = self.write("cur.json", suite(1.0, {
            self.ROW: 1.0, ("packed_ingest", "packed", 1, 1): 0.5}))
        result = self.run_tool(base, cur, "--github-annotations", *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("::notice title=new bench row::", result.stdout)
        self.assertIn("::warning title=bench row removed::", result.stdout)

    def test_untrusted_load_tags_rows_and_suppresses_failure(self):
        result = self.compare(1.0, 2.0, "--fail-on-regression", *UNTRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("UNTRUSTED", result.stdout)
        self.assertIn("[UNTRUSTED]", result.stdout)  # the row tag itself
        self.assertIn("not failing the run", result.stdout)

    def test_untrusted_warning_reaches_github_annotations(self):
        result = self.compare(1.0, 2.0, "--github-annotations", *UNTRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("::warning title=bench comparison untrusted::",
                      result.stdout)

    def test_trusted_run_has_no_untrusted_tags(self):
        result = self.compare(1.0, 1.0, *TRUSTED)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertNotIn("UNTRUSTED", result.stdout)

    def test_not_a_bench_json_is_rejected(self):
        base = self.write("base.json", {"nope": []})
        cur = self.write("cur.json", suite(1.0, {self.ROW: 1.0}))
        result = self.run_tool(base, cur, *TRUSTED)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("not a bench_suite JSON", result.stdout)


if __name__ == "__main__":
    unittest.main()
