#!/usr/bin/env python3
"""Compare two bench_suite --json files and flag throughput regressions.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 0.10]
        [--github-annotations] [--fail-on-regression]

Rows are matched on (scenario, family, k, rounds). For each matched row the
relative change in seconds_median is reported; a row slower than baseline by
more than the threshold counts as a regression, faster by more than the
threshold as an improvement. Rows present on only one side never fail the
run, but each is called out explicitly: a NEW ROW line (new scenarios are
how the grid grows — the row becomes pinned when the next baseline is
checked in) or a REMOVED ROW line (a pinned row disappearing usually means
a renamed scenario or an over-narrow filter, and deserves a look).

Exit status is 0 unless --fail-on-regression is given and at least one
regression was found. CI runs this non-gating (annotations only): shared
runners are noisy, and bench_suite medians at --scale 0.25 swing more than
the threshold on their own — the numbers are for humans reading the job log,
the checked-in baseline (BENCH_PR5.json) is the reference measured on a
quiet machine.

The comparison checks the machine's 1-minute load average first
(--load-threshold, default 0.2): above it, other work was competing for the
CPU while the current numbers were taken, so every row is marked UNTRUSTED,
regressions are reported as warnings only, and --fail-on-regression is
suppressed (exit 0) — a busy runner must not turn timer noise into a red
build.
"""

import argparse
import json
import os
import sys


def row_key(row):
    return (row["scenario"], row["family"], row["k"], row["rounds"])


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    if "rows" not in data:
        raise SystemExit(f"{path}: not a bench_suite JSON (no 'rows')")
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--github-annotations", action="store_true",
                        help="emit ::warning:: lines for regressions")
    parser.add_argument("--fail-on-regression", action="store_true")
    parser.add_argument("--load-threshold", type=float, default=0.2,
                        help="1-minute load average above which the "
                             "comparison is marked untrusted and cannot fail "
                             "the run")
    args = parser.parse_args()

    try:
        load1 = os.getloadavg()[0]
    except OSError:
        load1 = 0.0  # platform without getloadavg: nothing to distrust
    untrusted = load1 > args.load_threshold
    if untrusted:
        msg = (f"1-minute load average {load1:.2f} exceeds "
               f"{args.load_threshold:.2f} — the machine was busy; timings "
               f"below are UNTRUSTED and regressions will not fail the run")
        print(f"WARNING: {msg}")
        if args.github_annotations:
            print(f"::warning title=bench comparison untrusted::{msg}")

    base = load(args.baseline)
    cur = load(args.current)
    if base.get("scale") != cur.get("scale"):
        raise SystemExit(
            f"scale mismatch: baseline ran at {base.get('scale')}, current at "
            f"{cur.get('scale')} — compare against the baseline checked in "
            f"for that scale (BENCH_PR5.json is scale 1.0, "
            f"BENCH_PR5_scale025.json is the CI scale)")
    base_rows = {row_key(r): r for r in base["rows"]}
    cur_rows = {row_key(r): r for r in cur["rows"]}

    regressions, improvements, steady = [], [], []
    for key, cur_row in cur_rows.items():
        base_row = base_rows.get(key)
        if base_row is None:
            continue
        b = base_row["seconds_median"]
        c = cur_row["seconds_median"]
        if b <= 0:
            continue
        change = (c - b) / b  # positive = slower
        entry = (key, b, c, change)
        if change > args.threshold:
            regressions.append(entry)
        elif change < -args.threshold:
            improvements.append(entry)
        else:
            steady.append(entry)

    only_base = sorted(set(base_rows) - set(cur_rows))
    only_cur = sorted(set(cur_rows) - set(base_rows))

    def fmt(key):
        scenario, family, k, rounds = key
        tag = "[UNTRUSTED] " if untrusted else ""
        return f"{tag}{scenario}/{family} k={k} rounds={rounds}"

    print(f"compared {len(cur_rows)} rows against {args.baseline} "
          f"(threshold ±{args.threshold:.0%}, load {load1:.2f})")
    for title, entries, sign in (("REGRESSIONS", regressions, "+"),
                                 ("improvements", improvements, "")):
        if not entries:
            continue
        print(f"\n{title}:")
        for key, b, c, change in sorted(entries, key=lambda e: -abs(e[3])):
            print(f"  {fmt(key):55s} {b:.4f}s -> {c:.4f}s "
                  f"({sign}{change:+.1%})")
            if title == "REGRESSIONS" and args.github_annotations:
                print(f"::warning title=bench regression::{fmt(key)}: "
                      f"{b:.4f}s -> {c:.4f}s ({change:+.1%})")
    print(f"\nwithin threshold: {len(steady)} rows")
    if only_base:
        print("\nremoved rows (in baseline, missing from current):")
        for key in only_base:
            print(f"  REMOVED ROW {fmt(key)}")
            if args.github_annotations:
                print(f"::warning title=bench row removed::{fmt(key)} is in "
                      f"the baseline but missing from the current run — "
                      f"renamed scenario, or an over-narrow filter?")
    if only_cur:
        print("\nnew rows (no baseline yet):")
        for key in only_cur:
            median = cur_rows[key]["seconds_median"]
            print(f"  NEW ROW {fmt(key)} median {median:.4f}s")
            if args.github_annotations:
                print(f"::notice title=new bench row::{fmt(key)}: "
                      f"{median:.4f}s — no baseline to compare against; "
                      f"pinned once the next baseline is checked in")

    if regressions and args.fail_on_regression:
        if untrusted:
            print("\nUNTRUSTED COMPARISON: regressions found but the machine "
                  "was busy — not failing the run. Re-run on a quiet machine "
                  "before trusting (or acting on) these numbers.")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
