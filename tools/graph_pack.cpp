// graph_pack: generate, inspect, and solve .rgp packed graphs (the
// out-of-core ingestion format of src/graph/graph_pack.hpp).
//
//   # generator family -> pack file
//   ./graph_pack --mode generate --family gnm --n 100000 --m 800000 \
//       --seed 7 --out g.rgp
//
//   # out-of-core: stream a random multigraph straight to disk; the edge
//   # set is never materialized, so m is bounded by disk, not RAM
//   ./graph_pack --mode stream --n 1000000 --m 200000000 --out huge.rgp
//
//   # validate + summarize (construction runs the full decode validation;
//   # a malformed pack aborts with a "graph pack:" diagnostic)
//   ./graph_pack --mode inspect --input g.rgp
//
//   # run a coreset protocol straight off the mapping (zero-copy); all
//   # engine streaming/transport flags apply, so --engine-transport socket
//   # (forked workers over loopback) or --engine-transport shm (forked
//   # workers over shared-memory rings) exercises a cross-process machine
//   # phase from a pack end to end
//   ./graph_pack --mode solve --input g.rgp --problem matching --k 8
#include <cinttypes>
#include <cstdio>
#include <string>

#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "graph/graph_pack.hpp"
#include "matching/weighted.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rcc {
namespace {

EdgeList generate_family(const Options& opts, Rng& rng) {
  const std::string family = opts.get_string("family");
  const auto n = static_cast<VertexId>(opts.get_int("n"));
  const auto m = static_cast<std::uint64_t>(opts.get_int("m"));
  if (family == "gnp") return gnp(n, opts.get_double("p"), rng);
  if (family == "gnm") return gnm(n, m, rng);
  if (family == "random_bipartite") {
    return random_bipartite(n / 2, n - n / 2, opts.get_double("p"), rng);
  }
  if (family == "crown_forest") return crown_forest(n / 8, 4);
  if (family == "star_forest") return star_forest(n / 8, 7);
  if (family == "path") return path(n);
  if (family == "cycle") return cycle(n);
  if (family == "chung_lu") {
    return chung_lu_power_law(n, 2.5, opts.get_double("avg-deg"), rng);
  }
  std::fprintf(stderr, "unknown --family %s\n", family.c_str());
  std::exit(2);
}

int run_generate(const Options& opts, Rng& rng) {
  const std::string out = opts.get_string("out");
  if (out.empty()) {
    std::fprintf(stderr, "--mode generate requires --out\n");
    return 2;
  }
  WallTimer timer;
  const EdgeList edges = generate_family(opts, rng);
  if (opts.get_bool("weighted")) {
    WeightedEdgeList wedges;
    wedges.num_vertices = edges.num_vertices();
    wedges.edges.reserve(edges.num_edges());
    for (const Edge& e : edges) {
      wedges.add(e.u, e.v, rng.uniform_real(0.5, 8.0));
    }
    GraphPack::write(wedges, out);
  } else {
    GraphPack::write(edges, out);
  }
  std::printf("packed %s: n=%u m=%zu weighted=%d (%.0f ms)\n", out.c_str(),
              edges.num_vertices(), edges.num_edges(),
              opts.get_bool("weighted") ? 1 : 0, timer.millis());
  return 0;
}

int run_stream(const Options& opts, Rng& rng) {
  const std::string out = opts.get_string("out");
  const auto n = static_cast<VertexId>(opts.get_int("n"));
  const auto m = static_cast<std::uint64_t>(opts.get_int("m"));
  if (out.empty() || n < 2) {
    std::fprintf(stderr, "--mode stream requires --out and --n >= 2\n");
    return 2;
  }
  // Uniform random multigraph, one buffered record at a time: RAM usage is
  // the writer's 1 MiB buffer no matter how large m is (parallel edges are
  // legal EdgeList inputs — the Remark 5.8 multigraph semantics).
  WallTimer timer;
  PackWriter writer(out, n, /*weighted=*/false);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n - 1));
    if (v >= u) ++v;  // uniform over the n-1 non-loop partners
    writer.add(u, v);
  }
  writer.finish();
  std::printf("streamed %s: n=%u m=%" PRIu64 " (%.0f ms)\n", out.c_str(), n, m,
              timer.millis());
  return 0;
}

int run_inspect(const std::string& input) {
  WallTimer timer;
  const MappedGraph graph(input);  // aborts on any malformed field/record
  std::printf(
      "%s: valid .rgp v%u | n=%u m=%zu weighted=%d | %" PRIu64
      " bytes (%zu-byte records) | validated in %.0f ms\n",
      input.c_str(), kPackVersion, graph.num_vertices(), graph.num_edges(),
      graph.weighted() ? 1 : 0, graph.file_bytes(),
      graph.weighted() ? sizeof(WeightedEdge) : sizeof(Edge), timer.millis());
  return 0;
}

int run_solve(const Options& opts, Rng& rng) {
  const std::string input = opts.get_string("input");
  const MappedGraph graph(input);
  if (graph.weighted()) {
    std::fprintf(stderr, "--mode solve expects an unweighted pack\n");
    return 2;
  }
  const auto k = static_cast<std::size_t>(opts.get_int("k"));
  const auto left_size = static_cast<VertexId>(opts.get_int("left-size"));
  ThreadPool pool(static_cast<std::size_t>(opts.get_int("threads")));
  const StreamingOptions streaming = streaming_options_from_options(opts);
  // Cross-process transports only exist behind the streaming combine path.
  const bool stream = streaming_enabled_from_options(opts) ||
                      streaming.transport != EngineTransport::kInproc;
  const std::string problem = opts.get_string("problem");

  if (problem == "matching") {
    const MatchingProtocolResult r =
        stream ? coreset_matching_protocol_streaming(graph, k, left_size, rng,
                                                     &pool, streaming)
               : coreset_matching_protocol(graph, k, left_size, rng, &pool);
    std::printf("matching: %zu edges | comm %" PRIu64 " words | wire %" PRIu64
                " bytes in %" PRIu64 " frames\n",
                r.solution.size(), r.comm.total_words(),
                r.transport.wire_bytes, r.transport.frames);
    return 0;
  }
  if (problem == "vc") {
    const VcProtocolResult r =
        stream ? coreset_vc_protocol_streaming(graph, k, rng, &pool, streaming)
               : coreset_vc_protocol(graph, k, rng, &pool);
    std::printf("vertex cover: %zu vertices (feasible=%s) | comm %" PRIu64
                " words | wire %" PRIu64 " bytes in %" PRIu64 " frames\n",
                r.solution.size(),
                r.solution.covers(graph.edges()) ? "yes" : "NO",
                r.comm.total_words(), r.transport.wire_bytes,
                r.transport.frames);
    return 0;
  }
  std::fprintf(stderr, "unknown --problem %s\n", problem.c_str());
  return 2;
}

int graph_pack_main(int argc, char** argv) {
  Options opts("graph_pack: generate / inspect / solve .rgp packed graphs");
  opts.flag("mode", "inspect", "generate | stream | inspect | solve");
  opts.flag("out", "", "output pack path (generate/stream)");
  opts.flag("input", "", "input pack path (inspect/solve)");
  opts.flag("family", "gnm",
            "generate: gnp | gnm | random_bipartite | crown_forest | "
            "star_forest | path | cycle | chung_lu");
  opts.flag("n", "1000", "vertex count");
  opts.flag("m", "4000", "edge count (gnm/stream)");
  opts.flag("p", "0.01", "edge probability (gnp/random_bipartite)");
  opts.flag("avg-deg", "8", "average degree (chung_lu)");
  opts.flag("weighted", "false", "generate: attach uniform weights");
  opts.flag("seed", "42", "PRNG seed");
  opts.flag("problem", "matching", "solve: matching | vc");
  opts.flag("k", "8", "solve: number of machines");
  opts.flag("left-size", "0", "solve: bipartition boundary (0 = general)");
  opts.flag("threads", "0", "solve: worker threads (0 = hardware)");
  add_streaming_flags(opts);
  opts.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const std::string mode = opts.get_string("mode");
  if (mode == "generate") return run_generate(opts, rng);
  if (mode == "stream") return run_stream(opts, rng);
  if (mode == "inspect") {
    const std::string input = opts.get_string("input");
    if (input.empty()) {
      std::fprintf(stderr, "--mode inspect requires --input\n");
      return 2;
    }
    return run_inspect(input);
  }
  if (mode == "solve") return run_solve(opts, rng);
  std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
  return 2;
}

}  // namespace
}  // namespace rcc

int main(int argc, char** argv) { return rcc::graph_pack_main(argc, argv); }
