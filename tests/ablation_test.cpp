// Ablations: algorithm independence of the matching coreset (Section 1.2's
// "no prior coordination" claim) and coordinator solver choice.
#include <gtest/gtest.h>

#include "coreset/compose.hpp"
#include "coreset/matching_coresets.hpp"
#include "coreset/mixed.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(MixedCoreset, EverySummaryIsAMaximumMatchingOfItsPiece) {
  Rng rng(1);
  const VertexId side = 600;
  const EdgeList el = random_bipartite(side, side, 6.0 / side, rng);
  const std::size_t k = 6;
  const auto pieces = random_partition(el, k, rng);
  const MixedMaximumMatchingCoreset coreset;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{2 * side, k, i, side};
    const EdgeList summary = coreset.build(pieces[i], ctx, rng);
    EXPECT_TRUE(is_matching(summary));
    EXPECT_EQ(summary.num_edges(), maximum_matching_size(pieces[i], side))
        << "machine " << i;
  }
}

TEST(MixedCoreset, ComposedQualityMatchesSingleAlgorithm) {
  Rng rng(2);
  const VertexId n = 2000;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t k = 9;
  const auto pieces = random_partition(el, k, rng);

  auto compose_with = [&](const MatchingCoreset& coreset) {
    std::vector<EdgeList> summaries;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{n, k, i, 0};
      summaries.push_back(coreset.build(pieces[i], ctx, rng));
    }
    return compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng)
        .size();
  };

  const std::size_t single = compose_with(MaximumMatchingCoreset{});
  const std::size_t mixed = compose_with(MixedMaximumMatchingCoreset{});
  // Theorem 1 is algorithm-agnostic: sizes should be within a few percent.
  const double rel = static_cast<double>(mixed) / static_cast<double>(single);
  EXPECT_GT(rel, 0.9);
  EXPECT_LT(rel, 1.1);
}

TEST(ComposeSolver, GreedyIsWithinTwiceOfMaximum) {
  Rng rng(3);
  const VertexId n = 3000;
  const EdgeList el = gnp(n, 6.0 / n, rng);
  const std::size_t k = 8;
  const auto pieces = random_partition(el, k, rng);
  const MaximumMatchingCoreset coreset;
  std::vector<EdgeList> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const std::size_t exact =
      compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng).size();
  const std::size_t greedy =
      compose_matching_coresets(summaries, ComposeSolver::kGreedy, 0, rng).size();
  EXPECT_GE(2 * greedy, exact);
  EXPECT_LE(greedy, exact);
}

class MixedSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedSweep, ConstantFactorAcrossSeeds) {
  Rng rng(GetParam());
  const VertexId n = 1500;
  const EdgeList el = gnp(n, 4.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const std::size_t k = 6;
  const auto pieces = random_partition(el, k, rng);
  const MixedMaximumMatchingCoreset coreset;
  std::vector<EdgeList> summaries;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    summaries.push_back(coreset.build(pieces[i], ctx, rng));
  }
  const Matching composed =
      compose_matching_coresets(summaries, ComposeSolver::kMaximum, 0, rng);
  EXPECT_GE(9 * composed.size(), opt);
  EXPECT_TRUE(composed.subset_of(el));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace rcc
