#include "coreset/budget.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(TruncateToBudget, NoopWhenUnderBudget) {
  EdgeList summary(10);
  summary.add(0, 1);
  Rng rng(1);
  const EdgeList out =
      truncate_to_budget(summary, summary, 5, BudgetPolicy::kRandom, rng);
  EXPECT_EQ(out.num_edges(), 1u);
}

TEST(TruncateToBudget, RandomPolicyExactBudget) {
  Rng rng(2);
  const EdgeList summary = random_perfect_matching(100, rng);
  const EdgeList out =
      truncate_to_budget(summary, summary, 30, BudgetPolicy::kRandom, rng);
  EXPECT_EQ(out.num_edges(), 30u);
  EXPECT_FALSE(out.has_parallel_edges());
}

TEST(TruncateToBudget, FirstPolicyKeepsPrefix) {
  EdgeList summary(10);
  summary.add(0, 1);
  summary.add(2, 3);
  summary.add(4, 5);
  Rng rng(3);
  const EdgeList out =
      truncate_to_budget(summary, summary, 2, BudgetPolicy::kFirst, rng);
  ASSERT_EQ(out.num_edges(), 2u);
  EXPECT_EQ(out[0], make_edge(0, 1));
  EXPECT_EQ(out[1], make_edge(2, 3));
}

TEST(TruncateToBudget, DegreePoliciesOrderByLocalDegree) {
  // Piece: star at 0 over 1..4 plus isolated edge (5,6). Summary holds the
  // star edge (0,1) (endpoint degrees 4+1=5) and edge (5,6) (1+1=2).
  EdgeList piece(7);
  for (VertexId v = 1; v <= 4; ++v) piece.add(0, v);
  piece.add(5, 6);
  EdgeList summary(7);
  summary.add(0, 1);
  summary.add(5, 6);
  Rng rng(4);
  const EdgeList low =
      truncate_to_budget(summary, piece, 1, BudgetPolicy::kLowDegreeFirst, rng);
  ASSERT_EQ(low.num_edges(), 1u);
  EXPECT_EQ(low[0], make_edge(5, 6));
  const EdgeList high =
      truncate_to_budget(summary, piece, 1, BudgetPolicy::kHighDegreeFirst, rng);
  ASSERT_EQ(high.num_edges(), 1u);
  EXPECT_EQ(high[0], make_edge(0, 1));
}

TEST(BudgetedMatchingCoreset, WrapsInnerAndTruncates) {
  Rng rng(5);
  const EdgeList el = random_perfect_matching(200, rng);
  auto inner = std::make_shared<MaximumMatchingCoreset>();
  const BudgetedMatchingCoreset budgeted(inner, 50, BudgetPolicy::kRandom);
  PartitionContext ctx{400, 1, 0, 200};
  const EdgeList out = budgeted.build(el, ctx, rng);
  EXPECT_EQ(out.num_edges(), 50u);
}

TEST(BudgetedMatchingCoreset, NameEncodesPolicyAndBudget) {
  auto inner = std::make_shared<MaximumMatchingCoreset>();
  const BudgetedMatchingCoreset budgeted(inner, 7, BudgetPolicy::kLowDegreeFirst);
  const std::string n = budgeted.name();
  EXPECT_NE(n.find("budget=7"), std::string::npos);
  EXPECT_NE(n.find("low-degree"), std::string::npos);
}

TEST(BudgetPolicyName, AllNamed) {
  EXPECT_STREQ(budget_policy_name(BudgetPolicy::kRandom), "random");
  EXPECT_STREQ(budget_policy_name(BudgetPolicy::kFirst), "first");
  EXPECT_STREQ(budget_policy_name(BudgetPolicy::kLowDegreeFirst), "low-degree");
  EXPECT_STREQ(budget_policy_name(BudgetPolicy::kHighDegreeFirst), "high-degree");
}

}  // namespace
}  // namespace rcc
