// Tests for the Hidden Vertex Problem game (Theorem 6's core gadget).
#include "lower_bounds/hvp.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rcc {
namespace {

TEST(HvpInstance, WellFormed) {
  Rng rng(1);
  const HvpInstance inst = make_hvp(10000, 500, rng);
  EXPECT_EQ(inst.s.size(), 500u);
  EXPECT_EQ(inst.t.size(), 500u);
  std::set<std::uint32_t> s_set(inst.s.begin(), inst.s.end());
  std::set<std::uint32_t> t_set(inst.t.begin(), inst.t.end());
  EXPECT_EQ(s_set.size(), 500u);
  EXPECT_EQ(t_set.size(), 500u);
  // |S \ T| = 1 and it is the hidden element.
  std::vector<std::uint32_t> diff;
  for (auto x : s_set) {
    if (!t_set.count(x)) diff.push_back(x);
  }
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], inst.hidden);
  EXPECT_FALSE(t_set.count(inst.hidden));
}

TEST(HvpProtocol, FullBudgetAlwaysSucceedsWithSingletonOutput) {
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const HvpInstance inst = make_hvp(5000, 200, rng);
    const HvpOutcome out = run_budgeted_hvp(inst, 200, 0, rng);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.output_size, 1u);
    EXPECT_EQ(out.message_words, 200u);
  }
}

TEST(HvpProtocol, ZeroBudgetZeroFallbackFails) {
  Rng rng(3);
  const HvpInstance inst = make_hvp(5000, 200, rng);
  const HvpOutcome out = run_budgeted_hvp(inst, 0, 0, rng);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.output_size, 0u);
}

TEST(HvpProtocol, SuccessRateTracksBudgetFraction) {
  Rng rng(4);
  const std::size_t m = 400;
  const int trials = 400;
  for (double frac : {0.25, 0.5}) {
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const HvpInstance inst = make_hvp(20000, m, rng);
      const auto budget = static_cast<std::size_t>(frac * m);
      if (run_budgeted_hvp(inst, budget, 0, rng).success) ++successes;
    }
    EXPECT_NEAR(static_cast<double>(successes) / trials, frac, 0.08);
  }
}

TEST(HvpProtocol, FallbackBuysSuccessProportionalToItsSize) {
  // With zero budget, success comes only from the blind fallback guess:
  // fallback / (universe - m).
  Rng rng(5);
  const std::uint64_t universe = 2000;
  const std::size_t m = 200;
  const std::size_t fallback = 900;  // half of U \ T
  const int trials = 400;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    const HvpInstance inst = make_hvp(universe, m, rng);
    if (run_budgeted_hvp(inst, 0, fallback, rng).success) ++successes;
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials,
              static_cast<double>(fallback) / (universe - m), 0.08);
}

TEST(HvpProtocol, OutputSizeEqualsFallbackOnMiss) {
  Rng rng(6);
  const HvpInstance inst = make_hvp(5000, 200, rng);
  const HvpOutcome out = run_budgeted_hvp(inst, 0, 37, rng);
  EXPECT_EQ(out.output_size, 37u);
}

}  // namespace
}  // namespace rcc
