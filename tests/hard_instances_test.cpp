// Tests for the D_Matching / D_VC hard distributions and their probes
// (Sections 4.1, 4.2; Lemmas 4.1, 4.2).
#include "lower_bounds/hard_instances.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.hpp"
#include "lower_bounds/probes.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rcc {
namespace {

constexpr VertexId kN = 20000;
constexpr double kAlpha = 10.0;
constexpr std::size_t kK = 50;

TEST(DMatching, SetSizesAndUniverse) {
  Rng rng(1);
  const DMatchingInstance inst = make_d_matching(kN, kAlpha, kK, rng);
  EXPECT_EQ(inst.edges.num_vertices(), 2 * kN);
  std::size_t a = 0, b = 0;
  for (VertexId v = 0; v < kN; ++v) a += inst.in_A[v] ? 1 : 0;
  for (VertexId v = kN; v < 2 * kN; ++v) b += inst.in_B[v] ? 1 : 0;
  EXPECT_EQ(a, static_cast<std::size_t>(kN / kAlpha));
  EXPECT_EQ(b, static_cast<std::size_t>(kN / kAlpha));
}

TEST(DMatching, HiddenIsPerfectMatchingOnComplements) {
  Rng rng(2);
  const DMatchingInstance inst = make_d_matching(kN, kAlpha, kK, rng);
  EXPECT_EQ(inst.hidden.num_edges(),
            static_cast<std::size_t>(kN - kN / kAlpha));
  EXPECT_TRUE(is_matching(inst.hidden));
  for (const Edge& e : inst.hidden) {
    EXPECT_FALSE(inst.in_A[e.u]);
    EXPECT_FALSE(inst.in_B[e.v]);
    EXPECT_TRUE(inst.is_hidden_edge(e));
  }
}

TEST(DMatching, EabEdgeCountNearExpectation) {
  Rng rng(3);
  const DMatchingInstance inst = make_d_matching(kN, kAlpha, kK, rng);
  const double set_size = kN / kAlpha;
  const double expected = set_size * set_size * (kK * kAlpha / kN);
  const double eab =
      static_cast<double>(inst.edges.num_edges() - inst.hidden.num_edges());
  EXPECT_NEAR(eab / expected, 1.0, 0.05);
}

TEST(DMatching, WholeGraphHasNearPerfectMatching) {
  Rng rng(4);
  const DMatchingInstance inst = make_d_matching(4000, 8.0, 20, rng);
  const std::size_t mm = maximum_matching_size(inst.edges, inst.left_size());
  EXPECT_GE(mm, static_cast<std::size_t>(4000 - 4000 / 8.0));
}

TEST(DMatching, BipartiteStructure) {
  Rng rng(5);
  const DMatchingInstance inst = make_d_matching(2000, 8.0, 20, rng);
  for (const Edge& e : inst.edges) {
    EXPECT_LT(e.u, inst.n);
    EXPECT_GE(e.v, inst.n);
  }
}

// Lemma 4.1: per machine the induced matching has Theta(n/alpha) edges.
TEST(DMatching, InducedMatchingCensusMatchesLemma41) {
  Rng rng(6);
  const DMatchingInstance inst = make_d_matching(kN, kAlpha, kK, rng);
  const auto pieces = random_partition(inst.edges, kK, rng);
  std::vector<double> sizes;
  std::vector<double> planted_fracs;
  for (const auto& piece : pieces) {
    const InducedMatchingCensus c = induced_matching_census(piece, inst);
    sizes.push_back(static_cast<double>(c.induced_size));
    if (c.induced_size > 0) {
      planted_fracs.push_back(static_cast<double>(c.planted_inside) /
                              static_cast<double>(c.induced_size));
    }
  }
  const Summary size_summary = summarize(sizes);
  // Theta(n/alpha): between n/(4 alpha) and 2 n/alpha robustly.
  EXPECT_GT(size_summary.mean, kN / kAlpha / 4.0);
  EXPECT_LT(size_summary.mean, 2.0 * kN / kAlpha);
  // Planted fraction inside the induced matching: planted edges land
  // ~(n - n/alpha)/k per machine and are always induced (their endpoints
  // have global degree 1); E_AB contributes ~n/alpha piece-edges of which a
  // fraction e^{-2} is induced (each endpoint must have no second edge).
  // The ratio is Theta(alpha/k) — the Theorem 3 indistinguishability rate.
  const double planted_pm = (kN - kN / kAlpha) / static_cast<double>(kK);
  const double eab_induced_pm = (kN / kAlpha) * std::exp(-2.0);
  const double predicted = planted_pm / (planted_pm + eab_induced_pm);
  const Summary frac_summary = summarize(planted_fracs);
  EXPECT_NEAR(frac_summary.mean, predicted, 0.08);
  EXPECT_GT(frac_summary.mean, kAlpha / kK / 4.0);  // Theta(alpha/k) lower leg
}

// The planted edges land ~n/k per machine and are (nearly) all degree-1.
TEST(DMatching, PlantedEdgesPerMachine) {
  Rng rng(7);
  const DMatchingInstance inst = make_d_matching(kN, kAlpha, kK, rng);
  const auto pieces = random_partition(inst.edges, kK, rng);
  std::vector<double> counts;
  for (const auto& piece : pieces) {
    counts.push_back(static_cast<double>(hidden_edges_in(piece, inst)));
  }
  const double expected = (kN - kN / kAlpha) / static_cast<double>(kK);
  EXPECT_NEAR(summarize(counts).mean, expected, expected * 0.05);
}

TEST(DVc, StructureAndOptimum) {
  Rng rng(8);
  const DVcInstance inst = make_d_vc(kN, kAlpha, kK, rng);
  EXPECT_EQ(inst.edges.num_vertices(), 2 * kN);
  // v* is outside A (erratum fix; see DESIGN.md).
  EXPECT_FALSE(inst.in_A[inst.v_star]);
  EXPECT_LT(inst.v_star, kN);
  // e* is incident on v*.
  EXPECT_TRUE(inst.e_star.u == inst.v_star || inst.e_star.v == inst.v_star);
  // A u {v*} covers everything.
  std::vector<bool> cover(2 * kN, false);
  for (VertexId v = 0; v < 2 * kN; ++v) cover[v] = inst.in_A[v];
  cover[inst.v_star] = true;
  EXPECT_TRUE(covers_all_edges(inst.edges, cover));
  EXPECT_EQ(inst.opt_upper_bound(), static_cast<std::size_t>(kN / kAlpha) + 1);
}

TEST(DVc, EdgeCountNearExpectation) {
  Rng rng(9);
  const DVcInstance inst = make_d_vc(kN, kAlpha, kK, rng);
  const double expected = (kN / kAlpha) * kN * (kK / (2.0 * kN)) + 1;
  EXPECT_NEAR(static_cast<double>(inst.edges.num_edges()) / expected, 1.0, 0.05);
}

// Lemma 4.2: |L1_i| and |R1_i| are Theta(n/alpha) per machine.
TEST(DVc, DegreeOneCensusMatchesLemma42) {
  Rng rng(10);
  const DVcInstance inst = make_d_vc(kN, kAlpha, kK, rng);
  const auto pieces = random_partition(inst.edges, kK, rng);
  std::vector<double> l1, r1;
  int e_star_holders = 0;
  for (const auto& piece : pieces) {
    const DegreeOneCensus c = degree_one_census(piece, inst);
    l1.push_back(static_cast<double>(c.left_degree_one));
    r1.push_back(static_cast<double>(c.right_neighbors));
    e_star_holders += c.piece_contains_e_star ? 1 : 0;
  }
  EXPECT_EQ(e_star_holders, 1);  // exactly one machine holds e*
  const double n_over_alpha = kN / kAlpha;
  // Pr[deg = 1] ~ (1/2) e^{-1/2} ~ 0.303 per A-vertex (Claim in Lemma 4.2).
  EXPECT_GT(summarize(l1).mean, 0.15 * n_over_alpha);
  EXPECT_LT(summarize(l1).mean, 0.6 * n_over_alpha);
  EXPECT_GT(summarize(r1).mean, 0.15 * n_over_alpha);
  EXPECT_LT(summarize(r1).mean, 0.6 * n_over_alpha);
}

TEST(Probes, CoversEStar) {
  Rng rng(11);
  const DVcInstance inst = make_d_vc(1000, 5.0, 10, rng);
  VertexCover cover(2000);
  EXPECT_FALSE(covers_e_star(cover, inst));
  cover.insert(inst.v_star);
  EXPECT_TRUE(covers_e_star(cover, inst));
}

TEST(Probes, HiddenEdgesInMatching) {
  Rng rng(12);
  const DMatchingInstance inst = make_d_matching(1000, 5.0, 10, rng);
  // The hidden matching itself scores exactly its size.
  const Matching planted = Matching::from_edges(inst.hidden);
  EXPECT_EQ(hidden_edges_in(planted, inst), inst.hidden.num_edges());
}

}  // namespace
}  // namespace rcc
