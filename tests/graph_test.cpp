#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

EdgeList triangle_plus_pendant() {
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(2, 3);
  return el;
}

TEST(Graph, DegreesAndNeighbors) {
  const Graph g(triangle_plus_pendant());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  auto nb = g.neighbors(2);
  std::vector<VertexId> sorted(nb.begin(), nb.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{0, 1, 3}));
}

TEST(Graph, MaxDegree) {
  const Graph g(triangle_plus_pendant());
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, EmptyGraph) {
  const Graph g(EdgeList(5));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, ParallelEdgesPreserved) {
  EdgeList el(2);
  el.add(0, 1);
  el.add(0, 1);
  const Graph g(el);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, ToEdgeListRoundTrip) {
  EdgeList original = triangle_plus_pendant();
  const Graph g(original);
  EdgeList round = g.to_edge_list();
  original.sort();
  round.sort();
  ASSERT_EQ(round.num_edges(), original.num_edges());
  for (std::size_t i = 0; i < round.num_edges(); ++i) {
    EXPECT_EQ(round[i], original[i]);
  }
}

TEST(Graph, BipartitionTagAndConsistency) {
  Rng rng(1);
  const EdgeList el = random_bipartite(50, 60, 0.1, rng);
  const Graph g = bipartite_graph(el, 50);
  ASSERT_TRUE(g.is_bipartite_tagged());
  EXPECT_EQ(g.bipartition()->left_size, 50u);
  EXPECT_TRUE(g.bipartition_consistent());
}

TEST(Graph, InconsistentBipartitionDetected) {
  EdgeList el(4);
  el.add(0, 1);  // both on "left" if left_size = 2
  const Graph g(el, Bipartition{2});
  EXPECT_FALSE(g.bipartition_consistent());
}

TEST(Graph, UntaggedHasNoBipartition) {
  const Graph g(triangle_plus_pendant());
  EXPECT_FALSE(g.is_bipartite_tagged());
  EXPECT_FALSE(g.bipartition_consistent());
}

TEST(Properties, ConnectedComponents) {
  EdgeList el(7);
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 4);
  // 5, 6 isolated.
  const Graph g(el);
  EXPECT_EQ(connected_components(g), 4u);
}

TEST(Properties, DegreeHistogram) {
  const Graph g(triangle_plus_pendant());
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);  // max degree 3
  EXPECT_EQ(hist[1], 1u);      // vertex 3
  EXPECT_EQ(hist[2], 2u);      // vertices 0, 1
  EXPECT_EQ(hist[3], 1u);      // vertex 2
}

TEST(Properties, IsBipartiteDetectsOddCycle) {
  EXPECT_FALSE(is_bipartite(Graph(cycle(5))));
  EXPECT_TRUE(is_bipartite(Graph(cycle(6))));
  EXPECT_TRUE(is_bipartite(Graph(path(10))));
  EXPECT_FALSE(is_bipartite(Graph(triangle_plus_pendant())));
}

TEST(Properties, RandomBipartiteIsBipartite) {
  Rng rng(2);
  const EdgeList el = random_bipartite(40, 40, 0.2, rng);
  EXPECT_TRUE(is_bipartite(Graph(el)));
}

}  // namespace
}  // namespace rcc
