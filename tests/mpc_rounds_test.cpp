// Differential tests for the multi-round MPC executor (mpc/mpc_engine.hpp):
//
//   (a) the legacy single-round wrappers (coreset_mpc_matching,
//       coreset_mpc_vertex_cover, filtering_mpc) must produce IDENTICAL
//       solutions to the executor entry points for fixed RNG seeds — since
//       the wrappers delegate to the executor, this pins the wrapper
//       plumbing (single-round config construction, sequential default),
//       not the pre-migration implementation, and catches any future drift
//       between the two call paths,
//   (b) iterating coreset rounds is monotone: the multi-round matching is
//       never smaller than the single-round one on the same instance/seed,
//   (c) per-machine memory accounting never exceeds the configured
//       s-per-machine budget (the ledger aborts on violation; the stats
//       must agree with it).
#include "mpc/mpc_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/filtering_mpc.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

/// The random-instance grid the differential assertions sweep.
struct Instance {
  const char* name;
  EdgeList edges;
  VertexId left_size;
};

/// Disjoint paths on 4 vertices. When a P4's middle edge survives piece-local
/// maximum matching but its outer edges land elsewhere, the round-1 union
/// can leave both endpoints of an outer edge unmatched — exactly the
/// survivor structure that makes further coreset rounds productive.
EdgeList p4_forest(VertexId paths) {
  EdgeList edges(4 * paths);
  for (VertexId i = 0; i < paths; ++i) {
    edges.add(4 * i, 4 * i + 1);
    edges.add(4 * i + 1, 4 * i + 2);
    edges.add(4 * i + 2, 4 * i + 3);
  }
  return edges;
}

std::vector<Instance> grid(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.push_back({"gnp-sparse", gnp(600, 4.0 / 600, rng), 0});
  instances.push_back({"gnp-dense", gnp(200, 0.15, rng), 0});
  instances.push_back({"bipartite", random_bipartite(100, 120, 0.08, rng), 100});
  const HubGadget hub = hub_gadget(96, 12);
  instances.push_back({"hub-gadget", hub.edges, hub.left_size});
  instances.push_back({"star-forest", star_forest(10, 12), 0});
  instances.push_back({"p4-forest", p4_forest(100), 0});
  return instances;
}

MpcEngineConfig engine_config(const EdgeList& graph, std::size_t max_rounds,
                              bool input_already_random) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  config.input_already_random = input_already_random;
  return config;
}

TEST(MpcRoundsDifferential, ExecutorMatchesLegacyMatchingSeedForSeed) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const Instance& inst : grid(seed)) {
      for (bool random_input : {false, true}) {
        Rng legacy_rng(seed);
        const CoresetMpcMatchingResult legacy = coreset_mpc_matching(
            inst.edges, MpcConfig::paper_default(inst.edges.num_vertices()),
            random_input, inst.left_size, legacy_rng);
        Rng engine_rng(seed);
        const CoresetMpcMatchingResult engine = coreset_mpc_matching_rounds(
            inst.edges, engine_config(inst.edges, 1, random_input),
            inst.left_size, engine_rng);
        EXPECT_EQ(sorted_edges(legacy.matching), sorted_edges(engine.matching))
            << inst.name << " seed=" << seed << " random=" << random_input;
        EXPECT_EQ(legacy.rounds, engine.rounds);
        EXPECT_EQ(legacy.max_memory_words, engine.max_memory_words);
      }
    }
  }
}

TEST(MpcRoundsDifferential, ExecutorMatchesLegacyVertexCoverSeedForSeed) {
  for (std::uint64_t seed : {4u, 5u}) {
    for (const Instance& inst : grid(seed)) {
      for (bool random_input : {false, true}) {
        Rng legacy_rng(seed);
        const CoresetMpcVcResult legacy = coreset_mpc_vertex_cover(
            inst.edges, MpcConfig::paper_default(inst.edges.num_vertices()),
            random_input, legacy_rng);
        Rng engine_rng(seed);
        const CoresetMpcVcResult engine = coreset_mpc_vertex_cover_rounds(
            inst.edges, engine_config(inst.edges, 1, random_input), engine_rng);
        EXPECT_EQ(legacy.cover.vertices(), engine.cover.vertices())
            << inst.name << " seed=" << seed << " random=" << random_input;
        EXPECT_EQ(legacy.rounds, engine.rounds);
        EXPECT_EQ(legacy.max_memory_words, engine.max_memory_words);
      }
    }
  }
}

TEST(MpcRoundsDifferential, ExecutorMatchesLegacyFilteringSeedForSeed) {
  for (std::uint64_t seed : {6u, 7u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(500, 0.08, gen_rng);
    MpcConfig cfg;
    cfg.num_machines = 8;
    cfg.memory_words = 2 * 4000;  // forces at least one filter iteration

    Rng legacy_rng(seed);
    const FilteringMpcResult legacy = filtering_mpc(el, cfg, legacy_rng);

    MpcEngineConfig ecfg;
    ecfg.mpc = cfg;
    ecfg.max_rounds = 1000;
    Rng engine_rng(seed);
    const FilteringMpcResult engine = filtering_mpc_rounds(el, ecfg, engine_rng);

    EXPECT_EQ(sorted_edges(legacy.maximal_matching),
              sorted_edges(engine.maximal_matching));
    EXPECT_EQ(legacy.cover.vertices(), engine.cover.vertices());
    EXPECT_EQ(legacy.rounds, engine.rounds);
    EXPECT_EQ(legacy.filter_iterations, engine.filter_iterations);
    EXPECT_TRUE(legacy.completed);
    EXPECT_TRUE(engine.completed);
  }
}

TEST(MpcReshuffle, SenderChargesMatchTheMaterializedPlacement) {
  // mpc_reshuffle_round charges sender chunks arithmetically instead of
  // materializing the adversarial placement; the arithmetic must agree with
  // the chunk sizes initial_adversarial_placement actually produces.
  for (std::size_t k : {1u, 3u, 7u, 16u}) {
    Rng gen_rng(60);
    const EdgeList el = gnp(200, 0.05, gen_rng);
    MpcConfig cfg{k, std::uint64_t{1} << 30};

    MpcLedger ledger(cfg);
    mpc_reshuffle_round(el.num_edges(), std::vector<std::size_t>(k, 0),
                        ledger);

    MpcLedger expected(cfg);
    expected.begin_round("re-partition");
    const std::vector<EdgeList> placed = initial_adversarial_placement(el, k);
    for (std::size_t j = 0; j < k; ++j) {
      expected.charge(j, 2 * placed[j].num_edges());
    }
    EXPECT_EQ(ledger.max_memory_words(), expected.max_memory_words())
        << "k=" << k;
    EXPECT_EQ(ledger.round_peak_words(), expected.round_peak_words())
        << "k=" << k;
  }
}

TEST(MpcReshuffle, ReceiverChargesAreTheDeliveredShardSizes) {
  // Sender chunks of 100 edges over 4 machines are 25 each; the peak is the
  // machine that also receives the largest delivery.
  MpcLedger ledger(MpcConfig{4, 1 << 20});
  mpc_reshuffle_round(100, {10, 20, 30, 40}, ledger);
  EXPECT_EQ(ledger.rounds(), 1u);
  EXPECT_EQ(ledger.round_labels()[0], "re-partition");
  EXPECT_EQ(ledger.round_peak_words()[0], 2u * 25 + 2u * 40);
}

TEST(MpcReshuffle, AdversarialRunsDeclareTheShuffleStep) {
  Rng gen_rng(62);
  const EdgeList el = gnp(300, 0.1, gen_rng);
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(el.num_vertices());
  config.max_rounds = 1;
  config.input_already_random = false;
  Rng rng(62);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching_rounds(el, config, 0, rng);
  ASSERT_EQ(r.stats.round_labels.size(), 2u);
  EXPECT_EQ(r.stats.round_labels[0], "re-partition");
  // The shuffle step holds at least one sender chunk on some machine.
  const std::size_t k = config.mpc.num_machines;
  EXPECT_GE(r.stats.round_peak_words[0],
            2 * ((el.num_edges() + k - 1) / k));
}

TEST(MpcRoundsMonotone, MultiRoundMatchingNeverSmallerThanSingleRound) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    for (const Instance& inst : grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      Rng single_rng(seed);
      const CoresetMpcMatchingResult single = coreset_mpc_matching_rounds(
          inst.edges, engine_config(inst.edges, 1, true), inst.left_size,
          single_rng);
      Rng multi_rng(seed);
      const CoresetMpcMatchingResult multi = coreset_mpc_matching_rounds(
          inst.edges, engine_config(inst.edges, 4, true), inst.left_size,
          multi_rng);
      // Round 0 of the multi-round run replays the single-round protocol
      // draw-for-draw; later rounds only extend the matching.
      EXPECT_GE(multi.matching.size(), single.matching.size())
          << inst.name << " seed=" << seed;
      EXPECT_LE(multi.matching.size(), opt);
      EXPECT_TRUE(multi.matching.valid());
      EXPECT_TRUE(multi.matching.subset_of(inst.edges));
    }
  }
}

TEST(MpcRoundsMonotone, MultiRoundStrictlyImprovesOnPathForest) {
  // Deterministic for the fixed seeds: the round-1 composition strands some
  // P4 outer edges, the second round picks them up and reaches the optimum.
  const EdgeList el = p4_forest(100);
  const std::size_t opt = maximum_matching_size(el);
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    Rng single_rng(seed);
    const CoresetMpcMatchingResult single = coreset_mpc_matching_rounds(
        el, engine_config(el, 1, true), 0, single_rng);
    Rng multi_rng(seed);
    const CoresetMpcMatchingResult multi = coreset_mpc_matching_rounds(
        el, engine_config(el, 6, true), 0, multi_rng);
    EXPECT_LT(single.matching.size(), opt) << "seed=" << seed;
    EXPECT_GT(multi.matching.size(), single.matching.size()) << "seed=" << seed;
    EXPECT_EQ(multi.matching.size(), opt) << "seed=" << seed;
    EXPECT_GE(multi.stats.engine_rounds, 2u);
  }
}

TEST(MpcRoundsMonotone, IteratedRoundsSaturateThePerfectMatching) {
  // On a bipartite graph with a perfect matching the single round is lossy
  // for small k but iteration must close the gap to maximality: after the
  // final round no survivor edge has two unmatched endpoints.
  Rng gen_rng(42);
  const VertexId half = 150;
  const EdgeList el = random_bipartite(half, half, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 8, true);
  Rng rng(42);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching_rounds(el, config, half, rng);
  EXPECT_TRUE(r.matching.valid());
  const EdgeList open = el.filter([&](const Edge& e) {
    return !r.matching.is_matched(e.u) && !r.matching.is_matched(e.v);
  });
  EXPECT_TRUE(open.empty() || r.stats.engine_rounds == 8u);
  EXPECT_TRUE(r.matching.maximal_in(el) || r.stats.engine_rounds == 8u);
}

TEST(MpcRoundsBudget, PerMachineMemoryStaysWithinConfiguredBudget) {
  for (std::uint64_t seed : {20u, 21u}) {
    for (const Instance& inst : grid(seed)) {
      MpcEngineConfig config = engine_config(inst.edges, 3, false);
      Rng rng(seed);
      const CoresetMpcMatchingResult r = coreset_mpc_matching_rounds(
          inst.edges, config, inst.left_size, rng);
      // The ledger aborts on any violation, so reaching here already proves
      // the cap held; the reported stats must tell the same story.
      EXPECT_LE(r.stats.max_memory_words, config.mpc.memory_words)
          << inst.name;
      EXPECT_EQ(r.stats.round_peak_words.size(), r.stats.round_labels.size());
      std::uint64_t peak = 0;
      for (std::uint64_t words : r.stats.round_peak_words) {
        EXPECT_LE(words, config.mpc.memory_words);
        peak = std::max(peak, words);
      }
      EXPECT_EQ(peak, r.stats.max_memory_words);
      for (const MpcRoundReport& round : r.stats.per_round) {
        EXPECT_LE(round.peak_machine_words, config.mpc.memory_words);
      }
    }
  }
}

TEST(MpcRoundsReports, PerRoundLedgerIsConsistent) {
  Rng gen_rng(30);
  const EdgeList el = gnp(500, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 4, true);
  config.early_stop = false;
  Rng rng(30);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching_rounds(el, config, 0, rng);
  ASSERT_EQ(r.stats.per_round.size(), r.stats.engine_rounds);
  ASSERT_GE(r.stats.engine_rounds, 1u);
  EXPECT_EQ(r.stats.per_round.front().active_edges, el.num_edges());
  std::uint64_t total_comm = 0;
  for (std::size_t i = 0; i < r.stats.per_round.size(); ++i) {
    const MpcRoundReport& round = r.stats.per_round[i];
    EXPECT_EQ(round.round_index, i);
    EXPECT_LE(round.surviving_edges, round.active_edges);
    if (i + 1 < r.stats.per_round.size()) {
      EXPECT_EQ(r.stats.per_round[i + 1].active_edges, round.surviving_edges);
    }
    total_comm += round.comm_words;
  }
  EXPECT_EQ(total_comm, r.stats.total_comm_words);
  EXPECT_EQ(r.stats.mpc_rounds, r.stats.round_labels.size());
}

TEST(MpcRoundsEarlyStop, ProgressReportingFoldIsNotStoppedWhileItWorks) {
  // Regression: the executor used to stop on `survivors == active` alone,
  // which broke every edge-recirculating combiner (augmenting/filtering had
  // to disable early_stop entirely). A fold that recirculates all edges but
  // reports progress units must run until the progress dries up, then stop
  // on its own.
  Rng gen_rng(80);
  const EdgeList el = gnp(200, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 10, true);
  ASSERT_TRUE(config.early_stop);

  constexpr std::size_t kProductiveRounds = 3;
  const auto build = [](EdgeSpan piece, const PartitionContext&, Rng&) {
    return piece.num_edges();  // summary: a count, nothing else
  };
  const auto account = [](std::size_t) { return MessageSize{0, 1}; };
  const auto fold = [&](std::vector<std::size_t>&, MpcRoundContext& ctx,
                        Rng&) {
    // Recirculate every edge; "work" happens for the first rounds only.
    if (ctx.round_index() < kProductiveRounds) ctx.note_progress(1);
    return ctx.active_edges().to_edge_list();
  };
  Rng rng(80);
  const MpcExecutionStats stats =
      run_mpc_rounds(el, config, 0, rng, nullptr, build, account, fold);
  // Rounds 0..2 progress, round 3 stalls -> the executor stops there, not at
  // round 0 (the old bug would have made this 1) and not at the cap.
  EXPECT_EQ(stats.engine_rounds, kProductiveRounds + 1);
  for (std::size_t i = 0; i < kProductiveRounds; ++i) {
    EXPECT_EQ(stats.per_round[i].augmentations, 1u) << i;
  }
  EXPECT_EQ(stats.per_round[kProductiveRounds].augmentations, 0u);
}

TEST(MpcRoundsEarlyStop, DisabledEarlyStopStillRunsToTheCap) {
  Rng gen_rng(81);
  const EdgeList el = gnp(100, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 5, true);
  config.early_stop = false;
  const auto build = [](EdgeSpan piece, const PartitionContext&, Rng&) {
    return piece.num_edges();
  };
  const auto account = [](std::size_t) { return MessageSize{0, 1}; };
  const auto fold = [&](std::vector<std::size_t>&, MpcRoundContext& ctx,
                        Rng&) { return ctx.active_edges().to_edge_list(); };
  Rng rng(81);
  const MpcExecutionStats stats =
      run_mpc_rounds(el, config, 0, rng, nullptr, build, account, fold);
  EXPECT_EQ(stats.engine_rounds, 5u);
}

TEST(MpcRoundsCertificate, UncertifiedLaterRoundClearsAStaleRatio) {
  // Regression: certified_ratio was only overwritten when a round certified,
  // so a certificate from round 0 stayed attached to a solution later rounds
  // kept changing. An uncertified round must clear it; re-certifying must
  // re-attach it.
  Rng gen_rng(82);
  const EdgeList el = gnp(150, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 3, true);
  config.early_stop = false;
  const auto build = [](EdgeSpan piece, const PartitionContext&, Rng&) {
    return piece.num_edges();
  };
  const auto account = [](std::size_t) { return MessageSize{0, 1}; };

  {
    // Certify in round 0, keep mutating without certifying afterwards.
    const auto fold = [&](std::vector<std::size_t>&, MpcRoundContext& ctx,
                          Rng&) {
      if (ctx.round_index() == 0) ctx.certify_ratio(1.5);
      ctx.note_progress(1);  // keep the run alive
      return ctx.active_edges().to_edge_list();
    };
    Rng rng(82);
    const MpcExecutionStats stats =
        run_mpc_rounds(el, config, 0, rng, nullptr, build, account, fold);
    EXPECT_EQ(stats.engine_rounds, 3u);
    EXPECT_EQ(stats.certified_ratio, 0.0);
    EXPECT_EQ(stats.per_round.size(), 3u);
  }
  {
    // A certificate in the FINAL round sticks.
    const auto fold = [&](std::vector<std::size_t>&, MpcRoundContext& ctx,
                          Rng&) {
      if (ctx.last_round()) ctx.certify_ratio(1.25);
      ctx.note_progress(1);
      return ctx.active_edges().to_edge_list();
    };
    Rng rng(82);
    const MpcExecutionStats stats =
        run_mpc_rounds(el, config, 0, rng, nullptr, build, account, fold);
    EXPECT_DOUBLE_EQ(stats.certified_ratio, 1.25);
  }
}

TEST(MpcRoundsStreaming, StreamingFoldMatchesBarrierSeedForSeed) {
  for (std::uint64_t seed : {90u, 91u}) {
    for (const Instance& inst : grid(seed)) {
      for (std::size_t threads : {0u, 4u}) {
        ThreadPool pool(threads == 0 ? 1 : threads);
        ThreadPool* p = threads == 0 ? nullptr : &pool;

        MpcEngineConfig barrier_cfg = engine_config(inst.edges, 4, true);
        Rng barrier_rng(seed);
        const CoresetMpcMatchingResult barrier = coreset_mpc_matching_rounds(
            inst.edges, barrier_cfg, inst.left_size, barrier_rng, p);

        MpcEngineConfig stream_cfg = barrier_cfg;
        stream_cfg.streaming_fold = true;  // canonical order by default
        Rng stream_rng(seed);
        const CoresetMpcMatchingResult streamed = coreset_mpc_matching_rounds(
            inst.edges, stream_cfg, inst.left_size, stream_rng, p);

        EXPECT_EQ(sorted_edges(barrier.matching), sorted_edges(streamed.matching))
            << inst.name << " seed=" << seed << " threads=" << threads;
        EXPECT_EQ(barrier.rounds, streamed.rounds);
        EXPECT_EQ(barrier.stats.total_comm_words, streamed.stats.total_comm_words);
        EXPECT_EQ(barrier.max_memory_words, streamed.max_memory_words);
        EXPECT_EQ(barrier.stats.engine_rounds, streamed.stats.engine_rounds);
      }
    }
  }
}

TEST(MpcRoundsStreaming, StreamingVertexCoverMatchesBarrierSeedForSeed) {
  for (std::uint64_t seed : {92u, 93u}) {
    for (const Instance& inst : grid(seed)) {
      MpcEngineConfig barrier_cfg = engine_config(inst.edges, 3, true);
      Rng barrier_rng(seed);
      const CoresetMpcVcResult barrier = coreset_mpc_vertex_cover_rounds(
          inst.edges, barrier_cfg, barrier_rng);

      MpcEngineConfig stream_cfg = barrier_cfg;
      stream_cfg.streaming_fold = true;
      ThreadPool pool(4);
      Rng stream_rng(seed);
      const CoresetMpcVcResult streamed = coreset_mpc_vertex_cover_rounds(
          inst.edges, stream_cfg, stream_rng, &pool);

      EXPECT_EQ(barrier.cover.vertices(), streamed.cover.vertices())
          << inst.name << " seed=" << seed;
      EXPECT_EQ(barrier.rounds, streamed.rounds);
      EXPECT_EQ(barrier.max_memory_words, streamed.max_memory_words);
    }
  }
}

TEST(MpcRoundsStreaming, StreamingFilteringMatchesBarrierSeedForSeed) {
  for (std::uint64_t seed : {94u, 95u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(400, 0.08, gen_rng);
    MpcEngineConfig cfg;
    cfg.mpc.num_machines = 8;
    cfg.mpc.memory_words = 2 * 3000;
    cfg.max_rounds = 1000;

    Rng barrier_rng(seed);
    const FilteringMpcResult barrier = filtering_mpc_rounds(el, cfg, barrier_rng);

    MpcEngineConfig stream_cfg = cfg;
    stream_cfg.streaming_fold = true;
    ThreadPool pool(4);
    Rng stream_rng(seed);
    const FilteringMpcResult streamed =
        filtering_mpc_rounds(el, stream_cfg, stream_rng, &pool);

    EXPECT_EQ(sorted_edges(barrier.maximal_matching),
              sorted_edges(streamed.maximal_matching));
    EXPECT_EQ(barrier.rounds, streamed.rounds);
    EXPECT_EQ(barrier.filter_iterations, streamed.filter_iterations);
    EXPECT_EQ(barrier.max_memory_words, streamed.max_memory_words);
    EXPECT_TRUE(streamed.completed);
  }
}

TEST(MpcRoundsStreaming, ArrivalOrderFilteringStaysMaximal) {
  // Arrival-order absorbs greedy-extend in completion order: the matching
  // differs run to run, but maximality and the duality sandwich cannot.
  Rng gen_rng(96);
  const EdgeList el = gnp(300, 0.08, gen_rng);
  MpcEngineConfig cfg;
  cfg.mpc.num_machines = 8;
  cfg.mpc.memory_words = 2 * 3000;
  cfg.max_rounds = 1000;
  cfg.streaming_fold = true;
  cfg.streaming.order = StreamingOrder::kArrival;
  ThreadPool pool(4);
  Rng rng(96);
  const FilteringMpcResult r = filtering_mpc_rounds(el, cfg, rng, &pool);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.maximal_matching.valid());
  EXPECT_TRUE(r.maximal_matching.subset_of(el));
  EXPECT_TRUE(r.maximal_matching.maximal_in(el));
  EXPECT_TRUE(r.cover.covers(el));
}

TEST(MpcRoundsEarlyStop, StopsWhenNoEdgesSurvive) {
  // A single star saturates after one round: the center gets matched, every
  // remaining edge touches it, no survivors remain.
  const EdgeList el = star(64);
  MpcEngineConfig config = engine_config(el, 10, true);
  Rng rng(31);
  const CoresetMpcMatchingResult r =
      coreset_mpc_matching_rounds(el, config, 0, rng);
  EXPECT_EQ(r.matching.size(), 1u);
  EXPECT_LT(r.stats.engine_rounds, 10u);
}

TEST(MpcRoundsEarlyStop, MultiRoundVertexCoverStaysFeasible) {
  for (std::uint64_t seed : {33u, 34u}) {
    for (const Instance& inst : grid(seed)) {
      Rng rng(seed);
      const CoresetMpcVcResult r = coreset_mpc_vertex_cover_rounds(
          inst.edges, engine_config(inst.edges, 3, true), rng);
      EXPECT_TRUE(r.cover.covers(inst.edges)) << inst.name;
      EXPECT_LE(r.stats.engine_rounds, 3u);
      EXPECT_LE(r.stats.max_memory_words,
                MpcConfig::paper_default(inst.edges.num_vertices()).memory_words);
    }
  }
}

TEST(MpcRoundsDeterminism, ThreadPoolAndSequentialRunsAgree) {
  Rng gen_rng(40);
  const EdgeList el = gnp(800, 0.02, gen_rng);
  const MpcEngineConfig config = engine_config(el, 3, true);
  Rng seq_rng(40);
  const CoresetMpcMatchingResult seq =
      coreset_mpc_matching_rounds(el, config, 0, seq_rng);
  ThreadPool pool(4);
  Rng par_rng(40);
  const CoresetMpcMatchingResult par =
      coreset_mpc_matching_rounds(el, config, 0, par_rng, &pool);
  EXPECT_EQ(sorted_edges(seq.matching), sorted_edges(par.matching));
  EXPECT_EQ(seq.stats.mpc_rounds, par.stats.mpc_rounds);
  EXPECT_EQ(seq.stats.max_memory_words, par.stats.max_memory_words);
}

TEST(MpcRoundsFiltering, RoundCapLeavesRunMarkedIncomplete) {
  Rng gen_rng(50);
  const EdgeList el = gnp(400, 0.2, gen_rng);  // ~16k edges
  MpcEngineConfig config;
  config.mpc.num_machines = 8;
  config.mpc.memory_words = 2 * 800;  // needs several filter iterations
  config.max_rounds = 1;              // cap before the residual can fit
  Rng rng(50);
  const FilteringMpcResult r = filtering_mpc_rounds(el, config, rng);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.filter_iterations, 1u);
  EXPECT_TRUE(r.maximal_matching.valid());
  EXPECT_TRUE(r.maximal_matching.subset_of(el));
}

TEST(MpcRoundsOptions, FlagsRoundTripIntoConfig) {
  Options options("mpc_rounds_test");
  add_mpc_engine_flags(options);
  const char* argv[] = {"test", "--mpc-machines=6", "--mpc-memory-budget=12345",
                        "--mpc-rounds=4", "--mpc-random-input=false",
                        "--mpc-early-stop=false"};
  options.parse(6, const_cast<char**>(argv));
  const MpcEngineConfig config = mpc_engine_config_from_options(options, 1000);
  EXPECT_EQ(config.mpc.num_machines, 6u);
  EXPECT_EQ(config.mpc.memory_words, 12345u);
  EXPECT_EQ(config.max_rounds, 4u);
  EXPECT_FALSE(config.input_already_random);
  EXPECT_FALSE(config.early_stop);
}

TEST(MpcRoundsOptions, ZeroFlagsFallBackToPaperDefault) {
  Options options("mpc_rounds_test");
  add_mpc_engine_flags(options);
  const char* argv[] = {"test"};
  options.parse(1, const_cast<char**>(argv));
  const MpcEngineConfig config = mpc_engine_config_from_options(options, 10000);
  const MpcConfig fallback = MpcConfig::paper_default(10000);
  EXPECT_EQ(config.mpc.num_machines, fallback.num_machines);
  EXPECT_EQ(config.mpc.memory_words, fallback.memory_words);
  EXPECT_EQ(config.max_rounds, 1u);
  // Flag defaults agree with a directly-constructed MpcEngineConfig.
  EXPECT_EQ(config.input_already_random, MpcEngineConfig{}.input_already_random);
  EXPECT_EQ(config.early_stop, MpcEngineConfig{}.early_stop);
}

}  // namespace
}  // namespace rcc
