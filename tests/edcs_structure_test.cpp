// Structural property grid for the EDCS machine summary (matching/edcs.hpp)
// and validity checks on the combined EDCS-round solution.
//
// The two degree invariants are checked directly, edge by edge, in integer
// arithmetic — every H edge must satisfy deg_H(u) + deg_H(v) <= beta (P1)
// and every G \ H edge deg_H(u) + deg_H(v) >= beta - lambda (P2) — across a
// generator x seed x k grid of randomly partitioned pieces, for several
// (beta, lambda) settings. The suite also pins the builder's determinism
// contract (pure function of the edge multiset: arrival order and parallel
// copies cannot change the output) and the subgraph/validity story of
// run_matching_rounds_edcs' combined solution.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "matching/edcs.hpp"
#include "matching/max_matching.hpp"
#include "mpc/edcs_rounds.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

namespace rcc {
namespace {

struct Instance {
  std::string name;
  EdgeList edges;
  VertexId left_size;
};

std::vector<Instance> instance_grid(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.push_back({"empty", EdgeList(40), 0});
  instances.push_back({"gnp-sparse", gnp(300, 4.0 / 300, rng), 0});
  instances.push_back({"gnp-dense", gnp(120, 0.2, rng), 0});
  instances.push_back({"bipartite", random_bipartite(80, 100, 0.08, rng), 80});
  instances.push_back({"crown-forest", crown_forest(12, 3), 0});
  instances.push_back({"star-forest", star_forest(12, 15), 0});
  instances.push_back({"path", path(150), 0});
  instances.push_back({"cycle", cycle(101), 0});
  return instances;
}

constexpr std::uint64_t kSeeds[] = {101, 202, 303};
constexpr std::size_t kMachineCounts[] = {2, 4, 8};

const EdcsParams kParamGrid[] = {
    {.beta = 2, .lambda = 1},   // the degenerate floor
    {.beta = 8, .lambda = 1},
    {.beta = 16, .lambda = 2},  // the flag defaults
    {.beta = 16, .lambda = 8},
    {.beta = 32, .lambda = 4},
};

std::vector<std::size_t> degrees_of(EdgeSpan edges) {
  std::vector<std::size_t> deg(edges.num_vertices(), 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

TEST(EdcsStructure, DegreeInvariantsHoldAcrossTheGrid) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      for (std::size_t k : kMachineCounts) {
        Rng rng(seed ^ (k << 8));
        const auto pieces = random_partition(inst.edges, k, rng);
        for (const EdcsParams& params : kParamGrid) {
          for (std::size_t i = 0; i < pieces.size(); ++i) {
            const EdgeList h = build_edcs(pieces[i], params);
            // The library oracle first...
            EXPECT_TRUE(edcs_invariants_hold(pieces[i], h, params))
                << inst.name << " seed=" << seed << " k=" << k
                << " machine=" << i << " beta=" << params.beta
                << " lambda=" << params.lambda;
            // ... and the invariants spelled out independently, edge by
            // edge, so a bug in the oracle cannot vouch for a bug in the
            // builder. The builder outputs one copy per distinct pair, so
            // plain degree counts over h ARE deg_H.
            const std::vector<std::size_t> deg = degrees_of(h);
            for (const Edge& e : h) {
              EXPECT_LE(deg[e.u] + deg[e.v], params.beta)  // P1
                  << inst.name << " H-edge " << e.u << "-" << e.v;
            }
            std::vector<Edge> h_sorted(h.begin(), h.end());
            std::sort(h_sorted.begin(), h_sorted.end());
            for (const Edge& raw : pieces[i]) {
              const Edge e = make_edge(raw.u, raw.v);
              if (std::binary_search(h_sorted.begin(), h_sorted.end(), e)) {
                continue;
              }
              EXPECT_GE(deg[e.u] + deg[e.v] + params.lambda, params.beta)  // P2
                  << inst.name << " G\\H edge " << e.u << "-" << e.v;
            }
          }
        }
      }
    }
  }
}

TEST(EdcsStructure, SummaryIsASubgraphWithCappedDegrees) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const EdcsParams params{.beta = 8, .lambda = 2};
      const EdgeList h = build_edcs(inst.edges, params);
      std::vector<Edge> graph_sorted(inst.edges.begin(), inst.edges.end());
      std::sort(graph_sorted.begin(), graph_sorted.end());
      std::vector<Edge> seen;
      for (const Edge& e : h) {
        EXPECT_LT(e.u, e.v) << inst.name;  // normalized, no loops
        EXPECT_TRUE(std::binary_search(graph_sorted.begin(),
                                       graph_sorted.end(), e))
            << inst.name << " fabricated edge " << e.u << "-" << e.v;
        seen.push_back(e);
      }
      // One copy per distinct pair, in canonical order.
      EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end())) << inst.name;
      EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
          << inst.name;
      // P1 implies every touched vertex stays strictly below beta (its
      // H-neighbor contributes at least 1 to the pair sum).
      const std::vector<std::size_t> deg = degrees_of(h);
      for (const Edge& e : h) {
        EXPECT_LT(deg[e.u], params.beta) << inst.name;
        EXPECT_LT(deg[e.v], params.beta) << inst.name;
      }
    }
  }
}

TEST(EdcsStructure, PureFunctionOfTheEdgeMultiset) {
  Rng rng(7);
  const EdgeList base = gnp(200, 10.0 / 200, rng);
  const EdcsParams params{.beta = 12, .lambda = 3};
  const EdgeList reference = build_edcs(base, params);

  // Reversed arrival order: same multiset, same EDCS, byte for byte.
  EdgeList reversed(base.num_vertices());
  for (std::size_t i = base.num_edges(); i-- > 0;) {
    reversed.add(base.edges()[i]);
  }
  const EdgeList from_reversed = build_edcs(reversed, params);
  ASSERT_EQ(reference.num_edges(), from_reversed.num_edges());
  EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                         from_reversed.begin()));

  // Parallel copies collapse: duplicating every edge changes nothing (the
  // invariants and the matching value live on distinct pairs).
  EdgeList doubled(base.num_vertices());
  for (const Edge& e : base) {
    doubled.add(e);
    doubled.add(e);
  }
  const EdgeList from_doubled = build_edcs(doubled, params);
  ASSERT_EQ(reference.num_edges(), from_doubled.num_edges());
  EXPECT_TRUE(
      std::equal(reference.begin(), reference.end(), from_doubled.begin()));
  EXPECT_TRUE(edcs_invariants_hold(doubled, from_doubled, params));
}

TEST(EdcsStructure, WarmScratchRebuildsIdentically) {
  // The MachineScratch-resident builder must agree with the scratch-free
  // one, and re-running on warm buffers (whose content is conversational
  // garbage from the prior call) must reproduce the result exactly.
  Rng rng(11);
  const EdcsParams params{.beta = 16, .lambda = 2};
  WorkspaceStats stats;
  MachineScratch scratch(&stats);
  for (int round = 0; round < 3; ++round) {
    const EdgeList piece = gnp(150, 12.0 / 150, rng);
    const EdgeList cold = build_edcs(piece, params);
    const EdgeList warm = build_edcs(piece, params, &scratch);
    ASSERT_EQ(cold.num_edges(), warm.num_edges());
    EXPECT_TRUE(std::equal(cold.begin(), cold.end(), warm.begin()));
  }
}

TEST(EdcsStructure, SparsePiecesShipWhole) {
  // When every degree sum stays below beta - lambda, P2 forces H = G — the
  // regime the trap-family quality argument rests on (low-degree forests
  // ship entire pieces, so the union is the whole graph).
  const EdgeList forest = crown_forest(10, 3);  // degrees <= 3
  const EdcsParams params{.beta = 16, .lambda = 2};
  const EdgeList h = build_edcs(forest, params);
  EXPECT_EQ(h.num_edges(), forest.num_edges());
}

TEST(EdcsStructure, InvariantOracleRejectsViolations) {
  // P1 violation: a star whose center exceeds beta with its leaves.
  const EdgeList star_graph = star(8);  // center degree 7
  const EdcsParams tight{.beta = 4, .lambda = 1};
  EXPECT_FALSE(edcs_invariants_hold(star_graph, star_graph, tight));
  // P2 violation: an empty H against a graph with an edge.
  const EdgeList p = path(4);
  EXPECT_FALSE(edcs_invariants_hold(p, EdgeList(p.num_vertices()), tight));
  // Not a subgraph: H contains an edge G lacks.
  EdgeList h(4);
  h.add(Edge{0, 2});
  EdgeList g(4);
  g.add(Edge{0, 1});
  g.add(Edge{0, 2});
  EdgeList not_subgraph(4);
  not_subgraph.add(Edge{1, 3});
  EXPECT_FALSE(edcs_invariants_hold(g, not_subgraph, tight));
}

TEST(EdcsStructure, CombinedSolutionIsValidAcrossTheGrid) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt =
          maximum_matching_size(inst.edges, inst.left_size);
      MpcEngineConfig config;
      config.mpc.num_machines = 4;
      config.mpc.memory_words = std::uint64_t{1} << 40;
      config.max_rounds = 8;
      EdcsRoundsConfig edcs;
      Rng rng(seed);
      const EdcsMpcResult result = run_matching_rounds_edcs(
          inst.edges, config, edcs, inst.left_size, rng);
      EXPECT_TRUE(result.matching.valid()) << inst.name;
      EXPECT_TRUE(result.matching.subset_of(inst.edges)) << inst.name;
      EXPECT_LE(result.matching.size(), opt) << inst.name;
      // The combiner always ends certified when the round budget is
      // generous (finish_maximal closes any gap), and the certificate means
      // maximal-in-G — which makes the endpoint cover feasible.
      EXPECT_TRUE(result.certified) << inst.name;
      EXPECT_EQ(result.certified_ratio, 2.0) << inst.name;
      EXPECT_TRUE(result.matching.maximal_in(inst.edges)) << inst.name;
      EXPECT_TRUE(result.cover.covers(inst.edges)) << inst.name;
      EXPECT_EQ(result.cover.size(), 2 * result.matching.size()) << inst.name;
      if (opt > 0) {
        // The deterministic sandwich the certificate promises, in integers.
        EXPECT_GE(2 * result.matching.size(), opt) << inst.name;
        EXPECT_GE(result.cover.size(), opt) << inst.name;
        EXPECT_LE(result.cover.size(), 2 * opt) << inst.name;
      }
    }
  }
}

}  // namespace
}  // namespace rcc
