// Executor-level tests of the EDCS round-combiner (mpc/edcs_rounds.hpp):
// golden-seed pins of the matched edge sets and per-round communication
// words (the reshuffle-charge pinning pattern — future refactors diff
// against frozen behavior), streaming-canonical replay, thread-count
// determinism, ledger/budget accounting, the finish_maximal certificate
// lifecycle, workspace allocation discipline, and the flag plumbing.
#include "mpc/edcs_rounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

MpcEngineConfig engine_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  return config;
}

MpcEngineConfig roomy_config(std::size_t k, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc.num_machines = k;
  config.mpc.memory_words = std::uint64_t{1} << 40;
  config.max_rounds = max_rounds;
  return config;
}

EdcsMpcResult run_on(const EdgeList& graph, std::uint64_t seed,
                     ThreadPool* pool = nullptr, std::size_t max_rounds = 32,
                     ProtocolWorkspace* workspace = nullptr) {
  EdcsRoundsConfig edcs;
  Rng rng(seed);
  return run_matching_rounds_edcs(graph, engine_config(graph, max_rounds),
                                  edcs, /*left_size=*/0, rng, pool, workspace);
}

TEST(MpcEdcsGolden, Seed7PinsMatchedEdgesAndCommWords) {
  // crown_forest(4, 3): n = 24, optimum 12, paper-default k = 4 machines.
  // With beta = 16 every degree sum sits far below beta - lambda, so P2
  // ships all 24 edges (48 comm words) and the exact union solve finishes
  // the whole family in ONE certified round. Every literal below is frozen
  // behavior; a diff here means the partition, the EDCS fixpoint, the union
  // solve, or the accounting changed.
  const EdcsMpcResult r = run_on(crown_forest(4, 3), 7);
  const std::vector<Edge> expected = {
      {0, 5},   {1, 3},   {2, 4},   {6, 10},  {7, 11},  {8, 9},
      {12, 17}, {13, 15}, {14, 16}, {18, 22}, {19, 23}, {20, 21}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_EQ(r.matching.size(), 12u);
  EXPECT_TRUE(r.certified);
  EXPECT_DOUBLE_EQ(r.certified_ratio, 2.0);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.max_memory_words, 60u);
  EXPECT_EQ(r.stats.total_comm_words, 48u);
  ASSERT_EQ(r.stats.per_round.size(), 1u);
  EXPECT_EQ(r.stats.per_round[0].comm_words, 48u);
  EXPECT_EQ(r.stats.per_round[0].augmentations, 12u);
  EXPECT_EQ(r.stats.per_round[0].surviving_edges, 0u);
}

TEST(MpcEdcsGolden, Seed8PinsMatchedEdgesAndCommWords) {
  const EdcsMpcResult r = run_on(crown_forest(4, 3), 8);
  const std::vector<Edge> expected = {
      {0, 4},   {1, 5},   {2, 3},   {6, 10},  {7, 11},  {8, 9},
      {12, 16}, {13, 17}, {14, 15}, {18, 23}, {19, 21}, {20, 22}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.max_memory_words, 58u);
  EXPECT_EQ(r.stats.total_comm_words, 48u);
}

TEST(MpcEdcsGolden, DegenerateBetaPinsAMultiRoundRun) {
  // beta = 2, lambda = 1 degenerates the EDCS to a maximal matching of the
  // piece — the thin summary that CAN leave survivors. crown_forest(12, 3)
  // at seed 7 is pinned mid-trap: round 0 ships 59 edges (118 words),
  // matches 34, and leaves exactly one surviving edge; round 1 ships and
  // matches it (2 words) and certifies. The final matching is maximal but
  // one below the optimum 36 — frozen evidence of WHY the full-beta summary
  // is worth its communication.
  const EdgeList el = crown_forest(12, 3);
  EdcsRoundsConfig edcs;
  edcs.edcs.beta = 2;
  edcs.edcs.lambda = 1;
  Rng rng(7);
  const EdcsMpcResult r =
      run_matching_rounds_edcs(el, roomy_config(4, 32), edcs, 0, rng);
  EXPECT_EQ(r.matching.size(), 35u);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.stats.engine_rounds, 2u);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.max_memory_words, 152u);
  EXPECT_EQ(r.stats.total_comm_words, 120u);
  ASSERT_EQ(r.stats.per_round.size(), 2u);
  EXPECT_EQ(r.stats.per_round[0].comm_words, 118u);
  EXPECT_EQ(r.stats.per_round[0].augmentations, 34u);
  EXPECT_EQ(r.stats.per_round[0].active_edges, 72u);
  EXPECT_EQ(r.stats.per_round[0].surviving_edges, 1u);
  EXPECT_EQ(r.stats.per_round[1].comm_words, 2u);
  EXPECT_EQ(r.stats.per_round[1].augmentations, 1u);
  EXPECT_EQ(r.stats.per_round[1].surviving_edges, 0u);
  EXPECT_TRUE(r.matching.maximal_in(el));
  EXPECT_EQ(r.cover.size(), 70u);
}

TEST(MpcEdcsGolden, StreamingCanonicalFoldReproducesTheSeed7Pins) {
  // The streaming combine path in canonical order must replay the frozen
  // golden behavior bit for bit: same matched edges, same comm words, same
  // ledger peaks (collect words are charged per absorbed summary instead of
  // all at once — totals and peaks must not move).
  const EdgeList el = crown_forest(4, 3);
  MpcEngineConfig config = engine_config(el, 32);
  config.streaming_fold = true;
  ThreadPool pool(4);
  EdcsRoundsConfig edcs;
  Rng rng(7);
  const EdcsMpcResult r =
      run_matching_rounds_edcs(el, config, edcs, 0, rng, &pool);
  const std::vector<Edge> expected = {
      {0, 5},   {1, 3},   {2, 4},   {6, 10},  {7, 11},  {8, 9},
      {12, 17}, {13, 15}, {14, 16}, {18, 22}, {19, 23}, {20, 21}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.max_memory_words, 60u);
  EXPECT_EQ(r.stats.total_comm_words, 48u);

  // ... and the multi-round degenerate pin streams identically too.
  const EdgeList crowns = crown_forest(12, 3);
  EdcsRoundsConfig thin;
  thin.edcs.beta = 2;
  thin.edcs.lambda = 1;
  MpcEngineConfig multi = roomy_config(4, 32);
  multi.streaming_fold = true;
  Rng multi_rng(7);
  const EdcsMpcResult m =
      run_matching_rounds_edcs(crowns, multi, thin, 0, multi_rng, &pool);
  EXPECT_EQ(m.matching.size(), 35u);
  EXPECT_EQ(m.stats.engine_rounds, 2u);
  EXPECT_EQ(m.max_memory_words, 152u);
  EXPECT_EQ(m.stats.total_comm_words, 120u);
}

TEST(MpcEdcs, SeedForSeedDeterministicAcrossThreadCounts) {
  Rng gen_rng(40);
  const EdgeList el = gnp(400, 0.02, gen_rng);
  const EdcsMpcResult seq = run_on(el, 40);
  for (std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const EdcsMpcResult par = run_on(el, 40, &pool);
    EXPECT_EQ(sorted_edges(seq.matching), sorted_edges(par.matching))
        << threads << " threads";
    EXPECT_EQ(seq.stats.mpc_rounds, par.stats.mpc_rounds);
    EXPECT_EQ(seq.stats.total_comm_words, par.stats.total_comm_words);
    EXPECT_EQ(seq.stats.max_memory_words, par.stats.max_memory_words);
    EXPECT_EQ(seq.cover.vertices(), par.cover.vertices());
  }
}

TEST(MpcEdcs, CommWordsRespectTheP1Bound) {
  // P1 caps every machine's summary at beta * n / 2 edges, so each round's
  // collect phase ships at most k * beta * n words (2 words per edge) — the
  // communication half of the quality-vs-communication trade-off, enforced
  // on the ledger rather than assumed.
  for (std::uint64_t seed : {50u, 51u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(300, 0.05, gen_rng);
    for (std::size_t beta : {4u, 8u, 16u}) {
      EdcsRoundsConfig edcs;
      edcs.edcs.beta = beta;
      edcs.edcs.lambda = std::max<std::size_t>(1, beta / 8);
      Rng rng(seed);
      const EdcsMpcResult r = run_matching_rounds_edcs(
          el, roomy_config(4, 32), edcs, 0, rng);
      const std::uint64_t cap = 4u * beta * el.num_vertices();
      for (const MpcRoundReport& round : r.stats.per_round) {
        EXPECT_LE(round.comm_words, cap) << "seed=" << seed
                                         << " beta=" << beta;
      }
      EXPECT_TRUE(r.certified);
    }
  }
}

TEST(MpcEdcs, BudgetAndLedgerStayConsistent) {
  for (std::uint64_t seed : {60u, 61u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(500, 0.05, gen_rng);
    const MpcEngineConfig config = engine_config(el, 32);
    const EdcsMpcResult r = run_on(el, seed);
    EXPECT_LE(r.stats.max_memory_words, config.mpc.memory_words);
    EXPECT_EQ(r.stats.round_peak_words.size(), r.stats.round_labels.size());
    std::uint64_t peak = 0;
    for (std::uint64_t words : r.stats.round_peak_words) {
      EXPECT_LE(words, config.mpc.memory_words);
      peak = std::max(peak, words);
    }
    EXPECT_EQ(peak, r.stats.max_memory_words);
    EXPECT_EQ(r.stats.mpc_rounds, r.stats.round_labels.size());
    for (std::size_t i = 0; i < r.stats.round_labels.size(); ++i) {
      EXPECT_EQ(r.stats.round_labels[i], "edcs-round-" + std::to_string(i));
    }
  }
}

TEST(MpcEdcs, AdversarialInputPaysTheReshuffleStep) {
  Rng gen_rng(62);
  const EdgeList el = gnp(200, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 8);
  config.input_already_random = false;
  EdcsRoundsConfig edcs;
  Rng rng(62);
  const EdcsMpcResult r = run_matching_rounds_edcs(el, config, edcs, 0, rng);
  ASSERT_GE(r.stats.round_labels.size(), 2u);
  EXPECT_EQ(r.stats.round_labels[0], "re-partition");
  EXPECT_EQ(r.stats.round_labels[1], "edcs-round-0");
  EXPECT_TRUE(r.certified);
}

TEST(MpcEdcs, FinishMaximalClosesARoundCappedRunAndCertifies) {
  // The certificate lifecycle on the pinned mid-trap instance: capping the
  // degenerate-beta run at one round leaves one surviving edge. Without the
  // closing sweep the run ends uncertified (and the matching is honestly
  // NOT maximal); with it (the default) the coordinator matches the
  // survivor, charges 2 words for centralizing it, and certifies ratio 2.
  const EdgeList el = crown_forest(12, 3);
  EdcsRoundsConfig thin;
  thin.edcs.beta = 2;
  thin.edcs.lambda = 1;

  EdcsRoundsConfig open = thin;
  open.finish_maximal = false;
  Rng open_rng(7);
  const EdcsMpcResult uncapped =
      run_matching_rounds_edcs(el, roomy_config(4, 1), open, 0, open_rng);
  EXPECT_EQ(uncapped.matching.size(), 34u);
  EXPECT_FALSE(uncapped.certified);
  EXPECT_EQ(uncapped.certified_ratio, 0.0);
  EXPECT_EQ(uncapped.stats.certified_ratio, 0.0);
  EXPECT_FALSE(uncapped.matching.maximal_in(el));
  EXPECT_EQ(uncapped.max_memory_words, 152u);
  EXPECT_EQ(uncapped.stats.per_round[0].surviving_edges, 1u);

  Rng closed_rng(7);
  const EdcsMpcResult closed =
      run_matching_rounds_edcs(el, roomy_config(4, 1), thin, 0, closed_rng);
  EXPECT_EQ(closed.matching.size(), 35u);
  EXPECT_TRUE(closed.certified);
  EXPECT_DOUBLE_EQ(closed.certified_ratio, 2.0);
  EXPECT_EQ(closed.stats.certified_ratio, 2.0);
  EXPECT_TRUE(closed.matching.maximal_in(el));
  EXPECT_EQ(closed.max_memory_words, 154u);  // + the 2-word sweep charge
  EXPECT_EQ(closed.stats.per_round[0].surviving_edges, 0u);
  // The cover is the matched endpoints, feasible exactly when certified.
  EXPECT_TRUE(closed.cover.covers(el));
  EXPECT_EQ(closed.cover.size(), 2 * closed.matching.size());
}

TEST(MpcEdcs, SteadyStateRoundsAreWorkspaceAllocationFree) {
  // Round 0 warms the per-machine EdcsBuilder states, the union list, and
  // the survivor double-buffer; later rounds (and a whole second run on the
  // warm workspace) must not grow any workspace-tracked buffer.
  const EdgeList el = crown_forest(12, 3);
  EdcsRoundsConfig thin;  // the degenerate summary: the only multi-round run
  thin.edcs.beta = 2;
  thin.edcs.lambda = 1;
  ProtocolWorkspace ws;
  for (int run = 0; run < 2; ++run) {
    Rng rng(7);
    const std::uint64_t before = ws.counters().allocations;
    const EdcsMpcResult r =
        run_matching_rounds_edcs(el, roomy_config(4, 32), thin, 0, rng,
                                 nullptr, &ws);
    ASSERT_EQ(r.stats.per_round.size(), 2u);
    EXPECT_EQ(r.stats.per_round[1].workspace_allocations, 0u)
        << "run " << run << ": steady-state round grew workspace buffers";
    if (run == 1) {
      EXPECT_EQ(ws.counters().allocations, before)
          << "second run on a warm workspace grew buffers";
    }
    EXPECT_EQ(r.matching.size(), 35u);  // reuse must not change the result
  }
}

TEST(MpcEdcs, FlagsRoundTripIntoConfig) {
  {
    Options options("mpc_edcs_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test"};
    options.parse(1, const_cast<char**>(argv));
    const EdcsRoundsConfig config = edcs_config_from_options(options);
    EXPECT_EQ(config.edcs.beta, 16u);  // the documented defaults
    EXPECT_EQ(config.edcs.lambda, 2u);
    EXPECT_TRUE(config.finish_maximal);
  }
  {
    Options options("mpc_edcs_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test", "--mpc-edcs-beta=32", "--mpc-edcs-lambda=8",
                          "--mpc-edcs-finish-maximal=false"};
    options.parse(4, const_cast<char**>(argv));
    const EdcsRoundsConfig config = edcs_config_from_options(options);
    EXPECT_EQ(config.edcs.beta, 32u);
    EXPECT_EQ(config.edcs.lambda, 8u);
    EXPECT_FALSE(config.finish_maximal);
  }
}

TEST(MpcEdcsDeath, OutOfRangeFlagValuesExitStrictly) {
  {
    Options options("mpc_edcs_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test", "--mpc-edcs-beta=1"};
    options.parse(2, const_cast<char**>(argv));
    EXPECT_EXIT(edcs_config_from_options(options),
                ::testing::ExitedWithCode(2), "mpc-edcs-beta");
  }
  {
    Options options("mpc_edcs_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test", "--mpc-edcs-lambda=16"};
    options.parse(2, const_cast<char**>(argv));
    // lambda must stay strictly below beta (= default 16 here).
    EXPECT_EXIT(edcs_config_from_options(options),
                ::testing::ExitedWithCode(2), "mpc-edcs-lambda");
  }
}

}  // namespace
}  // namespace rcc
