// Unit tests for the bounded-length augmenting-path module
// (matching/augmenting_paths.hpp): structural validity of discovered paths,
// the length bound, exactness of the emptiness test (cross-checked against
// the Hopcroft-Karp and blossom oracles), determinism under thread-pool vs
// sequential execution, and the no-augmenting-path fixed point on a perfect
// matching.
#include "matching/augmenting_paths.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/max_matching.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

/// Start matchings the searches are probed against: empty, greedy in input
/// order, greedy in a seeded random order.
std::vector<Matching> start_matchings(const EdgeList& edges,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matching> starts;
  starts.emplace_back(edges.num_vertices());
  starts.push_back(greedy_maximal_matching(edges, GreedyOrder::kGiven, rng));
  starts.push_back(greedy_maximal_matching(edges, GreedyOrder::kRandom, rng));
  return starts;
}

std::vector<EdgeList> instance_pool(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeList> instances;
  instances.push_back(gnp(120, 0.03, rng));
  instances.push_back(random_bipartite(40, 50, 0.08, rng));
  instances.push_back(crown(9));
  instances.push_back(crown_forest(8, 3));
  instances.push_back(path(60));
  instances.push_back(cycle(31));
  instances.push_back(star_forest(6, 8));
  return instances;
}

TEST(AugmentingPathSearch, PathsAreValidDisjointAndLengthBounded) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const EdgeList& edges : instance_pool(seed)) {
      for (const Matching& start : start_matchings(edges, seed)) {
        for (std::size_t max_length : {1u, 3u, 5u, 9u}) {
          const std::vector<AugmentingPath> paths =
              find_augmenting_paths(edges, start, max_length);
          std::vector<char> used(edges.num_vertices(), 0);
          for (const AugmentingPath& p : paths) {
            EXPECT_TRUE(is_valid_augmenting_path(p, start, edges));
            EXPECT_LE(p.length(), max_length);
            EXPECT_EQ(p.length() % 2, 1u);
            EXPECT_LT(p.vertices.front(), p.vertices.back());  // canonical
            for (VertexId v : p.vertices) {
              EXPECT_FALSE(used[v]) << "paths share vertex " << v;
              used[v] = 1;
            }
          }
          // Disjoint paths can be applied in any order; do it and check the
          // matching grew by exactly one edge per path.
          Matching m = start;
          for (const AugmentingPath& p : paths) apply_augmenting_path(m, p);
          EXPECT_TRUE(m.valid());
          EXPECT_EQ(m.size(), start.size() + paths.size());
        }
      }
    }
  }
}

TEST(AugmentingPathSearch, LengthBoundIsSharp) {
  // Path graph 0-1-...-7 with matching {(1,2),(3,4),(5,6)}: the ONLY
  // augmenting path is the full length-7 alternation.
  const EdgeList edges = path(8);
  Matching m(8);
  m.match(1, 2);
  m.match(3, 4);
  m.match(5, 6);
  EXPECT_FALSE(has_augmenting_path(edges, m, 1));
  EXPECT_FALSE(has_augmenting_path(edges, m, 3));
  EXPECT_FALSE(has_augmenting_path(edges, m, 5));
  ASSERT_TRUE(has_augmenting_path(edges, m, 7));
  const std::vector<AugmentingPath> paths = find_augmenting_paths(edges, m, 7);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].vertices,
            (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6, 7}));
  apply_augmenting_path(m, paths[0]);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(m.valid());
}

TEST(AugmentingPathSearch, PerfectMatchingIsAFixedPoint) {
  Rng rng(11);
  const EdgeList pm = random_perfect_matching(30, rng);
  const EdgeList edges = complete_bipartite(30, 30);
  Matching perfect = Matching::from_edges(pm);
  for (std::size_t max_length : {1u, 3u, 31u}) {
    EXPECT_TRUE(find_augmenting_paths(edges, perfect, max_length).empty());
    EXPECT_FALSE(has_augmenting_path(edges, perfect, max_length));
  }
  EXPECT_EQ(augment_matching(perfect, edges, 31), 0u);
}

TEST(AugmentingPathSearch, CrownStrandingIsFixedByOneLengthThreePath) {
  // crown(3) with the symmetric-stranded maximal matching {(a0,b1),(a1,b0)}:
  // a2 and b2 are free but (a2,b2) is the missing diagonal, so greedy
  // extension is stuck while one length-3 path reaches the optimum.
  const EdgeList edges = crown(3);
  Matching m(6);
  m.match(0, 3 + 1);
  m.match(1, 3 + 0);
  EXPECT_FALSE(has_augmenting_path(edges, m, 1));
  ASSERT_TRUE(has_augmenting_path(edges, m, 3));
  const std::vector<AugmentingPath> paths = find_augmenting_paths(edges, m, 3);
  ASSERT_EQ(paths.size(), 1u);
  apply_augmenting_path(m, paths[0]);
  EXPECT_EQ(m.size(), 3u);
}

TEST(AugmentingPathSearch, UnboundedSearchMatchesTheExactOracles) {
  // augment_matching with a generous cap must land on nu(G): Hopcroft-Karp
  // is the oracle on bipartite instances, blossom on general ones (odd
  // cycles probe the non-bipartite exactness of the exhaustive search).
  for (std::uint64_t seed : {5u, 6u}) {
    Rng rng(seed);
    struct Case {
      EdgeList edges;
      VertexId left_size;
    };
    std::vector<Case> cases;
    cases.push_back({random_bipartite(30, 30, 0.1, rng), 30});
    cases.push_back({left_regular_bipartite(24, 24, 3, rng), 24});
    cases.push_back({gnp(48, 0.07, rng), 0});
    cases.push_back({cycle(9), 0});
    cases.push_back({crown_forest(5, 3), 0});
    for (const Case& c : cases) {
      const std::size_t opt =
          c.left_size > 0
              ? hopcroft_karp(bipartite_graph(c.edges, c.left_size)).size()
              : blossom_maximum_matching(general_graph(c.edges)).size();
      for (Matching m : start_matchings(c.edges, seed)) {
        augment_matching(m, c.edges, c.edges.num_vertices());
        EXPECT_EQ(m.size(), opt);
        EXPECT_TRUE(m.valid());
        EXPECT_FALSE(
            has_augmenting_path(c.edges, m, c.edges.num_vertices()));
      }
    }
  }
}

TEST(AugmentingPathSearch, DeterministicUnderThreadPoolVsSequential) {
  // The module is RNG-free; running the same searches from pool workers must
  // reproduce the sequential results bit for bit (this is what makes the
  // MPC machine phase schedule-independent).
  const std::vector<EdgeList> instances = instance_pool(21);
  std::vector<std::vector<AugmentingPath>> sequential(instances.size());
  std::vector<Matching> starts;
  starts.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    Rng rng(21 + i);
    starts.push_back(
        greedy_maximal_matching(instances[i], GreedyOrder::kRandom, rng));
    // Unhook one edge so the bounded searches have work to do.
    for (VertexId v = 0; v < instances[i].num_vertices(); ++v) {
      if (starts[i].is_matched(v)) {
        starts[i].unmatch(v);
        break;
      }
    }
    sequential[i] = find_augmenting_paths(instances[i], starts[i], 5);
  }
  ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::vector<AugmentingPath>> parallel(instances.size());
    parallel_for(pool, instances.size(), [&](std::size_t i) {
      parallel[i] = find_augmenting_paths(instances[i], starts[i], 5);
    });
    EXPECT_EQ(parallel, sequential);
  }
}

TEST(AugmentingPathSearch, CanonicalOrderIsATotalOrderOnDiscoveredPaths) {
  Rng rng(31);
  const EdgeList edges = gnp(80, 0.05, rng);
  const Matching m = greedy_maximal_matching(edges, GreedyOrder::kGiven, rng);
  std::vector<AugmentingPath> paths = find_augmenting_paths(edges, m, 5);
  std::sort(paths.begin(), paths.end(), canonical_less);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_TRUE(canonical_less(paths[i - 1], paths[i]));  // strict: no dups
  }
}

}  // namespace
}  // namespace rcc
