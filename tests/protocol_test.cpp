// Simultaneous-protocol engine tests (coordinator model, Section 2).
#include "distributed/protocols.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "matching/max_matching.hpp"
#include "vertex_cover/konig.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(MessageSize, WordAccounting) {
  MessageSize m;
  m.edges = 10;
  m.vertices = 5;
  EXPECT_EQ(m.words(), 25u);
  EXPECT_EQ(word_bits(1024), 10u);
  EXPECT_EQ(word_bits(1025), 11u);
  EXPECT_EQ(word_bits(2), 1u);
  EXPECT_EQ(m.bits(1024), 250u);
}

TEST(CommStats, Aggregation) {
  CommStats c;
  c.per_machine = {{10, 0}, {5, 3}};
  EXPECT_EQ(c.total_words(), 20u + 13u);
  EXPECT_EQ(c.max_machine_words(), 20u);
  EXPECT_GT(c.total_megabytes(1 << 20), 0.0);
}

TEST(MatchingProtocol, EndToEndValidAndAccounted) {
  Rng rng(1);
  const VertexId n = 2000;
  const EdgeList el = gnp(n, 4.0 / n, rng);
  const MatchingProtocolResult r =
      coreset_matching_protocol(el, 8, 0, rng, nullptr);
  EXPECT_TRUE(r.solution.valid());
  EXPECT_TRUE(r.solution.subset_of(el));
  ASSERT_EQ(r.comm.per_machine.size(), 8u);
  // The ledger counts exactly the summary edges.
  std::uint64_t edges = 0;
  for (const auto& s : r.summaries) edges += s.num_edges();
  EXPECT_EQ(r.comm.total_words(), 2 * edges);
  // Per-machine message is O(n) words (a matching has <= n/2 edges).
  EXPECT_LE(r.comm.max_machine_words(), static_cast<std::uint64_t>(n));
}

TEST(MatchingProtocol, ParallelAndSequentialGiveSameResult) {
  const VertexId n = 1500;
  Rng gen(2);
  const EdgeList el = gnp(n, 5.0 / n, gen);
  ThreadPool pool(4);
  Rng rng_seq(77);
  Rng rng_par(77);
  const MatchingProtocolResult seq =
      coreset_matching_protocol(el, 6, 0, rng_seq, nullptr);
  const MatchingProtocolResult par =
      coreset_matching_protocol(el, 6, 0, rng_par, &pool);
  EXPECT_EQ(seq.solution.size(), par.solution.size());
  EXPECT_EQ(seq.comm.total_words(), par.comm.total_words());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(seq.summaries[i].num_edges(), par.summaries[i].num_edges());
  }
}

TEST(MatchingProtocol, ConstantFactorOnRandomGraphs) {
  Rng rng(3);
  const VertexId n = 3000;
  const EdgeList el = gnp(n, 4.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const MatchingProtocolResult r =
      coreset_matching_protocol(el, 10, 0, rng, nullptr);
  EXPECT_GE(9 * r.solution.size(), opt);  // Theorem 1 bound
}

TEST(SubsampledProtocol, CommunicationDropsQuadratically) {
  // On a planted perfect matching every piece's maximum matching is the
  // piece itself, so alpha cleanly divides the message size.
  Rng rng(4);
  const VertexId side = 20000;
  const EdgeList el = random_perfect_matching(side, rng);
  const std::size_t k = 10;
  const MatchingProtocolResult full =
      coreset_matching_protocol(el, k, side, rng, nullptr);
  const MatchingProtocolResult sub =
      subsampled_matching_protocol(el, k, 4.0, side, rng, nullptr);
  const double shrink = static_cast<double>(sub.comm.total_words()) /
                        static_cast<double>(full.comm.total_words());
  EXPECT_NEAR(shrink, 0.25, 0.05);
  // The matching found is ~1/alpha of optimum.
  EXPECT_NEAR(static_cast<double>(sub.solution.size()) / side, 0.25, 0.05);
}

TEST(VcProtocol, CoversAndLogApproximates) {
  Rng rng(5);
  const VertexId side = 3000;
  const EdgeList el = random_bipartite(side, side, 3.0 / side, rng);
  const VcProtocolResult r = coreset_vc_protocol(el, 8, rng, nullptr);
  EXPECT_TRUE(r.solution.covers(el));
  const std::size_t opt = konig_vc_size(bipartite_graph(el, side));
  EXPECT_LE(static_cast<double>(r.solution.size()),
            4.0 * std::log2(2.0 * side) * static_cast<double>(opt));
  ASSERT_EQ(r.comm.per_machine.size(), 8u);
  EXPECT_GT(r.comm.total_words(), 0u);
}

TEST(VcProtocol, ParallelMatchesSequential) {
  Rng gen(6);
  const EdgeList el = gnp(2000, 6.0 / 2000, gen);
  ThreadPool pool(4);
  Rng a(55), b(55);
  const VcProtocolResult seq = coreset_vc_protocol(el, 5, a, nullptr);
  const VcProtocolResult par = coreset_vc_protocol(el, 5, b, &pool);
  EXPECT_EQ(seq.solution.size(), par.solution.size());
}

TEST(GroupedVcProtocol, CoverIsFeasible) {
  Rng rng(7);
  const VertexId side = 4000;
  const EdgeList el = random_bipartite(side, side, 2.0 / side, rng);
  const GroupedVcProtocolResult r = grouped_vc_protocol(el, 8, 64.0, rng, nullptr);
  EXPECT_TRUE(r.solution.covers(el));
}

TEST(GroupedVcProtocol, CommunicationShrinksWithAlpha) {
  // Dense instance (avg degree ~100): on the contracted multigraph the
  // super-vertex degrees exceed the peeling thresholds, so a coarser
  // grouping replaces most edges with fixed super-vertices and the message
  // shrinks. Alpha must keep the contracted universe inside the peeling
  // regime n'/2k > 4 log2 n' (Remark 5.8 presumes it); alpha = 128 with
  // n = 8000, k = 8 gives n' ~ 890, which qualifies, while much larger
  // alpha would leave Delta = 1 and no guarantee at all.
  Rng rng(8);
  const VertexId side = 4000;
  const EdgeList el = random_bipartite(side, side, 100.0 / side, rng);
  const std::size_t k = 8;
  const GroupedVcProtocolResult fine = grouped_vc_protocol(el, k, 26.0, rng, nullptr);
  const GroupedVcProtocolResult coarse = grouped_vc_protocol(el, k, 128.0, rng, nullptr);
  EXPECT_LT(2 * coarse.comm.total_words(), fine.comm.total_words());
}

TEST(GroupedVcProtocol, AlphaBelowLogDegeneratesToUngrouped) {
  Rng rng(9);
  const VertexId side = 500;
  const EdgeList el = random_bipartite(side, side, 4.0 / side, rng);
  // alpha < log2 n => group size 1; must behave like the plain protocol.
  const GroupedVcProtocolResult r = grouped_vc_protocol(el, 4, 1.0, rng, nullptr);
  EXPECT_TRUE(r.solution.covers(el));
}

TEST(MatchingProtocol, AdversarialPartitionStillSound) {
  // The engine works on any partition; guarantees differ but outputs must
  // always be valid matchings of G.
  Rng rng(10);
  const EdgeList el = gnp(1000, 0.01, rng);
  const auto pieces = sorted_chunk_partition(el, 6);
  const MaximumMatchingCoreset coreset;
  const MatchingProtocolResult r = run_matching_protocol_on_partition(
      pieces, coreset, ComposeSolver::kMaximum, 0, rng, nullptr);
  EXPECT_TRUE(r.solution.valid());
  EXPECT_TRUE(r.solution.subset_of(el));
}

}  // namespace
}  // namespace rcc
