// End-to-end integration tests spanning generators, partitioning, coresets,
// protocols, probes, and the MPC simulator — the flows the examples and
// benches rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "coreset/budget.hpp"
#include "coreset/matching_coresets.hpp"
#include "distributed/protocols.hpp"
#include "graph/generators.hpp"
#include "lower_bounds/hard_instances.hpp"
#include "lower_bounds/probes.hpp"
#include "matching/max_matching.hpp"
#include "mpc/coreset_mpc.hpp"
#include "partition/partition.hpp"
#include "vertex_cover/konig.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

// EXP5 in miniature: on D_Matching, the number of planted edges a budgeted
// protocol recovers grows linearly with the budget and does not depend on
// the (local) selection policy — the indistinguishability at the heart of
// Theorem 3.
TEST(Integration, BudgetedRecoveryIsLinearAndPolicyFree) {
  Rng rng(1);
  const VertexId n = 20000;
  const double alpha = 10.0;
  const std::size_t k = 40;
  const DMatchingInstance inst = make_d_matching(n, alpha, k, rng);
  const auto pieces = random_partition(inst.edges, k, rng);

  auto recovered_with = [&](std::size_t budget, BudgetPolicy policy) {
    auto inner = std::make_shared<MaximumMatchingCoreset>();
    const BudgetedMatchingCoreset coreset(inner, budget, policy);
    std::size_t total = 0;
    for (std::size_t i = 0; i < k; ++i) {
      PartitionContext ctx{2 * n, k, i, inst.left_size()};
      total += hidden_edges_in(coreset.build(pieces[i], ctx, rng), inst);
    }
    return total;
  };

  const std::size_t budget_small = 250;   // ~ n / alpha^2 * 1.25
  const std::size_t budget_large = 1000;  // 4x
  const std::size_t small = recovered_with(budget_small, BudgetPolicy::kRandom);
  const std::size_t large = recovered_with(budget_large, BudgetPolicy::kRandom);
  // Linear growth: 4x budget -> ~4x recovery (within a factor of 2 margin).
  const double growth = static_cast<double>(large) / std::max<std::size_t>(small, 1);
  EXPECT_GT(growth, 2.0);
  EXPECT_LT(growth, 8.0);

  // The *best* local policy — prefer degree-1 pairs, i.e. the induced
  // matching — still cannot exceed the indistinguishability cap: a budget-s
  // summary recovers at most s * Pr[induced edge is planted] per machine,
  // where that probability is (n - n/a)/k over the expected induced size.
  const std::size_t low = recovered_with(budget_small, BudgetPolicy::kLowDegreeFirst);
  const double planted_pm = (n - n / alpha) / static_cast<double>(k);
  const double induced_pm = planted_pm + (n / alpha) * std::exp(-2.0);
  const double cap = (planted_pm / induced_pm + 0.08) * budget_small * k;
  EXPECT_LE(static_cast<double>(low), cap);
  // And it is at least as good as random selection (sanity of the probe).
  EXPECT_GE(low + 20, small);
}

// The full (unbudgeted) coreset protocol on D_Matching achieves a constant
// factor even though budgeted ones cannot: the upper and lower bound sides
// of the paper on one instance family.
TEST(Integration, FullCoresetBeatsBudgetedOnDMatching) {
  Rng rng(2);
  const VertexId n = 10000;
  const double alpha = 8.0;
  const std::size_t k = 20;
  const DMatchingInstance inst = make_d_matching(n, alpha, k, rng);
  const std::size_t opt = maximum_matching_size(inst.edges, inst.left_size());

  const MatchingProtocolResult full =
      coreset_matching_protocol(inst.edges, k, inst.left_size(), rng, nullptr);
  EXPECT_GE(9 * full.solution.size(), opt);

  // A budget of n/alpha^2 per machine caps recovery around
  // k * budget * (alpha/k) = n/alpha planted edges; the composed matching is
  // then O(n/alpha) while opt ~ n.
  auto inner = std::make_shared<MaximumMatchingCoreset>();
  const std::size_t budget = static_cast<std::size_t>(n / (alpha * alpha));
  const BudgetedMatchingCoreset budgeted(inner, budget, BudgetPolicy::kRandom);
  const MatchingProtocolResult capped = run_matching_protocol(
      inst.edges, k, budgeted, ComposeSolver::kMaximum, inst.left_size(), rng,
      nullptr);
  EXPECT_LT(capped.solution.size() * 2, full.solution.size());
}

// D_VC: with o(n/alpha) budget the summary almost never contains e*, and the
// resulting cover misses it.
TEST(Integration, DVcSmallSummariesMissEStar) {
  Rng rng(3);
  const VertexId n = 8000;
  const double alpha = 8.0;
  const std::size_t k = 16;
  int missed = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const DVcInstance inst = make_d_vc(n, alpha, k, rng);
    const auto pieces = random_partition(inst.edges, k, rng);
    // Budgeted summary: s = (n/alpha)/20 random edges per machine.
    const std::size_t budget = static_cast<std::size_t>(n / alpha / 20.0);
    std::vector<EdgeList> summaries;
    for (const auto& piece : pieces) {
      summaries.push_back(piece.sample_edges(budget, rng));
    }
    const EdgeList summary_union = EdgeList::union_of(summaries);
    bool has_e_star = false;
    for (const Edge& e : summary_union) {
      if (e == inst.e_star) has_e_star = true;
    }
    if (!has_e_star) ++missed;
  }
  // e* survives a 1/20 subsample of its machine's edges w.p. ~1/20.
  EXPECT_GE(missed, trials / 2);
}

TEST(Integration, MpcAndSimultaneousAgreeOnQuality) {
  Rng rng(4);
  const VertexId n = 4000;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const MatchingProtocolResult sim =
      coreset_matching_protocol(el, 16, 0, rng, nullptr);
  const CoresetMpcMatchingResult mpc =
      coreset_mpc_matching(el, MpcConfig::paper_default(n), false, 0, rng);
  EXPECT_GE(9 * sim.solution.size(), opt);
  EXPECT_GE(9 * mpc.matching.size(), opt);
  // The two pipelines implement the same coreset; sizes are close.
  const double rel = static_cast<double>(sim.solution.size()) /
                     static_cast<double>(mpc.matching.size());
  EXPECT_GT(rel, 0.8);
  EXPECT_LT(rel, 1.25);
}

TEST(Integration, QuickstartFlow) {
  // The README quickstart, as a test: generate, run protocol, validate.
  Rng rng(42);
  const VertexId n = 2000;
  const EdgeList graph = gnp(n, 4.0 / n, rng);
  ThreadPool pool(4);
  const MatchingProtocolResult result =
      coreset_matching_protocol(graph, 8, 0, rng, &pool);
  EXPECT_TRUE(result.solution.valid());
  EXPECT_TRUE(result.solution.subset_of(graph));
  EXPECT_GT(result.solution.size(), 0u);
  EXPECT_EQ(result.comm.per_machine.size(), 8u);

  const VcProtocolResult vc = coreset_vc_protocol(graph, 8, rng, &pool);
  EXPECT_TRUE(vc.solution.covers(graph));
}

TEST(Integration, BipartiteExactPathUsedWhenTagged) {
  Rng rng(5);
  const VertexId side = 3000;
  const EdgeList el = random_bipartite(side, side, 2.0 / side, rng);
  // With left_size the coordinator runs Hopcroft-Karp; result must equal the
  // exact maximum matching of the union of coresets, which is at least the
  // per-piece maximum.
  const MatchingProtocolResult r =
      coreset_matching_protocol(el, 4, side, rng, nullptr);
  EXPECT_TRUE(r.solution.valid());
  const std::size_t opt = maximum_matching_size(el, side);
  EXPECT_GE(9 * r.solution.size(), opt);
}

}  // namespace
}  // namespace rcc
