#include "matching/greedy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

TEST(GreedyMaximal, GivenOrderIsDeterministic) {
  EdgeList el(4);
  el.add(1, 2);  // scanned first: blocks the perfect matching
  el.add(0, 1);
  el.add(2, 3);
  Rng rng(1);
  const Matching m = greedy_maximal_matching(el, GreedyOrder::kGiven, rng);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.mate(1), 2u);
}

TEST(GreedyMaximal, AlwaysMaximalAndValidOnRandomGraphs) {
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const EdgeList el = gnp(200, 0.05, rng);
    const Matching m = greedy_maximal_matching(el, GreedyOrder::kRandom, rng);
    EXPECT_TRUE(m.valid());
    EXPECT_TRUE(m.maximal_in(el));
    EXPECT_TRUE(m.subset_of(el));
  }
}

TEST(GreedyMaximal, AtLeastHalfOfMaximum) {
  // Classical guarantee: any maximal matching is a 1/2-approximation.
  Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const EdgeList el = gnp(150, 0.03, rng);
    const Matching greedy = greedy_maximal_matching(el, GreedyOrder::kRandom, rng);
    const std::size_t opt = maximum_matching_size(el);
    EXPECT_GE(2 * greedy.size(), opt);
  }
}

TEST(GreedyMaximalBy, KeyOrderControlsChoice) {
  // Path 0-1-2-3: key prefers the middle edge -> matching of size 1;
  // preferring outer edges -> size 2.
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  const Matching middle_first = greedy_maximal_matching_by(
      el, [](const Edge& e) { return e.u == 1 ? 0.0 : 1.0; });
  EXPECT_EQ(middle_first.size(), 1u);
  const Matching outer_first = greedy_maximal_matching_by(
      el, [](const Edge& e) { return e.u == 1 ? 1.0 : 0.0; });
  EXPECT_EQ(outer_first.size(), 2u);
}

TEST(GreedyExtend, OnlyAddsCompatibleEdges) {
  Matching base(6);
  base.match(0, 1);
  EdgeList extra(6);
  extra.add(1, 2);  // conflicts
  extra.add(3, 4);  // compatible
  greedy_extend(base, extra);
  EXPECT_EQ(base.size(), 2u);
  EXPECT_TRUE(base.is_matched(3));
  EXPECT_FALSE(base.is_matched(2));
}

TEST(GreedyExtend, EmptyExtraIsNoop) {
  Matching base(4);
  base.match(0, 1);
  greedy_extend(base, EdgeList(4));
  EXPECT_EQ(base.size(), 1u);
}

class GreedyOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedyOrderSweep, RandomOrderMaximalOnManySeeds) {
  Rng rng(GetParam());
  const EdgeList el = gnp(100, 0.08, rng);
  const Matching m = greedy_maximal_matching(el, GreedyOrder::kRandom, rng);
  EXPECT_TRUE(m.maximal_in(el));
  EXPECT_TRUE(m.subset_of(el));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOrderSweep, ::testing::Range(1, 16));

}  // namespace
}  // namespace rcc
