// Direct empirical checks of the paper's analysis steps: Claim 3.3,
// Lemma 3.2/3.1 (GreedyMatch growth), and the Lemma 3.6 sandwich.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "coreset/compose.hpp"
#include "coreset/vc_coreset.hpp"
#include "graph/generators.hpp"
#include "matching/max_matching.hpp"
#include "partition/partition.hpp"
#include "vertex_cover/konig.hpp"
#include "vertex_cover/peeling.hpp"
#include "util/rng.hpp"

namespace rcc {
namespace {

// Claim 3.3: |M*_{<i}|, the part of a fixed maximum matching assigned to the
// first i-1 machines, concentrates at ((i-1)/k) MM(G).
TEST(Claim33, PrefixConcentration) {
  Rng rng(1);
  const VertexId side = 30000;
  const EdgeList m_star = random_perfect_matching(side, rng);
  const std::size_t k = 30;
  const auto pieces = random_partition(m_star, k, rng);
  std::size_t prefix = 0;
  for (std::size_t i = 1; i <= k; ++i) {
    prefix += pieces[i - 1].num_edges();
    const double expected = static_cast<double>(i) / k * side;
    const double sigma = std::sqrt(expected * (1.0 - static_cast<double>(i) / k) + 1);
    EXPECT_NEAR(static_cast<double>(prefix), expected, 6 * sigma + 6);
  }
}

// Lemma 3.1: GreedyMatch finds >= MM(G)/9 - o(MM) on random partitions.
class Lemma31Sweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma31Sweep, GreedyMatchReachesConstantFraction) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  const VertexId n = 3000;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const auto pieces = random_partition(el, k, rng);
  PartitionContext ctx{n, static_cast<std::size_t>(k), 0, 0};
  const GreedyMatchTrace trace = greedy_match(pieces, ctx, rng);
  EXPECT_GE(static_cast<double>(trace.matching.size()),
            static_cast<double>(opt) / 9.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma31Sweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(3, 9, 27)));

// Lemma 3.2 (shape): while the running matching is below MM/9, every one of
// the first k/3 steps adds a decent fraction of MM/k new edges.
TEST(Lemma32, EarlyStepsGrowLinearly) {
  Rng rng(4);
  const VertexId n = 6000;
  const std::size_t k = 12;
  const EdgeList el = gnp(n, 5.0 / n, rng);
  const std::size_t opt = maximum_matching_size(el);
  const auto pieces = random_partition(el, k, rng);
  PartitionContext ctx{n, k, 0, 0};
  const GreedyMatchTrace trace = greedy_match(pieces, ctx, rng);
  const double mm_over_k = static_cast<double>(opt) / k;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < k / 3; ++i) {
    const std::size_t size = trace.step_sizes[i];
    if (static_cast<double>(prev) < static_cast<double>(opt) / 9.0) {
      EXPECT_GE(static_cast<double>(size - prev), 0.15 * mm_over_k)
          << "step " << i;
    }
    prev = size;
  }
}

// Lemma 3.6 (sandwich, tolerant form): per machine, the peeled set's
// intersection with O* contains the hypothetical O-levels, and its
// intersection with the complement is contained in the hypothetical
// Obar-levels — up to a small fraction of stragglers (the lemma itself only
// holds w.h.p.).
TEST(Lemma36, SandwichHoldsUpToSmallSlack) {
  Rng rng(5);
  // A lopsided bipartite instance with a small, high-degree optimal cover:
  // 200 left hubs versus 20000 right vertices.
  const VertexId left = 200;
  const VertexId right = 20000;
  const VertexId n = left + right;
  const EdgeList el = random_bipartite(left, right, 0.5, rng);
  const Graph g = bipartite_graph(el, left);
  const VertexCover opt = konig_min_vertex_cover(g);
  const HypotheticalPeeling hp = hypothetical_peeling(el, opt.indicator());
  const std::vector<VertexId> all_o = hp.all_o();
  const std::vector<VertexId> all_obar = hp.all_obar();
  std::set<VertexId> o_union(all_o.begin(), all_o.end());
  std::set<VertexId> obar_union(all_obar.begin(), all_obar.end());

  const std::size_t k = 4;
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    const VcCoresetOutput out = coreset.build(pieces[i], ctx, rng);
    std::size_t a_total = 0, b_violations = 0, b_total = 0;
    std::set<VertexId> peeled(out.fixed_vertices.begin(),
                              out.fixed_vertices.end());
    for (VertexId v : out.fixed_vertices) {
      if (opt.contains(v)) {
        ++a_total;
      } else {
        ++b_total;
        if (!obar_union.count(v)) ++b_violations;
      }
    }
    std::size_t o_missing = 0;
    for (VertexId v : o_union) {
      if (!peeled.count(v)) ++o_missing;
    }
    // Containment direction 1: the machine peels (almost) all of the
    // hypothetical O-union.
    EXPECT_LE(o_missing, o_union.size() / 10 + 2) << "machine " << i;
    // Containment direction 2: complement-side peels stay inside Obar.
    EXPECT_LE(b_violations, b_total / 10 + 2) << "machine " << i;
    (void)a_total;
  }
}

// Theorem 2 consequence measured directly: the union of all fixed sets is
// O(log n) * VC(G).
TEST(Theorem2, UnionOfFixedSetsIsSmall) {
  Rng rng(6);
  const VertexId left = 150;
  const VertexId right = 15000;
  const VertexId n = left + right;
  const EdgeList el = random_bipartite(left, right, 0.4, rng);
  const std::size_t opt = konig_vc_size(bipartite_graph(el, left));
  const std::size_t k = 6;
  const auto pieces = random_partition(el, k, rng);
  const PeelingVcCoreset coreset;
  std::set<VertexId> fixed_union;
  for (std::size_t i = 0; i < k; ++i) {
    PartitionContext ctx{n, k, i, 0};
    const VcCoresetOutput out = coreset.build(pieces[i], ctx, rng);
    fixed_union.insert(out.fixed_vertices.begin(), out.fixed_vertices.end());
  }
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(fixed_union.size()),
            4.0 * log_n * static_cast<double>(opt));
}

}  // namespace
}  // namespace rcc
