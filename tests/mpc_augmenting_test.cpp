// Executor-level tests of the augmenting round-combiner
// (mpc/augmenting_rounds.hpp): golden-seed pins of the matched edge sets and
// per-round communication words (the reshuffle-charge pinning pattern from
// PR 2 — future refactors diff against frozen behavior), thread-count
// determinism, ledger/budget accounting, certificate reporting, and the
// flag plumbing.
#include "mpc/augmenting_rounds.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"

namespace rcc {
namespace {

std::vector<Edge> sorted_edges(const Matching& m) {
  EdgeList el = m.to_edge_list();
  el.sort();
  return el.edges();
}

MpcEngineConfig engine_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  return config;
}

AugmentingMpcResult run_on(const EdgeList& graph, std::uint64_t seed,
                           ThreadPool* pool = nullptr,
                           std::size_t max_path_length = 3,
                           std::size_t max_rounds = 32) {
  AugmentingRoundsConfig aug;
  aug.max_path_length = max_path_length;
  Rng rng(seed);
  return run_matching_rounds_augmenting(graph, engine_config(graph, max_rounds),
                                        aug, /*left_size=*/0, rng, pool);
}

TEST(MpcAugmentingGolden, Seed7PinsMatchedEdgesAndPerRoundCommWords) {
  // crown_forest(4, 3): n = 24, optimum 12, paper-default k = 4 machines.
  // Every literal below is frozen behavior; a diff here means the partition,
  // search order, conflict resolution, or accounting changed.
  const AugmentingMpcResult r = run_on(crown_forest(4, 3), 7);
  const std::vector<Edge> expected = {
      {0, 5},   {1, 3},   {2, 4},   {6, 10},  {7, 11},  {8, 9},
      {12, 16}, {13, 17}, {14, 15}, {18, 22}, {19, 23}, {20, 21}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_EQ(r.matching.size(), 12u);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.total_augmentations, 12u);
  EXPECT_EQ(r.rounds, 4u);
  // Peak: the certificate round centralizes the 24-edge residual on machine
  // M (48 words) on top of its shard residency and the broadcast matching.
  EXPECT_EQ(r.max_memory_words, 76u);
  ASSERT_EQ(r.stats.per_round.size(), 4u);
  const std::vector<std::uint64_t> comm = {40, 16, 4, 0};
  const std::vector<std::size_t> augs = {8, 3, 1, 0};
  for (std::size_t i = 0; i < comm.size(); ++i) {
    EXPECT_EQ(r.stats.per_round[i].comm_words, comm[i]) << "round " << i;
    EXPECT_EQ(r.stats.per_round[i].augmentations, augs[i]) << "round " << i;
  }
}

TEST(MpcAugmentingGolden, Seed8PinsMatchedEdgesAndPerRoundCommWords) {
  const AugmentingMpcResult r = run_on(crown_forest(4, 3), 8);
  const std::vector<Edge> expected = {
      {0, 4},   {1, 5},   {2, 3},   {6, 10},  {7, 11},  {8, 9},
      {12, 16}, {13, 17}, {14, 15}, {18, 22}, {19, 23}, {20, 21}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.total_augmentations, 12u);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.max_memory_words, 92u);
  ASSERT_EQ(r.stats.per_round.size(), 5u);
  const std::vector<std::uint64_t> comm = {32, 12, 4, 0, 0};
  // Round 3 is a coordinator-sweep round: no machine shipped a path
  // (comm 0) yet one augmentation was applied — the rescue that keeps
  // every non-final round progressing.
  const std::vector<std::size_t> augs = {8, 2, 1, 1, 0};
  for (std::size_t i = 0; i < comm.size(); ++i) {
    EXPECT_EQ(r.stats.per_round[i].comm_words, comm[i]) << "round " << i;
    EXPECT_EQ(r.stats.per_round[i].augmentations, augs[i]) << "round " << i;
  }
}

TEST(MpcAugmentingGolden, StreamingCanonicalFoldReproducesTheSeed7Pins) {
  // The streaming combine path in canonical order must replay the frozen
  // golden behavior bit for bit: same matched edges, same per-round comm
  // words, same ledger peaks (collect words are charged per absorbed summary
  // instead of all at once — totals and peaks must not move).
  const EdgeList el = crown_forest(4, 3);
  AugmentingRoundsConfig aug;
  aug.max_path_length = 3;
  MpcEngineConfig config = engine_config(el, 32);
  config.streaming_fold = true;
  ThreadPool pool(4);
  Rng rng(7);
  const AugmentingMpcResult r =
      run_matching_rounds_augmenting(el, config, aug, 0, rng, &pool);
  const std::vector<Edge> expected = {
      {0, 5},   {1, 3},   {2, 4},   {6, 10},  {7, 11},  {8, 9},
      {12, 16}, {13, 17}, {14, 15}, {18, 22}, {19, 23}, {20, 21}};
  EXPECT_EQ(sorted_edges(r.matching), expected);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.total_augmentations, 12u);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.max_memory_words, 76u);
  ASSERT_EQ(r.stats.per_round.size(), 4u);
  const std::vector<std::uint64_t> comm = {40, 16, 4, 0};
  for (std::size_t i = 0; i < comm.size(); ++i) {
    EXPECT_EQ(r.stats.per_round[i].comm_words, comm[i]) << "round " << i;
  }
}

TEST(MpcAugmenting, CertificateDoesNotGoStaleWhenLaterRoundsKeepWorking) {
  // Pin the certified_ratio lifecycle at the executor level: the augmenting
  // combiner certifies only when it also stops, so a reported ratio must
  // belong to the FINAL round. A capped run that never certified reports
  // 0.0 in both places, and a certified run reports the same bound in both.
  Rng gen_rng(75);
  const EdgeList el = random_bipartite(50, 50, 0.08, gen_rng);
  const AugmentingMpcResult certified = run_on(el, 75);
  ASSERT_TRUE(certified.certified);
  EXPECT_GT(certified.stats.certified_ratio, 0.0);
  // The certificate round is the last one: certifying implies request_stop,
  // so no later uncertified round can be attached to this ratio.
  EXPECT_EQ(certified.stats.per_round.back().augmentations, 0u);
  EXPECT_EQ(certified.stats.certified_ratio, certified.certified_ratio);

  const AugmentingMpcResult capped = run_on(el, 75, nullptr, 3, 1);
  if (!capped.certified) {
    EXPECT_EQ(capped.stats.certified_ratio, 0.0);
  }
}

TEST(MpcAugmenting, SeedForSeedDeterministicAcrossThreadCounts) {
  Rng gen_rng(40);
  const EdgeList el = gnp(400, 0.02, gen_rng);
  const AugmentingMpcResult seq = run_on(el, 40);
  for (std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const AugmentingMpcResult par = run_on(el, 40, &pool);
    EXPECT_EQ(sorted_edges(seq.matching), sorted_edges(par.matching))
        << threads << " threads";
    EXPECT_EQ(seq.stats.mpc_rounds, par.stats.mpc_rounds);
    EXPECT_EQ(seq.stats.total_comm_words, par.stats.total_comm_words);
    EXPECT_EQ(seq.stats.max_memory_words, par.stats.max_memory_words);
    EXPECT_EQ(seq.total_augmentations, par.total_augmentations);
  }
}

TEST(MpcAugmenting, EveryAugmentationGrowsTheMatchingByOne) {
  for (std::uint64_t seed : {50u, 51u, 52u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(300, 0.03, gen_rng);
    const AugmentingMpcResult r = run_on(el, seed);
    // The run starts from the empty matching and every applied path adds
    // exactly one edge, so the counters and the matching must agree.
    EXPECT_EQ(r.total_augmentations, r.matching.size());
    std::size_t per_round_sum = 0;
    for (const MpcRoundReport& round : r.stats.per_round) {
      per_round_sum += round.augmentations;
    }
    EXPECT_EQ(per_round_sum, r.total_augmentations);
    EXPECT_EQ(r.stats.total_augmentations, r.total_augmentations);
  }
}

TEST(MpcAugmenting, BudgetAndLedgerStayConsistent) {
  for (std::uint64_t seed : {60u, 61u}) {
    Rng gen_rng(seed);
    const EdgeList el = gnp(500, 0.05, gen_rng);
    const MpcEngineConfig config = engine_config(el, 32);
    const AugmentingMpcResult r = run_on(el, seed);
    EXPECT_LE(r.stats.max_memory_words, config.mpc.memory_words);
    EXPECT_EQ(r.stats.round_peak_words.size(), r.stats.round_labels.size());
    std::uint64_t peak = 0;
    for (std::uint64_t words : r.stats.round_peak_words) {
      EXPECT_LE(words, config.mpc.memory_words);
      peak = std::max(peak, words);
    }
    EXPECT_EQ(peak, r.stats.max_memory_words);
    EXPECT_EQ(r.stats.mpc_rounds, r.stats.round_labels.size());
    for (std::size_t i = 0; i < r.stats.round_labels.size(); ++i) {
      EXPECT_EQ(r.stats.round_labels[i],
                "augmenting-round-" + std::to_string(i));
    }
  }
}

TEST(MpcAugmenting, AdversarialInputPaysTheReshuffleStep) {
  Rng gen_rng(62);
  const EdgeList el = gnp(200, 0.05, gen_rng);
  MpcEngineConfig config = engine_config(el, 8);
  config.input_already_random = false;
  AugmentingRoundsConfig aug;
  Rng rng(62);
  const AugmentingMpcResult r =
      run_matching_rounds_augmenting(el, config, aug, 0, rng);
  ASSERT_GE(r.stats.round_labels.size(), 2u);
  EXPECT_EQ(r.stats.round_labels[0], "re-partition");
  EXPECT_EQ(r.stats.round_labels[1], "augmenting-round-0");
  EXPECT_TRUE(r.certified);
}

TEST(MpcAugmenting, CertificateReportsTheRatioBound) {
  Rng gen_rng(70);
  const EdgeList el = random_bipartite(60, 60, 0.06, gen_rng);
  for (std::size_t length : {1u, 3u, 7u}) {
    const AugmentingMpcResult r = run_on(el, 70, nullptr, length);
    ASSERT_TRUE(r.certified) << "L=" << length;
    EXPECT_DOUBLE_EQ(r.certified_ratio,
                     1.0 + 2.0 / static_cast<double>(length + 1));
    EXPECT_EQ(r.stats.certified_ratio, r.certified_ratio);
  }
  // A run cut off by the round cap certifies nothing.
  const AugmentingMpcResult capped = run_on(el, 70, nullptr, 3, 1);
  if (!capped.certified) {
    EXPECT_EQ(capped.certified_ratio, 0.0);
    EXPECT_EQ(capped.stats.certified_ratio, 0.0);
  }
}

TEST(MpcAugmenting, RoundCapShortCircuitsWithoutCertificate) {
  // crown(3) with everything in one machine still needs >= 2 rounds (the
  // bootstrap round matches greedily, the trap needs one more); max_rounds=1
  // must return the uncertified bootstrap state.
  const EdgeList el = crown_forest(12, 3);
  const AugmentingMpcResult r = run_on(el, 9, nullptr, 3, 1);
  EXPECT_EQ(r.stats.engine_rounds, 1u);
  EXPECT_FALSE(r.certified);
  EXPECT_TRUE(r.matching.valid());
  EXPECT_GT(r.matching.size(), 0u);
}

TEST(MpcAugmenting, FlagsRoundTripIntoConfig) {
  {
    Options options("mpc_augmenting_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test", "--mpc-max-path-length=7"};
    options.parse(2, const_cast<char**>(argv));
    const AugmentingRoundsConfig config =
        augmenting_config_from_options(options);
    EXPECT_EQ(config.max_path_length, 7u);
    EXPECT_DOUBLE_EQ(config.certified_ratio(), 1.25);
  }
  {
    // A positive epsilon overrides the explicit length: eps = 0.5 needs
    // k+1 = 2 augmentation slots, i.e. length cap 3.
    Options options("mpc_augmenting_test");
    add_mpc_engine_flags(options);
    const char* argv[] = {"test", "--mpc-epsilon=0.5",
                          "--mpc-max-path-length=9"};
    options.parse(3, const_cast<char**>(argv));
    const AugmentingRoundsConfig config =
        augmenting_config_from_options(options);
    EXPECT_EQ(config.max_path_length, 3u);
    EXPECT_DOUBLE_EQ(config.certified_ratio(), 1.5);
  }
  EXPECT_EQ(AugmentingRoundsConfig::for_epsilon(1.0).max_path_length, 1u);
  EXPECT_EQ(AugmentingRoundsConfig::for_epsilon(0.25).max_path_length, 7u);
  EXPECT_EQ(AugmentingRoundsConfig::for_epsilon(0.3).max_path_length, 7u);
  // A vanishing epsilon clamps to a finite (odd) cap instead of overflowing.
  EXPECT_EQ(AugmentingRoundsConfig::for_epsilon(1e-30).max_path_length,
            1999999999u);
}

}  // namespace
}  // namespace rcc
