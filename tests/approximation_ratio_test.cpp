// Exact-oracle approximation harness (label: property).
//
// Every matching entry point runs on a generator x seed grid and its
// realized size is compared against the exact optimum — Hopcroft-Karp on
// bipartition-tagged instances, Edmonds' blossom on general ones:
//
//   * the single-round coreset protocol stays within a pinned constant
//     factor (the Theorem 1 O(1) regime; factor 3 holds with slack on this
//     deterministic grid),
//   * the greedy multi-round combiner runs to its fixed point, which is a
//     maximal matching: certified factor 2, never past maximality,
//   * the augmenting combiner with path cap L = 2k+1 terminates via the
//     no-augmenting-path early stop and never exceeds the certified
//     1 + 1/(k+1) = (L+3)/(L+1) ratio (checked in exact integer arithmetic),
//   * on the p4-forest and crown-forest families the augmenting combiner is
//     STRICTLY better than a greedy fold: the natural-greedy baseline
//     (maximal-matching coresets folded greedily — the Section 1.2 coreset
//     the paper rejects) is stuck Theta(components) below the optimum the
//     augmenting combiner reaches exactly. (The PR-2 maximum-coreset
//     combiner composes exact per-shard maximum matchings, which this grid
//     cannot trap past maximality-with-loss — asserted too: the augmenting
//     result is never behind it.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coreset/matching_coresets.hpp"
#include "graph/generators.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "mpc/augmenting_rounds.hpp"
#include "mpc/coreset_mpc.hpp"
#include "mpc/edcs_rounds.hpp"

namespace rcc {
namespace {

struct Instance {
  std::string name;
  EdgeList edges;
  VertexId left_size;  // nonzero = known bipartition boundary
};

/// Disjoint P4s presented middle-edge-first: a piece-local solver that
/// breaks ties by scan order commits to middle edges, the trap that strands
/// both outer endpoints of a path.
EdgeList p4_forest_middle_first(VertexId paths) {
  EdgeList edges(4 * paths);
  for (VertexId i = 0; i < paths; ++i) {
    edges.add(4 * i + 1, 4 * i + 2);
    edges.add(4 * i, 4 * i + 1);
    edges.add(4 * i + 2, 4 * i + 3);
  }
  return edges;
}

std::vector<Instance> instance_grid(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  instances.push_back({"empty", EdgeList(40), 0});
  instances.push_back({"gnp-sparse", gnp(300, 4.0 / 300, rng), 0});
  instances.push_back({"gnp-dense", gnp(120, 0.2, rng), 0});
  instances.push_back({"bipartite", random_bipartite(80, 100, 0.08, rng), 80});
  instances.push_back(
      {"left-regular", left_regular_bipartite(60, 60, 3, rng), 60});
  instances.push_back({"star-forest", star_forest(12, 15), 0});
  instances.push_back({"path", path(150), 0});
  instances.push_back({"cycle", cycle(101), 0});
  instances.push_back(
      {"perfect-matching", random_perfect_matching(50, rng), 50});
  const HubGadget hub = hub_gadget(64, 8);
  instances.push_back({"hub-gadget", hub.edges, hub.left_size});
  instances.push_back({"p4-forest", p4_forest_middle_first(60), 0});
  instances.push_back({"crown", crown(10), 10});
  instances.push_back({"crown-forest", crown_forest(20, 3), 0});
  return instances;
}

constexpr std::uint64_t kSeeds[] = {101, 202, 303};

/// The exact oracle of the harness: HK when a bipartition is known, blossom
/// otherwise (never the dispatcher, so the oracle choice is explicit).
std::size_t exact_optimum(const Instance& inst) {
  if (inst.left_size > 0) {
    return hopcroft_karp(bipartite_graph(inst.edges, inst.left_size)).size();
  }
  return blossom_maximum_matching(general_graph(inst.edges)).size();
}

MpcEngineConfig engine_config(const EdgeList& graph, std::size_t max_rounds) {
  MpcEngineConfig config;
  config.mpc = MpcConfig::paper_default(graph.num_vertices());
  config.max_rounds = max_rounds;
  return config;
}

/// The natural-greedy baseline: maximal-matching coresets (input-order
/// scan) folded greedily on the same executor — "folding machine matchings
/// greedily", with nothing to ever undo a committed edge.
Matching natural_greedy_rounds(const EdgeList& graph, std::size_t max_rounds,
                               Rng& rng) {
  const MaximalMatchingCoreset coreset(GreedyOrder::kGiven);
  Matching matched(graph.num_vertices());
  const auto build = [&](EdgeSpan piece, const PartitionContext& ctx,
                         Rng& machine_rng) {
    return coreset.build(piece, ctx, machine_rng);
  };
  const auto account = [](const EdgeList& summary) {
    return MessageSize{summary.num_edges(), 0};
  };
  const auto fold = [&](std::vector<EdgeList>& summaries, MpcRoundContext& ctx,
                        Rng&) {
    for (const EdgeList& s : summaries) greedy_extend(matched, s);
    return ctx.active_edges().filter([&](const Edge& e) {
      return !matched.is_matched(e.u) && !matched.is_matched(e.v);
    });
  };
  run_mpc_rounds(graph, engine_config(graph, max_rounds), 0, rng, nullptr,
                 build, account, fold);
  return matched;
}

void expect_valid(const Matching& m, const Instance& inst, std::size_t opt,
                  const std::string& what) {
  EXPECT_TRUE(m.valid()) << what << " on " << inst.name;
  EXPECT_TRUE(m.subset_of(inst.edges)) << what << " on " << inst.name;
  EXPECT_LE(m.size(), opt) << what << " on " << inst.name;
}

TEST(ApproximationRatio, SingleRoundProtocolStaysWithinPinnedConstant) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt = exact_optimum(inst);
      Rng rng(seed);
      const CoresetMpcMatchingResult single = coreset_mpc_matching_rounds(
          inst.edges, engine_config(inst.edges, 1), inst.left_size, rng);
      expect_valid(single.matching, inst, opt, "single-round");
      // Theorem 1's O(1): factor 3 holds with slack on this pinned grid.
      EXPECT_GE(3 * single.matching.size(), opt) << inst.name
                                                 << " seed=" << seed;
    }
  }
}

TEST(ApproximationRatio, GreedyMultiRoundReachesItsMaximalityCertificate) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt = exact_optimum(inst);
      Rng rng(seed);
      const CoresetMpcMatchingResult greedy = coreset_mpc_matching_rounds(
          inst.edges, engine_config(inst.edges, 64), inst.left_size, rng);
      expect_valid(greedy.matching, inst, opt, "greedy-rounds");
      // The greedy fold's fixed point is a maximal matching of G: its
      // certificate is the factor-2 bound, and 64 rounds are enough for the
      // grid to reach it (the run early-stops well before the cap).
      EXPECT_TRUE(greedy.matching.maximal_in(inst.edges)) << inst.name;
      EXPECT_GE(2 * greedy.matching.size(), opt) << inst.name;
      EXPECT_LT(greedy.stats.engine_rounds, 64u) << inst.name;
    }
  }
}

TEST(ApproximationRatio, AugmentingRoundsNeverExceedTheCertifiedRatio) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt = exact_optimum(inst);
      for (std::size_t max_path_length : {1u, 3u, 5u}) {
        AugmentingRoundsConfig aug;
        aug.max_path_length = max_path_length;
        Rng rng(seed);
        const AugmentingMpcResult r = run_matching_rounds_augmenting(
            inst.edges, engine_config(inst.edges, 64), aug, inst.left_size,
            rng);
        expect_valid(r.matching, inst, opt, "augmenting-rounds");
        // Termination must be the no-augmenting-path early stop, and the
        // certificate must hold against the exact oracle: with L = 2k+1,
        // opt/|M| <= 1 + 1/(k+1) = (L+3)/(L+1), in integer arithmetic.
        EXPECT_TRUE(r.certified) << inst.name << " L=" << max_path_length;
        EXPECT_LT(r.stats.engine_rounds, 64u) << inst.name;
        EXPECT_GE(r.matching.size() * (max_path_length + 3),
                  opt * (max_path_length + 1))
            << inst.name << " seed=" << seed << " L=" << max_path_length;
        EXPECT_DOUBLE_EQ(r.certified_ratio,
                         1.0 + 2.0 / static_cast<double>(max_path_length + 1));
        EXPECT_EQ(r.stats.certified_ratio, r.certified_ratio);
      }
    }
  }
}

TEST(ApproximationRatio, AugmentingStrictlyBeatsGreedyOnTrapFamilies) {
  // The separator satellite: on families whose components carry a stranding
  // trap — P4s presented middle-first, crown(3) components with the missing
  // diagonal — the greedy fold commits and can never recover, while length-3
  // augmenting paths fix every stuck component.
  struct Family {
    const char* name;
    EdgeList edges;
  };
  std::vector<Family> families;
  families.push_back({"p4-forest", p4_forest_middle_first(100)});
  families.push_back({"crown-forest", crown_forest(40, 3)});
  for (const Family& family : families) {
    const Instance inst{family.name, family.edges, 0};
    const std::size_t opt = exact_optimum(inst);
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      Rng greedy_rng(seed);
      const Matching greedy =
          natural_greedy_rounds(family.edges, 64, greedy_rng);
      AugmentingRoundsConfig aug;
      aug.max_path_length = 3;
      Rng aug_rng(seed);
      const AugmentingMpcResult r = run_matching_rounds_augmenting(
          family.edges, engine_config(family.edges, 64), aug, 0, aug_rng);
      // Strictly better than the greedy fold, and in fact exactly optimal:
      // every trap on these families is a length-3 augmentation away.
      EXPECT_GT(r.matching.size(), greedy.size())
          << family.name << " seed=" << seed;
      EXPECT_EQ(r.matching.size(), opt) << family.name << " seed=" << seed;
      EXPECT_TRUE(r.certified);
      // And never behind the PR-2 maximum-coreset combiner either.
      Rng coreset_rng(seed);
      const CoresetMpcMatchingResult coreset_greedy =
          coreset_mpc_matching_rounds(family.edges,
                                      engine_config(family.edges, 64), 0,
                                      coreset_rng);
      EXPECT_GE(r.matching.size(), coreset_greedy.matching.size())
          << family.name << " seed=" << seed;
    }
  }
}

TEST(ApproximationRatio, EdcsRoundsMeetTheMeasured32OnTheExactOracleGrid) {
  for (std::uint64_t seed : kSeeds) {
    for (const Instance& inst : instance_grid(seed)) {
      const std::size_t opt = exact_optimum(inst);
      EdcsRoundsConfig edcs;  // the flag defaults: beta = 16, lambda = 2
      Rng rng(seed);
      const EdcsMpcResult r = run_matching_rounds_edcs(
          inst.edges, engine_config(inst.edges, 64), edcs, inst.left_size,
          rng);
      expect_valid(r.matching, inst, opt, "edcs-rounds");
      // The deterministic certificate: the run ends on the maximality
      // early stop (finish_maximal never has to fire within 64 rounds on
      // this grid), so factor 2 is guaranteed — checked in integers.
      EXPECT_TRUE(r.certified) << inst.name << " seed=" << seed;
      EXPECT_DOUBLE_EQ(r.certified_ratio, 2.0);
      EXPECT_EQ(r.stats.certified_ratio, r.certified_ratio);
      EXPECT_TRUE(r.matching.maximal_in(inst.edges)) << inst.name;
      EXPECT_LT(r.stats.engine_rounds, 64u) << inst.name;
      EXPECT_GE(2 * r.matching.size(), opt) << inst.name << " seed=" << seed;
      // The MEASURED EDCS quality (arXiv:1711.03076's almost-3/2, which the
      // factor-2 certificate does not promise): 3|M| >= 2 opt holds on
      // every instance x seed of this pinned grid, in integer arithmetic.
      EXPECT_GE(3 * r.matching.size(), 2 * opt)
          << inst.name << " seed=" << seed;
      // The cover side: feasible, and within the measured factor of the
      // LP lower bound opt <= vc_opt.
      EXPECT_TRUE(r.cover.covers(inst.edges)) << inst.name;
      EXPECT_LE(r.cover.size(), 2 * opt) << inst.name << " seed=" << seed;
    }
  }
}

TEST(ApproximationRatio, EdcsStrictlyBeatsTheGreedyFoldsOnTrapFamilies) {
  // The acceptance-criterion separator: on the stranding families the
  // greedy folds lock in a Theta(components) loss — a machine that kept
  // only a maximum matching of its piece has already thrown away the outer
  // edges a later round would need — while the EDCS summary's P2 invariant
  // forces those low-degree edges to ship, so the union still contains an
  // optimal matching and the exact union solve recovers it.
  struct Family {
    const char* name;
    EdgeList edges;
  };
  std::vector<Family> families;
  families.push_back({"p4-forest", p4_forest_middle_first(100)});
  families.push_back({"crown-forest", crown_forest(40, 3)});
  for (const Family& family : families) {
    const Instance inst{family.name, family.edges, 0};
    const std::size_t opt = exact_optimum(inst);
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      // The composable-coreset setting proper — ONE round, summaries only:
      // at every cluster size the maximum-coreset fold strands components
      // while the EDCS union solves to the exact optimum.
      for (std::size_t k : {2u, 4u, 8u}) {
        MpcEngineConfig config;
        config.mpc.num_machines = k;
        config.mpc.memory_words = std::uint64_t{1} << 40;
        config.max_rounds = 1;
        EdcsRoundsConfig edcs;
        Rng edcs_rng(seed);
        const EdcsMpcResult r =
            run_matching_rounds_edcs(family.edges, config, edcs, 0, edcs_rng);
        // Exactly optimal: every component's edges have degree sums far
        // below beta - lambda, so P2 ships the pieces whole and the round
        // union is the entire family.
        EXPECT_EQ(r.matching.size(), opt)
            << family.name << " seed=" << seed << " k=" << k;
        EXPECT_TRUE(r.certified);
        Rng coreset_rng(seed);
        const CoresetMpcMatchingResult coreset_greedy =
            coreset_mpc_matching_rounds(family.edges, config, 0, coreset_rng);
        EXPECT_GT(r.matching.size(), coreset_greedy.matching.size())
            << family.name << " seed=" << seed << " k=" << k;
      }
      // ... and the natural-greedy baseline of Section 1.2, even with a
      // generous round budget (nothing ever undoes a committed middle edge).
      Rng edcs_rng(seed);
      const EdcsMpcResult multi = run_matching_rounds_edcs(
          family.edges, engine_config(family.edges, 64), EdcsRoundsConfig{},
          0, edcs_rng);
      Rng greedy_rng(seed);
      const Matching greedy =
          natural_greedy_rounds(family.edges, 64, greedy_rng);
      EXPECT_GT(multi.matching.size(), greedy.size())
          << family.name << " seed=" << seed;
      EXPECT_EQ(multi.matching.size(), opt) << family.name << " seed=" << seed;
    }
  }
  // Round iteration does not close the crown gap for the greedy fold: a
  // crown component that lost two same-class edges on the machines is
  // matched 2-of-3 with no surviving edge to fix it, so even 64 rounds at
  // k = 4 stay strictly below the optimum the EDCS combiner reaches in one.
  const EdgeList crowns = crown_forest(40, 3);
  const std::size_t crown_opt =
      exact_optimum(Instance{"crown-forest", crowns, 0});
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    MpcEngineConfig config;
    config.mpc.num_machines = 4;
    config.mpc.memory_words = std::uint64_t{1} << 40;
    config.max_rounds = 64;
    Rng coreset_rng(seed);
    const CoresetMpcMatchingResult coreset_greedy =
        coreset_mpc_matching_rounds(crowns, config, 0, coreset_rng);
    EXPECT_LT(coreset_greedy.matching.size(), crown_opt) << "seed=" << seed;
    Rng edcs_rng(seed);
    const EdcsMpcResult r = run_matching_rounds_edcs(
        crowns, config, EdcsRoundsConfig{}, 0, edcs_rng);
    EXPECT_EQ(r.matching.size(), crown_opt) << "seed=" << seed;
    EXPECT_GT(r.matching.size(), coreset_greedy.matching.size())
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rcc
